#!/usr/bin/env python3
"""Perf-trajectory regression gate for BENCH_scaling.json.

Compares the current bench report against the previous push's artifact
and fails when any tracked ms/pass metric regresses by more than the
threshold (default 15%). A missing or unreadable baseline only warns —
the first run on a branch, an expired artifact, or a format change must
not block CI.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--threshold 0.15]
"""

import json
import sys

# Lower is better for every tracked metric.
TRACKED = [
    ("interp_ms_per_pass", lambda r: r.get("interp_ms_per_pass")),
    ("compiled_ms_per_pass", lambda r: r.get("compiled_ms_per_pass")),
    ("decode_cache.memo_ms_per_pass",
     lambda r: r.get("decode_cache", {}).get("memo_ms_per_pass")),
    ("decode_cache.ref_ms_per_pass",
     lambda r: r.get("decode_cache", {}).get("ref_ms_per_pass")),
    # The shared-fitness strategy's mean distance from the known maximin
    # equilibrium: drifting upward means the competitive sharing rule is
    # losing its convergence guarantee on the provable substrate.
    ("maximin.shared_equilibrium_error",
     lambda r: r.get("maximin", {}).get("shared_equilibrium_error")),
    # The --huge tier (20k × 100): ms/solve for both LP paths, ms/pass
    # for both decoders, and the sparse pivot count. Pivot-count creep
    # is the earliest symptom of a pricing-rule regression — it shows
    # up before wall-clock on a fast machine. These are warn-only until
    # the first baseline containing a huge block lands.
    ("huge.lp.dense_ms_per_solve",
     lambda r: r.get("huge", {}).get("lp", {}).get("dense_ms_per_solve")),
    ("huge.lp.sparse_ms_per_solve",
     lambda r: r.get("huge", {}).get("lp", {}).get("sparse_ms_per_solve")),
    ("huge.lp.sparse_pivots",
     lambda r: r.get("huge", {}).get("lp", {}).get("sparse_pivots")),
    ("huge.decode.scalar_ms_per_pass",
     lambda r: r.get("huge", {}).get("decode", {}).get("scalar_ms_per_pass")),
    ("huge.decode.batched_ms_per_pass",
     lambda r: r.get("huge", {}).get("decode", {}).get("batched_ms_per_pass")),
    # The surrogate gate's whole point is ms/generation; track both arms
    # so a slowdown in the gated path is caught even when the exact path
    # drifts with it.
    ("surrogate.off_ms_per_gen",
     lambda r: r.get("surrogate", {}).get("off_ms_per_gen")),
    ("surrogate.on_ms_per_gen",
     lambda r: r.get("surrogate", {}).get("on_ms_per_gen")),
]

# Higher is better: a drop beyond the threshold is the regression. The
# decode-cache hit rate is the lever behind memo_ms_per_pass — a change
# that silently stops hitting (key drift, eviction bug) can keep ms/pass
# acceptable on a small bench while destroying it at paper scale. The
# plain see-saw amplitude is the pathology suite's canary: if plain
# predator-prey scoring stops cycling on the bilinear substrate, the
# regression suite's "plain fails, shared/hof converge" contrast tests
# nothing.
TRACKED_HIGHER = [
    ("decode_cache.hit_rate",
     lambda r: r.get("decode_cache", {}).get("hit_rate")),
    ("maximin.plain_seesaw_amplitude",
     lambda r: r.get("maximin", {}).get("plain_seesaw_amplitude")),
    # How many exact lower-level evaluations the gate saves per cell
    # screened; falling back toward 1.0 means the screen has stopped
    # skipping anything and the gated path is pure overhead.
    ("surrogate.exact_eval_reduction",
     lambda r: r.get("surrogate", {}).get("exact_eval_reduction")),
]


def absolute_checks(current) -> bool:
    """Baseline-free invariants of the current report. Returns True when
    every present metric satisfies its bound (absent metrics only warn —
    older reports predate the maximin block)."""
    ok = True
    amplitude = current.get("maximin", {}).get("plain_seesaw_amplitude")
    if amplitude is None:
        print("::warning::maximin.plain_seesaw_amplitude missing; skipped")
    elif amplitude <= 0:
        print(f"maximin.plain_seesaw_amplitude = {amplitude}: plain "
              "scoring must keep a strictly positive see-saw amplitude "
              "on the bilinear substrate FAILED")
        ok = False
    else:
        print(f"maximin.plain_seesaw_amplitude = {amplitude:.4f} > 0 ok")

    huge = current.get("huge")
    if huge is None:
        print("::warning::huge block missing; skipped")
    else:
        # The bench binary asserts this in-process too; re-checking here
        # catches a stale or hand-edited report.
        speedups = [huge.get("lp", {}).get("speedup"),
                    huge.get("decode", {}).get("speedup")]
        speedups = [s for s in speedups if s is not None]
        best = max(speedups, default=0.0)
        if best < 3.0:
            print(f"huge: best speedup {best:.2f}x < 3x floor "
                  "(sparse LP or batched decode must carry it) FAILED")
            ok = False
        else:
            print(f"huge: best speedup {best:.2f}x >= 3x ok")

    surrogate = current.get("surrogate")
    if surrogate is None:
        print("::warning::surrogate block missing; skipped")
    else:
        reduction = surrogate.get("exact_eval_reduction", 0.0)
        if reduction < 2.0:
            print(f"surrogate.exact_eval_reduction = {reduction:.2f} < 2x "
                  "floor (the gate must at least halve exact evals) FAILED")
            ok = False
        else:
            print(f"surrogate.exact_eval_reduction = {reduction:.2f}x >= 2x ok")
        # Quality guard: the Mann–Whitney comparison of final gaps may
        # not show a *significant degradation*. A significant improvement
        # (gap_delta <= 0) or an insignificant shift both pass.
        p, delta = surrogate.get("mw_p", 1.0), surrogate.get("gap_delta", 0.0)
        if p < 0.05 and delta > 0:
            print(f"surrogate: gap degraded by {delta:.4f} with MW "
                  f"p = {p:.4f} < 0.05 FAILED")
            ok = False
        else:
            print(f"surrogate: gap delta {delta:+.4f}, MW p = {p:.4f} ok")

    eviction = current.get("eviction")
    if eviction is None:
        print("::warning::eviction block missing; skipped")
    else:
        for layer in ("solve", "decode"):
            delta = eviction.get(layer, {}).get("delta")
            if delta is None:
                print(f"::warning::eviction.{layer}.delta missing; skipped")
            elif delta < 0:
                print(f"eviction.{layer}.delta = {delta:.4f}: clock must "
                      "not lose to FIFO on the hot/cold workload FAILED")
                ok = False
            else:
                print(f"eviction.{layer}.delta = {delta:+.4f} >= 0 ok")
    return ok


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    threshold = 0.15
    if "--threshold" in sys.argv:
        threshold = float(sys.argv[sys.argv.index("--threshold") + 1])
    if len(args) < 2:
        print(__doc__.strip())
        return 2
    baseline_path, current_path = args[0], args[1]

    try:
        with open(current_path) as f:
            current = json.load(f)
    except (OSError, ValueError) as e:
        print(f"current bench report {current_path} unreadable: {e}")
        return 1

    # Absolute invariants gate even without a baseline.
    absolute_ok = absolute_checks(current)

    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except (OSError, ValueError) as e:
        print(f"::warning::no usable bench baseline at {baseline_path} ({e}); "
              "skipping relative regression gate")
        return 0 if absolute_ok else 1

    if baseline.get("reduced") != current.get("reduced") or \
            baseline.get("instance_class") != current.get("instance_class"):
        print("::warning::baseline and current reports measure different "
              "workloads; skipping relative regression gate")
        return 0 if absolute_ok else 1

    failed = not absolute_ok
    for name, get in TRACKED:
        base, cur = get(baseline), get(current)
        if base is None or cur is None or base <= 0:
            print(f"::warning::metric {name} missing from a report; skipped")
            continue
        change = (cur - base) / base
        status = "REGRESSION" if change > threshold else "ok"
        print(f"{name}: {base:.4f} -> {cur:.4f} "
              f"({change:+.1%}, limit +{threshold:.0%}) {status}")
        if change > threshold:
            failed = True

    for name, get in TRACKED_HIGHER:
        base, cur = get(baseline), get(current)
        if base is None or cur is None or base <= 0:
            print(f"::warning::metric {name} missing from a report; skipped")
            continue
        change = (cur - base) / base
        status = "REGRESSION" if change < -threshold else "ok"
        print(f"{name}: {base:.4f} -> {cur:.4f} "
              f"({change:+.1%}, limit -{threshold:.0%}) {status}")
        if change < -threshold:
            failed = True

    if failed:
        print(f"bench regression gate FAILED (>{threshold:.0%} slower than "
              "the previous push)")
        return 1
    print("bench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
