//! The greedy covering heuristic — the phenotype CARBON evolves.
//!
//! §IV.B: *"According to this scoring function, the CSC adds each bundle
//! inside his basket until all service requirements are satisfied."*
//! The scoring function is pluggable (a [`Scorer`]); a redundancy-
//! elimination pass then drops bundles that are no longer needed, a
//! standard strengthening for greedy covering.

use crate::instance::BcpopInstance;
use crate::relaxation::Relaxation;
use crate::scoring::{BatchScorer, BundleFeatures, FeatureColumns, Scorer};

/// Fixed chunk width for the batched decoder's residual kernels. Eight
/// i64 lanes fill two 256-bit vector registers; the loops below are
/// shaped (independent lanes, no cross-lane reduction inside the body)
/// so LLVM can keep them branch-free. All lane arithmetic is exact
/// integer math, so the regrouping is bit-identical to a scalar sweep.
const LANES: usize = 8;

/// Residual coverage of one bundle: `Σ_k min(q_jk, max(r_k, 0))` over
/// the parallel coverage/residual columns, accumulated in eight
/// independent lanes with a scalar tail. Integer addition is
/// associative, so the lane regrouping returns the exact scalar sum.
#[inline]
fn residual_coverage(cov: &[u32], residual: &[i64]) -> i64 {
    let n = cov.len().min(residual.len());
    let head = n - n % LANES;
    let mut acc = [0i64; LANES];
    for (qc, rc) in cov[..head].chunks_exact(LANES).zip(residual[..head].chunks_exact(LANES)) {
        for l in 0..LANES {
            acc[l] += (qc[l] as i64).min(rc[l].max(0));
        }
    }
    let mut total: i64 = acc.iter().sum();
    for (&q, &r) in cov[head..n].iter().zip(&residual[head..n]) {
        total += (q as i64).min(r.max(0));
    }
    total
}

/// Result of one greedy pass.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverOutcome {
    /// Selection indicator per bundle.
    pub chosen: Vec<bool>,
    /// Total cost of the selection (`A(x)` in Eq. 1).
    pub cost: f64,
    /// `true` iff every requirement is covered.
    pub feasible: bool,
    /// Number of greedy iterations performed.
    pub steps: usize,
}

/// Run the scored greedy: repeatedly buy the lowest-scoring candidate
/// bundle with positive residual coverage until all requirements are met
/// (or no candidate can make progress — impossible on a validated
/// instance, but reported as `feasible: false` defensively).
///
/// `relax` supplies the LP terminals (`d_k`, `x̄_j`); pass `None` to run
/// without them (the `ablation_terminals` configuration).
///
/// ```
/// use bico_bcpop::{generate, greedy_cover, CostPerCoverageScorer, GeneratorConfig};
///
/// let inst = generate(&GeneratorConfig::paper_class(100, 5), 3);
/// let costs = inst.costs_for(&vec![25.0; inst.num_own()]);
/// let out = greedy_cover(&inst, &costs, &mut CostPerCoverageScorer, None);
/// assert!(out.feasible);
/// assert!(inst.is_covering(&out.chosen));
/// ```
#[allow(clippy::needless_range_loop)] // several parallel arrays per index
pub fn greedy_cover<S: Scorer>(
    inst: &BcpopInstance,
    costs: &[f64],
    scorer: &mut S,
    relax: Option<&Relaxation>,
) -> CoverOutcome {
    let m = inst.num_bundles();
    let n = inst.num_services();
    debug_assert_eq!(costs.len(), m);

    let mut residual: Vec<i64> = inst.requirements().iter().map(|&v| v as i64).collect();
    let mut chosen = vec![false; m];
    let mut steps = 0usize;
    // Services still unsatisfied — replaces the per-step
    // `residual.iter().any(..)` full scan; updated on purchase.
    let mut uncovered = residual.iter().filter(|&&r| r > 0).count();

    // The LP terminals never change within a pass: hoist the
    // `relax.is_some()` branch out of the inner loop by materializing the
    // dual-weighted coverage column once (same k-order accumulation as
    // `bundle_features`, so values are bit-identical).
    let dual_col: Option<Vec<f64>> = relax.map(|r| {
        (0..m)
            .map(|j| {
                let mut d = 0.0f64;
                for (k, &qjk) in inst.bundle_coverage(j).iter().enumerate() {
                    d += r.duals[k] * qjk as f64;
                }
                d
            })
            .collect()
    });

    while uncovered > 0 {
        // Residual demand is bundle-independent: once per step, not per
        // candidate (identical accumulation order → identical bits).
        let mut resid_dem = 0.0f64;
        for &rem in &residual {
            resid_dem += rem.max(0) as f64;
        }
        let mut best: Option<(usize, f64)> = None;
        for j in 0..m {
            if chosen[j] {
                continue;
            }
            let mut resid_cov = 0.0f64;
            for (&qjk, &rem) in inst.bundle_coverage(j).iter().zip(residual.iter()) {
                resid_cov += (qjk as f64).min(rem.max(0) as f64);
            }
            if resid_cov <= 0.0 {
                continue; // useless bundle at this state
            }
            let feats = BundleFeatures {
                cost: costs[j],
                total_coverage: inst.total_coverage(j) as f64,
                residual_coverage: resid_cov,
                residual_demand: resid_dem,
                dual_coverage: dual_col.as_ref().map_or(0.0, |d| d[j]),
                xbar: relax.map_or(0.0, |r| r.xbar[j]),
            };
            let s = scorer.score(&feats);
            let better = match best {
                None => true,
                // total_cmp keeps the ordering total even for NaN scores.
                Some((_, bs)) => s.total_cmp(&bs) == std::cmp::Ordering::Less,
            };
            if better {
                best = Some((j, s));
            }
        }
        let Some((j, _)) = best else {
            // No bundle can reduce any residual requirement.
            return CoverOutcome {
                cost: selection_cost(costs, &chosen),
                chosen,
                feasible: false,
                steps,
            };
        };
        chosen[j] = true;
        for k in 0..n {
            let old = residual[k];
            residual[k] = old - inst.coverage(j, k) as i64;
            if old > 0 && residual[k] <= 0 {
                uncovered -= 1;
            }
        }
        steps += 1;
    }

    eliminate_redundancy(inst, costs, &mut chosen);
    CoverOutcome { cost: selection_cost(costs, &chosen), chosen, feasible: true, steps }
}

/// The incremental + batched greedy decoder — the compiled fast path.
///
/// Produces a [`CoverOutcome`] bit-identical to [`greedy_cover`] with the
/// scalar version of the same scorer, but restructures the work:
///
/// * static feature columns (cost, total coverage, dual-weighted
///   coverage, x̄) are computed once per pass, not per candidate per step;
/// * per-bundle residual coverage and the scalar residual demand are
///   maintained *incrementally* as integers: buying bundle `j` walks the
///   instance's service→bundles inverted index
///   ([`BcpopInstance::covering_bundles`]) and only touches bundles that
///   share a service with `j`;
/// * the candidate list is *retained*, not rebuilt: bundles only ever
///   leave the set (a purchase is permanent and residual coverage is
///   monotonically non-increasing), so each step prunes the surviving
///   list in place instead of re-scanning all `m` bundles;
/// * each step's surviving candidates are scored as one batch through
///   [`BatchScorer`] (a single bytecode sweep for
///   [`crate::CompiledGpScorer`]).
///
/// Bit-identity holds because every feature is an exactly-representable
/// small integer (or a statically precomputed column with the reference
/// accumulation order), the candidate list preserves ascending bundle
/// order, and the arg-min keeps the reference first-strictly-less rule.
#[allow(clippy::needless_range_loop)] // several parallel arrays per index
pub fn greedy_cover_batched<S: BatchScorer>(
    inst: &BcpopInstance,
    costs: &[f64],
    scorer: &mut S,
    relax: Option<&Relaxation>,
) -> CoverOutcome {
    let m = inst.num_bundles();
    debug_assert_eq!(costs.len(), m);

    let mut residual: Vec<i64> = inst.requirements().iter().map(|&v| v as i64).collect();
    let mut chosen = vec![false; m];
    let mut steps = 0usize;
    let mut uncovered = residual.iter().filter(|&&r| r > 0).count();

    // Static columns, once per pass.
    let total_col: Vec<f64> = (0..m).map(|j| inst.total_coverage(j) as f64).collect();
    let dual_col: Option<Vec<f64>> = relax.map(|r| {
        (0..m)
            .map(|j| {
                let mut d = 0.0f64;
                for (k, &qjk) in inst.bundle_coverage(j).iter().enumerate() {
                    d += r.duals[k] * qjk as f64;
                }
                d
            })
            .collect()
    });

    // Incrementally maintained state. All quantities are sums of small
    // non-negative integers, so the i64 mirrors convert to f64 exactly —
    // bit-identical to the reference f64 accumulations.
    let mut resid_cov: Vec<i64> =
        (0..m).map(|j| residual_coverage(inst.bundle_coverage(j), &residual)).collect();
    let mut resid_dem: i64 = residual.iter().map(|&r| r.max(0)).sum();

    // Retained candidate list, in ascending bundle order (the reference
    // scan order). Candidates only ever *leave* the set: a purchase is
    // permanent, and `resid_cov` is monotonically non-increasing because
    // residual requirements only shrink — a bundle that stops covering
    // anything can never start again. Pruning in place therefore yields
    // exactly the survivor set a full `0..m` re-scan would, in the same
    // order, without touching long-dead bundles every step.
    let mut candidates: Vec<u32> =
        (0..m as u32).filter(|&j| resid_cov[j as usize] > 0).collect();
    let mut cols = FeatureColumns::with_capacity(m);
    let mut scores: Vec<f64> = Vec::with_capacity(m);

    while uncovered > 0 {
        // Prune candidates invalidated by the previous purchase, then
        // gather the survivors' feature rows.
        candidates.retain(|&j| !chosen[j as usize] && resid_cov[j as usize] > 0);
        cols.clear();
        let resid_dem_f = resid_dem as f64;
        for &cj in &candidates {
            let j = cj as usize;
            cols.cost.push(costs[j]);
            cols.total_coverage.push(total_col[j]);
            cols.residual_coverage.push(resid_cov[j] as f64);
            cols.residual_demand.push(resid_dem_f);
            cols.dual_coverage.push(dual_col.as_ref().map_or(0.0, |d| d[j]));
            cols.xbar.push(relax.map_or(0.0, |r| r.xbar[j]));
        }
        if candidates.is_empty() {
            // No bundle can reduce any residual requirement.
            return CoverOutcome {
                cost: selection_cost(costs, &chosen),
                chosen,
                feasible: false,
                steps,
            };
        }
        scorer.score_batch(&cols, candidates.len(), &mut scores);
        // First strictly-smaller score wins — same tiebreak as the
        // reference (candidates are in ascending bundle order).
        let mut best = 0usize;
        for i in 1..scores.len() {
            if scores[i].total_cmp(&scores[best]) == std::cmp::Ordering::Less {
                best = i;
            }
        }
        let j = candidates[best] as usize;
        chosen[j] = true;
        steps += 1;

        // Buy bundle j: update residuals and propagate the change to the
        // residual coverage of exactly the bundles sharing a dirtied
        // service, via the inverted index.
        for (k, &qjk) in inst.bundle_coverage(j).iter().enumerate() {
            if qjk == 0 {
                continue;
            }
            let old = residual[k];
            let new = old - qjk as i64;
            residual[k] = new;
            let old_c = old.max(0);
            let new_c = new.max(0);
            if old_c == new_c {
                continue; // service was already satisfied
            }
            resid_dem -= old_c - new_c;
            if new <= 0 {
                uncovered -= 1; // old_c > new_c implies old > 0
            }
            // Inverted-index propagation, split into a chunked
            // delta-compute pass (contiguous CSR pairs, vectorizable
            // clamped min) and a scatter pass. Each bundle appears at
            // most once per service row and the deltas are exact i64s,
            // so the split is bit-identical to the fused scalar loop.
            let touching = inst.covering_bundles(k);
            let head = touching.len() - touching.len() % LANES;
            let mut delta = [0i64; LANES];
            for chunk in touching[..head].chunks_exact(LANES) {
                for l in 0..LANES {
                    let u = chunk[l].1 as i64;
                    delta[l] = u.min(new_c) - u.min(old_c);
                }
                for l in 0..LANES {
                    resid_cov[chunk[l].0 as usize] += delta[l];
                }
            }
            for &(jj, units) in &touching[head..] {
                let u = units as i64;
                resid_cov[jj as usize] += u.min(new_c) - u.min(old_c);
            }
        }
    }

    eliminate_redundancy(inst, costs, &mut chosen);
    CoverOutcome { cost: selection_cost(costs, &chosen), chosen, feasible: true, steps }
}

/// Drop selected bundles, most expensive first, whenever removal keeps
/// the selection covering.
#[allow(clippy::needless_range_loop)]
fn eliminate_redundancy(inst: &BcpopInstance, costs: &[f64], chosen: &mut [bool]) {
    let n = inst.num_services();
    // Current slack per service: coverage − requirement (≥ 0 on entry).
    let mut slack: Vec<i64> = vec![0; n];
    for k in 0..n {
        let covered: i64 = (0..inst.num_bundles())
            .filter(|&j| chosen[j])
            .map(|j| inst.coverage(j, k) as i64)
            .sum();
        slack[k] = covered - inst.requirement(k) as i64;
    }
    let mut selected: Vec<usize> = (0..inst.num_bundles()).filter(|&j| chosen[j]).collect();
    selected.sort_by(|&a, &b| costs[b].total_cmp(&costs[a])); // expensive first
    for j in selected {
        let removable = (0..n).all(|k| slack[k] >= inst.coverage(j, k) as i64);
        if removable {
            chosen[j] = false;
            for k in 0..n {
                slack[k] -= inst.coverage(j, k) as i64;
            }
        }
    }
}

fn selection_cost(costs: &[f64], chosen: &[bool]) -> f64 {
    chosen.iter().zip(costs).filter(|(&c, _)| c).map(|(_, &v)| v).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::test_fixtures::tiny;
    use crate::scoring::{CostPerCoverageScorer, CostScorer};
    use crate::{generate, GeneratorConfig, RelaxationSolver};

    #[test]
    fn tiny_greedy_covers() {
        let inst = tiny();
        let costs = inst.costs_for(&[1.5, 2.5]);
        let out = greedy_cover(&inst, &costs, &mut CostPerCoverageScorer, None);
        assert!(out.feasible);
        assert!(inst.is_covering(&out.chosen));
        // Optimal here: own bundles (1.5 + 2.5 = 4.0).
        assert!((out.cost - 4.0).abs() < 1e-9);
    }

    #[test]
    fn cheap_scorer_picks_cheapest_usable() {
        let inst = tiny();
        // Make own bundles free: cost scorer buys both first.
        let costs = inst.costs_for(&[0.0, 0.0]);
        let out = greedy_cover(&inst, &costs, &mut CostScorer, None);
        assert!(out.feasible);
        assert_eq!(out.cost, 0.0);
        assert!(out.chosen[0] && out.chosen[1]);
    }

    #[test]
    fn redundancy_elimination_removes_useless_purchases() {
        // Force a wasteful first pick, then check it gets eliminated:
        // a scorer that loves bundle 2 (covers (1,1), cost 4) first, but
        // after bundles 0 and 1 are bought, bundle 2 is redundant.
        struct Weird(usize);
        impl Scorer for Weird {
            fn score(&mut self, f: &BundleFeatures) -> f64 {
                self.0 += 1;
                if self.0 <= 4 {
                    // First greedy step: prefer high total coverage (bundle 2/3).
                    -f.total_coverage * 10.0 - f.cost
                } else {
                    f.cost
                }
            }
        }
        use crate::scoring::BundleFeatures;
        let inst = tiny();
        let costs = inst.costs_for(&[0.5, 0.5]);
        let out = greedy_cover(&inst, &costs, &mut Weird(0), None);
        assert!(out.feasible);
        assert!(inst.is_covering(&out.chosen));
        // The expensive competitor bundle must have been eliminated.
        assert!(!out.chosen[2] || !out.chosen[3] || out.cost <= 4.0);
    }

    #[test]
    fn greedy_on_generated_instances_is_feasible_and_above_lp() {
        for seed in 0..5 {
            let inst = generate(&GeneratorConfig::paper_class(100, 10), seed);
            let prices = vec![30.0; inst.num_own()];
            let costs = inst.costs_for(&prices);
            let relax = RelaxationSolver::new(&inst).solve(&costs).unwrap();
            let out = greedy_cover(&inst, &costs, &mut CostPerCoverageScorer, Some(&relax));
            assert!(out.feasible, "greedy failed on seed {seed}");
            assert!(inst.is_covering(&out.chosen));
            assert!(
                out.cost >= relax.lower_bound - 1e-6,
                "greedy cost {} below LP bound {}",
                out.cost,
                relax.lower_bound
            );
        }
    }

    #[test]
    fn steps_bounded_by_bundles() {
        let inst = generate(&GeneratorConfig::paper_class(100, 5), 1);
        let costs = inst.costs_for(&vec![10.0; inst.num_own()]);
        let out = greedy_cover(&inst, &costs, &mut CostPerCoverageScorer, None);
        assert!(out.steps <= inst.num_bundles());
    }

    /// Assert two outcomes are bit-identical (cost compared by bits, not
    /// tolerance).
    fn assert_outcome_bits(a: &CoverOutcome, b: &CoverOutcome, ctx: &str) {
        assert_eq!(a.chosen, b.chosen, "{ctx}: chosen sets differ");
        assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "{ctx}: cost bits differ");
        assert_eq!(a.feasible, b.feasible, "{ctx}: feasibility differs");
        assert_eq!(a.steps, b.steps, "{ctx}: step counts differ");
    }

    #[test]
    fn batched_matches_reference_for_handcrafted_scorers() {
        for seed in 0..4 {
            for &(n, m) in &[(100usize, 5usize), (250, 10)] {
                let inst = generate(&GeneratorConfig::paper_class(n, m), seed);
                let costs = inst.costs_for(&vec![20.0; inst.num_own()]);
                let relax = RelaxationSolver::new(&inst).solve(&costs).unwrap();
                for use_relax in [false, true] {
                    let r = use_relax.then_some(&relax);
                    let a = greedy_cover(&inst, &costs, &mut CostPerCoverageScorer, r);
                    let b = greedy_cover_batched(&inst, &costs, &mut CostPerCoverageScorer, r);
                    assert_outcome_bits(&a, &b, &format!("cpc seed {seed} {n}x{m}"));
                    let mut ws =
                        crate::scoring::WeightScorer::new([1.0, -0.5, -2.0, 0.25, -1.0, 3.0]);
                    let a = greedy_cover(&inst, &costs, &mut ws.clone(), r);
                    let b = greedy_cover_batched(&inst, &costs, &mut ws, r);
                    assert_outcome_bits(&a, &b, &format!("weights seed {seed} {n}x{m}"));
                }
            }
        }
    }

    #[test]
    fn compiled_gp_matches_interpreted_gp_bitwise() {
        use crate::scoring::{bcpop_primitives, CompiledGpScorer, GpScorer};
        use bico_gp::grow;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let ps = bcpop_primitives();
        for seed in 0..6u64 {
            for &(n, m) in &[(100usize, 5usize), (250, 10)] {
                let inst = generate(&GeneratorConfig::paper_class(n, m), seed);
                let costs = inst.costs_for(&vec![15.0 + seed as f64; inst.num_own()]);
                let relax = RelaxationSolver::new(&inst).solve(&costs).unwrap();
                let mut rng = SmallRng::seed_from_u64(seed * 1000 + n as u64);
                let expr = grow(&ps, 1, 5, &mut rng).unwrap();
                for use_relax in [false, true] {
                    let r = use_relax.then_some(&relax);
                    let mut interp = GpScorer::new(&expr, &ps);
                    let a = greedy_cover(&inst, &costs, &mut interp, r);
                    let mut compiled = CompiledGpScorer::new(&expr, &ps).unwrap();
                    let b = greedy_cover_batched(&inst, &costs, &mut compiled, r);
                    assert_outcome_bits(
                        &a,
                        &b,
                        &format!("gp seed {seed} {n}x{m} relax={use_relax}"),
                    );
                    // nodes_evaluated accounting is preserved under
                    // batching: same candidates scored, same tree size.
                    assert_eq!(
                        interp.nodes_evaluated(),
                        compiled.nodes_evaluated(),
                        "node accounting diverged (seed {seed} {n}x{m})"
                    );
                }
            }
        }
    }

    #[test]
    fn retained_candidates_preserve_stateful_score_sequence() {
        // The blanket BatchScorer impl feeds a scalar scorer row by row,
        // so a stateful scorer observes the exact candidate sequence. If
        // the retained list ever diverged from the reference full-scan
        // survivor set (extra, missing, or reordered candidates), the
        // state counters would desynchronize and the outcomes differ.
        #[derive(Clone)]
        struct Stateful(u64);
        impl Scorer for Stateful {
            fn score(&mut self, f: &BundleFeatures) -> f64 {
                self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
                let jitter = (self.0 >> 33) as f64 / 2e9;
                f.cost / f.residual_coverage + jitter
            }
        }
        use crate::scoring::BundleFeatures;
        for seed in 0..4 {
            for &(n, m) in &[(100usize, 5usize), (250, 10)] {
                let inst = generate(&GeneratorConfig::paper_class(n, m), seed);
                let costs = inst.costs_for(&vec![12.0; inst.num_own()]);
                let a = greedy_cover(&inst, &costs, &mut Stateful(seed), None);
                let b = greedy_cover_batched(&inst, &costs, &mut Stateful(seed), None);
                assert_outcome_bits(&a, &b, &format!("stateful seed {seed} {n}x{m}"));
            }
        }
    }

    #[test]
    fn batched_agrees_with_reference_under_nan_scores() {
        // total_cmp tiebreaking must match between the scalar arg-min and
        // the batched arg-min even when every score is NaN.
        struct NanScorer;
        impl Scorer for NanScorer {
            fn score(&mut self, _f: &BundleFeatures) -> f64 {
                f64::NAN
            }
        }
        use crate::scoring::BundleFeatures;
        let inst = tiny();
        let costs = inst.costs_for(&[1.0, 1.0]);
        let a = greedy_cover(&inst, &costs, &mut NanScorer, None);
        let b = greedy_cover_batched(&inst, &costs, &mut NanScorer, None);
        assert_outcome_bits(&a, &b, "nan scorer");
    }

    #[test]
    fn nan_scores_do_not_poison_selection() {
        struct NanScorer;
        impl Scorer for NanScorer {
            fn score(&mut self, _f: &crate::scoring::BundleFeatures) -> f64 {
                f64::NAN
            }
        }
        let inst = tiny();
        let costs = inst.costs_for(&[1.0, 1.0]);
        let out = greedy_cover(&inst, &costs, &mut NanScorer, None);
        // total_cmp gives NaN a fixed order; greedy still terminates
        // feasibly.
        assert!(out.feasible);
        assert!(inst.is_covering(&out.chosen));
    }
}
