//! Determinism contract: the same seed yields bit-identical results
//! regardless of the rayon thread count (per-item seed streams, pure
//! fitness functions, order-preserving parallel collection) — and
//! regardless of attached observers, which receive events by shared
//! reference and never touch RNG state.

use bico::bcpop::{generate, GeneratorConfig};
use bico::cobra::{Cobra, CobraConfig};
use bico::core::{Carbon, CarbonConfig};
use bico::obs::{JsonlSink, MetricsSink, Observers, TraceSink};
use std::sync::Arc;

/// A full sink stack (JSONL to the bit bucket, metrics, trace rebuild)
/// plus the handles needed to inspect it after the run.
fn full_stack() -> (Observers, Arc<MetricsSink>, Arc<TraceSink>) {
    let metrics = Arc::new(MetricsSink::new());
    let trace = Arc::new(TraceSink::new());
    let observers = Observers::new()
        .with(Box::new(JsonlSink::new(std::io::sink())))
        .with(Box::new(metrics.clone()))
        .with(Box::new(trace.clone()));
    (observers, metrics, trace)
}

fn with_threads<T: Send>(n: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new().num_threads(n).build().expect("pool").install(f)
}

#[test]
fn carbon_is_thread_count_invariant() {
    let inst = generate(
        &GeneratorConfig { num_bundles: 40, num_services: 5, ..Default::default() },
        77,
    );
    let cfg = CarbonConfig {
        ul_pop_size: 12,
        ll_pop_size: 12,
        ul_archive_size: 12,
        ll_archive_size: 12,
        ul_evaluations: 240,
        ll_evaluations: 240,
        ..Default::default()
    };
    let r1 = with_threads(1, || Carbon::new(&inst, cfg.clone()).run(9));
    let r4 = with_threads(4, || Carbon::new(&inst, cfg.clone()).run(9));
    assert_eq!(r1.best_pricing, r4.best_pricing);
    assert_eq!(r1.best_ul_value, r4.best_ul_value);
    assert_eq!(r1.best_gap, r4.best_gap);
    assert_eq!(r1.best_heuristic, r4.best_heuristic);
    assert_eq!(r1.trace.points(), r4.trace.points());
}

#[test]
fn cobra_is_thread_count_invariant() {
    let inst = generate(
        &GeneratorConfig { num_bundles: 40, num_services: 5, ..Default::default() },
        78,
    );
    let cfg = CobraConfig {
        ul_pop_size: 12,
        ll_pop_size: 12,
        ul_archive_size: 12,
        ll_archive_size: 12,
        ul_evaluations: 240,
        ll_evaluations: 240,
        improvement_gens: 3,
        ..Default::default()
    };
    let r1 = with_threads(1, || Cobra::new(&inst, cfg.clone()).run(9));
    let r4 = with_threads(4, || Cobra::new(&inst, cfg.clone()).run(9));
    assert_eq!(r1.best_pricing, r4.best_pricing);
    assert_eq!(r1.best_gap, r4.best_gap);
    assert_eq!(r1.trace.points(), r4.trace.points());
}

#[test]
fn carbon_observers_do_not_change_results() {
    let inst = generate(
        &GeneratorConfig { num_bundles: 40, num_services: 5, ..Default::default() },
        77,
    );
    let cfg = CarbonConfig {
        ul_pop_size: 12,
        ll_pop_size: 12,
        ul_archive_size: 12,
        ll_archive_size: 12,
        ul_evaluations: 240,
        ll_evaluations: 240,
        ..Default::default()
    };
    let plain = Carbon::new(&inst, cfg.clone()).run(9);
    let (observers, metrics, trace) = full_stack();
    let observed = Carbon::new(&inst, cfg).run_observed(9, &observers);
    assert_eq!(plain.best_pricing, observed.best_pricing);
    assert_eq!(plain.best_ul_value, observed.best_ul_value);
    assert_eq!(plain.best_gap, observed.best_gap);
    assert_eq!(plain.best_heuristic, observed.best_heuristic);
    assert_eq!(plain.trace.points(), observed.trace.points());
    // The trace rebuilt from GenerationEnd events matches the solver's.
    assert_eq!(trace.snapshot().points(), observed.trace.points());
    // Metrics actually saw the run.
    let report = metrics.report();
    assert_eq!(report.runs, 1);
    assert!(report.generations > 0);
    assert!(report.evaluations > 0);
    assert!(report.ll_solves > 0);
    assert!(report.simplex_pivots > 0);
    assert!(report.gp_node_evals > 0);
}

#[test]
fn cobra_observers_do_not_change_results() {
    let inst = generate(
        &GeneratorConfig { num_bundles: 40, num_services: 5, ..Default::default() },
        78,
    );
    let cfg = CobraConfig {
        ul_pop_size: 12,
        ll_pop_size: 12,
        ul_archive_size: 12,
        ll_archive_size: 12,
        ul_evaluations: 240,
        ll_evaluations: 240,
        improvement_gens: 3,
        ..Default::default()
    };
    let plain = Cobra::new(&inst, cfg.clone()).run(9);
    let (observers, metrics, trace) = full_stack();
    let observed = Cobra::new(&inst, cfg).run_observed(9, &observers);
    assert_eq!(plain.best_pricing, observed.best_pricing);
    assert_eq!(plain.best_ul_value, observed.best_ul_value);
    assert_eq!(plain.best_gap, observed.best_gap);
    assert_eq!(plain.trace.points(), observed.trace.points());
    assert_eq!(trace.snapshot().points(), observed.trace.points());
    let report = metrics.report();
    assert_eq!(report.runs, 1);
    assert!(report.generations > 0);
    assert!(report.evaluations > 0);
    assert!(report.ll_solves > 0);
    assert!(report.simplex_pivots > 0);
}
