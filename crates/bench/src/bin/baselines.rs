//! Extension table: all five algorithms head-to-head on one class —
//! CARBON, CARBON-W (linear predators), COBRA, CODBA, nested-sequential.
//!
//! The paper compares CARBON against COBRA only; this binary widens the
//! panel with the other strategies its related-work section discusses,
//! at the same evaluation budgets, reporting the mean/best %-gap, the
//! mean/best revenue, and the LL/UL evaluation ratio (how "nested" each
//! scheme really is — the paper's critique of CODBA made measurable).
//!
//! ```text
//! cargo run -p bico-bench --release --bin baselines [--class-arg handled via --classes? no: fixed 100x10] [--runs N] [--seed S] [--full|--smoke]
//! ```

use bico_bench::{class_instance, markdown_table, ExperimentOpts};
use bico_cobra::{Cobra, CobraConfig, Codba, CodbaConfig, NestedConfig, NestedSequential};
use bico_core::{Carbon, CarbonConfig, CarbonWeights};
use bico_ea::rng::seed_stream;
use bico_ea::stats::Summary;

struct Row {
    name: &'static str,
    gaps: Summary,
    uls: Summary,
    ll_per_ul: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = ExperimentOpts::from_args(&args);
    let class = (100, 10);
    let inst = class_instance(class, opts.seed);
    let (pop, evals) = opts.tier.scale();
    let runs = opts.runs();
    eprintln!(
        "baseline panel on {}x{}: {} runs, budget {evals}+{evals}, pop {pop}",
        class.0, class.1, runs
    );

    let mut rows: Vec<Row> = Vec::new();

    let mut collect = |name: &'static str, f: &dyn Fn(u64) -> (f64, f64, u64, u64)| {
        let mut gaps = Summary::new();
        let mut uls = Summary::new();
        let mut ll = 0u64;
        let mut ul = 0u64;
        for run in 0..runs as u64 {
            let (gap, rev, ll_e, ul_e) = f(seed_stream(opts.seed, 0x3000 + run));
            gaps.push(gap);
            uls.push(rev);
            ll += ll_e;
            ul += ul_e;
        }
        rows.push(Row { name, gaps, uls, ll_per_ul: ll as f64 / ul.max(1) as f64 });
        eprintln!("  {name} done");
    };

    let carbon_cfg = CarbonConfig {
        ul_pop_size: pop,
        ll_pop_size: pop,
        ul_archive_size: pop,
        ll_archive_size: pop,
        ul_evaluations: evals,
        ll_evaluations: evals,
        ..Default::default()
    };
    collect("CARBON (GP)", &|seed| {
        let r = Carbon::new(&inst, carbon_cfg.clone()).run(seed);
        (r.best_gap, r.best_ul_value, r.ll_evals_used, r.ul_evals_used)
    });
    collect("CARBON-W (linear)", &|seed| {
        let r = CarbonWeights::new(&inst, carbon_cfg.clone()).run(seed);
        (r.best_gap, r.best_ul_value, r.ll_evals_used, r.ul_evals_used)
    });

    let cobra_cfg = CobraConfig {
        ul_pop_size: pop,
        ll_pop_size: pop,
        ul_archive_size: pop,
        ll_archive_size: pop,
        ul_evaluations: evals,
        ll_evaluations: evals,
        ..Default::default()
    };
    collect("COBRA", &|seed| {
        let r = Cobra::new(&inst, cobra_cfg.clone()).run(seed);
        (r.best_gap, r.best_ul_value, r.ll_evals_used, r.ul_evals_used)
    });

    let codba_cfg = CodbaConfig {
        ul_pop_size: pop.min(20),
        ul_evaluations: evals / 8,
        sub_pop_size: 10,
        ll_evaluations: evals,
        ..Default::default()
    };
    collect("CODBA", &|seed| {
        let r = Codba::new(&inst, codba_cfg.clone()).run(seed);
        (r.best_gap, r.best_ul_value, r.ll_evals_used, r.ul_evals_used)
    });

    let nested_cfg = NestedConfig {
        ul_pop_size: pop.min(16),
        ul_evaluations: evals / 40,
        ll_pop_size: pop.min(16),
        ll_gens_per_eval: 6,
        ll_evaluations: evals,
        ..Default::default()
    };
    collect("nested (CST)", &|seed| {
        let r = NestedSequential::new(&inst, nested_cfg.clone()).run(seed);
        (r.best_gap, r.best_ul_value, r.ll_evals_used, r.ul_evals_used)
    });

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.2}", r.gaps.mean()),
                format!("{:.2}", r.gaps.min()),
                format!("{:.2}", r.uls.mean()),
                format!("{:.2}", r.uls.max()),
                format!("{:.1}", r.ll_per_ul),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "algorithm",
                "mean %-gap",
                "best %-gap",
                "mean UL",
                "best UL",
                "LL evals / UL eval"
            ],
            &table
        )
    );
}
