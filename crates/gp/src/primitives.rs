//! Operator and terminal registries (the paper's Table I "Operator set"
//! and "Terminal set").

/// The implementation of an operator: unary or binary `f64` function.
#[derive(Clone, Copy)]
pub enum OpFn {
    /// One-argument operator.
    Unary(fn(f64) -> f64),
    /// Two-argument operator.
    Binary(fn(f64, f64) -> f64),
}

impl OpFn {
    /// Number of arguments the operator consumes.
    pub fn arity(&self) -> usize {
        match self {
            OpFn::Unary(_) => 1,
            OpFn::Binary(_) => 2,
        }
    }
}

impl std::fmt::Debug for OpFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpFn::Unary(_) => write!(f, "Unary(..)"),
            OpFn::Binary(_) => write!(f, "Binary(..)"),
        }
    }
}

/// A named operator.
#[derive(Debug, Clone)]
pub struct Operator {
    /// Display name (used by the infix pretty-printer).
    pub name: String,
    /// Implementation.
    pub func: OpFn,
}

/// Threshold below which protected division / modulo treat the
/// denominator as zero (DEAP-style protection).
pub const PROTECT_EPS: f64 = 1e-9;

/// Plain addition. Named (rather than a closure) so the bytecode
/// compiler can recognize it by function address and emit a fused opcode.
#[inline]
pub(crate) fn add(a: f64, b: f64) -> f64 {
    a + b
}

/// Plain subtraction (see [`add`] for why this is a named function).
#[inline]
pub(crate) fn sub(a: f64, b: f64) -> f64 {
    a - b
}

/// Plain multiplication (see [`add`] for why this is a named function).
#[inline]
pub(crate) fn mul(a: f64, b: f64) -> f64 {
    a * b
}

/// Protected division: returns `1.0` when the denominator is ~0
/// (the paper's `%` operator, Table I).
#[inline]
pub fn protected_div(a: f64, b: f64) -> f64 {
    if b.abs() < PROTECT_EPS {
        1.0
    } else {
        a / b
    }
}

/// Protected modulo: returns `1.0` when the modulus is ~0
/// (the paper's `mod` operator, Table I). Uses the Euclidean remainder so
/// the result sign follows the modulus-free convention `a − b·⌊a/b⌋`.
#[inline]
pub fn protected_mod(a: f64, b: f64) -> f64 {
    if b.abs() < PROTECT_EPS {
        1.0
    } else {
        let r = a - b * (a / b).floor();
        if r.is_finite() {
            r
        } else {
            1.0
        }
    }
}

/// A registry of operators, named terminals, and (optionally) an
/// ephemeral-constant range for tree generation.
#[derive(Debug, Clone, Default)]
pub struct PrimitiveSet {
    ops: Vec<Operator>,
    terminals: Vec<String>,
    const_range: Option<(f64, f64)>,
}

impl PrimitiveSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The paper's Table I operator set: `+`, `-`, `*`, protected `%`,
    /// protected `mod`. Terminals are added by the caller.
    pub fn arithmetic() -> Self {
        let mut ps = Self::new();
        ps.add_binary("+", add);
        ps.add_binary("-", sub);
        ps.add_binary("*", mul);
        ps.add_binary("%", protected_div);
        ps.add_binary("mod", protected_mod);
        ps
    }

    /// Register a binary operator; returns its id.
    pub fn add_binary(&mut self, name: &str, f: fn(f64, f64) -> f64) -> usize {
        self.ops.push(Operator { name: name.to_string(), func: OpFn::Binary(f) });
        self.ops.len() - 1
    }

    /// Register a unary operator; returns its id.
    pub fn add_unary(&mut self, name: &str, f: fn(f64) -> f64) -> usize {
        self.ops.push(Operator { name: name.to_string(), func: OpFn::Unary(f) });
        self.ops.len() - 1
    }

    /// Register a named terminal; returns its id (the index into the
    /// terminal-value slice passed to [`crate::Evaluator::eval`]).
    pub fn add_terminal(&mut self, name: &str) -> usize {
        self.terminals.push(name.to_string());
        self.terminals.len() - 1
    }

    /// Enable ephemeral random constants drawn uniformly from `[lo, hi]`
    /// during tree generation.
    pub fn set_const_range(&mut self, lo: f64, hi: f64) {
        assert!(lo <= hi, "constant range must be ordered");
        self.const_range = Some((lo, hi));
    }

    /// Disable ephemeral constants.
    pub fn clear_const_range(&mut self) {
        self.const_range = None;
    }

    /// The configured ephemeral-constant range, if any.
    pub fn const_range(&self) -> Option<(f64, f64)> {
        self.const_range
    }

    /// Registered operators.
    pub fn ops(&self) -> &[Operator] {
        &self.ops
    }

    /// Registered terminal names.
    pub fn terminals(&self) -> &[String] {
        &self.terminals
    }

    /// Number of operators.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of terminals.
    pub fn num_terminals(&self) -> usize {
        self.terminals.len()
    }

    /// Arity of operator `id`.
    pub fn arity(&self, id: usize) -> usize {
        self.ops[id].func.arity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_set_matches_table_1() {
        let ps = PrimitiveSet::arithmetic();
        let names: Vec<&str> = ps.ops().iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["+", "-", "*", "%", "mod"]);
        assert!(ps.ops().iter().all(|o| o.func.arity() == 2));
    }

    #[test]
    fn protected_div_guards_zero() {
        assert_eq!(protected_div(5.0, 0.0), 1.0);
        assert_eq!(protected_div(5.0, 1e-12), 1.0);
        assert_eq!(protected_div(6.0, 3.0), 2.0);
        assert_eq!(protected_div(-6.0, 3.0), -2.0);
    }

    #[test]
    fn protected_mod_guards_zero_and_matches_floor_convention() {
        assert_eq!(protected_mod(5.0, 0.0), 1.0);
        assert_eq!(protected_mod(7.0, 3.0), 1.0);
        assert_eq!(protected_mod(-7.0, 3.0), 2.0); // floor convention
        assert_eq!(protected_mod(7.5, 2.0), 1.5);
    }

    #[test]
    fn protected_mod_never_returns_non_finite() {
        let vals = [0.0, 1.0, -1.0, 1e308, -1e308, 1e-300, f64::MAX];
        for &a in &vals {
            for &b in &vals {
                assert!(protected_mod(a, b).is_finite(), "mod({a}, {b}) not finite");
            }
        }
    }

    #[test]
    fn terminal_registration_order_is_index() {
        let mut ps = PrimitiveSet::new();
        assert_eq!(ps.add_terminal("a"), 0);
        assert_eq!(ps.add_terminal("b"), 1);
        assert_eq!(ps.terminals(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn const_range_roundtrip() {
        let mut ps = PrimitiveSet::new();
        assert_eq!(ps.const_range(), None);
        ps.set_const_range(-2.0, 3.0);
        assert_eq!(ps.const_range(), Some((-2.0, 3.0)));
        ps.clear_const_range();
        assert_eq!(ps.const_range(), None);
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn const_range_must_be_ordered() {
        let mut ps = PrimitiveSet::new();
        ps.set_const_range(3.0, -2.0);
    }

    #[test]
    fn unary_ops_supported() {
        let mut ps = PrimitiveSet::arithmetic();
        let id = ps.add_unary("neg", |a| -a);
        assert_eq!(ps.arity(id), 1);
    }
}
