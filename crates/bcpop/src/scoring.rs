//! Bundle scoring: the GP terminal binding (Table I) and handcrafted
//! baseline scorers.
//!
//! A scoring function maps a candidate bundle, in the current greedy
//! state, to a scalar score; the greedy buys the lowest-scored candidate
//! each step. Table I's terminals are `k`-indexed quantities
//! (`q_j^k`, `b^k`, `d_k`); a scalar scoring tree necessarily reduces
//! over `k`, so we expose the canonical reductions (documented in
//! DESIGN.md §2) as six scalar features per bundle.

use crate::instance::BcpopInstance;
use crate::relaxation::Relaxation;
use bico_gp::{CompiledEvaluator, CompiledProgram, Evaluator, Expr, PrimitiveSet, TreeError};
use std::sync::Arc;

/// Number of GP terminals bound by [`bcpop_primitives`].
pub const NUM_TERMINALS: usize = 6;

/// The per-bundle features visible to a scoring function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BundleFeatures {
    /// `c_j`: cost/price of the bundle under the current pricing.
    pub cost: f64,
    /// `Σ_k q_j^k`: total coverage of the bundle.
    pub total_coverage: f64,
    /// `Σ_k min(q_j^k, b̂^k)`: useful coverage against the *residual*
    /// requirements `b̂` of the current greedy state.
    pub residual_coverage: f64,
    /// `Σ_k b̂^k`: total remaining requirement.
    pub residual_demand: f64,
    /// `Σ_k d_k q_j^k`: LP-dual-weighted coverage (Table I's `d_k`).
    pub dual_coverage: f64,
    /// `x̄_j`: the bundle's value in the relaxed LP optimum.
    pub xbar: f64,
}

impl BundleFeatures {
    /// Order matches the terminal registration in [`bcpop_primitives`].
    #[inline]
    pub fn as_array(&self) -> [f64; NUM_TERMINALS] {
        [
            self.cost,
            self.total_coverage,
            self.residual_coverage,
            self.residual_demand,
            self.dual_coverage,
            self.xbar,
        ]
    }
}

/// Build the BCPOP primitive set: Table I operators
/// (`+ - * % mod`) and the six feature terminals, with small ephemeral
/// constants enabled.
///
/// Terminal order (= feature order): `c_j`, `q_j`, `q_res`, `b_res`,
/// `d_q_j`, `x_bar_j`.
pub fn bcpop_primitives() -> PrimitiveSet {
    let mut ps = PrimitiveSet::arithmetic();
    ps.add_terminal("c_j");
    ps.add_terminal("q_j");
    ps.add_terminal("q_res");
    ps.add_terminal("b_res");
    ps.add_terminal("d_q_j");
    ps.add_terminal("x_bar_j");
    ps.set_const_range(-1.0, 1.0);
    ps
}

/// A bundle-scoring strategy (the phenotype slot of CARBON's predator
/// population). Lower scores are bought first.
pub trait Scorer {
    /// Score one candidate bundle.
    fn score(&mut self, features: &BundleFeatures) -> f64;
}

impl<S: Scorer + ?Sized> Scorer for &mut S {
    fn score(&mut self, features: &BundleFeatures) -> f64 {
        (**self).score(features)
    }
}

/// Evolved scorer: a GP expression over the Table I terminals.
pub struct GpScorer<'a> {
    expr: &'a Expr,
    ps: &'a PrimitiveSet,
    evaluator: Evaluator,
}

impl<'a> GpScorer<'a> {
    /// Bind a GP expression (over [`bcpop_primitives`]) as a scorer.
    pub fn new(expr: &'a Expr, ps: &'a PrimitiveSet) -> Self {
        GpScorer { expr, ps, evaluator: Evaluator::new() }
    }

    /// Tree nodes visited by this scorer so far (observability counter;
    /// see [`Evaluator::nodes_evaluated`]).
    pub fn nodes_evaluated(&self) -> u64 {
        self.evaluator.nodes_evaluated()
    }
}

impl Scorer for GpScorer<'_> {
    fn score(&mut self, features: &BundleFeatures) -> f64 {
        self.evaluator.eval(self.expr, self.ps, &features.as_array())
    }
}

/// Baseline: buy the cheapest bundle first.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostScorer;

impl Scorer for CostScorer {
    fn score(&mut self, f: &BundleFeatures) -> f64 {
        f.cost
    }
}

/// Baseline: classic covering greedy — cost per unit of *useful*
/// coverage.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostPerCoverageScorer;

impl Scorer for CostPerCoverageScorer {
    fn score(&mut self, f: &BundleFeatures) -> f64 {
        if f.residual_coverage <= 0.0 {
            f64::INFINITY
        } else {
            f.cost / f.residual_coverage
        }
    }
}

/// Baseline: LP-guided greedy — reduced-cost-like score
/// `c_j − Σ_k d_k q_j^k` (negative values indicate LP-attractive
/// bundles).
#[derive(Debug, Clone, Copy, Default)]
pub struct DualAdjustedScorer;

impl Scorer for DualAdjustedScorer {
    fn score(&mut self, f: &BundleFeatures) -> f64 {
        f.cost - f.dual_coverage
    }
}

/// Linear scorer: `score = w · features` over the six Table I features.
/// The alternative predator representation for the representation
/// ablation — a flat weight vector evolvable with SBX instead of a GP
/// tree (strictly less expressive: no ratios, no conditionals).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightScorer {
    /// One weight per feature, in [`BundleFeatures::as_array`] order.
    pub weights: [f64; NUM_TERMINALS],
}

impl WeightScorer {
    /// Wrap a weight vector.
    pub fn new(weights: [f64; NUM_TERMINALS]) -> Self {
        WeightScorer { weights }
    }
}

impl Scorer for WeightScorer {
    fn score(&mut self, f: &BundleFeatures) -> f64 {
        self.weights.iter().zip(f.as_array()).map(|(w, v)| w * v).sum()
    }
}

/// Structure-of-arrays feature columns for a batch of candidate bundles:
/// column `i` of [`BundleFeatures::as_array`] becomes one `Vec<f64>` with
/// one entry per candidate row. This is the input of [`BatchScorer`] and
/// the layout [`bico_gp::CompiledEvaluator::eval_batch`] consumes
/// directly (terminal id = column index).
#[derive(Debug, Clone, Default)]
pub struct FeatureColumns {
    /// `c_j` per candidate.
    pub cost: Vec<f64>,
    /// `Σ_k q_j^k` per candidate.
    pub total_coverage: Vec<f64>,
    /// `Σ_k min(q_j^k, b̂^k)` per candidate.
    pub residual_coverage: Vec<f64>,
    /// `Σ_k b̂^k` (same value every row — the feature is
    /// bundle-independent, but scoring trees consume it per row).
    pub residual_demand: Vec<f64>,
    /// `Σ_k d_k q_j^k` per candidate.
    pub dual_coverage: Vec<f64>,
    /// `x̄_j` per candidate.
    pub xbar: Vec<f64>,
}

impl FeatureColumns {
    /// Empty columns with `capacity` reserved per column.
    pub fn with_capacity(capacity: usize) -> Self {
        FeatureColumns {
            cost: Vec::with_capacity(capacity),
            total_coverage: Vec::with_capacity(capacity),
            residual_coverage: Vec::with_capacity(capacity),
            residual_demand: Vec::with_capacity(capacity),
            dual_coverage: Vec::with_capacity(capacity),
            xbar: Vec::with_capacity(capacity),
        }
    }

    /// Clear all columns, keeping their allocations.
    pub fn clear(&mut self) {
        self.cost.clear();
        self.total_coverage.clear();
        self.residual_coverage.clear();
        self.residual_demand.clear();
        self.dual_coverage.clear();
        self.xbar.clear();
    }

    /// Number of candidate rows.
    pub fn rows(&self) -> usize {
        debug_assert_eq!(self.cost.len(), self.total_coverage.len());
        debug_assert_eq!(self.cost.len(), self.residual_coverage.len());
        debug_assert_eq!(self.cost.len(), self.residual_demand.len());
        debug_assert_eq!(self.cost.len(), self.dual_coverage.len());
        debug_assert_eq!(self.cost.len(), self.xbar.len());
        self.cost.len()
    }

    /// Append one candidate's features.
    pub fn push(&mut self, f: &BundleFeatures) {
        self.cost.push(f.cost);
        self.total_coverage.push(f.total_coverage);
        self.residual_coverage.push(f.residual_coverage);
        self.residual_demand.push(f.residual_demand);
        self.dual_coverage.push(f.dual_coverage);
        self.xbar.push(f.xbar);
    }

    /// Reassemble row `i` as a [`BundleFeatures`] (the scalar view).
    #[inline]
    pub fn row(&self, i: usize) -> BundleFeatures {
        BundleFeatures {
            cost: self.cost[i],
            total_coverage: self.total_coverage[i],
            residual_coverage: self.residual_coverage[i],
            residual_demand: self.residual_demand[i],
            dual_coverage: self.dual_coverage[i],
            xbar: self.xbar[i],
        }
    }

    /// Column slices in terminal-id order (matches
    /// [`BundleFeatures::as_array`] and [`bcpop_primitives`]).
    #[inline]
    pub fn as_refs(&self) -> [&[f64]; NUM_TERMINALS] {
        [
            &self.cost,
            &self.total_coverage,
            &self.residual_coverage,
            &self.residual_demand,
            &self.dual_coverage,
            &self.xbar,
        ]
    }
}

/// A scorer that evaluates a whole batch of candidates in one call.
///
/// Every [`Scorer`] is a `BatchScorer` through the blanket impl (scalar
/// scoring row by row — bit-identical to the scalar path by
/// construction); [`CompiledGpScorer`] overrides the economics with a
/// single bytecode sweep per column batch.
pub trait BatchScorer {
    /// Score `rows` candidates, writing one score per row into `out`
    /// (cleared first). Row `i`'s score must be bit-identical to the
    /// scalar score of `cols.row(i)`.
    fn score_batch(&mut self, cols: &FeatureColumns, rows: usize, out: &mut Vec<f64>);
}

impl<S: Scorer> BatchScorer for S {
    fn score_batch(&mut self, cols: &FeatureColumns, rows: usize, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(rows);
        for i in 0..rows {
            out.push(self.score(&cols.row(i)));
        }
    }
}

/// Evolved scorer on the compiled fast path: the GP expression is
/// lowered once to bytecode ([`bico_gp::CompiledProgram`]) and evaluated
/// over whole candidate batches. Produces scores bit-identical to
/// [`GpScorer`] on the same expression, and charges the same
/// `nodes_evaluated` (source-tree nodes × candidates scored).
///
/// The program is held behind an [`Arc`] so a compile cache can hand the
/// same lowered bytecode to many workers ([`CompiledGpScorer::from_program`])
/// while each keeps its own register file.
pub struct CompiledGpScorer {
    prog: Arc<CompiledProgram>,
    evaluator: CompiledEvaluator,
}

impl CompiledGpScorer {
    /// Compile a GP expression (over [`bcpop_primitives`]) as a batch
    /// scorer. Fails only on structurally invalid trees.
    pub fn new(expr: &Expr, ps: &PrimitiveSet) -> Result<Self, TreeError> {
        Ok(Self::from_program(Arc::new(CompiledProgram::compile(expr, ps)?)))
    }

    /// Wrap an already-compiled (typically cache-shared) program. The
    /// evaluator state — register file, node counter — is fresh.
    pub fn from_program(prog: Arc<CompiledProgram>) -> Self {
        CompiledGpScorer { prog, evaluator: CompiledEvaluator::new() }
    }

    /// Source-tree nodes charged so far (see
    /// [`bico_gp::CompiledEvaluator::nodes_evaluated`]).
    pub fn nodes_evaluated(&self) -> u64 {
        self.evaluator.nodes_evaluated()
    }

    /// The compiled program (bench/introspection access).
    pub fn program(&self) -> &CompiledProgram {
        &self.prog
    }
}

impl BatchScorer for CompiledGpScorer {
    fn score_batch(&mut self, cols: &FeatureColumns, rows: usize, out: &mut Vec<f64>) {
        let refs = cols.as_refs();
        self.evaluator.eval_batch(&self.prog, &refs, rows, out);
    }
}

/// Compute the features of bundle `j` for the current residual
/// requirements `residual` (length = services). `relax` supplies the LP
/// terminals when available (zeroes otherwise).
pub fn bundle_features(
    inst: &BcpopInstance,
    costs: &[f64],
    residual: &[i64],
    relax: Option<&Relaxation>,
    j: usize,
) -> BundleFeatures {
    let row = inst.bundle_coverage(j);
    let mut resid_cov = 0.0f64;
    let mut resid_dem = 0.0f64;
    let mut dual_cov = 0.0f64;
    for (k, (&qjk, &rem)) in row.iter().zip(residual.iter()).enumerate() {
        let rem = rem.max(0) as f64;
        resid_dem += rem;
        resid_cov += (qjk as f64).min(rem);
        if let Some(r) = relax {
            dual_cov += r.duals[k] * qjk as f64;
        }
    }
    BundleFeatures {
        cost: costs[j],
        total_coverage: inst.total_coverage(j) as f64,
        residual_coverage: resid_cov,
        residual_demand: resid_dem,
        dual_coverage: dual_cov,
        xbar: relax.map_or(0.0, |r| r.xbar[j]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::test_fixtures::tiny;
    use bico_gp::Node;

    #[test]
    fn primitive_set_has_expected_shape() {
        let ps = bcpop_primitives();
        assert_eq!(ps.num_ops(), 5);
        assert_eq!(ps.num_terminals(), NUM_TERMINALS);
        assert_eq!(ps.terminals(), &["c_j", "q_j", "q_res", "b_res", "d_q_j", "x_bar_j"]);
        assert!(ps.const_range().is_some());
    }

    #[test]
    fn features_for_tiny_instance() {
        let inst = tiny();
        let costs = inst.costs_for(&[1.5, 2.5]);
        let residual: Vec<i64> = vec![2, 2];
        let f = bundle_features(&inst, &costs, &residual, None, 0);
        assert_eq!(f.cost, 1.5);
        assert_eq!(f.total_coverage, 2.0);
        assert_eq!(f.residual_coverage, 2.0); // min(2,2) + min(0,2)
        assert_eq!(f.residual_demand, 4.0);
        assert_eq!(f.dual_coverage, 0.0);
        assert_eq!(f.xbar, 0.0);
    }

    #[test]
    fn residual_clamps_satisfied_services() {
        let inst = tiny();
        let costs = inst.costs_for(&[1.0, 1.0]);
        // Service 0 already satisfied (residual -1 → clamped to 0).
        let residual: Vec<i64> = vec![-1, 2];
        let f = bundle_features(&inst, &costs, &residual, None, 2);
        assert_eq!(f.residual_coverage, 1.0); // only service 1 counts
        assert_eq!(f.residual_demand, 2.0);
    }

    #[test]
    fn relaxation_terminals_are_wired() {
        let inst = tiny();
        let costs = inst.costs_for(&[1.0, 1.0]);
        let relax = Relaxation {
            lower_bound: 2.0,
            duals: vec![0.5, 1.0],
            xbar: vec![1.0, 1.0, 0.0, 0.25],
            pivots: 0,
        };
        let residual: Vec<i64> = vec![2, 2];
        let f = bundle_features(&inst, &costs, &residual, Some(&relax), 3);
        // bundle 3 covers (1,1): dual coverage = 0.5*1 + 1.0*1
        assert_eq!(f.dual_coverage, 1.5);
        assert_eq!(f.xbar, 0.25);
    }

    #[test]
    fn gp_scorer_evaluates_expression_on_features() {
        let ps = bcpop_primitives();
        // c_j / q_res  (protected)
        let expr = Expr::from_nodes(vec![Node::Op(3), Node::Term(0), Node::Term(2)]);
        let mut scorer = GpScorer::new(&expr, &ps);
        let f = BundleFeatures {
            cost: 6.0,
            total_coverage: 9.0,
            residual_coverage: 3.0,
            residual_demand: 4.0,
            dual_coverage: 0.0,
            xbar: 0.0,
        };
        assert_eq!(scorer.score(&f), 2.0);
        assert_eq!(scorer.nodes_evaluated(), 3);
    }

    #[test]
    fn weight_scorer_is_linear() {
        let f = BundleFeatures {
            cost: 10.0,
            total_coverage: 5.0,
            residual_coverage: 4.0,
            residual_demand: 8.0,
            dual_coverage: 3.0,
            xbar: 0.5,
        };
        let mut s = WeightScorer::new([1.0, 0.0, -1.0, 0.0, 0.0, 2.0]);
        assert_eq!(s.score(&f), 10.0 - 4.0 + 1.0);
        let mut zero = WeightScorer::new([0.0; NUM_TERMINALS]);
        assert_eq!(zero.score(&f), 0.0);
    }

    #[test]
    fn baseline_scorers() {
        let f = BundleFeatures {
            cost: 10.0,
            total_coverage: 5.0,
            residual_coverage: 4.0,
            residual_demand: 8.0,
            dual_coverage: 3.0,
            xbar: 0.5,
        };
        assert_eq!(CostScorer.score(&f), 10.0);
        assert_eq!(CostPerCoverageScorer.score(&f), 2.5);
        assert_eq!(DualAdjustedScorer.score(&f), 7.0);
        let exhausted = BundleFeatures { residual_coverage: 0.0, ..f };
        assert_eq!(CostPerCoverageScorer.score(&exhausted), f64::INFINITY);
    }
}
