//! Provided observer implementations.

pub mod jsonl;
pub mod metrics;
pub mod progress;
pub mod prometheus;
