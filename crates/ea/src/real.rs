//! Real-coded genetic operators: simulated binary crossover (SBX) and
//! polynomial mutation, in the bound-respecting forms of Deb & Agrawal —
//! exactly the "Simulated binary" / "Polynomial" rows of the paper's
//! Table II. CARBON and COBRA both encode upper-level pricings as
//! continuous vectors evolved with these operators.

use rand::Rng;

/// Distribution indices and per-gene rates for the real-coded operators.
#[derive(Debug, Clone, Copy)]
pub struct RealOpsConfig {
    /// SBX distribution index `η_c` (larger → children closer to parents).
    pub eta_crossover: f64,
    /// Polynomial-mutation distribution index `η_m`.
    pub eta_mutation: f64,
    /// Per-gene probability that SBX recombines the gene (the remainder
    /// is copied verbatim).
    pub gene_swap_prob: f64,
}

impl Default for RealOpsConfig {
    fn default() -> Self {
        // NSGA-II's classic settings, which DEAP also defaults to.
        RealOpsConfig { eta_crossover: 20.0, eta_mutation: 20.0, gene_swap_prob: 0.5 }
    }
}

const EPS: f64 = 1e-14;

/// Simulated binary crossover of two parents within `[lower, upper]`
/// boxes. Returns two children; parents are untouched.
///
/// # Panics
/// Panics if the four slices disagree in length.
pub fn sbx_crossover<R: Rng + ?Sized>(
    p1: &[f64],
    p2: &[f64],
    lower: &[f64],
    upper: &[f64],
    cfg: &RealOpsConfig,
    rng: &mut R,
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(p1.len(), p2.len());
    assert_eq!(p1.len(), lower.len());
    assert_eq!(p1.len(), upper.len());
    let n = p1.len();
    let mut c1 = p1.to_vec();
    let mut c2 = p2.to_vec();
    for i in 0..n {
        if rng.random::<f64>() > cfg.gene_swap_prob {
            continue;
        }
        let (x1, x2) = (p1[i].min(p2[i]), p1[i].max(p2[i]));
        if (x2 - x1).abs() < EPS {
            continue;
        }
        let (lo, hi) = (lower[i], upper[i]);
        let u: f64 = rng.random();

        // Child 1 — spread factor contracted toward the lower bound.
        let beta = 1.0 + 2.0 * (x1 - lo) / (x2 - x1);
        let alpha = 2.0 - beta.powf(-(cfg.eta_crossover + 1.0));
        let betaq = spread_factor(u, alpha, cfg.eta_crossover);
        let v1 = 0.5 * ((x1 + x2) - betaq * (x2 - x1));

        // Child 2 — spread factor contracted toward the upper bound.
        let beta = 1.0 + 2.0 * (hi - x2) / (x2 - x1);
        let alpha = 2.0 - beta.powf(-(cfg.eta_crossover + 1.0));
        let betaq = spread_factor(u, alpha, cfg.eta_crossover);
        let v2 = 0.5 * ((x1 + x2) + betaq * (x2 - x1));

        let (v1, v2) = (v1.clamp(lo, hi), v2.clamp(lo, hi));
        // Random assignment of the two children to the two slots.
        if rng.random::<f64>() < 0.5 {
            c1[i] = v2;
            c2[i] = v1;
        } else {
            c1[i] = v1;
            c2[i] = v2;
        }
    }
    (c1, c2)
}

#[inline]
fn spread_factor(u: f64, alpha: f64, eta: f64) -> f64 {
    if u <= 1.0 / alpha {
        (u * alpha).powf(1.0 / (eta + 1.0))
    } else {
        (1.0 / (2.0 - u * alpha)).powf(1.0 / (eta + 1.0))
    }
}

/// Bounded polynomial mutation: each gene mutates independently with
/// probability `per_gene_prob`.
pub fn polynomial_mutation<R: Rng + ?Sized>(
    x: &mut [f64],
    lower: &[f64],
    upper: &[f64],
    per_gene_prob: f64,
    cfg: &RealOpsConfig,
    rng: &mut R,
) {
    assert_eq!(x.len(), lower.len());
    assert_eq!(x.len(), upper.len());
    let eta = cfg.eta_mutation;
    for i in 0..x.len() {
        if rng.random::<f64>() >= per_gene_prob {
            continue;
        }
        let (lo, hi) = (lower[i], upper[i]);
        let span = hi - lo;
        if span <= 0.0 {
            continue;
        }
        let y = x[i];
        let delta1 = (y - lo) / span;
        let delta2 = (hi - y) / span;
        let u: f64 = rng.random();
        let mut_pow = 1.0 / (eta + 1.0);
        let deltaq = if u < 0.5 {
            let xy = 1.0 - delta1;
            let val = 2.0 * u + (1.0 - 2.0 * u) * xy.powf(eta + 1.0);
            val.powf(mut_pow) - 1.0
        } else {
            let xy = 1.0 - delta2;
            let val = 2.0 * (1.0 - u) + 2.0 * (u - 0.5) * xy.powf(eta + 1.0);
            1.0 - val.powf(mut_pow)
        };
        x[i] = (y + deltaq * span).clamp(lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn bounds(n: usize) -> (Vec<f64>, Vec<f64>) {
        (vec![0.0; n], vec![10.0; n])
    }

    #[test]
    fn sbx_children_stay_in_bounds() {
        let (lo, hi) = bounds(6);
        let mut rng = SmallRng::seed_from_u64(1);
        let p1 = vec![0.0, 1.0, 5.0, 9.9, 0.1, 10.0];
        let p2 = vec![10.0, 2.0, 5.0, 0.0, 0.2, 10.0];
        for _ in 0..500 {
            let (c1, c2) =
                sbx_crossover(&p1, &p2, &lo, &hi, &RealOpsConfig::default(), &mut rng);
            for v in c1.iter().chain(c2.iter()) {
                assert!((0.0..=10.0).contains(v), "child gene {v} out of bounds");
            }
        }
    }

    #[test]
    fn sbx_preserves_gene_mean_when_bounds_are_distant() {
        // Far from the box, the bounded SBX degenerates to the classic
        // unbounded form, which is exactly mean-preserving per gene:
        // child1 + child2 = parent1 + parent2.
        let lo = vec![-1e9; 4];
        let hi = vec![1e9; 4];
        let mut rng = SmallRng::seed_from_u64(2);
        let p1 = vec![2.0, 3.0, 7.0, 1.0];
        let p2 = vec![8.0, 4.0, 2.0, 9.0];
        for _ in 0..100 {
            let (c1, c2) =
                sbx_crossover(&p1, &p2, &lo, &hi, &RealOpsConfig::default(), &mut rng);
            for i in 0..4 {
                let sum_parents = p1[i] + p2[i];
                let sum_children = c1[i] + c2[i];
                assert!(
                    (sum_parents - sum_children).abs() < 1e-9,
                    "SBX not mean preserving: {sum_parents} vs {sum_children}"
                );
            }
        }
    }

    #[test]
    fn sbx_near_bounds_contracts_into_box() {
        // Near an asymmetric box the children are biased inward but must
        // never leave it — this is the behaviour that keeps pricings valid.
        let lo = vec![0.0];
        let hi = vec![1.0];
        let mut rng = SmallRng::seed_from_u64(21);
        let cfg = RealOpsConfig { gene_swap_prob: 1.0, ..Default::default() };
        for _ in 0..300 {
            let (c1, c2) = sbx_crossover(&[0.01], &[0.99], &lo, &hi, &cfg, &mut rng);
            assert!((0.0..=1.0).contains(&c1[0]));
            assert!((0.0..=1.0).contains(&c2[0]));
        }
    }

    #[test]
    fn sbx_identical_parents_clone() {
        let (lo, hi) = bounds(3);
        let mut rng = SmallRng::seed_from_u64(3);
        let p = vec![4.0, 5.0, 6.0];
        let (c1, c2) = sbx_crossover(&p, &p, &lo, &hi, &RealOpsConfig::default(), &mut rng);
        assert_eq!(c1, p);
        assert_eq!(c2, p);
    }

    #[test]
    fn high_eta_keeps_children_near_parents() {
        let (lo, hi) = bounds(1);
        let mut rng = SmallRng::seed_from_u64(4);
        let cfg =
            RealOpsConfig { eta_crossover: 1000.0, gene_swap_prob: 1.0, ..Default::default() };
        let mut max_dev = 0.0f64;
        for _ in 0..200 {
            let (c1, c2) = sbx_crossover(&[4.0], &[6.0], &lo, &hi, &cfg, &mut rng);
            let d = (c1[0] - 4.0).abs().min((c1[0] - 6.0).abs());
            max_dev = max_dev.max(d).max((c2[0] - 4.0).abs().min((c2[0] - 6.0).abs()));
        }
        assert!(max_dev < 0.1, "children strayed {max_dev} with eta=1000");
    }

    #[test]
    fn mutation_stays_in_bounds() {
        let (lo, hi) = bounds(8);
        let mut rng = SmallRng::seed_from_u64(5);
        let cfg = RealOpsConfig::default();
        for _ in 0..300 {
            let mut x = vec![0.0, 10.0, 5.0, 0.1, 9.9, 3.3, 7.7, 5.0];
            polynomial_mutation(&mut x, &lo, &hi, 1.0, &cfg, &mut rng);
            for v in &x {
                assert!((0.0..=10.0).contains(v));
            }
        }
    }

    #[test]
    fn mutation_prob_zero_is_identity() {
        let (lo, hi) = bounds(4);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        let orig = x.clone();
        polynomial_mutation(&mut x, &lo, &hi, 0.0, &RealOpsConfig::default(), &mut rng);
        assert_eq!(x, orig);
    }

    #[test]
    fn mutation_actually_perturbs() {
        let (lo, hi) = bounds(16);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut x = vec![5.0; 16];
        polynomial_mutation(&mut x, &lo, &hi, 1.0, &RealOpsConfig::default(), &mut rng);
        assert!(x.iter().any(|&v| (v - 5.0).abs() > 1e-12), "no gene moved");
    }

    #[test]
    fn fixed_gene_degenerate_bounds_untouched() {
        let lo = vec![3.0];
        let hi = vec![3.0];
        let mut rng = SmallRng::seed_from_u64(8);
        let mut x = vec![3.0];
        polynomial_mutation(&mut x, &lo, &hi, 1.0, &RealOpsConfig::default(), &mut rng);
        assert_eq!(x[0], 3.0);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let mut rng = SmallRng::seed_from_u64(9);
        let _ = sbx_crossover(
            &[1.0, 2.0],
            &[1.0],
            &[0.0],
            &[1.0],
            &RealOpsConfig::default(),
            &mut rng,
        );
    }
}
