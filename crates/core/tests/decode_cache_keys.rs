//! Key injectivity for the decode cache.
//!
//! [`cell_key`] lays a cache key out as `[mode, scorer_len, scorer
//! words…, pricing bits…]`. The property that makes decode memoization
//! sound is injectivity: two (mode, scorer, pricing) triples collide iff
//! they are the same triple. The layout is a prefix code — `scorer_len`
//! pins the boundary between scorer and pricing words — so injectivity
//! is equivalent to the key being exactly parseable back into its
//! components, which is what these tests assert over random triples.

use bico_bcpop::bcpop_primitives;
use bico_core::decode_cache::{
    cell_key, decode_mode, pricing_key, tree_scorer_key, weights_scorer_key,
};
use bico_gp::{grow, Expr};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn random_tree(seed: u64, max_depth: usize) -> Expr {
    let ps = bcpop_primitives();
    let mut rng = SmallRng::seed_from_u64(seed);
    grow(&ps, 0, max_depth, &mut rng).expect("grow produces a valid tree")
}

/// Invert [`cell_key`]: `(mode, scorer words, pricing bits)`. Existence
/// of this exact inverse is what makes the key injective.
fn parse_key(key: &[u64]) -> (u64, Vec<u64>, Vec<u64>) {
    let mode = key[0];
    let n = key[1] as usize;
    (mode, key[2..2 + n].to_vec(), key[2 + n..].to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Round-trip: every key parses back into exactly the triple that
    /// built it, for tree scorers of any shape and pricings of any
    /// length (including the empty pricing).
    #[test]
    fn tree_keys_parse_back_exactly(
        seed: u64,
        depth in 0usize..6,
        prices in proptest::collection::vec(-1e9f64..1e9, 0..12),
        lp_terminals: bool,
        compiled: bool,
    ) {
        let tree = random_tree(seed, depth);
        let scorer = tree_scorer_key(&tree);
        let mode = decode_mode(false, lp_terminals, compiled);
        let key = cell_key(mode, &scorer, &prices);
        let (m, s, p) = parse_key(&key);
        prop_assert_eq!(m, mode);
        prop_assert_eq!(s, scorer);
        prop_assert_eq!(p, pricing_key(&prices).to_vec());
    }

    /// Same round-trip for the linear-weights mode, whose scorer words
    /// are weight bit patterns rather than tree structure.
    #[test]
    fn weight_keys_parse_back_exactly(
        weights in proptest::collection::vec(-1.0f64..1.0, 1..8),
        prices in proptest::collection::vec(-1e9f64..1e9, 0..12),
        compiled: bool,
    ) {
        let scorer = weights_scorer_key(&weights);
        let mode = decode_mode(true, true, compiled);
        let key = cell_key(mode, &scorer, &prices);
        let (m, s, p) = parse_key(&key);
        prop_assert_eq!(m, mode);
        prop_assert_eq!(s, scorer);
        prop_assert_eq!(p, pricing_key(&prices).to_vec());
    }

    /// Distinct triples get distinct keys: keys collide only when mode,
    /// scorer words, and pricing bits all agree. (The converse — equal
    /// triples give equal keys — is determinism of `cell_key` and is
    /// implied by the round-trip above.)
    #[test]
    fn distinct_triples_get_distinct_keys(
        seed_a: u64,
        seed_b: u64,
        depth in 0usize..5,
        prices_a in proptest::collection::vec(-1e9f64..1e9, 0..8),
        prices_b in proptest::collection::vec(-1e9f64..1e9, 0..8),
        lp_a: bool,
        lp_b: bool,
    ) {
        let (ta, tb) = (random_tree(seed_a, depth), random_tree(seed_b, depth));
        let (sa, sb) = (tree_scorer_key(&ta), tree_scorer_key(&tb));
        let (ma, mb) = (decode_mode(false, lp_a, true), decode_mode(false, lp_b, true));
        let (ka, kb) = (cell_key(ma, &sa, &prices_a), cell_key(mb, &sb, &prices_b));
        let same_triple = ma == mb
            && sa == sb
            && pricing_key(&prices_a) == pricing_key(&prices_b);
        prop_assert_eq!(ka == kb, same_triple);
    }

    /// Tree mode and weights mode never collide, even when the scorer
    /// words happen to carry identical numeric content.
    #[test]
    fn modes_partition_the_key_space(
        words in proptest::collection::vec(0u64..1 << 40, 1..6),
        prices in proptest::collection::vec(-1e9f64..1e9, 0..8),
    ) {
        let tree_key = cell_key(decode_mode(false, true, true), &words, &prices);
        let weight_key = cell_key(decode_mode(true, true, true), &words, &prices);
        prop_assert_ne!(tree_key, weight_key);
    }
}

/// Deterministic twin of the round-trip properties, so the injectivity
/// contract is exercised even where the proptest runner is a
/// compile-only stand-in (mirrors the GP suite's twin tests).
#[test]
fn key_roundtrip_deterministic_twin() {
    let mut keys = Vec::new();
    for seed in 0..24u64 {
        let tree = random_tree(seed, 4);
        let scorer = tree_scorer_key(&tree);
        let prices = [seed as f64 * 0.5, -1.25, 0.0];
        for (weights, lp) in [(false, false), (false, true), (true, true)] {
            let sw;
            let scorer: &[u64] = if weights {
                sw = weights_scorer_key(&[seed as f64, -0.5]);
                &sw
            } else {
                &scorer
            };
            let mode = decode_mode(weights, lp, true);
            let key = cell_key(mode, scorer, &prices);
            let (m, s, p) = parse_key(&key);
            assert_eq!(m, mode, "seed {seed}");
            assert_eq!(s, scorer, "seed {seed}");
            assert_eq!(p, pricing_key(&prices).to_vec(), "seed {seed}");
            keys.push(((mode, scorer.to_vec(), p), key));
        }
    }
    // Pairwise: keys agree exactly when the triples agree.
    for (ta, ka) in &keys {
        for (tb, kb) in &keys {
            assert_eq!(ka == kb, ta == tb, "injectivity violated for {ta:?} vs {tb:?}");
        }
    }
}

/// Deterministic spot check of the boundary encoding: moving a word
/// across the scorer/pricing boundary while keeping the concatenation
/// fixed must change the key (the `scorer_len` word differs).
#[test]
fn scorer_pricing_boundary_is_unambiguous() {
    let mode = decode_mode(false, true, true);
    let p = f64::from_bits(7);
    let a = cell_key(mode, &[1, 2], &[p, 3.0]);
    let b = cell_key(mode, &[1, 2, 7], &[3.0]);
    assert_ne!(a, b, "same concatenation, different split, must differ");
    assert_eq!(parse_key(&a).1, vec![1, 2]);
    assert_eq!(parse_key(&b).1, vec![1, 2, 7]);
}
