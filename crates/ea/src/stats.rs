//! Running statistics and convergence traces.
//!
//! The paper's Fig. 4 and Fig. 5 plot, per generation, the average (over
//! 30 runs) best upper-level fitness and best %-gap. [`Trace`] records
//! one run's series; [`Summary`] aggregates values with Welford's online
//! algorithm (numerically stable single pass) and retains the samples
//! for [`Summary::median`]/[`Summary::percentile`].
//!
//! Both types now live in `bico-obs` — a [`TracePoint`] is exactly the
//! payload of a `GenerationEnd` observability event, and the metrics
//! sink reuses [`Summary`] for its latency report — so the whole
//! workspace shares one definition. This module re-exports them under
//! their historical path.

pub use bico_obs::stats::Summary;
pub use bico_obs::trace::{Trace, TracePoint};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty_and_singleton() {
        let s = Summary::new();
        assert!(s.mean().is_nan());
        assert!(s.std_dev().is_nan(), "std_dev of 0 samples must be NaN");
        let s = Summary::of(&[3.0]);
        assert_eq!(s.mean(), 3.0);
        assert!(s.std_dev().is_nan(), "std_dev of 1 sample must be NaN");
        let s = Summary::of(&[3.0, 5.0]);
        assert!((s.std_dev() - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_ignores_nan() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_order_statistics() {
        let s = Summary::of(&[9.0, 2.0, 4.0, 4.0, 5.0, 5.0, 7.0, 4.0]);
        assert_eq!(s.median(), 4.5);
        assert_eq!(s.percentile(0.0), 2.0);
        assert_eq!(s.percentile(100.0), 9.0);
        assert!((s.percentile(25.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn welford_matches_naive_on_large_offset() {
        // Stability check: values with a large common offset.
        let values: Vec<f64> = (0..1000).map(|i| 1e9 + (i % 7) as f64).collect();
        let s = Summary::of(&values);
        let naive_mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((s.mean() - naive_mean).abs() < 1e-3);
    }

    #[test]
    fn trace_average_is_pointwise() {
        let mut t1 = Trace::new();
        t1.record(0, 100, 10.0, 5.0);
        t1.record(1, 200, 20.0, 3.0);
        let mut t2 = Trace::new();
        t2.record(0, 100, 30.0, 1.0);
        t2.record(1, 200, 40.0, 1.0);
        t2.record(2, 300, 50.0, 0.5); // extra point is truncated
        let avg = Trace::average(&[t1, t2]);
        assert_eq!(avg.points().len(), 2);
        assert_eq!(avg.points()[0].ul_best, 20.0);
        assert_eq!(avg.points()[1].gap_best, 2.0);
    }

    #[test]
    fn trace_average_of_empty_set() {
        let avg = Trace::average(&[]);
        assert!(avg.points().is_empty());
    }

    #[test]
    fn trace_point_is_the_generation_end_event() {
        use bico_obs::Event;
        let mut t = Trace::new();
        t.record_event(&Event::GenerationEnd {
            generation: 2,
            evaluations: 300,
            ul_best: 12.0,
            gap_best: 0.75,
        });
        assert_eq!(
            t.points(),
            &[TracePoint { generation: 2, evaluations: 300, ul_best: 12.0, gap_best: 0.75 }]
        );
    }
}
