//! Bytecode compilation of [`Expr`] trees.
//!
//! [`Evaluator::eval`](crate::Evaluator::eval) walks the prefix node
//! buffer with per-node enum dispatch, a function-pointer call per
//! operator, and a push/pop pair per node. That is the innermost loop of
//! every lower-level fitness evaluation, and the same tree is evaluated
//! once per candidate bundle per greedy step — thousands of times per
//! decode with only the terminal values changing.
//!
//! [`CompiledProgram`] lowers a tree once into a flat register program:
//!
//! * **constant folding** — subtrees with all-constant leaves collapse to
//!   a single immediate at compile time (folded through the same
//!   `sanitize` the interpreter applies, so results stay bit-identical);
//! * **common-subexpression elimination** — lowering value-numbers every
//!   `(operator, operands)` application, so structurally repeated
//!   subtrees (common after crossover self-grafts) are emitted once and
//!   every later occurrence reuses the first result's register;
//! * **register allocation** — instructions write a compact register file
//!   assigned by linear scan over last uses, with the guarantee that a
//!   destination never aliases its own operands;
//! * **fused terminal loads** — terminals and constants are instruction
//!   *operands*, not separate push instructions, so a tree with `n`
//!   operator nodes compiles to at most `n` instructions;
//! * **opcode specialization** — the Table I arithmetic operators are
//!   recognized by function address and lowered to dedicated opcodes that
//!   the evaluator dispatches without an indirect call (unknown operators
//!   fall back to a generic call opcode, still bit-identical);
//! * **batched evaluation** — [`CompiledEvaluator::eval_batch`] runs one
//!   program over structure-of-arrays terminal columns (one row per
//!   candidate), turning per-instruction dispatch into a tight loop over
//!   rows.
//!
//! ## Determinism contract
//!
//! For every well-formed tree and every terminal vector (including NaN
//! and ±∞ entries), [`CompiledEvaluator::eval`] returns a value
//! bit-identical to [`Evaluator::eval`](crate::Evaluator::eval), and
//! `eval_batch` row `i` is bit-identical to a scalar `eval` on row `i`'s
//! terminal values. CSE only merges *structurally identical* pure
//! computations, whose results are bit-equal by construction. Node
//! accounting is preserved "as if interpreted": each evaluation charges
//! the *source tree* length, so MetricsSink GP-node counters do not
//! change when the compiled path is enabled.

use crate::primitives::{add, mul, protected_div, protected_mod, sub, OpFn, PrimitiveSet};
use crate::tree::{sanitize, Expr, Node, TreeError};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Where an instruction operand comes from.
///
/// Register operands may name any allocated register except the
/// instruction's own destination: the allocator releases an operand's
/// register only after the destination is assigned, so `dst` never
/// aliases `a` or `b`. The batch evaluator relies on this to split
/// disjoint register slices without copies.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Src {
    /// Read register `r`.
    Reg(u16),
    /// Read terminal column `t`, sanitizing on load (NaN → 0, clamp).
    Term(u16),
    /// Immediate, already sanitized at compile time.
    Const(f64),
}

/// Specialized operation codes. The five Table I arithmetic operators get
/// direct opcodes; anything else dispatches through the registered
/// function pointer exactly as the interpreter does.
#[derive(Debug, Clone, Copy)]
enum Opcode {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// Protected division (`%` in Table I).
    PDiv,
    /// Protected Euclidean modulo (`mod` in Table I).
    PMod,
    /// Generic unary operator call.
    CallUnary(fn(f64) -> f64),
    /// Generic binary operator call.
    CallBinary(fn(f64, f64) -> f64),
}

/// One register instruction: `dst = sanitize(op(a, b))` (binary) or
/// `dst = sanitize(op(a))` (unary; `b` is ignored).
#[derive(Debug, Clone, Copy)]
struct Instr {
    op: Opcode,
    dst: u16,
    a: Src,
    b: Src,
}

/// Value produced during lowering: a virtual register (one per *distinct*
/// non-folded operator application), a terminal, or a folded constant.
#[derive(Debug, Clone, Copy)]
enum VVal {
    Vreg(u32),
    Term(u16),
    Const(f64),
}

/// Hashable identity of a [`VVal`] for the value-numbering table.
/// Constants compare by bit pattern, so `-0.0` and `0.0` stay distinct —
/// conservative, and exactly as bit-identity requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum VKey {
    Vreg(u32),
    Term(u16),
    Const(u64),
}

fn vkey(v: VVal) -> VKey {
    match v {
        VVal::Vreg(r) => VKey::Vreg(r),
        VVal::Term(t) => VKey::Term(t),
        VVal::Const(c) => VKey::Const(c.to_bits()),
    }
}

/// Sentinel second operand for unary applications in the numbering key.
/// Virtual registers are numbered densely from zero, so `u32::MAX` never
/// collides with a real operand.
const UNARY_KEY_B: VKey = VKey::Vreg(u32::MAX);

/// Instruction in SSA form, before register allocation: instruction `i`
/// defines virtual register `i`.
#[derive(Debug, Clone, Copy)]
struct VInstr {
    op: Opcode,
    a: VVal,
    b: VVal,
}

/// An [`Expr`] lowered to flat register bytecode. Compile once with
/// [`CompiledProgram::compile`], evaluate many times through a
/// [`CompiledEvaluator`].
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    instrs: Vec<Instr>,
    /// Where the final value lives after all instructions run.
    result: Src,
    /// Physical registers allocated (compacted by last-use reuse).
    num_regs: u16,
    /// Source tree length, charged per evaluation so node accounting
    /// matches the interpreter exactly.
    source_len: u64,
}

impl CompiledProgram {
    /// Lower `expr` for `ps`. Validates the tree first; structural errors
    /// are returned rather than panicking.
    ///
    /// Lowering runs in two passes. The first walks the prefix buffer in
    /// reverse with a virtual operand stack — exactly the interpreter's
    /// evaluation order — folding constant applications and
    /// value-numbering everything else, so each distinct
    /// `(operator, operands)` subtree is emitted once. The second pass
    /// assigns physical registers by linear scan over last uses.
    pub fn compile(expr: &Expr, ps: &PrimitiveSet) -> Result<Self, TreeError> {
        expr.validate(ps)?;
        let mut vinstrs: Vec<VInstr> = Vec::new();
        let mut stack: Vec<VVal> = Vec::with_capacity(16);
        let mut numbering: HashMap<(u16, VKey, VKey), u32> = HashMap::new();
        for node in expr.nodes().iter().rev() {
            match *node {
                Node::Term(id) => stack.push(VVal::Term(id)),
                // Pre-sanitize immediates: the interpreter sanitizes
                // constants on push, so folding sees the same values.
                Node::Const(c) => stack.push(VVal::Const(sanitize(c))),
                Node::Op(id) => {
                    let func = ps.ops()[id as usize].func;
                    match func {
                        OpFn::Unary(f) => {
                            let a = stack.pop().expect("validated expr: missing operand");
                            if let VVal::Const(ca) = a {
                                stack.push(VVal::Const(sanitize(f(ca))));
                            } else {
                                let key = (id, vkey(a), UNARY_KEY_B);
                                let vr = *numbering.entry(key).or_insert_with(|| {
                                    vinstrs.push(VInstr {
                                        op: Opcode::CallUnary(f),
                                        a,
                                        b: VVal::Const(0.0),
                                    });
                                    (vinstrs.len() - 1) as u32
                                });
                                stack.push(VVal::Vreg(vr));
                            }
                        }
                        OpFn::Binary(f) => {
                            let a = stack.pop().expect("validated expr: missing operand");
                            let b = stack.pop().expect("validated expr: missing operand");
                            if let (VVal::Const(ca), VVal::Const(cb)) = (a, b) {
                                stack.push(VVal::Const(sanitize(f(ca, cb))));
                            } else {
                                let key = (id, vkey(a), vkey(b));
                                let vr = *numbering.entry(key).or_insert_with(|| {
                                    vinstrs.push(VInstr { op: lower_binary(f), a, b });
                                    (vinstrs.len() - 1) as u32
                                });
                                stack.push(VVal::Vreg(vr));
                            }
                        }
                    }
                }
            }
        }
        debug_assert_eq!(stack.len(), 1, "validated expr: leftover operands");
        let root = stack.pop().unwrap_or(VVal::Const(0.0));
        Ok(allocate_registers(&vinstrs, root, expr.len()))
    }

    /// Number of register instructions (operator nodes minus folded and
    /// CSE-shared subtrees).
    pub fn num_instructions(&self) -> usize {
        self.instrs.len()
    }

    /// Physical registers the program needs.
    pub fn num_regs(&self) -> usize {
        self.num_regs as usize
    }

    /// Source-tree node count charged per evaluation.
    pub fn source_len(&self) -> usize {
        self.source_len as usize
    }

    /// If the whole tree folded to a constant, its value.
    pub fn as_const(&self) -> Option<f64> {
        match self.result {
            Src::Const(c) if self.instrs.is_empty() => Some(c),
            _ => None,
        }
    }
}

/// Canonical structural encoding of a tree, suitable as an exact
/// compile-cache key: two trees produce the same key iff their node
/// buffers are identical (constants compared by bit pattern — the same
/// equality lowering itself uses). Each node contributes one tagged word;
/// constants contribute a second word carrying the value bits, which
/// keeps the encoding a prefix code and therefore injective.
///
/// The key does *not* identify the [`PrimitiveSet`]: operator and
/// terminal ids are only meaningful relative to one set, so a cache keyed
/// by this encoding must not be shared across primitive sets.
pub fn structural_key(expr: &Expr) -> Vec<u64> {
    let mut key = Vec::with_capacity(expr.len() + 1);
    for node in expr.nodes() {
        match *node {
            Node::Op(id) => key.push((1u64 << 32) | id as u64),
            Node::Term(id) => key.push((2u64 << 32) | id as u64),
            Node::Const(c) => {
                key.push(3u64 << 32);
                key.push(c.to_bits());
            }
        }
    }
    key
}

/// Linear-scan register allocation over the (topologically ordered) SSA
/// instruction list: the lowest free physical register wins, and an
/// operand's register is released only *after* the destination is
/// assigned, so a destination never aliases its own operands.
fn allocate_registers(vinstrs: &[VInstr], root: VVal, source_len: usize) -> CompiledProgram {
    let n = vinstrs.len();
    // Last instruction index that reads each virtual register; the root
    // value, if a register, is read "after" the final instruction.
    let mut last_use: Vec<usize> = vec![usize::MAX; n];
    for (i, vi) in vinstrs.iter().enumerate() {
        if let VVal::Vreg(r) = vi.a {
            last_use[r as usize] = i;
        }
        if let VVal::Vreg(r) = vi.b {
            last_use[r as usize] = i;
        }
    }
    if let VVal::Vreg(r) = root {
        last_use[r as usize] = n;
    }
    let mut preg: Vec<u16> = vec![0; n];
    let mut free: BinaryHeap<Reverse<u16>> = BinaryHeap::new();
    let mut num_regs: u16 = 0;
    let mut instrs: Vec<Instr> = Vec::with_capacity(n);
    let resolve = |v: VVal, preg: &[u16]| -> Src {
        match v {
            VVal::Vreg(r) => Src::Reg(preg[r as usize]),
            VVal::Term(t) => Src::Term(t),
            VVal::Const(c) => Src::Const(c),
        }
    };
    for (i, vi) in vinstrs.iter().enumerate() {
        let a = resolve(vi.a, &preg);
        let b = resolve(vi.b, &preg);
        let dst = match free.pop() {
            Some(Reverse(r)) => r,
            None => {
                let r = num_regs;
                num_regs = num_regs.checked_add(1).expect("register file exceeds u16 range");
                r
            }
        };
        preg[i] = dst;
        instrs.push(Instr { op: vi.op, dst, a, b });
        let mut release = |v: VVal| {
            if let VVal::Vreg(r) = v {
                if last_use[r as usize] == i {
                    free.push(Reverse(preg[r as usize]));
                }
            }
        };
        release(vi.a);
        // Release `b` unless it is the same virtual register as `a`
        // (e.g. `x + x` after CSE), which must be freed only once.
        match (vi.a, vi.b) {
            (VVal::Vreg(ra), VVal::Vreg(rb)) if ra == rb => {}
            _ => release(vi.b),
        }
    }
    CompiledProgram {
        instrs,
        result: resolve(root, &preg),
        num_regs,
        source_len: source_len as u64,
    }
}

/// Recognize the Table I arithmetic functions by address; anything else
/// keeps generic call dispatch (identical results either way).
fn lower_binary(f: fn(f64, f64) -> f64) -> Opcode {
    if std::ptr::fn_addr_eq(f, add as fn(f64, f64) -> f64) {
        Opcode::Add
    } else if std::ptr::fn_addr_eq(f, sub as fn(f64, f64) -> f64) {
        Opcode::Sub
    } else if std::ptr::fn_addr_eq(f, mul as fn(f64, f64) -> f64) {
        Opcode::Mul
    } else if std::ptr::fn_addr_eq(f, protected_div as fn(f64, f64) -> f64) {
        Opcode::PDiv
    } else if std::ptr::fn_addr_eq(f, protected_mod as fn(f64, f64) -> f64) {
        Opcode::PMod
    } else {
        Opcode::CallBinary(f)
    }
}

/// Reusable register file for [`CompiledProgram`] execution. Keep one per
/// thread / worker; the register buffer is reused across calls so
/// steady-state evaluation performs no allocation.
///
/// Tracks nodes evaluated with the same convention as
/// [`Evaluator`](crate::Evaluator): every evaluation charges the source
/// tree's node count (per row, for batches), regardless of how many
/// instructions folding and CSE eliminated.
#[derive(Debug, Default)]
pub struct CompiledEvaluator {
    regs: Vec<f64>,
    nodes: u64,
}

impl CompiledEvaluator {
    /// New evaluator with an empty register file.
    pub fn new() -> Self {
        CompiledEvaluator { regs: Vec::with_capacity(64), nodes: 0 }
    }

    /// Total source-tree nodes charged since creation (or the last
    /// [`CompiledEvaluator::reset_node_count`]).
    pub fn nodes_evaluated(&self) -> u64 {
        self.nodes
    }

    /// Reset the node counter to zero.
    pub fn reset_node_count(&mut self) {
        self.nodes = 0;
    }

    /// Evaluate `prog` against one terminal vector. Bit-identical to
    /// [`Evaluator::eval`](crate::Evaluator::eval) on the source tree.
    pub fn eval(&mut self, prog: &CompiledProgram, terminal_values: &[f64]) -> f64 {
        self.nodes += prog.source_len;
        self.regs.clear();
        self.regs.resize(prog.num_regs as usize, 0.0);
        for instr in &prog.instrs {
            let a = fetch_scalar(instr.a, &self.regs, terminal_values);
            let out = match instr.op {
                Opcode::Add => a + fetch_scalar(instr.b, &self.regs, terminal_values),
                Opcode::Sub => a - fetch_scalar(instr.b, &self.regs, terminal_values),
                Opcode::Mul => a * fetch_scalar(instr.b, &self.regs, terminal_values),
                Opcode::PDiv => {
                    protected_div(a, fetch_scalar(instr.b, &self.regs, terminal_values))
                }
                Opcode::PMod => {
                    protected_mod(a, fetch_scalar(instr.b, &self.regs, terminal_values))
                }
                Opcode::CallUnary(f) => f(a),
                Opcode::CallBinary(f) => {
                    f(a, fetch_scalar(instr.b, &self.regs, terminal_values))
                }
            };
            self.regs[instr.dst as usize] = sanitize(out);
        }
        match prog.result {
            Src::Reg(r) => self.regs[r as usize],
            Src::Term(t) => sanitize(terminal_values[t as usize]),
            Src::Const(c) => c,
        }
    }

    /// Evaluate `prog` over structure-of-arrays terminal columns:
    /// `columns[t][row]` is terminal `t`'s value for candidate `row`.
    /// Writes one score per row into `out` (cleared first). Row `i` is
    /// bit-identical to a scalar [`CompiledEvaluator::eval`] on row `i`'s
    /// terminal values, and charges `rows × source_len` nodes — exactly
    /// what the interpreter would have charged scoring the same
    /// candidates one by one.
    pub fn eval_batch(
        &mut self,
        prog: &CompiledProgram,
        columns: &[&[f64]],
        rows: usize,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        self.nodes += prog.source_len * rows as u64;
        if rows == 0 {
            return;
        }
        debug_assert!(columns.iter().all(|c| c.len() >= rows), "short terminal column");
        let nr = prog.num_regs as usize;
        self.regs.clear();
        self.regs.resize(nr * rows, 0.0);
        for instr in &prog.instrs {
            run_instr(instr, &mut self.regs, columns, rows);
        }
        out.reserve(rows);
        match prog.result {
            Src::Reg(r) => out.extend_from_slice(&self.regs[r as usize * rows..][..rows]),
            Src::Term(t) => {
                out.extend(columns[t as usize][..rows].iter().map(|&v| sanitize(v)))
            }
            Src::Const(c) => out.extend(std::iter::repeat_n(c, rows)),
        }
    }
}

#[inline(always)]
fn fetch_scalar(src: Src, regs: &[f64], terminal_values: &[f64]) -> f64 {
    match src {
        Src::Reg(r) => regs[r as usize],
        Src::Term(t) => sanitize(terminal_values[t as usize]),
        Src::Const(c) => c,
    }
}

/// A batched instruction operand, resolved outside the row loop. Register
/// operands are already sanitized (written by a previous instruction);
/// terminal columns sanitize on read.
enum Col<'a> {
    Reg(&'a [f64]),
    Term(&'a [f64]),
    Const(f64),
}

/// The row block of register `r` in a register file split around
/// destination block `d`: `lo` holds registers `0..d`, `hi` holds
/// registers `d+1..`.
fn reg_block<'a>(lo: &'a [f64], hi: &'a [f64], d: usize, rows: usize, r: usize) -> &'a [f64] {
    debug_assert_ne!(r, d, "operand register aliases destination");
    if r < d {
        &lo[r * rows..(r + 1) * rows]
    } else {
        &hi[(r - d - 1) * rows..(r - d) * rows]
    }
}

/// Lane width of the chunked batch kernels. Eight `f64` lanes fill two
/// AVX2 registers (four NEON ones); [`zip1`]/[`zip2`] process the bulk of
/// each column in exact chunks of this width so LLVM unrolls and
/// autovectorizes the inner loop, with a scalar tail for the remainder.
const LANES: usize = 8;

/// Chunked elementwise map `dst[i] = g(s[i])`. Pure per-element — the
/// chunking changes instruction scheduling only, never values, so every
/// row stays bit-identical to the scalar loop it replaces.
#[inline(always)]
fn zip1(dst: &mut [f64], s: &[f64], g: impl Fn(f64) -> f64) {
    let n = dst.len();
    let head = n - n % LANES;
    let (dh, dt) = dst.split_at_mut(head);
    for (dc, sc) in dh.chunks_exact_mut(LANES).zip(s[..head].chunks_exact(LANES)) {
        for k in 0..LANES {
            dc[k] = g(sc[k]);
        }
    }
    for (d, &x) in dt.iter_mut().zip(&s[head..n]) {
        *d = g(x);
    }
}

/// Chunked elementwise zip `dst[i] = g(s[i], t[i])`; same bit-identity
/// argument as [`zip1`].
#[inline(always)]
fn zip2(dst: &mut [f64], s: &[f64], t: &[f64], g: impl Fn(f64, f64) -> f64) {
    let n = dst.len();
    let head = n - n % LANES;
    let (dh, dt) = dst.split_at_mut(head);
    for ((dc, sc), tc) in dh
        .chunks_exact_mut(LANES)
        .zip(s[..head].chunks_exact(LANES))
        .zip(t[..head].chunks_exact(LANES))
    {
        for k in 0..LANES {
            dc[k] = g(sc[k], tc[k]);
        }
    }
    for ((d, &x), &y) in dt.iter_mut().zip(&s[head..n]).zip(&t[head..n]) {
        *d = g(x, y);
    }
}

fn run_instr(instr: &Instr, regs: &mut [f64], columns: &[&[f64]], rows: usize) {
    let d = instr.dst as usize;
    // Registers are row-major per register: register r occupies
    // `regs[r*rows .. (r+1)*rows]`. The allocator guarantees a
    // destination never aliases its operands, so cut the file into the
    // mutable dst block plus shared everything-else.
    let (lo, rest) = regs.split_at_mut(d * rows);
    let (dst, hi) = rest.split_at_mut(rows);
    let (lo, hi) = (&*lo, &*hi);
    if let Opcode::CallUnary(f) = instr.op {
        match instr.a {
            Src::Reg(r) => {
                let s = reg_block(lo, hi, d, rows, r as usize);
                zip1(&mut dst[..rows], &s[..rows], |x| sanitize(f(x)));
            }
            Src::Term(t) => {
                let s = &columns[t as usize][..rows];
                zip1(&mut dst[..rows], s, |x| sanitize(f(sanitize(x))));
            }
            Src::Const(c) => {
                let v = sanitize(f(c));
                dst[..rows].fill(v);
            }
        }
        return;
    }
    let col = |src: Src| match src {
        Src::Reg(r) => Col::Reg(reg_block(lo, hi, d, rows, r as usize)),
        Src::Term(t) => Col::Term(columns[t as usize]),
        Src::Const(c) => Col::Const(c),
    };
    let a = col(instr.a);
    let b = col(instr.b);
    match instr.op {
        Opcode::Add => run_binary(dst, a, b, rows, |x, y| x + y),
        Opcode::Sub => run_binary(dst, a, b, rows, |x, y| x - y),
        Opcode::Mul => run_binary(dst, a, b, rows, |x, y| x * y),
        Opcode::PDiv => run_binary(dst, a, b, rows, protected_div),
        Opcode::PMod => run_binary(dst, a, b, rows, protected_mod),
        Opcode::CallBinary(f) => run_binary(dst, a, b, rows, f),
        Opcode::CallUnary(_) => unreachable!("handled above"),
    }
}

/// Monomorphized per operator, with the operand-kind dispatch hoisted out
/// of the row loop: each of the nine (a, b) shapes routes into the
/// chunked [`zip1`]/[`zip2`] kernels with its load transforms baked in.
#[inline(always)]
fn run_binary(
    dst: &mut [f64],
    a: Col<'_>,
    b: Col<'_>,
    rows: usize,
    f: impl Fn(f64, f64) -> f64,
) {
    // Re-slice every operand to exactly `rows` so the bounds checks hoist
    // out of the loops below.
    let dst = &mut dst[..rows];
    let a = match a {
        Col::Reg(s) => Col::Reg(&s[..rows]),
        Col::Term(s) => Col::Term(&s[..rows]),
        other => other,
    };
    let b = match b {
        Col::Reg(s) => Col::Reg(&s[..rows]),
        Col::Term(s) => Col::Term(&s[..rows]),
        other => other,
    };
    match (a, b) {
        (Col::Reg(s), Col::Reg(t)) => zip2(dst, s, t, |x, y| sanitize(f(x, y))),
        (Col::Reg(s), Col::Term(t)) => zip2(dst, s, t, |x, y| sanitize(f(x, sanitize(y)))),
        (Col::Reg(s), Col::Const(c)) => zip1(dst, s, |x| sanitize(f(x, c))),
        (Col::Term(s), Col::Reg(t)) => zip2(dst, s, t, |x, y| sanitize(f(sanitize(x), y))),
        (Col::Term(s), Col::Term(t)) => {
            zip2(dst, s, t, |x, y| sanitize(f(sanitize(x), sanitize(y))))
        }
        (Col::Term(s), Col::Const(c)) => zip1(dst, s, |x| sanitize(f(sanitize(x), c))),
        (Col::Const(ca), Col::Reg(t)) => zip1(dst, t, |y| sanitize(f(ca, y))),
        (Col::Const(ca), Col::Term(t)) => zip1(dst, t, |y| sanitize(f(ca, sanitize(y)))),
        // Cannot occur (constant operands fold at compile time), but the
        // kernel stays total.
        (Col::Const(ca), Col::Const(cb)) => {
            let v = sanitize(f(ca, cb));
            dst.fill(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::CLAMP;
    use crate::Evaluator;

    fn ps2() -> PrimitiveSet {
        let mut ps = PrimitiveSet::arithmetic();
        ps.add_terminal("a");
        ps.add_terminal("b");
        ps
    }

    #[test]
    fn compile_rejects_malformed() {
        let ps = ps2();
        let e = Expr::from_nodes(vec![Node::Op(0), Node::Term(0)]);
        assert_eq!(CompiledProgram::compile(&e, &ps).unwrap_err(), TreeError::Malformed);
    }

    #[test]
    fn scalar_matches_interpreter_on_nested_tree() {
        let ps = ps2();
        // (a + b) * (a - b)
        let e = Expr::from_nodes(vec![
            Node::Op(2),
            Node::Op(0),
            Node::Term(0),
            Node::Term(1),
            Node::Op(1),
            Node::Term(0),
            Node::Term(1),
        ]);
        let prog = CompiledProgram::compile(&e, &ps).unwrap();
        let mut cev = CompiledEvaluator::new();
        let mut iev = Evaluator::new();
        for tv in [[5.0, 3.0], [0.0, 0.0], [-2.5, 7.0], [1e200, 1e200], [f64::NAN, 1.0]] {
            let c = cev.eval(&prog, &tv);
            let i = iev.eval(&e, &ps, &tv);
            assert_eq!(c.to_bits(), i.to_bits(), "tv={tv:?}");
        }
    }

    #[test]
    fn constant_subtrees_fold() {
        let ps = ps2();
        // (2 + 3) * a → one instruction, const operand 5.
        let e = Expr::from_nodes(vec![
            Node::Op(2),
            Node::Op(0),
            Node::Const(2.0),
            Node::Const(3.0),
            Node::Term(0),
        ]);
        let prog = CompiledProgram::compile(&e, &ps).unwrap();
        assert_eq!(prog.num_instructions(), 1);
        assert_eq!(CompiledEvaluator::new().eval(&prog, &[4.0, 0.0]), 20.0);
    }

    #[test]
    fn fully_constant_tree_folds_to_immediate() {
        let ps = ps2();
        // (2 * 3) - 1 → constant 5, zero instructions.
        let e = Expr::from_nodes(vec![
            Node::Op(1),
            Node::Op(2),
            Node::Const(2.0),
            Node::Const(3.0),
            Node::Const(1.0),
        ]);
        let prog = CompiledProgram::compile(&e, &ps).unwrap();
        assert_eq!(prog.num_instructions(), 0);
        assert_eq!(prog.as_const(), Some(5.0));
        assert_eq!(CompiledEvaluator::new().eval(&prog, &[0.0, 0.0]), 5.0);
    }

    #[test]
    fn folding_applies_sanitize_like_interpreter() {
        let ps = ps2();
        // 1e200 * 1e200 folded must clamp exactly as the interpreter does.
        let e = Expr::from_nodes(vec![Node::Op(2), Node::Const(1e200), Node::Const(1e200)]);
        let prog = CompiledProgram::compile(&e, &ps).unwrap();
        assert_eq!(prog.as_const(), Some(CLAMP));
        let i = Evaluator::new().eval(&e, &ps, &[]);
        assert_eq!(prog.as_const().unwrap().to_bits(), i.to_bits());
    }

    #[test]
    fn terminal_only_program_sanitizes_on_read() {
        let ps = ps2();
        let e = Expr::terminal(1);
        let prog = CompiledProgram::compile(&e, &ps).unwrap();
        assert_eq!(prog.num_instructions(), 0);
        let mut cev = CompiledEvaluator::new();
        assert_eq!(cev.eval(&prog, &[0.0, f64::INFINITY]), CLAMP);
        assert_eq!(cev.eval(&prog, &[0.0, f64::NAN]), 0.0);
    }

    #[test]
    fn batch_rows_match_scalar() {
        let ps = ps2();
        // a % (b - 0.5)
        let e = Expr::from_nodes(vec![
            Node::Op(3),
            Node::Term(0),
            Node::Op(1),
            Node::Term(1),
            Node::Const(0.5),
        ]);
        let prog = CompiledProgram::compile(&e, &ps).unwrap();
        let col_a = [1.0, 2.0, f64::NAN, 1e300, -7.5];
        let col_b = [0.5, 0.5 + 1e-12, 3.0, f64::NEG_INFINITY, 0.25];
        let mut cev = CompiledEvaluator::new();
        let mut out = Vec::new();
        cev.eval_batch(&prog, &[&col_a, &col_b], 5, &mut out);
        assert_eq!(out.len(), 5);
        let mut scalar = CompiledEvaluator::new();
        for row in 0..5 {
            let s = scalar.eval(&prog, &[col_a[row], col_b[row]]);
            assert_eq!(out[row].to_bits(), s.to_bits(), "row {row}");
        }
    }

    #[test]
    fn batch_handles_zero_rows_and_const_program() {
        let ps = ps2();
        let prog = CompiledProgram::compile(&Expr::constant(2.5), &ps).unwrap();
        let mut cev = CompiledEvaluator::new();
        let mut out = vec![9.0; 4];
        cev.eval_batch(&prog, &[&[], &[]], 0, &mut out);
        assert!(out.is_empty());
        cev.eval_batch(&prog, &[&[0.0; 3], &[0.0; 3]], 3, &mut out);
        assert_eq!(out, vec![2.5, 2.5, 2.5]);
    }

    #[test]
    fn node_accounting_matches_interpreter() {
        let ps = ps2();
        // (2 + 3) * a: folding removes an instruction, but accounting
        // still charges all 5 source nodes per evaluation.
        let e = Expr::from_nodes(vec![
            Node::Op(2),
            Node::Op(0),
            Node::Const(2.0),
            Node::Const(3.0),
            Node::Term(0),
        ]);
        let prog = CompiledProgram::compile(&e, &ps).unwrap();
        let mut cev = CompiledEvaluator::new();
        cev.eval(&prog, &[1.0, 0.0]);
        assert_eq!(cev.nodes_evaluated(), 5);
        let mut out = Vec::new();
        cev.eval_batch(&prog, &[&[1.0; 4], &[0.0; 4]], 4, &mut out);
        assert_eq!(cev.nodes_evaluated(), 5 + 4 * 5);
        let mut iev = Evaluator::new();
        for _ in 0..5 {
            iev.eval(&e, &ps, &[1.0, 0.0]);
        }
        assert_eq!(cev.nodes_evaluated(), iev.nodes_evaluated());
        cev.reset_node_count();
        assert_eq!(cev.nodes_evaluated(), 0);
    }

    #[test]
    fn duplicate_subtrees_compile_once() {
        let ps = ps2();
        // (a + b) * (a + b): CSE emits the shared Add once, so the whole
        // tree is two instructions, and the Mul reads the same register
        // for both operands.
        let e = Expr::from_nodes(vec![
            Node::Op(2),
            Node::Op(0),
            Node::Term(0),
            Node::Term(1),
            Node::Op(0),
            Node::Term(0),
            Node::Term(1),
        ]);
        let prog = CompiledProgram::compile(&e, &ps).unwrap();
        assert_eq!(prog.num_instructions(), 2);
        let mut cev = CompiledEvaluator::new();
        let mut iev = Evaluator::new();
        for tv in [[5.0, 3.0], [f64::NAN, 1.0], [1e200, 1e200], [-0.0, 0.0]] {
            assert_eq!(
                cev.eval(&prog, &tv).to_bits(),
                iev.eval(&e, &ps, &tv).to_bits(),
                "tv={tv:?}"
            );
        }
        // Batch path with a shared register on both operand positions.
        let col_a = [5.0, f64::NAN, 1e300, -2.5];
        let col_b = [3.0, 1.0, 1e300, 0.25];
        let mut out = Vec::new();
        cev.eval_batch(&prog, &[&col_a, &col_b], 4, &mut out);
        for row in 0..4 {
            let s = iev.eval(&e, &ps, &[col_a[row], col_b[row]]);
            assert_eq!(out[row].to_bits(), s.to_bits(), "row {row}");
        }
    }

    #[test]
    fn node_accounting_charges_source_len_under_cse() {
        let ps = ps2();
        // (a + b) * (a + b): 7 source nodes, 2 instructions after CSE.
        // Every evaluation must still charge the full 7 nodes so budgets
        // stay comparable with the interpreter.
        let e = Expr::from_nodes(vec![
            Node::Op(2),
            Node::Op(0),
            Node::Term(0),
            Node::Term(1),
            Node::Op(0),
            Node::Term(0),
            Node::Term(1),
        ]);
        let prog = CompiledProgram::compile(&e, &ps).unwrap();
        assert!(prog.num_instructions() < e.len());
        let mut cev = CompiledEvaluator::new();
        cev.eval(&prog, &[1.0, 2.0]);
        assert_eq!(cev.nodes_evaluated(), 7);
        let mut out = Vec::new();
        cev.eval_batch(&prog, &[&[1.0; 3], &[2.0; 3]], 3, &mut out);
        assert_eq!(cev.nodes_evaluated(), 7 + 3 * 7);
    }

    #[test]
    fn registers_are_reused_after_last_use() {
        let ps = ps2();
        // Left-deep chain (((a+b)+b)+b): each sum dies feeding the next,
        // so linear scan needs only two physical registers.
        let left = Expr::from_nodes(vec![
            Node::Op(0),
            Node::Op(0),
            Node::Op(0),
            Node::Term(0),
            Node::Term(1),
            Node::Term(1),
            Node::Term(1),
        ]);
        let prog = CompiledProgram::compile(&left, &ps).unwrap();
        assert_eq!(prog.num_instructions(), 3);
        assert!(prog.num_regs() <= 2, "num_regs={}", prog.num_regs());
    }

    #[test]
    fn structural_key_distinguishes_trees() {
        let shared = Expr::from_nodes(vec![Node::Op(0), Node::Term(0), Node::Term(1)]);
        assert_eq!(structural_key(&shared), structural_key(&shared.clone()));
        let other = Expr::from_nodes(vec![Node::Op(1), Node::Term(0), Node::Term(1)]);
        assert_ne!(structural_key(&shared), structural_key(&other));
        // Constants are compared by bit pattern: -0.0 and 0.0 differ.
        let zp = Expr::constant(0.0);
        let zn = Expr::constant(-0.0);
        assert_ne!(structural_key(&zp), structural_key(&zn));
        // Prefix-code injectivity: a const node cannot be confused with
        // the node whose tag word follows it.
        let c = Expr::constant(f64::from_bits((1u64 << 32) | 7));
        let t = Expr::from_nodes(vec![Node::Op(0), Node::Term(0), Node::Const(0.5)]);
        assert_ne!(structural_key(&c), structural_key(&t));
    }

    #[test]
    fn custom_unary_op_falls_back_to_call() {
        let mut ps = PrimitiveSet::arithmetic();
        let neg = ps.add_unary("neg", |a| -a) as u16;
        ps.add_terminal("a");
        // neg(a + 1)
        let e =
            Expr::from_nodes(vec![Node::Op(neg), Node::Op(0), Node::Term(0), Node::Const(1.0)]);
        let prog = CompiledProgram::compile(&e, &ps).unwrap();
        let mut cev = CompiledEvaluator::new();
        let mut iev = Evaluator::new();
        for tv in [[4.0], [f64::INFINITY], [-0.0]] {
            assert_eq!(
                cev.eval(&prog, &tv).to_bits(),
                iev.eval(&e, &ps, &tv).to_bits(),
                "tv={tv:?}"
            );
        }
        // Unary batch path, including the folded-const case neg(2).
        let folded = Expr::from_nodes(vec![Node::Op(neg), Node::Const(2.0)]);
        let fprog = CompiledProgram::compile(&folded, &ps).unwrap();
        assert_eq!(fprog.as_const(), Some(-2.0));
        let col = [1.0, -3.0, f64::NAN];
        let mut out = Vec::new();
        cev.eval_batch(&prog, &[&col], 3, &mut out);
        for row in 0..3 {
            let s = iev.eval(&e, &ps, &[col[row]]);
            assert_eq!(out[row].to_bits(), s.to_bits(), "row {row}");
        }
    }

    #[test]
    fn deep_chain_register_allocation() {
        let ps = ps2();
        // Right-deep chain a + (a + (a + (a + b))) exercises allocation
        // under pending operands.
        let mut nodes = Vec::new();
        for _ in 0..4 {
            nodes.push(Node::Op(0));
            nodes.push(Node::Term(0));
        }
        nodes.push(Node::Term(1));
        let e = Expr::from_nodes(nodes);
        let prog = CompiledProgram::compile(&e, &ps).unwrap();
        assert!(prog.num_regs() >= 1);
        let mut cev = CompiledEvaluator::new();
        let mut iev = Evaluator::new();
        let tv = [1.5, 2.25];
        assert_eq!(cev.eval(&prog, &tv).to_bits(), iev.eval(&e, &ps, &tv).to_bits());
        // Left-deep chain (((a+b)+b)+b) too.
        let left = Expr::from_nodes(vec![
            Node::Op(0),
            Node::Op(0),
            Node::Op(0),
            Node::Term(0),
            Node::Term(1),
            Node::Term(1),
            Node::Term(1),
        ]);
        let lprog = CompiledProgram::compile(&left, &ps).unwrap();
        assert_eq!(cev.eval(&lprog, &tv).to_bits(), iev.eval(&left, &ps, &tv).to_bits());
    }
}
