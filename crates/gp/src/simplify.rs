//! Algebraic simplification of evolved trees.
//!
//! GP notoriously bloats: `(c - 0·(q mod q)) + 0` should be reported to a
//! user as `c`. This module performs bottom-up constant folding plus a set
//! of *exact* identity rewrites — exact in the sense that they preserve
//! evaluation semantics bit-for-bit under the evaluator's sanitization
//! rules (see the property test in `tests/proptests.rs`):
//!
//! * `x + 0 → x`, `0 + x → x`, `x − 0 → x`, `x − x → 0`
//! * `x * 1 → x`, `1 * x → x`, `x * 0 → 0`, `0 * x → 0`
//! * `x % 1 → x` (protected division), `x % x → 1`
//!   (protected division returns 1 both when `|x| < ε` and when `x/x = 1`)
//!
//! Simplification only applies the named-operator rewrites when the
//! operator resolves to the arithmetic preset's semantics; custom
//! primitive sets still benefit from constant folding.

use crate::primitives::{OpFn, PrimitiveSet};
use crate::tree::{sanitize, Expr, Node};

/// Simplify `expr` until a fixpoint (bounded number of passes).
pub fn simplify(expr: &Expr, ps: &PrimitiveSet) -> Expr {
    let mut current = expr.clone();
    for _ in 0..8 {
        let next = simplify_once(&current, ps);
        if next == current {
            break;
        }
        current = next;
    }
    current
}

fn simplify_once(expr: &Expr, ps: &PrimitiveSet) -> Expr {
    let (nodes, consumed) = simp(expr.nodes(), 0, ps);
    debug_assert_eq!(consumed, expr.len());
    Expr::from_nodes(nodes)
}

/// Returns the simplified subtree rooted at `at` and the index just past
/// that subtree in the original buffer.
fn simp(nodes: &[Node], at: usize, ps: &PrimitiveSet) -> (Vec<Node>, usize) {
    match nodes[at] {
        Node::Term(_) | Node::Const(_) => (vec![nodes[at]], at + 1),
        Node::Op(id) => {
            let op = &ps.ops()[id as usize];
            match op.func {
                OpFn::Unary(f) => {
                    let (arg, next) = simp(nodes, at + 1, ps);
                    if let [Node::Const(v)] = arg.as_slice() {
                        return (vec![Node::Const(sanitize(f(*v)))], next);
                    }
                    let mut out = vec![Node::Op(id)];
                    out.extend(arg);
                    (out, next)
                }
                OpFn::Binary(f) => {
                    let (lhs, mid) = simp(nodes, at + 1, ps);
                    let (rhs, next) = simp(nodes, mid, ps);
                    // Constant folding.
                    if let ([Node::Const(a)], [Node::Const(b)]) =
                        (lhs.as_slice(), rhs.as_slice())
                    {
                        return (
                            vec![Node::Const(sanitize(f(sanitize(*a), sanitize(*b))))],
                            next,
                        );
                    }
                    // Identity rewrites keyed on the arithmetic preset names.
                    if let Some(rewritten) = rewrite(&op.name, &lhs, &rhs) {
                        return (rewritten, next);
                    }
                    let mut out = vec![Node::Op(id)];
                    out.extend(lhs);
                    out.extend(rhs);
                    (out, next)
                }
            }
        }
    }
}

fn is_const(nodes: &[Node], v: f64) -> bool {
    matches!(nodes, [Node::Const(c)] if *c == v)
}

fn rewrite(op: &str, lhs: &[Node], rhs: &[Node]) -> Option<Vec<Node>> {
    match op {
        "+" => {
            if is_const(rhs, 0.0) {
                return Some(lhs.to_vec());
            }
            if is_const(lhs, 0.0) {
                return Some(rhs.to_vec());
            }
            None
        }
        "-" => {
            if is_const(rhs, 0.0) {
                return Some(lhs.to_vec());
            }
            if lhs == rhs {
                return Some(vec![Node::Const(0.0)]);
            }
            None
        }
        "*" => {
            if is_const(rhs, 1.0) {
                return Some(lhs.to_vec());
            }
            if is_const(lhs, 1.0) {
                return Some(rhs.to_vec());
            }
            if is_const(rhs, 0.0) || is_const(lhs, 0.0) {
                return Some(vec![Node::Const(0.0)]);
            }
            None
        }
        "%" => {
            if is_const(rhs, 1.0) {
                return Some(lhs.to_vec());
            }
            if lhs == rhs {
                // x/x = 1 for finite x, and the protected branch also
                // returns 1 when |x| < ε: exact.
                return Some(vec![Node::Const(1.0)]);
            }
            None
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Evaluator;

    fn ps() -> PrimitiveSet {
        let mut ps = PrimitiveSet::arithmetic();
        ps.add_terminal("a");
        ps.add_terminal("b");
        ps
    }

    fn t(id: u16) -> Node {
        Node::Term(id)
    }

    #[test]
    fn folds_constants() {
        let ps = ps();
        // (2 + 3) * 4 → 20
        let e = Expr::from_nodes(vec![
            Node::Op(2),
            Node::Op(0),
            Node::Const(2.0),
            Node::Const(3.0),
            Node::Const(4.0),
        ]);
        assert_eq!(simplify(&e, &ps), Expr::constant(20.0));
    }

    #[test]
    fn add_zero_elided() {
        let ps = ps();
        let e = Expr::from_nodes(vec![Node::Op(0), t(0), Node::Const(0.0)]);
        assert_eq!(simplify(&e, &ps), Expr::terminal(0));
        let e = Expr::from_nodes(vec![Node::Op(0), Node::Const(0.0), t(1)]);
        assert_eq!(simplify(&e, &ps), Expr::terminal(1));
    }

    #[test]
    fn sub_self_is_zero() {
        let ps = ps();
        // (a + b) - (a + b) → 0
        let sum = vec![Node::Op(0), t(0), t(1)];
        let mut nodes = vec![Node::Op(1)];
        nodes.extend(sum.clone());
        nodes.extend(sum);
        let e = Expr::from_nodes(nodes);
        assert_eq!(simplify(&e, &ps), Expr::constant(0.0));
    }

    #[test]
    fn mul_zero_collapses() {
        let ps = ps();
        let e = Expr::from_nodes(vec![Node::Op(2), t(0), Node::Const(0.0)]);
        assert_eq!(simplify(&e, &ps), Expr::constant(0.0));
    }

    #[test]
    fn div_self_is_one() {
        let ps = ps();
        let e = Expr::from_nodes(vec![Node::Op(3), t(0), t(0)]);
        assert_eq!(simplify(&e, &ps), Expr::constant(1.0));
    }

    #[test]
    fn protected_div_by_zero_folds_to_one() {
        let ps = ps();
        let e = Expr::from_nodes(vec![Node::Op(3), Node::Const(5.0), Node::Const(0.0)]);
        assert_eq!(simplify(&e, &ps), Expr::constant(1.0));
    }

    #[test]
    fn nested_simplification_reaches_fixpoint() {
        let ps = ps();
        // ((a - a) * b) + a  →  a
        let e = Expr::from_nodes(vec![
            Node::Op(0),
            Node::Op(2),
            Node::Op(1),
            t(0),
            t(0),
            t(1),
            t(0),
        ]);
        assert_eq!(simplify(&e, &ps), Expr::terminal(0));
    }

    #[test]
    fn simplified_semantics_match_on_samples() {
        let ps = ps();
        let e = Expr::from_nodes(vec![
            Node::Op(0),
            Node::Op(2),
            Node::Op(1),
            t(0),
            t(0),
            t(1),
            Node::Op(4), // mod
            t(0),
            t(1),
        ]);
        let s = simplify(&e, &ps);
        let mut ev = Evaluator::new();
        for &(a, b) in &[(0.0, 0.0), (1.5, -3.0), (7.0, 2.0), (-4.0, 0.5)] {
            assert_eq!(ev.eval(&e, &ps, &[a, b]), ev.eval(&s, &ps, &[a, b]));
        }
    }

    #[test]
    fn untouched_tree_is_returned_as_is() {
        let ps = ps();
        let e = Expr::from_nodes(vec![Node::Op(0), t(0), t(1)]);
        assert_eq!(simplify(&e, &ps), e);
    }
}
