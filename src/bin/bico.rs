//! `bico` — command-line interface to the bi-level co-evolution library.
//!
//! ```text
//! bico generate  --bundles 100 --services 10 --seed 42 [--tightness 0.25] [--out inst.bcpop]
//! bico run       carbon|cobra|nested [--instance F | --class 100x10] [--seed S]
//!                [--evals N] [--pop P] [--strategy plain|shared|hof]
//!                [--share-margin M] [--heuristic-out h.sexpr]
//!                [--trace-out run.jsonl] [--metrics-out metrics.json]
//!                [--prom-out metrics.prom] [--log-level info]
//! bico run       maximin [--dim D] [--gens G] [--pop P] [--seed S]
//!                [--strategy plain|shared|hof] [--win-margin M]
//!                [--trace-out run.jsonl]
//! bico compare   [--class 100x10] [--runs R] [--seed S] [--evals N] [--pop P]
//!                [--trace-out run.jsonl] [--metrics-out metrics.json]
//!                [--prom-out metrics.prom] [--log-level info]
//! bico eval      --sexpr "(+ c_j (% c_j q_res))" [--instance F | --class 100x10]
//! bico trace     run.jsonl [other.jsonl] [--json]  # tables, pathologies, run diff
//! bico linear    # the Mersha–Dempe toy: grid scan + exact KKT solve
//! ```

use bico::bcpop::{
    bcpop_primitives, generate, greedy_cover, greedy_cover_batched, read_instance,
    write_instance, BcpopInstance, CompiledGpScorer, CostPerCoverageScorer, GeneratorConfig,
    GpScorer, RelaxationSolver,
};
use bico::cobra::{Cobra, CobraConfig, NestedConfig, NestedSequential};
use bico::core::{
    program3, solve_kkt, BilinearProblem, Carbon, CarbonConfig, CoevStrategy, MaximinCoev,
    MaximinConfig, SurrogateGate, TieBreak,
};
use bico::ea::cache::EvictionPolicy;
use bico::ea::hypothesis::mann_whitney_u;
use bico::gp::{parse_sexpr, to_sexpr};
use bico::obs::{
    JsonlSink, LogLevel, MetricsSink, Observers, ProgressSink, PrometheusSink, RunObserver,
};
use bico::trace_cmd::{self, TraceArgs};
use std::process::exit;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        exit(2);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "run" => cmd_run(rest),
        "compare" => cmd_compare(rest),
        "eval" => cmd_eval(rest),
        "trace" => cmd_trace(rest),
        "linear" => cmd_linear(),
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown command {other:?}");
            usage();
            exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "bico — bi-level co-evolution (CARBON / COBRA / nested) on the cloud-pricing problem

USAGE:
  bico generate --bundles N --services M [--seed S] [--tightness T] [--own F] [--out FILE]
  bico run <carbon|cobra|nested> [--instance FILE | --class NxM] [--seed S]
           [--evals N] [--pop P] [--strategy plain|shared|hof] [--share-margin M]
           [--ll-cache-capacity C] [--compiled-eval BOOL]
           [--gp-compile-cache BOOL] [--decode-cache BOOL]
           [--surrogate off|topk[:FRAC[:EXPLORE]]] [--surrogate-topk FRAC]
           [--cache-eviction fifo|clock] [--heuristic-out FILE]
           [--trace-out FILE.jsonl] [--metrics-out FILE.json] [--prom-out FILE.prom]
           [--log-level LEVEL]
  bico run maximin [--dim D] [--gens G] [--pop P] [--seed S]
           [--strategy plain|shared|hof] [--win-margin M]
           [--trace-out FILE.jsonl] [--metrics-out FILE.json] [--log-level LEVEL]
  bico compare [--class NxM] [--runs R] [--seed S] [--evals N] [--pop P]
           [--ll-cache-capacity C] [--compiled-eval BOOL] [--gp-compile-cache BOOL]
           [--decode-cache BOOL] [--surrogate off|topk[:FRAC[:EXPLORE]]]
           [--cache-eviction fifo|clock]
           [--trace-out FILE.jsonl] [--metrics-out FILE.json] [--prom-out FILE.prom]
           [--log-level LEVEL]
  bico eval --sexpr EXPR [--instance FILE | --class NxM] [--seed S]
           [--compiled-eval BOOL]
  bico trace FILE.jsonl [FILE2.jsonl] [--json] [--stagnation-window W]
           [--max-rows N]
  bico linear

Observability (run/compare): --trace-out streams one JSON event per line,
--metrics-out writes aggregate counters/timers/latency histograms after
the run, --prom-out writes the same report in the Prometheus text
exposition format, and --log-level (off|error|warn|info|debug|trace;
default from BICO_LOG) controls stderr progress. Observers never alter
results.

bico trace analyzes one or two --trace-out files offline: per-generation
cache-efficiency and timing tables, per-phase wall-clock totals, and
co-evolutionary pathology verdicts (see-saw oscillation, disengagement,
stagnation). With two files it also reports the first semantic
divergence between the runs (timing payloads ignored), which is exactly
'none' for two runs of the same seed and configuration.

--ll-cache-capacity C memoizes lower-level relaxations by the exact bit
pattern of the pricing (C entries, FIFO eviction; 0 = off, the default).
Results are bit-identical with the cache on or off.

--compiled-eval BOOL (default true) scores GP heuristics through the
bytecode-compiled evaluator (with subtree CSE) and the incremental
batched greedy decoder; false falls back to the tree-walking interpreter
with per-step feature recomputation. Results are bit-identical either way.

--gp-compile-cache BOOL (default true; CARBON only, needs compiled-eval)
memoizes compiled GP programs across generations by the tree's exact
structural encoding, so each distinct expression compiles at most once
per run. Results are bit-identical with the cache on or off; hit/miss
counts appear as CompileCacheProbe events and in the metrics report.

--decode-cache BOOL (default true; CARBON only) schedules each
generation's fitness phases as a deduplicated (scorer x pricing)
evaluation matrix and memoizes full lower-level decode outcomes across
generations by the exact (tree structure, pricing bits, mode) key.
Results are bit-identical with the cache on or off; hit/miss counts
appear as DecodeCacheProbe events and in the metrics report.

--surrogate topk[:FRAC[:EXPLORE]] (CARBON only, needs decode-cache)
gates the deduplicated evaluation matrix behind an online rank
surrogate: each generation only the predicted-best FRAC of unique
(scorer x pricing) cells (default 0.25, plus an EXPLORE rotation,
default 0.05, plus the champion/elite rows) decode exactly; the rest
are imputed from predicted rank. Off (the default) is bit-identical to
not having the gate at all; screening stats appear as SurrogateProbe
events, in the metrics report, and in bico trace tables.
--surrogate-topk FRAC overrides the fraction (and implies topk).

--cache-eviction fifo|clock (CARBON only; default fifo) selects the
eviction policy shared by the solve and decode caches: plain FIFO or
CLOCK second-chance, which keeps recently re-used entries resident.
Results are bit-identical under either policy.

--strategy plain|shared|hof (CARBON and maximin) selects the
co-evolution strategy: plain predator-prey scoring, competitive fitness
sharing (credit split among the scorers that beat a per-column
threshold; --share-margin widens it), or hall-of-fame opponent sampling
from the archive of past champions.

bico run maximin evolves leader vs adversary on a synthetic bilinear
maximin game whose equilibrium (and game value) are known in closed
form: plain scoring provably cycles there, shared/hof converge; the
printed equilibrium error is the exact distance from the maximin value.
Traces feed the same bico trace pathology detectors as CARBON runs."
    );
}

/// Sinks requested by `--trace-out` / `--metrics-out` / `--prom-out` /
/// `--log-level`, stacked into one observer plus the handles needed to
/// flush/report after the run.
struct ObsSetup {
    observers: Observers,
    jsonl: Option<JsonlSink>,
    metrics: Option<Arc<MetricsSink>>,
    metrics_out: Option<String>,
    prom_out: Option<String>,
}

fn obs_setup(args: &[String]) -> ObsSetup {
    let level = opt(args, "--log-level")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(LogLevel::from_env);
    let mut observers = Observers::new();
    let mut jsonl = None;
    if let Some(path) = opt(args, "--trace-out") {
        match JsonlSink::create(&path) {
            Ok(sink) => {
                jsonl = Some(sink.clone());
                observers.push(Box::new(sink));
            }
            Err(e) => eprintln!("cannot create trace file {path}: {e} (tracing disabled)"),
        }
    }
    let metrics_out = opt(args, "--metrics-out");
    let prom_out = opt(args, "--prom-out");
    // One shared MetricsSink feeds both the JSON and Prometheus reports.
    let metrics = (metrics_out.is_some() || prom_out.is_some()).then(|| {
        let sink = Arc::new(MetricsSink::new());
        observers.push(Box::new(sink.clone()));
        sink
    });
    let progress = ProgressSink::stderr(level);
    if progress.enabled() {
        observers.push(Box::new(progress));
    }
    ObsSetup { observers, jsonl, metrics, metrics_out, prom_out }
}

impl ObsSetup {
    /// Flush the trace file and write the metrics reports, if requested.
    fn finish(&self) {
        if let Some(sink) = &self.jsonl {
            let _ = sink.flush();
        }
        let Some(metrics) = &self.metrics else {
            return;
        };
        if let Some(path) = &self.metrics_out {
            let json = metrics.report().to_json();
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("cannot write {path}: {e}");
            }
        }
        if let Some(path) = &self.prom_out {
            let prom = PrometheusSink::sharing(metrics.clone());
            if let Err(e) = prom.write_to(path) {
                eprintln!("cannot write {path}: {e}");
            }
        }
    }
}

/// Pull `--key value` from an argument list; returns the value.
fn opt(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).cloned()
}

fn opt_parse<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    opt(args, key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// `--gp-compile-cache BOOL` (default true) → the config's capacity:
/// the default capacity when on, `0` (disabled) when off.
fn gp_compile_cache_capacity(args: &[String]) -> usize {
    if opt_parse(args, "--gp-compile-cache", true) {
        CarbonConfig::default().gp_compile_cache_capacity
    } else {
        0
    }
}

/// `--decode-cache BOOL` (default true) → (`eval_matrix`,
/// `decode_cache_capacity`): matrix scheduling with the default capacity
/// when on, the legacy per-slot loop with no cache when off.
fn decode_cache_config(args: &[String]) -> (bool, usize) {
    if opt_parse(args, "--decode-cache", true) {
        (true, CarbonConfig::default().decode_cache_capacity)
    } else {
        (false, 0)
    }
}

/// `--surrogate off|topk[:FRAC[:EXPLORE]]` plus the `--surrogate-topk
/// FRAC` shorthand (which implies `topk`). Exits with the parse error
/// on a malformed spec.
fn surrogate_gate_of(args: &[String]) -> SurrogateGate {
    let mut gate = match opt(args, "--surrogate") {
        Some(v) => v.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2);
        }),
        None => SurrogateGate::Off,
    };
    if let Some(v) = opt(args, "--surrogate-topk") {
        let frac: f64 = v.parse().unwrap_or_else(|_| {
            eprintln!("bad --surrogate-topk {v:?} (expected a fraction in [0, 1])");
            exit(2);
        });
        if !frac.is_finite() || !(0.0..=1.0).contains(&frac) {
            eprintln!("bad --surrogate-topk {v:?} (expected a fraction in [0, 1])");
            exit(2);
        }
        gate = match gate {
            SurrogateGate::TopK { explore, .. } => SurrogateGate::TopK { frac, explore },
            SurrogateGate::Off => {
                let SurrogateGate::TopK { explore, .. } = SurrogateGate::top_k() else {
                    unreachable!("top_k() constructs TopK");
                };
                SurrogateGate::TopK { frac, explore }
            }
        };
    }
    gate
}

/// `--cache-eviction fifo|clock` → the shared eviction policy for the
/// solve and decode caches (exits with the parse error on an unknown
/// name).
fn cache_eviction_of(args: &[String]) -> EvictionPolicy {
    match opt(args, "--cache-eviction") {
        Some(v) => v.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2);
        }),
        None => EvictionPolicy::Fifo,
    }
}

fn class_of(args: &[String]) -> (usize, usize) {
    let spec = opt(args, "--class").unwrap_or_else(|| "100x10".into());
    let mut parts = spec.split(['x', 'X']);
    let n = parts.next().and_then(|v| v.parse().ok()).unwrap_or(100);
    let m = parts.next().and_then(|v| v.parse().ok()).unwrap_or(10);
    (n, m)
}

fn load_instance(args: &[String]) -> BcpopInstance {
    if let Some(path) = opt(args, "--instance") {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1);
        });
        read_instance(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            exit(1);
        })
    } else {
        let (n, m) = class_of(args);
        let seed = opt_parse(args, "--seed", 42u64);
        generate(&GeneratorConfig::paper_class(n, m), seed)
    }
}

fn cmd_generate(args: &[String]) {
    let cfg = GeneratorConfig {
        num_bundles: opt_parse(args, "--bundles", 100usize),
        num_services: opt_parse(args, "--services", 10usize),
        tightness: opt_parse(args, "--tightness", 0.25f64),
        own_fraction: opt_parse(args, "--own", 0.1f64),
        ..Default::default()
    };
    let seed = opt_parse(args, "--seed", 42u64);
    let inst = generate(&cfg, seed);
    let text = write_instance(&inst);
    match opt(args, "--out") {
        Some(path) => {
            std::fs::write(&path, text).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            });
            eprintln!(
                "wrote {path}: {} bundles x {} services, own block {}",
                inst.num_bundles(),
                inst.num_services(),
                inst.num_own()
            );
        }
        None => print!("{text}"),
    }
}

/// `--strategy plain|shared|hof` → the co-evolution strategy (exits
/// with the parse error on an unknown name).
fn strategy_of(args: &[String]) -> CoevStrategy {
    match opt(args, "--strategy") {
        Some(v) => v.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2);
        }),
        None => CoevStrategy::default(),
    }
}

/// `bico run maximin`: the bilinear maximin substrate with a known
/// equilibrium, for watching the co-evolution strategies converge (or
/// provably cycle, for plain predator–prey scoring).
fn cmd_run_maximin(args: &[String]) {
    let dim = opt_parse(args, "--dim", 2usize);
    let seed = opt_parse(args, "--seed", 1u64);
    let strategy = strategy_of(args);
    let cfg = MaximinConfig {
        pop_size: opt_parse(args, "--pop", MaximinConfig::default().pop_size),
        generations: opt_parse(args, "--gens", MaximinConfig::default().generations),
        strategy,
        win_margin: opt_parse(
            args,
            "--win-margin",
            opt_parse(args, "--share-margin", MaximinConfig::default().win_margin),
        ),
        ..Default::default()
    };
    let obs = obs_setup(args);
    let problem = BilinearProblem::symmetric(dim);
    eprintln!(
        "maximin (bilinear dim {dim}, value {}), strategy {}, pop {}, gens {}, seed {seed}",
        problem.equilibrium_value(),
        strategy.as_str(),
        cfg.pop_size,
        cfg.generations,
    );
    let r = MaximinCoev::new(problem, cfg).run_observed(seed, &obs.observers);
    println!("generations        {}", r.generations);
    println!("evaluations        {}", r.evaluations);
    println!("champion payoff    {:.6}", r.champion_payoff);
    println!("equilibrium error  {:.6}", r.equilibrium_error);
    println!(
        "best x             [{}]",
        r.best_x.iter().map(|v| format!("{v:.4}")).collect::<Vec<_>>().join(", ")
    );
    obs.finish();
}

fn cmd_run(args: &[String]) {
    let Some(algo) = args.first() else {
        eprintln!("run: missing algorithm (carbon|cobra|nested|maximin)");
        exit(2);
    };
    // The maximin substrate is synthetic — no BCPOP instance to load.
    if algo == "maximin" || opt(args, "--substrate").as_deref() == Some("maximin") {
        return cmd_run_maximin(&args[1..]);
    }
    let inst = load_instance(args);
    let seed = opt_parse(args, "--seed", 1u64);
    let evals = opt_parse(args, "--evals", 4_000u64);
    let pop = opt_parse(args, "--pop", 24usize);
    let ll_cache_capacity = opt_parse(args, "--ll-cache-capacity", 0usize);
    let compiled_eval = opt_parse(args, "--compiled-eval", true);
    let gp_compile_cache_capacity = gp_compile_cache_capacity(args);
    let (eval_matrix, decode_cache_capacity) = decode_cache_config(args);
    let obs = obs_setup(args);
    eprintln!(
        "{algo} on {}x{} (own {}), budget {evals}+{evals}, pop {pop}, seed {seed}",
        inst.num_bundles(),
        inst.num_services(),
        inst.num_own()
    );

    match algo.as_str() {
        "carbon" => {
            let cfg = CarbonConfig {
                ul_pop_size: pop,
                ll_pop_size: pop,
                ul_archive_size: pop,
                ll_archive_size: pop,
                ul_evaluations: evals,
                ll_evaluations: evals,
                ll_cache_capacity,
                compiled_eval,
                gp_compile_cache_capacity,
                eval_matrix,
                decode_cache_capacity,
                surrogate_gate: surrogate_gate_of(args),
                cache_eviction: cache_eviction_of(args),
                coev_strategy: strategy_of(args),
                share_margin: opt_parse(
                    args,
                    "--share-margin",
                    CarbonConfig::default().share_margin,
                ),
                ..Default::default()
            };
            let solver = Carbon::new(&inst, cfg);
            let r = solver.run_observed(seed, &obs.observers);
            println!("generations      {}", r.generations);
            println!("best UL revenue  {:.2}", r.best_ul_value);
            println!("best %-gap       {:.3}", r.best_gap);
            println!("champion         {}", r.best_heuristic_infix);
            if let Some(path) = opt(args, "--heuristic-out") {
                let text = to_sexpr(&r.best_heuristic, solver.primitives());
                std::fs::write(&path, &text).unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    exit(1);
                });
                eprintln!("saved champion heuristic to {path}");
            }
        }
        "cobra" => {
            let cfg = CobraConfig {
                ul_pop_size: pop,
                ll_pop_size: pop,
                ul_archive_size: pop,
                ll_archive_size: pop,
                ul_evaluations: evals,
                ll_evaluations: evals,
                ll_cache_capacity,
                ..Default::default()
            };
            let r = Cobra::new(&inst, cfg).run_observed(seed, &obs.observers);
            println!("cycles           {}", r.cycles);
            println!("best UL revenue  {:.2}", r.best_ul_value);
            println!("best %-gap       {:.3}", r.best_gap);
        }
        "nested" => {
            let cfg = NestedConfig {
                ul_pop_size: pop.min(16),
                ul_evaluations: (evals / 50).max(10),
                ll_pop_size: pop.min(16),
                ll_gens_per_eval: 8,
                ll_evaluations: evals,
                ll_cache_capacity,
                ..Default::default()
            };
            let r = NestedSequential::new(&inst, cfg).run_observed(seed, &obs.observers);
            println!("UL evals         {}", r.ul_evals_used);
            println!("LL evals         {}", r.ll_evals_used);
            println!("best UL revenue  {:.2}", r.best_ul_value);
            println!("best %-gap       {:.3}", r.best_gap);
        }
        other => {
            eprintln!("unknown algorithm {other:?} (carbon|cobra|nested)");
            exit(2);
        }
    }
    obs.finish();
}

fn cmd_compare(args: &[String]) {
    let inst = load_instance(args);
    let runs = opt_parse(args, "--runs", 5usize);
    let seed = opt_parse(args, "--seed", 1u64);
    let evals = opt_parse(args, "--evals", 4_000u64);
    let pop = opt_parse(args, "--pop", 24usize);
    let ll_cache_capacity = opt_parse(args, "--ll-cache-capacity", 0usize);
    let compiled_eval = opt_parse(args, "--compiled-eval", true);
    let gp_compile_cache_capacity = gp_compile_cache_capacity(args);
    let (eval_matrix, decode_cache_capacity) = decode_cache_config(args);
    let obs = obs_setup(args);
    eprintln!(
        "comparing CARBON vs COBRA on {}x{}: {runs} runs, budget {evals}+{evals}, pop {pop}",
        inst.num_bundles(),
        inst.num_services()
    );

    let mut carbon_gaps = Vec::new();
    let mut cobra_gaps = Vec::new();
    let mut carbon_uls = Vec::new();
    let mut cobra_uls = Vec::new();
    for run in 0..runs as u64 {
        let c = Carbon::new(
            &inst,
            CarbonConfig {
                ul_pop_size: pop,
                ll_pop_size: pop,
                ul_archive_size: pop,
                ll_archive_size: pop,
                ul_evaluations: evals,
                ll_evaluations: evals,
                ll_cache_capacity,
                compiled_eval,
                gp_compile_cache_capacity,
                eval_matrix,
                decode_cache_capacity,
                surrogate_gate: surrogate_gate_of(args),
                cache_eviction: cache_eviction_of(args),
                ..Default::default()
            },
        )
        .run_observed(seed.wrapping_add(run), &obs.observers);
        carbon_gaps.push(c.best_gap);
        carbon_uls.push(c.best_ul_value);
        let b = Cobra::new(
            &inst,
            CobraConfig {
                ul_pop_size: pop,
                ll_pop_size: pop,
                ul_archive_size: pop,
                ll_archive_size: pop,
                ul_evaluations: evals,
                ll_evaluations: evals,
                ll_cache_capacity,
                ..Default::default()
            },
        )
        .run_observed(seed.wrapping_add(run), &obs.observers);
        cobra_gaps.push(b.best_gap);
        cobra_uls.push(b.best_ul_value);
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!("metric        | CARBON      | COBRA");
    println!("--------------|-------------|------------");
    println!("mean %-gap    | {:>11.3} | {:>10.3}", mean(&carbon_gaps), mean(&cobra_gaps));
    println!("mean UL value | {:>11.2} | {:>10.2}", mean(&carbon_uls), mean(&cobra_uls));
    if let Some(t) = mann_whitney_u(&carbon_gaps, &cobra_gaps) {
        println!(
            "rank-sum test on gaps: U = {:.1}, p = {:.2e} ({})",
            t.u,
            t.p_two_sided,
            if t.p_two_sided < 0.05 { "significant" } else { "not significant" }
        );
    }
    obs.finish();
}

fn cmd_eval(args: &[String]) {
    let Some(text) = opt(args, "--sexpr") else {
        eprintln!("eval: missing --sexpr");
        exit(2);
    };
    let ps = bcpop_primitives();
    let expr = parse_sexpr(&text, &ps).unwrap_or_else(|e| {
        eprintln!("cannot parse heuristic: {e}");
        exit(1);
    });
    let inst = load_instance(args);
    let prices = vec![inst.price_cap() / 4.0; inst.num_own()];
    let costs = inst.costs_for(&prices);
    let relax = RelaxationSolver::new(&inst).solve(&costs).unwrap_or_else(|| {
        eprintln!("relaxation failed");
        exit(1);
    });
    let out = if opt_parse(args, "--compiled-eval", true) {
        let mut scorer = CompiledGpScorer::new(&expr, &ps).unwrap_or_else(|e| {
            eprintln!("cannot compile heuristic: {e}");
            exit(1);
        });
        greedy_cover_batched(&inst, &costs, &mut scorer, Some(&relax))
    } else {
        let mut scorer = GpScorer::new(&expr, &ps);
        greedy_cover(&inst, &costs, &mut scorer, Some(&relax))
    };
    let base = greedy_cover(&inst, &costs, &mut CostPerCoverageScorer, Some(&relax));
    println!("heuristic          {}", to_sexpr(&expr, &ps));
    println!("LP bound           {:.2}", relax.lower_bound);
    println!(
        "heuristic cover    {:.2}  (%-gap {:.2})",
        out.cost,
        100.0 * (out.cost - relax.lower_bound) / relax.lower_bound
    );
    println!(
        "cost/coverage ref  {:.2}  (%-gap {:.2})",
        base.cost,
        100.0 * (base.cost - relax.lower_bound) / relax.lower_bound
    );
}

fn cmd_trace(args: &[String]) {
    // Positional operands are the trace files; everything `--`-prefixed
    // (and its value) is an option.
    let mut paths = Vec::new();
    let mut skip = false;
    let mut json = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        match a.as_str() {
            "--json" => json = true,
            "--stagnation-window" | "--max-rows" => skip = true,
            other if other.starts_with("--") => {
                eprintln!("trace: unknown option {other:?}");
                exit(2);
            }
            _ => paths.push(args[i].clone()),
        }
    }
    let targs = TraceArgs {
        paths,
        json,
        stagnation_window: opt_parse(
            args,
            "--stagnation-window",
            TraceArgs::default().stagnation_window,
        ),
        max_rows: opt_parse(args, "--max-rows", TraceArgs::default().max_rows),
    };
    match trace_cmd::build_report(&targs) {
        Ok(report) => print!("{}", trace_cmd::render(&report, &targs)),
        Err(e) => {
            eprintln!("{e}");
            exit(1);
        }
    }
}

fn cmd_linear() {
    let p = program3();
    println!("Program 3 (Mersha–Dempe):");
    let (x, y, f) = p.solve_grid(0.0, 10.0, 4000, TieBreak::Optimistic).unwrap();
    println!("  grid scan:  x = {x:.3}, y = {:.3}, F = {f:.3}", y[0]);
    let kkt = solve_kkt(&p).unwrap();
    println!(
        "  exact KKT:  x = {:.3}, y = {:.3}, F = {:.3}  ({} patterns, {} feasible)",
        kkt.x[0], kkt.y[0], kkt.objective, kkt.patterns_solved, kkt.patterns_feasible
    );
}
