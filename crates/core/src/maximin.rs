//! Maximin substrate: bilinear zero-sum games with analytically known
//! equilibria, co-evolved by the same operator stack as CARBON's upper
//! level.
//!
//! Lehre's runtime analysis of competitive co-evolution ("Runtime
//! Analysis of Competitive co-Evolutionary Algorithms for Maximin
//! Optimisation of a Bilinear Function", PAPERS.md) studies
//!
//! ```text
//! f(x, y) = offset + Σ_i a_i · (x_i − x*_i) · (y_i − y*_i)
//! ```
//!
//! over box domains. When `y*` is strictly interior, `x = x*` is the
//! unique maximin solution with value `offset` — for any other `x` the
//! adversary can push the payoff strictly below `offset` by running the
//! matching `y` coordinates to a box corner — and plain best-response
//! co-evolution provably *cycles* around the saddle instead of
//! converging. That makes this substrate the repo's oracle for the
//! paper's §V.B pathologies: the see-saw and disengagement the trace
//! analyzer detects anecdotally on BCPOP become quantitative,
//! regression-testable facts here, because [`BilinearProblem`] can
//! report the exact distance-to-equilibrium of any candidate.
//!
//! [`MaximinCoev`] co-evolves an `x` (maximin / leader) population
//! against a `y` (minimax / adversary) population under the same three
//! [`CoevStrategy`] variants CARBON exposes. The analytic oracle
//! (`equilibrium_error_x`) is used for *observability only* — traces,
//! `gap_best`, and the regression suite — never for selection.

use crate::carbon::CoevStrategy;
use bico_ea::{
    archive::Archive,
    real::{polynomial_mutation, sbx_crossover, RealOpsConfig},
    rng::seed_stream,
    select::{tournament, Direction},
    stats::Trace,
};
use bico_obs::{Event, Level, NullObserver, RunObserver};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A bilinear maximin test function with a closed-form equilibrium.
#[derive(Debug, Clone, PartialEq)]
pub struct BilinearProblem {
    a: Vec<f64>,
    x_star: Vec<f64>,
    y_star: Vec<f64>,
    lower: f64,
    upper: f64,
    offset: f64,
}

impl BilinearProblem {
    /// Build a problem from its coefficients. Every coordinate of both
    /// players lives in `[lower, upper]`.
    ///
    /// # Panics
    /// Panics when the slices disagree in length, the box is empty or
    /// degenerate, a coefficient is zero/non-finite, `x*` leaves the
    /// box, or `y*` is not strictly interior (interiority is what makes
    /// `x*` the *unique* maximin point).
    pub fn new(
        a: Vec<f64>,
        x_star: Vec<f64>,
        y_star: Vec<f64>,
        lower: f64,
        upper: f64,
        offset: f64,
    ) -> Self {
        assert!(!a.is_empty(), "at least one coordinate");
        assert_eq!(a.len(), x_star.len());
        assert_eq!(a.len(), y_star.len());
        assert!(lower < upper, "degenerate box");
        assert!(offset.is_finite());
        for (i, &ai) in a.iter().enumerate() {
            assert!(ai.is_finite() && ai != 0.0, "a[{i}] must be finite and nonzero");
            assert!((lower..=upper).contains(&x_star[i]), "x*[{i}] outside the box");
            assert!(
                lower < y_star[i] && y_star[i] < upper,
                "y*[{i}] must be strictly interior"
            );
        }
        BilinearProblem { a, x_star, y_star, lower, upper, offset }
    }

    /// The canonical symmetric instance: saddle at the origin of the
    /// `[-1, 1]^dim` box, zero equilibrium value, coefficients
    /// `a_i = 1 + i/2` so coordinates are distinguishable.
    pub fn symmetric(dim: usize) -> Self {
        let a = (0..dim).map(|i| 1.0 + 0.5 * i as f64).collect();
        BilinearProblem::new(a, vec![0.0; dim], vec![0.0; dim], -1.0, 1.0, 0.0)
    }

    /// Number of coordinates per player.
    pub fn dim(&self) -> usize {
        self.a.len()
    }

    /// Lower box bound (shared by every coordinate of both players).
    pub fn lower(&self) -> f64 {
        self.lower
    }

    /// Upper box bound.
    pub fn upper(&self) -> f64 {
        self.upper
    }

    /// The game value at the saddle point: `f(x*, y*) = offset`.
    pub fn equilibrium_value(&self) -> f64 {
        self.offset
    }

    /// The unique maximin solution `x*`.
    pub fn maximin_x(&self) -> &[f64] {
        &self.x_star
    }

    /// The minimax solution `y*`.
    pub fn minimax_y(&self) -> &[f64] {
        &self.y_star
    }

    /// The payoff `f(x, y)` — `x` maximizes it, `y` minimizes it.
    ///
    /// # Panics
    /// Panics when either vector has the wrong dimension.
    pub fn payoff(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim());
        assert_eq!(y.len(), self.dim());
        let mut v = self.offset;
        for i in 0..self.dim() {
            v += self.a[i] * (x[i] - self.x_star[i]) * (y[i] - self.y_star[i]);
        }
        v
    }

    /// The adversary's best response value `min_y f(x, y)`: the bilinear
    /// minimum over the `y` box is attained coordinate-wise at a corner,
    /// so it is exact and cheap. Equals `offset` iff `x = x*`.
    pub fn worst_case(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim());
        let mut v = self.offset;
        for (i, &xi) in x.iter().enumerate() {
            let d = self.a[i] * (xi - self.x_star[i]);
            v += (d * (self.lower - self.y_star[i])).min(d * (self.upper - self.y_star[i]));
        }
        v
    }

    /// The leader's best response value `max_x f(x, y)` — the mirror of
    /// [`worst_case`](Self::worst_case). Equals `offset` iff every
    /// `y_i = y*_i` whose coefficient could otherwise be exploited.
    pub fn best_case(&self, y: &[f64]) -> f64 {
        assert_eq!(y.len(), self.dim());
        let mut v = self.offset;
        for (i, &yi) in y.iter().enumerate() {
            let d = self.a[i] * (yi - self.y_star[i]);
            v += (d * (self.lower - self.x_star[i])).max(d * (self.upper - self.x_star[i]));
        }
        v
    }

    /// Distance-to-equilibrium of a leader candidate, in payoff units:
    /// `offset − min_y f(x, y) ≥ 0`, zero iff `x = x*`. This is the
    /// oracle the pathology suite asserts against.
    pub fn equilibrium_error_x(&self, x: &[f64]) -> f64 {
        self.offset - self.worst_case(x)
    }

    /// Distance-to-equilibrium of an adversary candidate:
    /// `max_x f(x, y) − offset ≥ 0`, zero iff `y` is unexploitable.
    pub fn equilibrium_error_y(&self, y: &[f64]) -> f64 {
        self.best_case(y) - self.offset
    }

    /// The substrate's win rule for competitive fitness sharing: `x`
    /// survives an engagement against `y` when it secures at least the
    /// game value minus `margin`. The value is a structural constant of
    /// the game (zero for symmetric instances); the *strategy* `x*`
    /// stays unknown to the players.
    pub fn x_beats(&self, x: &[f64], y: &[f64], margin: f64) -> bool {
        self.payoff(x, y) >= self.offset - margin
    }

    /// Mirror win rule: `y` beats `x` when it pushes the payoff to at
    /// most the game value plus `margin`.
    pub fn y_beats(&self, x: &[f64], y: &[f64], margin: f64) -> bool {
        self.payoff(x, y) <= self.offset + margin
    }
}

/// Parameters of the maximin co-evolution. `Default` is sized for the
/// regression suite: big enough for the sharing/hall-of-fame variants
/// to converge, small enough for a 20-seed sweep in a test.
#[derive(Debug, Clone)]
pub struct MaximinConfig {
    /// Per-side population size.
    pub pop_size: usize,
    /// Generations to run (one generation moves both sides).
    pub generations: usize,
    /// Fitness-aggregation strategy (same enum CARBON uses).
    pub strategy: CoevStrategy,
    /// SBX / polynomial-mutation distribution indices.
    pub real_ops: RealOpsConfig,
    /// SBX probability per couple.
    pub crossover_prob: f64,
    /// Polynomial-mutation probability per gene.
    pub mutation_prob: f64,
    /// Tournament arity for both sides.
    pub tournament: usize,
    /// Hall-of-fame capacity per side (recency-ranked champions).
    pub archive_size: usize,
    /// Opponents drawn from the hall (plus the live champion) under
    /// [`CoevStrategy::HallOfFame`].
    pub hof_samples: usize,
    /// Win margin of the substrate's beat rule under
    /// [`CoevStrategy::SharedFitness`], in payoff units.
    pub win_margin: f64,
}

impl Default for MaximinConfig {
    fn default() -> Self {
        MaximinConfig {
            pop_size: 24,
            generations: 80,
            strategy: CoevStrategy::PredatorPrey,
            real_ops: RealOpsConfig::default(),
            crossover_prob: 0.9,
            mutation_prob: 0.15,
            tournament: 2,
            archive_size: 32,
            hof_samples: 8,
            win_margin: 0.05,
        }
    }
}

/// Result of a maximin co-evolution run.
#[derive(Debug, Clone)]
pub struct MaximinResult {
    /// Final leader champion.
    pub best_x: Vec<f64>,
    /// Final adversary champion.
    pub best_y: Vec<f64>,
    /// Payoff of the final champion pair.
    pub champion_payoff: f64,
    /// Oracle distance-to-equilibrium of the final leader champion
    /// (`0` = exactly at the maximin solution).
    pub equilibrium_error: f64,
    /// Per-generation series: `ul_best` is the champion-pair payoff,
    /// `gap_best` the oracle equilibrium error (observability only —
    /// selection never sees it).
    pub trace: Trace,
    /// Payoff evaluations consumed.
    pub evaluations: u64,
    /// Generations completed.
    pub generations: usize,
}

/// Competitive co-evolution on a [`BilinearProblem`].
///
/// ```
/// use bico_core::{BilinearProblem, CoevStrategy, MaximinCoev, MaximinConfig};
///
/// let problem = BilinearProblem::symmetric(2);
/// let mut cfg = MaximinConfig::default();
/// cfg.strategy = CoevStrategy::SharedFitness;
/// let result = MaximinCoev::new(problem, cfg).run(7);
/// assert!(result.equilibrium_error.is_finite());
/// assert_eq!(result.best_x.len(), 2);
/// ```
pub struct MaximinCoev {
    problem: BilinearProblem,
    cfg: MaximinConfig,
}

impl MaximinCoev {
    /// Bind the co-evolution to a problem.
    pub fn new(problem: BilinearProblem, cfg: MaximinConfig) -> Self {
        assert!(cfg.pop_size >= 2, "need at least two individuals per side");
        assert!(cfg.tournament >= 1);
        MaximinCoev { problem, cfg }
    }

    /// The bound problem.
    pub fn problem(&self) -> &BilinearProblem {
        &self.problem
    }

    /// Run to completion. Deterministic for a fixed seed.
    pub fn run(&self, seed: u64) -> MaximinResult {
        self.run_observed(seed, &NullObserver)
    }

    /// [`run`](Self::run) with an observer attached. Events follow the
    /// CARBON schema (`RunStart` … `RunComplete`); one `ObjectivePair`
    /// is emitted after each side's move so the trace analyzer's
    /// see-saw detector segments the arms race exactly as it does for
    /// COBRA. Observers never touch the RNG: observed runs are
    /// bit-identical to unobserved ones.
    pub fn run_observed<O: RunObserver + ?Sized>(&self, seed: u64, obs: &O) -> MaximinResult {
        let p = &self.problem;
        let cfg = &self.cfg;
        let dim = p.dim();
        let lo = vec![p.lower(); dim];
        let hi = vec![p.upper(); dim];
        // Streams 0 and 5 belong to CARBON and CARBON-W.
        let mut rng = SmallRng::seed_from_u64(seed_stream(seed, 9));

        let sample_pop = |rng: &mut SmallRng| -> Vec<Vec<f64>> {
            (0..cfg.pop_size)
                .map(|_| (0..dim).map(|_| rng.random_range(p.lower()..=p.upper())).collect())
                .collect()
        };
        let mut x_pop = sample_pop(&mut rng);
        let mut y_pop = sample_pop(&mut rng);
        let mut x_champ: Vec<f64> = x_pop[0].clone();
        let mut y_champ: Vec<f64> = y_pop[0].clone();

        // Recency-ranked halls of fame: fitness is the generation index,
        // so `top(k)` is the k most recent champions — the bounded form
        // of Rosin & Belew's "test against all past champions".
        let mut hall_x: Archive<Vec<f64>> = Archive::new(cfg.archive_size, Direction::Maximize);
        let mut hall_y: Archive<Vec<f64>> = Archive::new(cfg.archive_size, Direction::Maximize);

        let mut trace = Trace::new();
        let mut evals = 0u64;

        if obs.enabled() {
            obs.observe(&Event::RunStart { algo: "maximin", seed });
        }

        for generation in 0..cfg.generations {
            if obs.enabled() {
                obs.observe(&Event::GenerationStart { generation: generation as u64 });
                obs.observe(&Event::PhaseChange { phase: "x_fitness" });
            }

            // Shared fitness needs the full engagement matrix once per
            // generation; both sides read it.
            let matrix: Option<Vec<Vec<f64>>> = (cfg.strategy == CoevStrategy::SharedFitness)
                .then(|| {
                    x_pop
                        .iter()
                        .map(|x| y_pop.iter().map(|y| p.payoff(x, y)).collect())
                        .collect()
                });

            // --- leader (x) fitness: maximized in every strategy ---
            let (x_fit, x_evals): (Vec<f64>, u64) = match cfg.strategy {
                CoevStrategy::PredatorPrey => {
                    // Best response against the live adversary champion —
                    // the provably cycling dynamic.
                    let fit = x_pop.iter().map(|x| p.payoff(x, &y_champ)).collect();
                    (fit, cfg.pop_size as u64)
                }
                CoevStrategy::SharedFitness => {
                    // Each defeated adversary is worth 1/beatsum: beating
                    // the y's nobody else handles dominates piling onto
                    // easy ones, which keeps both populations spread and
                    // starves cycling corner-runners of credit.
                    let m = matrix.as_ref().expect("matrix exists for shared fitness");
                    let beats: Vec<Vec<bool>> = m
                        .iter()
                        .map(|row| {
                            row.iter()
                                .map(|&v| v >= p.equilibrium_value() - cfg.win_margin)
                                .collect()
                        })
                        .collect();
                    let beatsum: Vec<usize> = (0..cfg.pop_size)
                        .map(|j| beats.iter().filter(|row| row[j]).count())
                        .collect();
                    let fit = beats
                        .iter()
                        .map(|row| {
                            row.iter()
                                .zip(&beatsum)
                                .filter(|(b, _)| **b)
                                .map(|(_, &s)| 1.0 / s as f64)
                                .sum::<f64>()
                        })
                        .collect();
                    (fit, (cfg.pop_size * cfg.pop_size) as u64)
                }
                CoevStrategy::HallOfFame => {
                    // Maximize the *minimum* payoff over the champion and
                    // the recent hall: once the hall spans the adversary's
                    // exploiting corners, the argmax-min is the maximin
                    // point itself.
                    let mut opponents = vec![y_champ.clone()];
                    opponents.extend(hall_y.top(cfg.hof_samples));
                    let fit = x_pop
                        .iter()
                        .map(|x| {
                            opponents
                                .iter()
                                .map(|y| p.payoff(x, y))
                                .fold(f64::INFINITY, f64::min)
                        })
                        .collect();
                    (fit, (cfg.pop_size * opponents.len()) as u64)
                }
            };
            let mut bx = 0;
            for i in 1..cfg.pop_size {
                if x_fit[i] > x_fit[bx] {
                    bx = i;
                }
            }
            x_champ = x_pop[bx].clone();
            evals += x_evals;
            if obs.enabled() {
                obs.observe(&Event::Evaluation {
                    level: Level::Upper,
                    count: x_evals,
                    gp_nodes: 0,
                    micros: 0,
                });
                // The leader just moved: in a zero-sum game both levels
                // share one objective, so the pair's payoff fills both
                // slots and the see-saw detector reads the oscillation
                // from either series.
                let v = p.payoff(&x_champ, &y_champ);
                obs.observe(&Event::ObjectivePair {
                    level: Level::Upper,
                    ul_value: v,
                    ll_value: v,
                });
                obs.observe(&Event::PhaseChange { phase: "y_fitness" });
            }

            // --- adversary (y) fitness: minimized in every strategy
            // (shared scores are negated to keep that orientation) ---
            let (y_fit, y_evals): (Vec<f64>, u64) = match cfg.strategy {
                CoevStrategy::PredatorPrey => {
                    let fit = y_pop.iter().map(|y| p.payoff(&x_champ, y)).collect();
                    (fit, cfg.pop_size as u64)
                }
                CoevStrategy::SharedFitness => {
                    // The matrix was measured against this generation's
                    // x population — the same engagements, mirrored.
                    let m = matrix.as_ref().expect("matrix exists for shared fitness");
                    let beats: Vec<Vec<bool>> = (0..cfg.pop_size)
                        .map(|j| {
                            m.iter()
                                .map(|row| row[j] <= p.equilibrium_value() + cfg.win_margin)
                                .collect()
                        })
                        .collect();
                    let beatsum: Vec<usize> = (0..cfg.pop_size)
                        .map(|i| beats.iter().filter(|row| row[i]).count())
                        .collect();
                    let fit = beats
                        .iter()
                        .map(|row| {
                            -row.iter()
                                .zip(&beatsum)
                                .filter(|(b, _)| **b)
                                .map(|(_, &s)| 1.0 / s as f64)
                                .sum::<f64>()
                        })
                        .collect();
                    (fit, 0)
                }
                CoevStrategy::HallOfFame => {
                    let mut opponents = vec![x_champ.clone()];
                    opponents.extend(hall_x.top(cfg.hof_samples));
                    let fit = y_pop
                        .iter()
                        .map(|y| {
                            opponents
                                .iter()
                                .map(|x| p.payoff(x, y))
                                .fold(f64::NEG_INFINITY, f64::max)
                        })
                        .collect();
                    (fit, (cfg.pop_size * opponents.len()) as u64)
                }
            };
            let mut by = 0;
            for j in 1..cfg.pop_size {
                if y_fit[j] < y_fit[by] {
                    by = j;
                }
            }
            y_champ = y_pop[by].clone();
            evals += y_evals;

            let pair_payoff = p.payoff(&x_champ, &y_champ);
            let error = p.equilibrium_error_x(&x_champ);
            hall_x.push(x_champ.clone(), generation as f64);
            hall_y.push(y_champ.clone(), generation as f64);

            if obs.enabled() {
                obs.observe(&Event::Evaluation {
                    level: Level::Lower,
                    count: y_evals,
                    gp_nodes: 0,
                    micros: 0,
                });
                obs.observe(&Event::ObjectivePair {
                    level: Level::Lower,
                    ul_value: pair_payoff,
                    ll_value: pair_payoff,
                });
                obs.observe(&Event::ArchiveUpdate {
                    level: Level::Upper,
                    size: hall_x.len() as u64,
                    best: hall_x.best().map_or(f64::NAN, |(_, f)| f),
                });
                obs.observe(&Event::ArchiveUpdate {
                    level: Level::Lower,
                    size: hall_y.len() as u64,
                    best: hall_y.best().map_or(f64::NAN, |(_, f)| f),
                });
                obs.observe(&Event::GenerationEnd {
                    generation: generation as u64,
                    evaluations: evals,
                    ul_best: pair_payoff,
                    gap_best: error,
                });
                obs.observe(&Event::PhaseChange { phase: "breeding" });
            }
            trace.record(generation, evals, pair_payoff, error);

            x_pop = breed_side(
                &x_pop,
                &x_fit,
                Direction::Maximize,
                &x_champ,
                &lo,
                &hi,
                cfg,
                &mut rng,
            );
            y_pop = breed_side(
                &y_pop,
                &y_fit,
                Direction::Minimize,
                &y_champ,
                &lo,
                &hi,
                cfg,
                &mut rng,
            );
        }

        let champion_payoff = p.payoff(&x_champ, &y_champ);
        let equilibrium_error = p.equilibrium_error_x(&x_champ);
        if obs.enabled() {
            obs.observe(&Event::RunComplete {
                generations: cfg.generations as u64,
                ul_evaluations: evals / 2,
                ll_evaluations: evals - evals / 2,
                best_value: champion_payoff,
                best_gap: equilibrium_error,
            });
        }
        MaximinResult {
            best_x: x_champ,
            best_y: y_champ,
            champion_payoff,
            equilibrium_error,
            trace,
            evaluations: evals,
            generations: cfg.generations,
        }
    }
}

/// Breed one side: champion elitism in slot 0, then tournament parents
/// through SBX + polynomial mutation — the Table II upper-level
/// operator stack, shared with CARBON.
#[allow(clippy::too_many_arguments)]
fn breed_side<R: Rng + ?Sized>(
    pop: &[Vec<f64>],
    fitness: &[f64],
    dir: Direction,
    elite: &[f64],
    lo: &[f64],
    hi: &[f64],
    cfg: &MaximinConfig,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    let mut next = Vec::with_capacity(pop.len());
    next.push(elite.to_vec());
    while next.len() < pop.len() {
        let i = tournament(fitness, cfg.tournament, dir, rng);
        let j = tournament(fitness, cfg.tournament, dir, rng);
        let (mut c1, mut c2) = if rng.random::<f64>() < cfg.crossover_prob {
            sbx_crossover(&pop[i], &pop[j], lo, hi, &cfg.real_ops, rng)
        } else {
            (pop[i].clone(), pop[j].clone())
        };
        polynomial_mutation(&mut c1, lo, hi, cfg.mutation_prob, &cfg.real_ops, rng);
        polynomial_mutation(&mut c2, lo, hi, cfg.mutation_prob, &cfg.real_ops, rng);
        next.push(c1);
        if next.len() < pop.len() {
            next.push(c2);
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn payoff_and_oracle_agree_on_a_hand_example() {
        // f(x, y) = 2 + 1·x0·y0 + 3·x1·y1 over [-1, 1]^2.
        let p = BilinearProblem::new(
            vec![1.0, 3.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            -1.0,
            1.0,
            2.0,
        );
        assert_eq!(p.payoff(&[0.5, -1.0], &[1.0, 1.0]), 2.0 + 0.5 - 3.0);
        // Against x = (0.5, −1), the adversary plays y0 = −1 (loses
        // 0.5) and y1 = +1 (loses 3): worst case 2 − 3.5.
        assert_eq!(p.worst_case(&[0.5, -1.0]), 2.0 - 3.5);
        assert_eq!(p.equilibrium_error_x(&[0.5, -1.0]), 3.5);
    }

    #[test]
    fn equilibrium_is_the_unique_maximin_point() {
        let p = BilinearProblem::symmetric(3);
        assert_eq!(p.worst_case(p.maximin_x()), p.equilibrium_value());
        assert_eq!(p.equilibrium_error_x(p.maximin_x()), 0.0);
        assert_eq!(p.equilibrium_error_y(p.minimax_y()), 0.0);
        // Any deviation is strictly punishable, and no x does better
        // than the saddle (maximin optimality).
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..200 {
            let x: Vec<f64> = (0..3).map(|_| rng.random_range(-1.0..=1.0)).collect();
            let wc = p.worst_case(&x);
            assert!(wc <= p.equilibrium_value() + 1e-12);
            if x.iter().any(|&v| v.abs() > 1e-9) {
                assert!(p.equilibrium_error_x(&x) > 0.0, "deviation {x:?} unpunished");
            }
        }
    }

    #[test]
    fn win_rules_bracket_the_game_value() {
        let p = BilinearProblem::symmetric(2);
        // The saddle strategies beat every opponent under any
        // nonnegative margin.
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let y: Vec<f64> = (0..2).map(|_| rng.random_range(-1.0..=1.0)).collect();
            let x: Vec<f64> = (0..2).map(|_| rng.random_range(-1.0..=1.0)).collect();
            assert!(p.x_beats(p.maximin_x(), &y, 0.0));
            assert!(p.y_beats(&x, p.minimax_y(), 0.0));
        }
        // A corner x loses to the punishing corner y under a tight margin.
        assert!(!p.x_beats(&[1.0, 1.0], &[-1.0, -1.0], 0.1));
    }

    #[test]
    #[should_panic(expected = "strictly interior")]
    fn boundary_y_star_is_rejected() {
        BilinearProblem::new(vec![1.0], vec![0.0], vec![1.0], -1.0, 1.0, 0.0);
    }

    #[test]
    fn runs_are_deterministic_and_observer_neutral() {
        use bico_obs::{JsonlSink, SharedBuffer};
        let problem = BilinearProblem::symmetric(2);
        for strategy in
            [CoevStrategy::PredatorPrey, CoevStrategy::SharedFitness, CoevStrategy::HallOfFame]
        {
            let cfg = MaximinConfig { generations: 20, strategy, ..Default::default() };
            let coev = MaximinCoev::new(problem.clone(), cfg);
            let a = coev.run(5);
            let b = coev.run(5);
            let buffer = SharedBuffer::default();
            let observed = coev.run_observed(5, &JsonlSink::new(buffer.clone()));
            for other in [&b, &observed] {
                assert_eq!(bits(&a.best_x), bits(&other.best_x), "{strategy:?}");
                assert_eq!(bits(&a.best_y), bits(&other.best_y));
                assert_eq!(a.equilibrium_error.to_bits(), other.equilibrium_error.to_bits());
                assert_eq!(a.evaluations, other.evaluations);
            }
            assert!(buffer.contents().contains("\"algo\":\"maximin\""));
            assert!(buffer.contents().contains("\"event\":\"ObjectivePair\""));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let coev = MaximinCoev::new(BilinearProblem::symmetric(2), MaximinConfig::default());
        let a = coev.run(1);
        let b = coev.run(2);
        assert_ne!(bits(&a.best_x), bits(&b.best_x));
    }

    #[test]
    fn sharing_and_hall_of_fame_outconverge_plain_scoring() {
        // Single-seed smoke — the 20-seed Mann–Whitney version lives in
        // tests/pathology.rs. Medians over a few seeds keep this stable.
        let problem = BilinearProblem::symmetric(2);
        let median_error = |strategy: CoevStrategy| {
            let mut errs: Vec<f64> = (0..5)
                .map(|seed| {
                    let cfg = MaximinConfig { strategy, ..Default::default() };
                    MaximinCoev::new(problem.clone(), cfg).run(seed).equilibrium_error
                })
                .collect();
            errs.sort_by(f64::total_cmp);
            errs[2]
        };
        let plain = median_error(CoevStrategy::PredatorPrey);
        let shared = median_error(CoevStrategy::SharedFitness);
        let hof = median_error(CoevStrategy::HallOfFame);
        assert!(
            shared < plain,
            "sharing should beat plain scoring (shared {shared}, plain {plain})"
        );
        assert!(
            hof < plain,
            "hall of fame should beat plain scoring (hof {hof}, plain {plain})"
        );
    }
}
