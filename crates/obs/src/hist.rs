//! Dependency-free log-bucketed latency/size histograms.
//!
//! A [`Histogram`] covers a geometric range `[min, min·growth^n)` with
//! `n` buckets whose upper bounds grow by a constant factor. Recording
//! is O(log n) (binary search over precomputed bounds); `count`, `sum`
//! and `max` are tracked exactly, while percentiles are estimated by
//! linear interpolation inside the bucket that crosses the requested
//! rank — the classic Prometheus histogram trade-off.
//!
//! Two presets cover everything the solvers need:
//! [`Histogram::seconds`] for latencies (1 µs .. ~67 s, factor 2) and
//! [`Histogram::counts`] for discrete sizes such as simplex pivots or
//! GP nodes (1 .. ~1 M, factor 2).

/// A fixed-bucket histogram with geometrically spaced bucket bounds.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Inclusive upper bound of each bucket; the last real bucket is
    /// followed by an implicit `+Inf` overflow bucket.
    bounds: Vec<f64>,
    /// Observation count per bucket; `counts.len() == bounds.len() + 1`
    /// (the final slot is the `+Inf` overflow bucket).
    counts: Vec<u64>,
    /// Total number of observations.
    count: u64,
    /// Exact sum of all observed values.
    sum: f64,
    /// Exact maximum observed value (0 when empty).
    max: f64,
}

impl Histogram {
    /// A histogram with `n` buckets whose bounds are
    /// `min·growth^0, min·growth^1, …, min·growth^(n-1)`.
    ///
    /// # Panics
    ///
    /// Panics if `min <= 0`, `growth <= 1`, or `n == 0` — such a
    /// histogram could never bucket anything meaningfully.
    pub fn new(min: f64, growth: f64, n: usize) -> Self {
        assert!(min > 0.0, "histogram min bound must be positive");
        assert!(growth > 1.0, "histogram growth factor must exceed 1");
        assert!(n > 0, "histogram needs at least one bucket");
        let mut bounds = Vec::with_capacity(n);
        let mut b = min;
        for _ in 0..n {
            bounds.push(b);
            b *= growth;
        }
        Histogram { counts: vec![0; n + 1], bounds, count: 0, sum: 0.0, max: 0.0 }
    }

    /// Preset for latencies in seconds: 27 power-of-two buckets from
    /// 1 µs to ~67 s. Sub-microsecond observations land in the first
    /// bucket; anything slower than ~67 s lands in the overflow bucket.
    pub fn seconds() -> Self {
        Histogram::new(1e-6, 2.0, 27)
    }

    /// Preset for discrete sizes: 21 power-of-two buckets from 1 to
    /// ~1 M (2^20).
    pub fn counts() -> Self {
        Histogram::new(1.0, 2.0, 21)
    }

    /// Record one observation. Non-finite or negative values are
    /// ignored — instrumentation must never poison aggregate state.
    pub fn record(&mut self, value: f64) {
        self.record_n(value, 1);
    }

    /// Record `n` observations of the same value in O(log buckets).
    /// Useful when a batch timer only knows the per-item mean.
    pub fn record_n(&mut self, value: f64, n: u64) {
        if n == 0 || !value.is_finite() || value < 0.0 {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += n;
        self.count += n;
        self.sum += value * n as f64;
        if value > self.max {
            self.max = value;
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact maximum observation (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Mean observation (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by locating the bucket
    /// containing the rank and interpolating linearly between its
    /// bounds. Exact for `max` when `q == 1`; NaN when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = q.max(0.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let prev = cum as f64;
            cum += c;
            if (cum as f64) >= rank {
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                // Overflow bucket: no finite upper bound, clamp to max.
                let hi = if i < self.bounds.len() { self.bounds[i] } else { self.max };
                let hi = hi.min(self.max.max(lo));
                let frac = ((rank - prev) / c as f64).clamp(0.0, 1.0);
                return lo + (hi - lo) * frac;
            }
        }
        self.max
    }

    /// Cumulative (Prometheus-style) bucket view: `(upper_bound,
    /// cumulative_count)` for every finite bound. The `+Inf` bucket is
    /// implied by [`Histogram::count`].
    pub fn cumulative_buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let mut cum = 0u64;
        self.bounds.iter().zip(&self.counts).map(move |(&b, &c)| {
            cum += c;
            (b, cum)
        })
    }

    /// Append a JSON object summary (`count`, `sum`, `mean`, `p50`,
    /// `p90`, `p99`, `max`) to `out`.
    pub fn push_json_summary(&self, out: &mut String) {
        out.push('{');
        out.push_str("\"count\": ");
        out.push_str(&self.count.to_string());
        for (key, value) in [
            ("sum", self.sum),
            ("mean", self.mean()),
            ("p50", self.quantile(0.50)),
            ("p90", self.quantile(0.90)),
            ("p99", self.quantile(0.99)),
            ("max", self.max),
        ] {
            out.push_str(", \"");
            out.push_str(key);
            out.push_str("\": ");
            crate::json::push_f64(out, value);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_nan_quantiles() {
        let h = Histogram::seconds();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert!(h.quantile(0.5).is_nan());
        assert!(h.mean().is_nan());
    }

    #[test]
    fn count_sum_max_are_exact() {
        let mut h = Histogram::seconds();
        h.record(0.001);
        h.record(0.002);
        h.record_n(0.004, 3);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 0.015).abs() < 1e-12);
        assert_eq!(h.max(), 0.004);
        assert!((h.mean() - 0.003).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_the_data() {
        let mut h = Histogram::seconds();
        for i in 1..=1000u64 {
            h.record(i as f64 * 1e-5); // 10 µs .. 10 ms
        }
        let p50 = h.quantile(0.50);
        let p90 = h.quantile(0.90);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99 && p99 <= h.max());
        // p50 of a uniform 10µs..10ms sample should land within the
        // right power-of-two bucket (~4..8 ms around 5 ms).
        assert!(p50 > 1e-3 && p50 < 1e-2, "p50 = {p50}");
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn overflow_and_underflow_observations_are_kept() {
        let mut h = Histogram::new(1.0, 2.0, 4); // bounds 1,2,4,8
        h.record(0.25); // below min -> first bucket
        h.record(100.0); // above max bound -> overflow bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 100.0);
        // The overflow bucket interpolates between the last finite
        // bound and the exact max; q = 1 returns the max itself.
        let p99 = h.quantile(0.99);
        assert!(p99 > 8.0 && p99 <= 100.0, "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 100.0);
    }

    #[test]
    fn garbage_values_are_ignored() {
        let mut h = Histogram::counts();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-3.0);
        h.record_n(5.0, 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_end_at_count() {
        let mut h = Histogram::counts();
        for v in [1.0, 3.0, 9.0, 700.0, 3_000_000.0] {
            h.record(v);
        }
        let buckets: Vec<(f64, u64)> = h.cumulative_buckets().collect();
        let mut prev = 0;
        for &(_, c) in &buckets {
            assert!(c >= prev);
            prev = c;
        }
        // 3,000,000 exceeds the last finite bound (2^20): it only shows
        // up in the implicit +Inf bucket, i.e. in count().
        assert_eq!(buckets.last().unwrap().1, 4);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn json_summary_parses() {
        let mut h = Histogram::seconds();
        h.record(0.5);
        let mut out = String::new();
        h.push_json_summary(&mut out);
        let v = crate::json::parse(&out).expect("summary must parse");
        assert_eq!(v.get("count").and_then(|v| v.as_u64()), Some(1));
    }
}
