//! Determinism contract: the same seed yields bit-identical results
//! regardless of the rayon thread count (per-item seed streams, pure
//! fitness functions, order-preserving parallel collection).

use bico::bcpop::{generate, GeneratorConfig};
use bico::cobra::{Cobra, CobraConfig};
use bico::core::{Carbon, CarbonConfig};

fn with_threads<T: Send>(n: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("pool")
        .install(f)
}

#[test]
fn carbon_is_thread_count_invariant() {
    let inst = generate(
        &GeneratorConfig { num_bundles: 40, num_services: 5, ..Default::default() },
        77,
    );
    let cfg = CarbonConfig {
        ul_pop_size: 12,
        ll_pop_size: 12,
        ul_archive_size: 12,
        ll_archive_size: 12,
        ul_evaluations: 240,
        ll_evaluations: 240,
        ..Default::default()
    };
    let r1 = with_threads(1, || Carbon::new(&inst, cfg.clone()).run(9));
    let r4 = with_threads(4, || Carbon::new(&inst, cfg.clone()).run(9));
    assert_eq!(r1.best_pricing, r4.best_pricing);
    assert_eq!(r1.best_ul_value, r4.best_ul_value);
    assert_eq!(r1.best_gap, r4.best_gap);
    assert_eq!(r1.best_heuristic, r4.best_heuristic);
    assert_eq!(r1.trace.points(), r4.trace.points());
}

#[test]
fn cobra_is_thread_count_invariant() {
    let inst = generate(
        &GeneratorConfig { num_bundles: 40, num_services: 5, ..Default::default() },
        78,
    );
    let cfg = CobraConfig {
        ul_pop_size: 12,
        ll_pop_size: 12,
        ul_archive_size: 12,
        ll_archive_size: 12,
        ul_evaluations: 240,
        ll_evaluations: 240,
        improvement_gens: 3,
        ..Default::default()
    };
    let r1 = with_threads(1, || Cobra::new(&inst, cfg.clone()).run(9));
    let r4 = with_threads(4, || Cobra::new(&inst, cfg.clone()).run(9));
    assert_eq!(r1.best_pricing, r4.best_pricing);
    assert_eq!(r1.best_gap, r4.best_gap);
    assert_eq!(r1.trace.points(), r4.trace.points());
}
