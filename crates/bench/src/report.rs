//! Plain-text/markdown table formatting and CSV output.

use bico_ea::stats::Trace;
use std::io::Write;

/// Format one numeric row with a fixed precision.
pub fn format_row(cells: &[String]) -> String {
    cells.join(" | ")
}

/// Render a markdown table.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&header.join(" | "));
    out.push_str(" |\n|");
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Write a convergence trace as CSV (`generation,evaluations,ul_best,gap_best`).
pub fn write_csv<W: Write>(w: &mut W, trace: &Trace) -> std::io::Result<()> {
    writeln!(w, "generation,evaluations,ul_best,gap_best")?;
    for p in trace.points() {
        writeln!(w, "{},{},{:.6},{:.6}", p.generation, p.evaluations, p.ul_best, p.gap_best)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("a | b"));
        assert!(lines[1].starts_with("|---|"));
        assert!(lines[3].contains("3 | 4"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut trace = Trace::new();
        trace.record(0, 10, 1.5, 2.5);
        trace.record(1, 20, 2.0, 1.0);
        let mut buf = Vec::new();
        write_csv(&mut buf, &trace).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "generation,evaluations,ul_best,gap_best");
        assert!(lines[1].starts_with("0,10,1.5"));
    }

    #[test]
    fn format_row_joins() {
        assert_eq!(format_row(&["x".into(), "y".into()]), "x | y");
    }
}
