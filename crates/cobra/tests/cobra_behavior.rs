//! Behavioral tests for the COBRA baseline: see-saw trace signature,
//! improvement-phase accounting, archive extraction consistency.

use bico_bcpop::{generate, GeneratorConfig};
use bico_cobra::{Cobra, CobraConfig, NestedConfig, NestedSequential};

fn instance(seed: u64) -> bico_bcpop::BcpopInstance {
    generate(&GeneratorConfig { num_bundles: 60, num_services: 6, ..Default::default() }, seed)
}

fn cfg(pop: usize, evals: u64, gens: usize) -> CobraConfig {
    CobraConfig {
        ul_pop_size: pop,
        ll_pop_size: pop,
        ul_archive_size: pop,
        ll_archive_size: pop,
        ul_evaluations: evals,
        ll_evaluations: evals,
        improvement_gens: gens,
        ..Default::default()
    }
}

#[test]
fn trace_has_one_point_per_improvement_generation() {
    let inst = instance(31);
    let r = Cobra::new(&inst, cfg(10, 300, 3)).run(1);
    // Each cycle records improvement_gens upper + improvement_gens lower
    // points.
    assert_eq!(r.trace.points().len(), r.cycles * 6);
}

#[test]
fn see_saw_signature_has_reversals() {
    // COBRA's alternating phases must produce direction reversals in the
    // gap series — the Fig. 5 signature CARBON lacks.
    let inst = instance(32);
    let r = Cobra::new(&inst, cfg(16, 1_600, 5)).run(2);
    let pts = r.trace.points();
    assert!(pts.len() >= 20);
    let mut reversals = 0;
    for w in pts.windows(3) {
        let d1 = w[1].gap_best - w[0].gap_best;
        let d2 = w[2].gap_best - w[1].gap_best;
        if d1 * d2 < 0.0 {
            reversals += 1;
        }
    }
    assert!(reversals >= 3, "expected see-saw reversals in COBRA's gap trace, got {reversals}");
}

#[test]
fn improvement_gens_knob_changes_cycle_count() {
    let inst = instance(33);
    let short = Cobra::new(&inst, cfg(10, 600, 2)).run(3);
    let long = Cobra::new(&inst, cfg(10, 600, 6)).run(3);
    assert!(short.cycles > long.cycles, "{} vs {}", short.cycles, long.cycles);
}

#[test]
fn extraction_pair_is_consistent() {
    let inst = instance(34);
    let r = Cobra::new(&inst, cfg(12, 600, 3)).run(4);
    // The extracted reaction must cover and its cost must match
    // best_ll_value under the extracted pricing.
    assert!(inst.is_covering(&r.best_reaction));
    let costs = inst.costs_for(&r.best_pricing);
    let cost = bico_bcpop::ll_cost(&costs, &r.best_reaction);
    assert!((cost - r.best_ll_value).abs() < 1e-9);
}

#[test]
fn repair_disabled_still_terminates() {
    let inst = instance(35);
    let mut c = cfg(10, 400, 2);
    c.repair = false;
    let r = Cobra::new(&inst, c).run(5);
    assert!(r.cycles > 0);
    // Without repair the archive may be sparse, but the run must not
    // panic and budgets must be respected.
    assert!(r.ul_evals_used <= 400);
}

#[test]
fn nested_baseline_burns_ll_budget_much_faster_than_cobra() {
    let inst = instance(36);
    let cobra = Cobra::new(&inst, cfg(10, 500, 2)).run(6);
    let nested = NestedSequential::new(
        &inst,
        NestedConfig {
            ul_pop_size: 5,
            ul_evaluations: 500,
            ll_pop_size: 10,
            ll_gens_per_eval: 5,
            ll_evaluations: 500,
            ..Default::default()
        },
    )
    .run(6);
    let cobra_ratio = cobra.ll_evals_used as f64 / cobra.ul_evals_used.max(1) as f64;
    let nested_ratio = nested.ll_evals_used as f64 / nested.ul_evals_used.max(1) as f64;
    assert!(
        nested_ratio > cobra_ratio * 5.0,
        "nested LL/UL ratio {nested_ratio} should dwarf COBRA's {cobra_ratio}"
    );
}
