//! Schema-stability contracts for the observability surface.
//!
//! Two guarantees external tooling leans on:
//!
//! * the JSONL trace schema round-trips **byte-identically** through
//!   [`bico::obs::replay`] for every event variant — so `bico trace`
//!   can re-emit, diff and archive traces without drift;
//! * the Prometheus exposition of a [`bico::obs::MetricsSink`] report
//!   is stable against the golden file in `tests/golden/metrics.prom`
//!   — scrape configs and dashboards key on these family names.

use bico::obs::sinks::prometheus;
use bico::obs::{replay, stats};
use bico::obs::{
    Event, Histogram, JsonlSink, MetricsSink, PhaseTiming, RunObserver, SharedBuffer, Summary,
};

#[test]
fn every_event_variant_round_trips_byte_identically() {
    let buffer = SharedBuffer::new();
    let sink = JsonlSink::new(buffer.clone());
    let examples = Event::examples();
    assert_eq!(examples.len(), 13, "new Event variants must join examples() and this test");
    for event in &examples {
        sink.observe(event);
    }
    sink.flush().unwrap();

    let text = buffer.contents();
    let records = replay::parse_trace(&text).expect("own output must parse");
    assert_eq!(records.len(), examples.len());
    for (line, record) in text.lines().zip(&records) {
        let mut reemitted = record.to_jsonl_line();
        assert_eq!(reemitted.pop(), Some('\n'));
        assert_eq!(line, reemitted, "round trip must be byte-identical");
    }
    // Tagged lines (the bench binaries' multi-run traces) too.
    let tagged_buffer = SharedBuffer::new();
    let tagged = JsonlSink::new(tagged_buffer.clone()).with_tag("carbon/run3");
    for event in &examples {
        tagged.observe(event);
    }
    tagged.flush().unwrap();
    let text = tagged_buffer.contents();
    for (line, record) in
        text.lines().zip(replay::parse_trace(&text).expect("tagged output must parse"))
    {
        assert_eq!(record.tag.as_deref(), Some("carbon/run3"));
        let mut reemitted = record.to_jsonl_line();
        assert_eq!(reemitted.pop(), Some('\n'));
        assert_eq!(line, reemitted);
    }
}

#[test]
fn owned_events_cover_every_variant() {
    // Each parsed record must map back onto the borrowed Event it came
    // from (same name), proving OwnedEvent tracks the Event enum.
    let buffer = SharedBuffer::new();
    let sink = JsonlSink::new(buffer.clone());
    for event in Event::examples() {
        sink.observe(&event);
    }
    sink.flush().unwrap();
    let records = replay::parse_trace(&buffer.contents()).unwrap();
    for (record, event) in records.iter().zip(Event::examples()) {
        assert_eq!(record.event.name(), event.name());
        assert_eq!(record.event.to_event().name(), event.name());
    }
}

/// A fully deterministic report: every field hand-set, no wall clock.
fn golden_metrics() -> bico::obs::RunMetrics {
    let mut ll_solve_seconds = Histogram::seconds();
    ll_solve_seconds.record_n(150e-6, 40);
    ll_solve_seconds.record_n(900e-6, 8);
    let mut decode_pass_seconds = Histogram::seconds();
    decode_pass_seconds.record_n(75e-6, 96);
    let mut gp_compile_seconds = Histogram::seconds();
    gp_compile_seconds.record_n(30e-6, 12);
    let mut simplex_pivots_per_solve = Histogram::counts();
    simplex_pivots_per_solve.record_n(24.0, 48);
    let mut gp_nodes_per_eval = Histogram::counts();
    gp_nodes_per_eval.record_n(17.0, 96);
    bico::obs::RunMetrics {
        runs: 1,
        generations: 12,
        evaluations: 192,
        ul_evaluations: 96,
        ll_evaluations: 96,
        gp_node_evals: 1632,
        ll_solves: 48,
        simplex_pivots: 1152,
        cache_hits: 30,
        cache_misses: 18,
        cache_evictions: 2,
        cache_entries: 16,
        compile_cache_hits: 84,
        compile_cache_misses: 12,
        compile_cache_evictions: 0,
        compile_cache_entries: 12,
        decode_cache_hits: 60,
        decode_cache_misses: 36,
        decode_cache_evictions: 4,
        decode_cache_entries: 32,
        surrogate_cells: 40,
        surrogate_exact: 16,
        surrogate_skipped: 24,
        surrogate_rank_corr_mean: 0.75,
        archive_updates: 24,
        wall_seconds: 1.5,
        phases: vec![
            PhaseTiming { phase: "ll_fitness".into(), seconds: 0.9 },
            PhaseTiming { phase: "ul_fitness".into(), seconds: 0.5 },
        ],
        generation_seconds: Summary::of(&[0.1, 0.1, 0.2, 0.15]),
        ll_solve_seconds,
        decode_pass_seconds,
        gp_compile_seconds,
        simplex_pivots_per_solve,
        gp_nodes_per_eval,
    }
}

#[test]
fn prometheus_render_matches_golden_file() {
    let rendered = prometheus::render(&golden_metrics());
    let golden = include_str!("golden/metrics.prom");
    assert_eq!(
        rendered, golden,
        "Prometheus exposition drifted from tests/golden/metrics.prom; \
         if the change is intentional, re-bless the golden file"
    );
}

#[test]
fn prometheus_histogram_counts_match_json_report() {
    // The JSON and Prometheus reports must agree: same five histogram
    // families, same counts, derived from one RunMetrics.
    let m = golden_metrics();
    let rendered = prometheus::render(&m);
    for (name, hist) in m.histograms() {
        let count_line = format!("bico_{name}_count {}", hist.count());
        assert!(
            rendered.contains(&count_line),
            "missing {count_line:?} in exposition:\n{rendered}"
        );
    }
    let json = m.to_json();
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    let hists = value.get("histograms").expect("histograms key");
    for (name, hist) in m.histograms() {
        let got = hists
            .get(name)
            .and_then(|h| h.get("count"))
            .and_then(|c| c.as_u64())
            .unwrap_or_else(|| panic!("histograms.{name}.count missing"));
        assert_eq!(got, hist.count());
    }
}

#[test]
fn metrics_sink_report_renders_valid_exposition_lines() {
    // End-to-end: a sink fed real events renders lines that are each
    // either a comment or `name[{labels}] value`.
    let sink = MetricsSink::new();
    for event in Event::examples() {
        sink.observe(&event);
    }
    let rendered = prometheus::render(&sink.report());
    for line in rendered.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (name_part, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("malformed exposition line {line:?}");
        });
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
            "unparseable sample value in {line:?}"
        );
        let bare = name_part.split('{').next().unwrap();
        assert!(
            bare.starts_with("bico_")
                && bare.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad metric name in {line:?}"
        );
    }
}

// Keep the facade honest: the stats module re-exported here is the one
// the solvers use (one source of truth for Summary).
#[test]
fn facade_reexports_summary() {
    let s = stats::Summary::of(&[1.0, 2.0]);
    assert_eq!(s.count(), 2);
}
