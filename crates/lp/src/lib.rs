#![warn(missing_docs)]

//! # bico-lp — a bounded-variable two-phase simplex LP solver
//!
//! This crate provides the linear-programming substrate required by the
//! CARBON reproduction: the lower-level continuous relaxation of the
//! Bi-level Cloud Pricing Optimization Problem must be solved once per
//! upper-level decision to obtain
//!
//! * the relaxation optimum `LB(x)` used as the denominator of the
//!   %-gap measure (Eq. 1 of the paper),
//! * the dual values `d_k` of the covering constraints, and
//! * the relaxed primal solution `x̄_j`,
//!
//! the last two being terminals of the GP hyper-heuristic (Table I).
//!
//! The solver is a dense tableau simplex with
//!
//! * general variable bounds `l ≤ x ≤ u` handled implicitly (bound flips,
//!   nonbasic-at-upper),
//! * a two-phase start with per-row artificial variables,
//! * Dantzig pricing with an automatic switch to Bland's rule when the
//!   objective stalls (anti-cycling),
//! * exact dual recovery from the artificial columns,
//! * warm starts: [`LpProblem::solve_with_basis`] crashes a recorded
//!   [`BasisSnapshot`] back into the tableau and skips phase 1, and
//!   [`PreparedLp`] amortizes phase 1 across repeated solves of one
//!   constraint template under varying objectives (bit-identical to the
//!   cold path).
//!
//! Paper-class problem sizes are tiny by LP standards (≤ 30 rows,
//! ≤ 500 bounded columns) but the solver is called tens of thousands of
//! times per experiment, so the implementation avoids allocation in the
//! pivot loop and keeps the tableau in a single contiguous buffer.
//!
//! For instances far beyond paper class (tens of thousands of sparse
//! columns) a second implementation kicks in: a revised simplex over a
//! CSC constraint matrix with an LU/eta-factorized basis and
//! candidate-list partial pricing (see [`SparseMode`] and the
//! `sparse` module docs). [`SparseMode::Auto`] — the default — picks it
//! only for large, sparse systems, so small workloads keep the dense
//! tableau and its bit-exact trajectories; the two paths are held in
//! agreement by objective comparison and the [`check_certificate`] KKT
//! checks, not pivot-sequence identity.
//!
//! ## Example
//!
//! ```
//! use bico_lp::{LpProblem, Relation, LpStatus};
//!
//! // min x0 + 2 x1   s.t.  x0 + x1 >= 4,  x0 <= 3,  0 <= x <= 10
//! let mut p = LpProblem::minimize(2);
//! p.set_objective(&[1.0, 2.0]);
//! p.set_bounds(0, 0.0, 10.0);
//! p.set_bounds(1, 0.0, 10.0);
//! p.add_constraint_dense(&[1.0, 1.0], Relation::Ge, 4.0);
//! p.add_constraint_dense(&[1.0, 0.0], Relation::Le, 3.0);
//! let sol = p.solve().unwrap();
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert!((sol.objective - 5.0).abs() < 1e-8); // x = (3, 1)
//! ```

mod certificate;
mod prepared;
mod problem;
mod simplex;
mod solution;
mod sparse;
mod write;

pub use certificate::check_certificate;
pub use prepared::PreparedLp;
pub use problem::{LpError, LpProblem, Relation, Sense};
pub use simplex::SimplexOptions;
pub use solution::{BasisSnapshot, LpSolution, LpStatus, VarStatus};
pub use sparse::SparseMode;
pub use write::to_lp_format;
