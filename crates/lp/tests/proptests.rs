//! Property-based tests for the simplex solver.
//!
//! Strategy: generate random covering-style LPs (the exact family CARBON
//! solves tens of thousands of times) plus random general LPs, solve them,
//! and validate the full KKT certificate. Because the certificate is a
//! complete optimality proof for linear programs, these tests do not need
//! a reference solver.

use bico_lp::{check_certificate, LpProblem, LpStatus, Relation};
use proptest::prelude::*;

/// Random covering LP: min c·x, Qx ≥ b, 0 ≤ x ≤ 1 with Q ≥ 0 and
/// b scaled so the all-ones point is feasible (guarantees feasibility).
fn covering_lp(n: usize, m: usize, seed_data: &[u8]) -> LpProblem {
    let mut p = LpProblem::minimize(n);
    let mut it = seed_data.iter().cycle();
    let mut next = || *it.next().unwrap() as f64;
    let costs: Vec<f64> = (0..n).map(|_| 1.0 + next()).collect();
    p.set_objective(&costs);
    for j in 0..n {
        p.set_bounds(j, 0.0, 1.0);
    }
    for _ in 0..m {
        let row: Vec<f64> = (0..n).map(|_| (next() % 16.0).floor()).collect();
        let total: f64 = row.iter().sum();
        // b <= total ensures x = 1 is feasible.
        let b = (total * (0.2 + (next() % 60.0) / 100.0)).floor();
        p.add_constraint_dense(&row, Relation::Ge, b);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn covering_lps_solve_to_certified_optimum(
        n in 2usize..40,
        m in 1usize..12,
        data in proptest::collection::vec(any::<u8>(), 64..256),
    ) {
        let p = covering_lp(n, m, &data);
        let sol = p.solve().unwrap();
        prop_assert_eq!(sol.status, LpStatus::Optimal);
        prop_assert!(check_certificate(&p, &sol, 1e-6).is_ok(),
            "certificate failed: {:?}", check_certificate(&p, &sol, 1e-6));
        // Covering duals must be nonnegative (min sense, >= rows).
        for &y in &sol.duals {
            prop_assert!(y >= -1e-7);
        }
        // LP bound is at most the all-ones cost (x = 1 is feasible).
        let ones_cost: f64 = p.objective().iter().sum();
        prop_assert!(sol.objective <= ones_cost + 1e-6);
    }

    #[test]
    fn general_lps_never_violate_certificate(
        n in 1usize..10,
        rows in proptest::collection::vec(
            (proptest::collection::vec(-5i8..=5, 10), 0usize..3, -20i8..=20),
            0..6
        ),
        costs in proptest::collection::vec(-9i8..=9, 10),
        uppers in proptest::collection::vec(1u8..=30, 10),
    ) {
        let mut p = LpProblem::minimize(n);
        for j in 0..n {
            p.set_objective_coeff(j, costs[j] as f64);
            p.set_bounds(j, 0.0, uppers[j] as f64);
        }
        for (coeffs, rel, rhs) in &rows {
            let rel = match rel % 3 {
                0 => Relation::Le,
                1 => Relation::Ge,
                _ => Relation::Eq,
            };
            let dense: Vec<f64> = coeffs.iter().take(n).map(|&c| c as f64).collect();
            p.add_constraint_dense(&dense, rel, *rhs as f64);
        }
        let sol = p.solve().unwrap();
        match sol.status {
            LpStatus::Optimal => {
                prop_assert!(check_certificate(&p, &sol, 1e-6).is_ok(),
                    "certificate failed: {:?}", check_certificate(&p, &sol, 1e-6));
            }
            LpStatus::Infeasible | LpStatus::Unbounded => {}
            LpStatus::IterationLimit => prop_assert!(false, "iteration limit on tiny LP"),
        }
    }

    #[test]
    fn bounded_boxes_are_never_unbounded(
        n in 1usize..8,
        costs in proptest::collection::vec(-9i8..=9, 8),
    ) {
        // All variables boxed => never unbounded regardless of objective.
        let mut p = LpProblem::minimize(n);
        for j in 0..n {
            p.set_objective_coeff(j, costs[j] as f64);
            p.set_bounds(j, -3.0, 11.0);
        }
        let sol = p.solve().unwrap();
        prop_assert_eq!(sol.status, LpStatus::Optimal);
        // Optimum of a separable box LP is attained at the per-variable bound.
        let expected: f64 = (0..n)
            .map(|j| {
                let c = costs[j] as f64;
                if c >= 0.0 { c * -3.0 } else { c * 11.0 }
            })
            .sum();
        prop_assert!((sol.objective - expected).abs() < 1e-8);
    }

    #[test]
    fn infeasible_window_is_detected(lo in 5u8..50, gap in 1u8..20) {
        // x >= lo+gap and x <= lo is always infeasible.
        let mut p = LpProblem::minimize(1);
        p.add_constraint_dense(&[1.0], Relation::Ge, (lo + gap) as f64);
        p.add_constraint_dense(&[1.0], Relation::Le, lo as f64);
        let sol = p.solve().unwrap();
        prop_assert_eq!(sol.status, LpStatus::Infeasible);
    }
}
