//! The bi-level toll-setting model.

use crate::graph::{max_reward_shortest_path, Graph};

/// One follower: `demand` units of traffic from `origin` to
/// `destination`, routed along a cheapest tolled path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Commodity {
    /// Origin node.
    pub origin: usize,
    /// Destination node.
    pub destination: usize,
    /// Traffic volume (multiplies the collected toll).
    pub demand: f64,
}

/// A toll-setting instance: network, base costs, the leader's tollable
/// arcs with per-arc caps, and the commodities.
///
/// ```
/// use bico_toll::problem::highway_example;
///
/// let p = highway_example(); // tolled highway vs free 6-cost back road
/// assert_eq!(p.revenue(&[4.0]).unwrap(), 4.0); // indifference margin
/// assert_eq!(p.revenue(&[4.5]).unwrap(), 0.0); // follower defects
/// ```
#[derive(Debug, Clone)]
pub struct TollProblem {
    /// The road network.
    pub graph: Graph,
    /// Fixed travel cost per arc.
    pub base_costs: Vec<f64>,
    /// Arc ids the leader may toll.
    pub toll_arcs: Vec<usize>,
    /// Toll cap per tollable arc (parallel to `toll_arcs`).
    pub caps: Vec<f64>,
    /// The follower commodities.
    pub commodities: Vec<Commodity>,
}

impl TollProblem {
    /// Validate shapes and ranges.
    ///
    /// # Panics
    /// Panics on inconsistent input (library misuse, not data error).
    pub fn validate(&self) {
        assert_eq!(self.base_costs.len(), self.graph.num_arcs(), "cost per arc");
        assert_eq!(self.toll_arcs.len(), self.caps.len(), "cap per toll arc");
        for &a in &self.toll_arcs {
            assert!(a < self.graph.num_arcs(), "toll arc {a} out of range");
        }
        for c in &self.commodities {
            assert!(c.origin < self.graph.num_nodes());
            assert!(c.destination < self.graph.num_nodes());
            assert!(c.demand >= 0.0);
        }
    }

    /// Number of leader decision variables.
    pub fn num_tolls(&self) -> usize {
        self.toll_arcs.len()
    }

    /// Expand a toll vector (over `toll_arcs`) into per-arc cost and
    /// reward vectors.
    fn expand(&self, tolls: &[f64]) -> (Vec<f64>, Vec<f64>) {
        assert_eq!(tolls.len(), self.toll_arcs.len(), "toll vector length");
        let mut costs = self.base_costs.clone();
        let mut reward = vec![0.0; self.graph.num_arcs()];
        for (slot, &arc) in self.toll_arcs.iter().enumerate() {
            costs[arc] += tolls[slot];
            reward[arc] = tolls[slot];
        }
        (costs, reward)
    }

    /// Leader revenue for a toll vector: every commodity routes along a
    /// cheapest tolled path (optimistic tie-break toward revenue);
    /// returns total `demand · collected tolls`.
    ///
    /// Returns `None` if some commodity cannot reach its destination
    /// (malformed network).
    pub fn revenue(&self, tolls: &[f64]) -> Option<f64> {
        let (costs, reward) = self.expand(tolls);
        let mut total = 0.0;
        for c in &self.commodities {
            let (_, r) = max_reward_shortest_path(
                &self.graph,
                &costs,
                &reward,
                c.origin,
                c.destination,
                1e-9,
            )?;
            total += c.demand * r;
        }
        Some(total)
    }

    /// Total follower cost (all commodities) under a toll vector.
    pub fn follower_cost(&self, tolls: &[f64]) -> Option<f64> {
        let (costs, _) = self.expand(tolls);
        let mut total = 0.0;
        for c in &self.commodities {
            let sp = self.graph.dijkstra(c.origin, &costs);
            let d = sp.dist[c.destination];
            if !d.is_finite() {
                return None;
            }
            total += c.demand * d;
        }
        Some(total)
    }
}

/// The textbook single-toll-arc example: a tolled highway
/// (`0 → 1`, base cost 2, cap 10) in parallel with a free back road
/// (`0 → 2 → 1`, cost 3 + 3 = 6). The leader's optimal toll is the
/// follower's indifference margin: `6 − 2 = 4`, collecting 4 per unit
/// of demand.
pub fn highway_example() -> TollProblem {
    let arcs = vec![(0usize, 1usize), (0, 2), (2, 1)];
    TollProblem {
        graph: Graph::new(3, &arcs),
        base_costs: vec![2.0, 3.0, 3.0],
        toll_arcs: vec![0],
        caps: vec![10.0],
        commodities: vec![Commodity { origin: 0, destination: 1, demand: 1.0 }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn highway_revenue_curve() {
        let p = highway_example();
        p.validate();
        // Toll below the margin: follower stays on the highway.
        assert_eq!(p.revenue(&[1.0]).unwrap(), 1.0);
        assert_eq!(p.revenue(&[3.9]).unwrap(), 3.9);
        // Exactly at the margin: optimistic follower still pays.
        assert_eq!(p.revenue(&[4.0]).unwrap(), 4.0);
        // Above: diverted to the back road, revenue collapses.
        assert_eq!(p.revenue(&[4.1]).unwrap(), 0.0);
        assert_eq!(p.revenue(&[10.0]).unwrap(), 0.0);
    }

    #[test]
    fn follower_cost_is_monotone_in_tolls() {
        let p = highway_example();
        let mut last = 0.0;
        for t in [0.0, 1.0, 2.0, 4.0, 5.0, 9.0] {
            let c = p.follower_cost(&[t]).unwrap();
            assert!(c >= last - 1e-12, "follower cost decreased at toll {t}");
            last = c;
        }
        // Once diverted, the cost plateaus at the free-path cost.
        assert_eq!(p.follower_cost(&[9.0]).unwrap(), 6.0);
    }

    #[test]
    fn demand_scales_revenue() {
        let mut p = highway_example();
        p.commodities[0].demand = 7.0;
        assert_eq!(p.revenue(&[4.0]).unwrap(), 28.0);
    }

    #[test]
    fn multi_commodity_adds_up() {
        // Two commodities on the same highway.
        let mut p = highway_example();
        p.commodities.push(Commodity { origin: 0, destination: 1, demand: 2.0 });
        assert_eq!(p.revenue(&[3.0]).unwrap(), 9.0);
    }

    #[test]
    fn unreachable_commodity_is_none() {
        let arcs = vec![(0usize, 1usize)];
        let p = TollProblem {
            graph: Graph::new(3, &arcs),
            base_costs: vec![1.0],
            toll_arcs: vec![0],
            caps: vec![5.0],
            commodities: vec![Commodity { origin: 0, destination: 2, demand: 1.0 }],
        };
        assert!(p.revenue(&[0.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "toll vector length")]
    fn wrong_toll_length_panics() {
        let p = highway_example();
        let _ = p.revenue(&[1.0, 2.0]);
    }
}
