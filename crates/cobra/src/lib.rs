#![warn(missing_docs)]

//! # bico-cobra — baselines for bi-level co-evolution
//!
//! * [`cobra`] — a faithful implementation of **COBRA** (Legillon,
//!   Liefooghe & Talbi, CEC 2012), the co-evolutionary baseline the
//!   paper compares CARBON against (Algorithm 1 + the COBRA column of
//!   Table II): two index-paired populations, alternating upper/lower
//!   *improvement phases*, elite archives at both levels, a random
//!   re-pairing co-evolution operator, and archive re-injection.
//! * [`codba`] — a CODBA-style decomposition baseline (Chaabani,
//!   Bechikh & Ben Said 2015): per-pricing lower-level sub-populations
//!   mating with archived reactions — the related-work algorithm the
//!   paper argues "reduces to a simple nested optimization algorithm".
//! * [`nested`] — a nested-sequential (CST) baseline from the paper's
//!   taxonomy (Fig. 2): a plain GA whose fitness function runs a full
//!   inner GA on the lower level — the "very time consuming" legacy
//!   scheme both co-evolutionary algorithms try to escape.
//!
//! Both report the same metrics as CARBON (upper-level revenue and the
//! Eq. 1 %-gap) so Tables III/IV compare like for like; COBRA data are
//! extracted from its lower-level archive exactly as §V.B describes.

pub mod cobra;
pub mod codba;
pub mod nested;

pub use cobra::{Cobra, CobraConfig, CobraResult};
pub use codba::{Codba, CodbaConfig, CodbaResult};
pub use nested::{NestedConfig, NestedResult, NestedSequential};
