//! Property tests for the toll domain: revenue and follower-cost
//! invariants on randomized networks.

use bico_toll::{Commodity, Graph, TollProblem};
use proptest::prelude::*;

/// Build a layered random network that always connects node 0 to the
/// last node: a chain 0 → 1 → … → n−1 plus random shortcuts.
fn layered(n: usize, shortcut_seeds: &[(u8, u8, u8)], toll_on_chain: bool) -> TollProblem {
    let mut arcs: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    let mut costs: Vec<f64> = (0..n - 1).map(|i| 1.0 + (i % 3) as f64).collect();
    for &(a, b, c) in shortcut_seeds {
        let u = a as usize % n;
        let v = b as usize % n;
        if u != v {
            arcs.push((u, v));
            costs.push(1.0 + (c % 10) as f64);
        }
    }
    let toll_arcs: Vec<usize> = if toll_on_chain { vec![0, 1] } else { vec![arcs.len() - 1] };
    let caps = vec![8.0; toll_arcs.len()];
    TollProblem {
        graph: Graph::new(n, &arcs),
        base_costs: costs,
        toll_arcs,
        caps,
        commodities: vec![Commodity { origin: 0, destination: n - 1, demand: 1.0 }],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn revenue_is_bounded_by_collected_caps(
        n in 3usize..12,
        shortcuts in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..8),
        t0 in 0.0f64..8.0,
        t1 in 0.0f64..8.0,
    ) {
        let p = layered(n, &shortcuts, true);
        let rev = p.revenue(&[t0, t1]).unwrap();
        prop_assert!(rev >= 0.0);
        prop_assert!(rev <= t0 + t1 + 1e-9, "collected {rev} exceeds set tolls {t0}+{t1}");
    }

    #[test]
    fn zero_tolls_zero_revenue(
        n in 3usize..12,
        shortcuts in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..8),
    ) {
        let p = layered(n, &shortcuts, true);
        prop_assert_eq!(p.revenue(&[0.0, 0.0]).unwrap(), 0.0);
    }

    #[test]
    fn follower_cost_is_monotone_in_each_toll(
        n in 3usize..12,
        shortcuts in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..8),
        lo in 0.0f64..4.0,
        delta in 0.0f64..4.0,
    ) {
        let p = layered(n, &shortcuts, true);
        let c_lo = p.follower_cost(&[lo, 1.0]).unwrap();
        let c_hi = p.follower_cost(&[lo + delta, 1.0]).unwrap();
        prop_assert!(c_hi >= c_lo - 1e-9, "raising a toll lowered follower cost");
    }

    #[test]
    fn follower_cost_increase_is_at_most_the_toll_increase(
        n in 3usize..12,
        shortcuts in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..8),
        delta in 0.0f64..6.0,
    ) {
        // 1-Lipschitz in each toll: the follower can always keep its old
        // path, paying at most `delta` more.
        let p = layered(n, &shortcuts, true);
        let c0 = p.follower_cost(&[0.0, 0.0]).unwrap();
        let c1 = p.follower_cost(&[delta, 0.0]).unwrap();
        prop_assert!(c1 <= c0 + delta + 1e-9);
    }

    #[test]
    fn optimistic_revenue_is_consistent_with_follower_cost(
        n in 3usize..10,
        shortcuts in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..6),
        t0 in 0.0f64..8.0,
        t1 in 0.0f64..8.0,
    ) {
        // The revenue path is one of the cheapest paths: collected tolls
        // cannot exceed follower cost minus the cheapest possible base
        // cost (which is ≥ the free-flow shortest path).
        let p = layered(n, &shortcuts, true);
        let tolls = [t0, t1];
        let rev = p.revenue(&tolls).unwrap();
        let tolled_cost = p.follower_cost(&tolls).unwrap();
        let free_cost = p.follower_cost(&[0.0, 0.0]).unwrap();
        prop_assert!(rev <= tolled_cost - free_cost + t0 + t1 + 1e-6);
        prop_assert!(tolled_cost >= free_cost - 1e-9);
    }
}
