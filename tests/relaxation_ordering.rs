//! The paper's Eq. 2–3 argument, verified end to end:
//!
//! better lower-level solutions (smaller gap) mean a *tighter* implied
//! constraint `f(x, y) ≤ H(x)` at the upper level, i.e.
//! `S_opt ⊂ S_carbon ⊂ S_cobra`, so COBRA's larger revenue is an
//! overestimation artifact, not better pricing.

use bico::bcpop::{
    evaluate_pair, exact_ll_optimum, generate, greedy_cover, CostPerCoverageScorer,
    GeneratorConfig, RelaxationSolver,
};
use bico::cobra::{Cobra, CobraConfig};
use bico::core::{Carbon, CarbonConfig};

#[test]
fn gap_ordering_carbon_below_cobra() {
    // Mean best-gap over 3 seeds: CARBON ≤ COBRA (Table III's shape).
    let inst = generate(
        &GeneratorConfig { num_bundles: 60, num_services: 8, ..Default::default() },
        2024,
    );
    let mut carbon_sum = 0.0;
    let mut cobra_sum = 0.0;
    for seed in 0..3u64 {
        carbon_sum += Carbon::new(
            &inst,
            CarbonConfig {
                ul_pop_size: 16,
                ll_pop_size: 16,
                ul_archive_size: 16,
                ll_archive_size: 16,
                ul_evaluations: 960,
                ll_evaluations: 960,
                ..Default::default()
            },
        )
        .run(seed)
        .best_gap;
        cobra_sum += Cobra::new(
            &inst,
            CobraConfig {
                ul_pop_size: 16,
                ll_pop_size: 16,
                ul_archive_size: 16,
                ll_archive_size: 16,
                ul_evaluations: 960,
                ll_evaluations: 960,
                ..Default::default()
            },
        )
        .run(seed)
        .best_gap;
    }
    assert!(
        carbon_sum < cobra_sum,
        "mean CARBON gap {} must be below mean COBRA gap {}",
        carbon_sum / 3.0,
        cobra_sum / 3.0
    );
}

#[test]
fn sandwich_w_le_heuristic_on_small_instance() {
    // On an exactly solvable instance: LB(x) ≤ w(x) ≤ A(x) for any
    // heuristic A — the inequality chain Eq. 3 builds on.
    let inst = generate(
        &GeneratorConfig { num_bundles: 16, num_services: 4, ..Default::default() },
        3,
    );
    let solver = RelaxationSolver::new(&inst);
    for pct in [0.1, 0.5, 0.9] {
        let prices = vec![inst.price_cap() * pct; inst.num_own()];
        let costs = inst.costs_for(&prices);
        let relax = solver.solve(&costs).unwrap();
        let (w, _) = exact_ll_optimum(&inst, &costs).unwrap();
        let out = greedy_cover(&inst, &costs, &mut CostPerCoverageScorer, Some(&relax));
        assert!(relax.lower_bound <= w + 1e-6);
        assert!(w <= out.cost + 1e-6);
        // And the implied evaluate_pair gap is consistent and nonnegative.
        let ev = evaluate_pair(&inst, &prices, &out.chosen, relax.lower_bound);
        assert!(ev.gap >= -1e-9);
    }
}

#[test]
fn looser_reaction_never_shrinks_ul_estimate() {
    // Directly exercise S_opt ⊂ S_H: for the *same* pricing, replacing a
    // rational reaction by a worse (more expensive) one can only change
    // the leader's *estimate* — the rational revenue is what the leader
    // actually gets. Verify that the exact reaction's revenue is what
    // evaluate_pair reports, and that a strictly worse reaction is
    // flagged by a strictly larger gap.
    let inst = generate(
        &GeneratorConfig { num_bundles: 14, num_services: 3, ..Default::default() },
        8,
    );
    let prices = vec![inst.price_cap() * 0.3; inst.num_own()];
    let costs = inst.costs_for(&prices);
    let relax = RelaxationSolver::new(&inst).solve(&costs).unwrap();
    let (_, rational) = exact_ll_optimum(&inst, &costs).unwrap();
    let ev_rational = evaluate_pair(&inst, &prices, &rational, relax.lower_bound);

    // Degrade the reaction: buy everything.
    let all = vec![true; inst.num_bundles()];
    let ev_loose = evaluate_pair(&inst, &prices, &all, relax.lower_bound);
    assert!(ev_loose.gap > ev_rational.gap);
    assert!(
        ev_loose.ul_value >= ev_rational.ul_value,
        "buying everything includes all own bundles: the overestimation direction"
    );
}
