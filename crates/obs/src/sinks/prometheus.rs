//! Prometheus text-exposition rendering of [`RunMetrics`].
//!
//! [`render`] turns a metrics snapshot into the Prometheus text format
//! (version 0.0.4): counters carry the `_total` suffix, cache counters
//! share one metric family distinguished by a `cache` label, latency
//! histograms expand into cumulative `_bucket{le="…"}` series plus
//! `_sum`/`_count`, and the per-generation latency [`Summary`] renders
//! as a summary with `quantile` labels. Every metric is prefixed
//! `bico_` and seconds-valued metrics end in `_seconds`, per the
//! upstream naming conventions.
//!
//! [`PrometheusSink`] is the observer-shaped wrapper: it feeds a
//! (possibly shared) [`MetricsSink`] and renders the exposition on
//! demand, so `--prom-out` can dump it at exit and a future
//! `bico serve` can serve the same bytes from memory.
//!
//! [`Summary`]: crate::stats::Summary

use crate::event::Event;
use crate::hist::Histogram;
use crate::observer::RunObserver;
use crate::sinks::metrics::{MetricsSink, RunMetrics};
use std::fmt::Write as _;
use std::io;
use std::sync::Arc;

/// Escape a label value per the exposition format (backslash, quote and
/// newline are the only specials).
fn push_label_value(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a `# HELP` / `# TYPE` header pair.
fn push_header(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Append one sample line: `name{label="value"} sample`.
fn push_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push('=');
            push_label_value(out, v);
        }
        out.push('}');
    }
    out.push(' ');
    // Prometheus accepts Go-style floats incl. NaN/+Inf; Rust's Display
    // for f64 produces a compatible subset.
    let _ = writeln!(out, "{value}");
}

fn push_histogram(out: &mut String, name: &str, help: &str, hist: &Histogram) {
    push_header(out, name, "histogram", help);
    let bucket = format!("{name}_bucket");
    let mut le = String::new();
    for (bound, cumulative) in hist.cumulative_buckets() {
        le.clear();
        let _ = write!(le, "{bound}");
        push_sample(out, &bucket, &[("le", &le)], cumulative as f64);
    }
    push_sample(out, &bucket, &[("le", "+Inf")], hist.count() as f64);
    push_sample(out, &format!("{name}_sum"), &[], hist.sum());
    push_sample(out, &format!("{name}_count"), &[], hist.count() as f64);
}

/// Render a metrics snapshot in the Prometheus text exposition format.
pub fn render(m: &RunMetrics) -> String {
    let mut out = String::with_capacity(4096);

    push_header(&mut out, "bico_runs_total", "counter", "Solver runs observed.");
    push_sample(&mut out, "bico_runs_total", &[], m.runs as f64);

    push_header(
        &mut out,
        "bico_generations_total",
        "counter",
        "Generations completed across all runs.",
    );
    push_sample(&mut out, "bico_generations_total", &[], m.generations as f64);

    push_header(
        &mut out,
        "bico_evaluations_total",
        "counter",
        "Fitness evaluations by population level.",
    );
    push_sample(
        &mut out,
        "bico_evaluations_total",
        &[("level", "upper")],
        m.ul_evaluations as f64,
    );
    push_sample(
        &mut out,
        "bico_evaluations_total",
        &[("level", "lower")],
        m.ll_evaluations as f64,
    );

    push_header(&mut out, "bico_gp_node_evals_total", "counter", "GP tree nodes evaluated.");
    push_sample(&mut out, "bico_gp_node_evals_total", &[], m.gp_node_evals as f64);

    push_header(
        &mut out,
        "bico_ll_solves_total",
        "counter",
        "Lower-level relaxation LP solves (including cache hits).",
    );
    push_sample(&mut out, "bico_ll_solves_total", &[], m.ll_solves as f64);

    push_header(
        &mut out,
        "bico_simplex_pivots_total",
        "counter",
        "Simplex pivots across all relaxation solves.",
    );
    push_sample(&mut out, "bico_simplex_pivots_total", &[], m.simplex_pivots as f64);

    push_header(
        &mut out,
        "bico_archive_updates_total",
        "counter",
        "Elite-archive update events.",
    );
    push_sample(&mut out, "bico_archive_updates_total", &[], m.archive_updates as f64);

    // One family per cache statistic; the cache itself is a label.
    let caches: [(&str, u64, u64, u64, u64); 3] = [
        ("solve", m.cache_hits, m.cache_misses, m.cache_evictions, m.cache_entries),
        (
            "compile",
            m.compile_cache_hits,
            m.compile_cache_misses,
            m.compile_cache_evictions,
            m.compile_cache_entries,
        ),
        (
            "decode",
            m.decode_cache_hits,
            m.decode_cache_misses,
            m.decode_cache_evictions,
            m.decode_cache_entries,
        ),
    ];
    push_header(&mut out, "bico_cache_hits_total", "counter", "Cache hits by cache.");
    for (cache, hits, ..) in &caches {
        push_sample(&mut out, "bico_cache_hits_total", &[("cache", cache)], *hits as f64);
    }
    push_header(&mut out, "bico_cache_misses_total", "counter", "Cache misses by cache.");
    for (cache, _, misses, ..) in &caches {
        push_sample(&mut out, "bico_cache_misses_total", &[("cache", cache)], *misses as f64);
    }
    push_header(&mut out, "bico_cache_evictions_total", "counter", "Cache evictions by cache.");
    for (cache, _, _, evictions, _) in &caches {
        push_sample(
            &mut out,
            "bico_cache_evictions_total",
            &[("cache", cache)],
            *evictions as f64,
        );
    }
    push_header(
        &mut out,
        "bico_cache_entries",
        "gauge",
        "Last observed cache residency by cache.",
    );
    for (cache, _, _, _, entries) in &caches {
        push_sample(&mut out, "bico_cache_entries", &[("cache", cache)], *entries as f64);
    }

    // Surrogate-gate screening counters + prediction-quality gauge.
    let surrogate: [(&str, &str, u64); 3] = [
        (
            "bico_surrogate_cells_total",
            "Evaluation-matrix cells screened by the surrogate gate.",
            m.surrogate_cells,
        ),
        ("bico_surrogate_exact_total", "Screened cells decoded exactly.", m.surrogate_exact),
        (
            "bico_surrogate_skipped_total",
            "Screened cells imputed from surrogate rank.",
            m.surrogate_skipped,
        ),
    ];
    for (name, help, value) in &surrogate {
        push_header(&mut out, name, "counter", help);
        push_sample(&mut out, name, &[], *value as f64);
    }
    push_header(
        &mut out,
        "bico_surrogate_rank_corr_mean",
        "gauge",
        "Mean rank correlation of surrogate predictions vs realized outcomes.",
    );
    push_sample(&mut out, "bico_surrogate_rank_corr_mean", &[], m.surrogate_rank_corr_mean);

    push_header(
        &mut out,
        "bico_phase_seconds_total",
        "counter",
        "Wall-clock seconds by solver phase.",
    );
    for timing in &m.phases {
        push_sample(
            &mut out,
            "bico_phase_seconds_total",
            &[("phase", &timing.phase)],
            timing.seconds,
        );
    }

    push_header(
        &mut out,
        "bico_wall_seconds",
        "gauge",
        "Seconds since the metrics sink was created.",
    );
    push_sample(&mut out, "bico_wall_seconds", &[], m.wall_seconds);

    let g = &m.generation_seconds;
    push_header(
        &mut out,
        "bico_generation_seconds",
        "summary",
        "Per-generation wall-clock latency.",
    );
    if g.count() > 0 {
        push_sample(&mut out, "bico_generation_seconds", &[("quantile", "0.5")], g.median());
        push_sample(
            &mut out,
            "bico_generation_seconds",
            &[("quantile", "0.9")],
            g.percentile(90.0),
        );
        push_sample(
            &mut out,
            "bico_generation_seconds",
            &[("quantile", "0.99")],
            g.percentile(99.0),
        );
    }
    push_sample(
        &mut out,
        "bico_generation_seconds_sum",
        &[],
        if g.count() > 0 { g.mean() * g.count() as f64 } else { 0.0 },
    );
    push_sample(&mut out, "bico_generation_seconds_count", &[], g.count() as f64);

    for (key, hist) in m.histograms() {
        let help: &str = match key {
            "ll_solve_seconds" => "Per-solve latency of lower-level relaxation batches.",
            "decode_pass_seconds" => "Per-evaluation latency of GP-scored decode passes.",
            "gp_compile_seconds" => "Per-miss latency of GP compilations.",
            "simplex_pivots_per_solve" => "Simplex pivots per relaxation solve.",
            "gp_nodes_per_eval" => "GP tree nodes walked per fitness evaluation.",
            _ => "Latency/size histogram.",
        };
        push_histogram(&mut out, &format!("bico_{key}"), help, hist);
    }

    out
}

/// An observer that accumulates into a [`MetricsSink`] and renders the
/// Prometheus exposition on demand.
pub struct PrometheusSink {
    metrics: Arc<MetricsSink>,
}

impl Default for PrometheusSink {
    fn default() -> Self {
        Self::new()
    }
}

impl PrometheusSink {
    /// Fresh sink with its own private [`MetricsSink`].
    pub fn new() -> Self {
        PrometheusSink { metrics: Arc::new(MetricsSink::new()) }
    }

    /// Share an existing [`MetricsSink`] so `--metrics-out` and
    /// `--prom-out` report identical numbers from one accumulator.
    pub fn sharing(metrics: Arc<MetricsSink>) -> Self {
        PrometheusSink { metrics }
    }

    /// Render the current state as Prometheus exposition text.
    pub fn render(&self) -> String {
        render(&self.metrics.report())
    }

    /// Write the current exposition to `path` (create/truncate).
    pub fn write_to(&self, path: &str) -> io::Result<()> {
        std::fs::write(path, self.render())
    }
}

impl RunObserver for PrometheusSink {
    fn observe(&self, event: &Event<'_>) {
        self.metrics.observe(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Level;

    #[test]
    fn exposition_has_expected_families_and_shapes() {
        let sink = PrometheusSink::new();
        sink.observe(&Event::RunStart { algo: "carbon", seed: 7 });
        sink.observe(&Event::Evaluation {
            level: Level::Lower,
            count: 10,
            gp_nodes: 300,
            micros: 120,
        });
        sink.observe(&Event::LowerLevelSolve { solves: 10, pivots: 45, micros: 80 });
        let text = sink.render();
        assert!(text.contains("# TYPE bico_runs_total counter"));
        assert!(text.contains("bico_runs_total 1\n"));
        assert!(text.contains("bico_evaluations_total{level=\"lower\"} 10\n"));
        assert!(text.contains("# TYPE bico_ll_solve_seconds histogram"));
        assert!(text.contains("bico_ll_solve_seconds_bucket{le=\"+Inf\"} 10\n"));
        assert!(text.contains("bico_ll_solve_seconds_count 10\n"));
        assert!(text.contains("bico_decode_pass_seconds_count 10\n"));
        assert!(text.contains("bico_cache_hits_total{cache=\"solve\"} 0\n"));
        assert!(text.contains("# TYPE bico_surrogate_cells_total counter"));
        assert!(text.contains("bico_surrogate_cells_total 0\n"));
        assert!(text.contains("bico_surrogate_rank_corr_mean NaN\n"));
    }

    #[test]
    fn every_line_is_comment_or_sample() {
        let sink = PrometheusSink::new();
        sink.observe(&Event::PhaseChange { phase: "relaxation" });
        for line in sink.render().lines() {
            assert!(!line.is_empty());
            if line.starts_with('#') {
                assert!(line.starts_with("# HELP ") || line.starts_with("# TYPE "));
            } else {
                let (series, value) = line.rsplit_once(' ').expect("sample has a value");
                assert!(series.starts_with("bico_"), "bad series {series:?}");
                assert!(value.parse::<f64>().is_ok() || value == "+Inf", "bad value {value:?}");
            }
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let mut out = String::new();
        push_label_value(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_count() {
        let mut h = Histogram::seconds();
        h.record(0.002);
        h.record(0.004);
        h.record(40.0); // lands beyond the largest finite bound? (2^26 µs ≈ 67 s, so no)
        let mut out = String::new();
        push_histogram(&mut out, "bico_test_seconds", "test", &h);
        let infs: Vec<&str> = out.lines().filter(|l| l.contains("le=\"+Inf\"")).collect();
        assert_eq!(infs.len(), 1);
        assert!(infs[0].ends_with(" 3"));
        let mut prev = 0.0;
        for line in out.lines().filter(|l| l.contains("_bucket{le=") && !l.contains("+Inf")) {
            let v: f64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
            assert!(v >= prev, "buckets must be cumulative: {line}");
            prev = v;
        }
    }
}
