//! Replay: parse JSONL traces back into typed events.
//!
//! [`JsonlSink`](crate::JsonlSink) writes one event per line; this
//! module is its inverse. Each line becomes a [`TraceRecord`] holding
//! the envelope (`seq`, `t_ms`, optional `tag`) plus an [`OwnedEvent`]
//! — an owned mirror of [`Event`] so records outlive the trace text.
//! Re-serializing a record ([`TraceRecord::to_jsonl_line`]) reproduces
//! the original line byte for byte, which the schema round-trip tests
//! rely on: parsing is lossless precisely when the bytes match.

use crate::event::{Event, Level};
use crate::json::{self, Value};

/// An owned mirror of [`Event`]: same variants, `String` instead of
/// `&str`, so parsed traces are self-contained.
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedEvent {
    /// See [`Event::RunStart`].
    RunStart {
        /// Algorithm name.
        algo: String,
        /// Master seed of the run.
        seed: u64,
    },
    /// See [`Event::PhaseChange`].
    PhaseChange {
        /// Phase name.
        phase: String,
    },
    /// See [`Event::GenerationStart`].
    GenerationStart {
        /// Zero-based generation index.
        generation: u64,
    },
    /// See [`Event::Evaluation`].
    Evaluation {
        /// Which population was evaluated.
        level: Level,
        /// Evaluations in the batch.
        count: u64,
        /// GP tree nodes evaluated while scoring the batch.
        gp_nodes: u64,
        /// Wall-clock microseconds spent scoring the batch.
        micros: u64,
    },
    /// See [`Event::LowerLevelSolve`].
    LowerLevelSolve {
        /// Relaxation requests in the batch.
        solves: u64,
        /// Simplex pivots across the batch.
        pivots: u64,
        /// Wall-clock microseconds spent answering the batch.
        micros: u64,
    },
    /// See [`Event::CacheProbe`].
    CacheProbe {
        /// Cache hits in the batch.
        hits: u64,
        /// Cache misses in the batch.
        misses: u64,
        /// Entries evicted during the batch.
        evictions: u64,
        /// Entries resident after the batch.
        entries: u64,
    },
    /// See [`Event::CompileCacheProbe`].
    CompileCacheProbe {
        /// Compile-cache hits in the batch.
        hits: u64,
        /// Compile-cache misses in the batch.
        misses: u64,
        /// Programs evicted during the batch.
        evictions: u64,
        /// Programs resident after the batch.
        entries: u64,
        /// Microseconds spent compiling the batch's misses.
        compile_micros: u64,
    },
    /// See [`Event::DecodeCacheProbe`].
    DecodeCacheProbe {
        /// Decode-cache hits in the batch.
        hits: u64,
        /// Decode-cache misses in the batch.
        misses: u64,
        /// Outcomes evicted during the batch.
        evictions: u64,
        /// Outcomes resident after the batch.
        entries: u64,
    },
    /// See [`Event::SurrogateProbe`].
    SurrogateProbe {
        /// Unique evaluation-matrix cells screened this generation.
        cells: u64,
        /// Cells decoded exactly.
        exact: u64,
        /// Cells imputed from surrogate rank.
        skipped: u64,
        /// Rank correlation of predictions vs realized outcomes.
        rank_corr: f64,
    },
    /// See [`Event::ObjectivePair`].
    ObjectivePair {
        /// The population improving when this sample was taken.
        level: Level,
        /// Upper-level objective of the current best pair.
        ul_value: f64,
        /// Lower-level objective of the current best pair.
        ll_value: f64,
    },
    /// See [`Event::ArchiveUpdate`].
    ArchiveUpdate {
        /// Which level's archive.
        level: Level,
        /// Archive size after the update.
        size: u64,
        /// Fitness of the archive's best entry.
        best: f64,
    },
    /// See [`Event::GenerationEnd`].
    GenerationEnd {
        /// Zero-based generation index.
        generation: u64,
        /// Cumulative evaluations consumed so far.
        evaluations: u64,
        /// The generation's best upper-level objective.
        ul_best: f64,
        /// The generation's best %-gap.
        gap_best: f64,
    },
    /// See [`Event::RunComplete`].
    RunComplete {
        /// Generations completed.
        generations: u64,
        /// Upper-level evaluations consumed.
        ul_evaluations: u64,
        /// Lower-level evaluations consumed.
        ll_evaluations: u64,
        /// Best upper-level objective found.
        best_value: f64,
        /// Best %-gap found.
        best_gap: f64,
    },
}

impl OwnedEvent {
    /// Borrow back as the wire-format [`Event`] (for re-serialization
    /// and for feeding parsed traces through live sinks).
    pub fn to_event(&self) -> Event<'_> {
        match *self {
            OwnedEvent::RunStart { ref algo, seed } => Event::RunStart { algo, seed },
            OwnedEvent::PhaseChange { ref phase } => Event::PhaseChange { phase },
            OwnedEvent::GenerationStart { generation } => Event::GenerationStart { generation },
            OwnedEvent::Evaluation { level, count, gp_nodes, micros } => {
                Event::Evaluation { level, count, gp_nodes, micros }
            }
            OwnedEvent::LowerLevelSolve { solves, pivots, micros } => {
                Event::LowerLevelSolve { solves, pivots, micros }
            }
            OwnedEvent::CacheProbe { hits, misses, evictions, entries } => {
                Event::CacheProbe { hits, misses, evictions, entries }
            }
            OwnedEvent::CompileCacheProbe {
                hits,
                misses,
                evictions,
                entries,
                compile_micros,
            } => Event::CompileCacheProbe { hits, misses, evictions, entries, compile_micros },
            OwnedEvent::DecodeCacheProbe { hits, misses, evictions, entries } => {
                Event::DecodeCacheProbe { hits, misses, evictions, entries }
            }
            OwnedEvent::SurrogateProbe { cells, exact, skipped, rank_corr } => {
                Event::SurrogateProbe { cells, exact, skipped, rank_corr }
            }
            OwnedEvent::ObjectivePair { level, ul_value, ll_value } => {
                Event::ObjectivePair { level, ul_value, ll_value }
            }
            OwnedEvent::ArchiveUpdate { level, size, best } => {
                Event::ArchiveUpdate { level, size, best }
            }
            OwnedEvent::GenerationEnd { generation, evaluations, ul_best, gap_best } => {
                Event::GenerationEnd { generation, evaluations, ul_best, gap_best }
            }
            OwnedEvent::RunComplete {
                generations,
                ul_evaluations,
                ll_evaluations,
                best_value,
                best_gap,
            } => Event::RunComplete {
                generations,
                ul_evaluations,
                ll_evaluations,
                best_value,
                best_gap,
            },
        }
    }

    /// The event's tag (same as [`Event::name`]).
    pub fn name(&self) -> &'static str {
        self.to_event().name()
    }

    /// The event's payload with timing fields (`micros`,
    /// `compile_micros`) zeroed, serialized as a JSON fragment. Two
    /// same-seed runs produce identical semantic keys even though their
    /// wall-clock payloads differ — this is what the run diff compares.
    pub fn semantic_key(&self) -> String {
        let mut stripped = self.clone();
        match &mut stripped {
            OwnedEvent::Evaluation { micros, .. }
            | OwnedEvent::LowerLevelSolve { micros, .. } => *micros = 0,
            OwnedEvent::CompileCacheProbe { compile_micros, .. } => *compile_micros = 0,
            _ => {}
        }
        let event = stripped.to_event();
        let mut out = String::from(event.name());
        event.write_json_fields(&mut out);
        out
    }
}

/// One parsed JSONL trace line: envelope plus event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Global sequence number over the trace file.
    pub seq: u64,
    /// Milliseconds since the emitting sink was created.
    pub t_ms: u64,
    /// Optional run label (multi-run trace files).
    pub tag: Option<String>,
    /// The event payload.
    pub event: OwnedEvent,
}

impl TraceRecord {
    /// Re-serialize exactly as [`JsonlSink`](crate::JsonlSink) wrote it
    /// (byte-identical, including the trailing newline).
    pub fn to_jsonl_line(&self) -> String {
        let event = self.event.to_event();
        let mut line = String::with_capacity(128);
        line.push_str("{\"event\":");
        json::push_string(&mut line, event.name());
        json::push_u64_field(&mut line, "seq", self.seq);
        json::push_u64_field(&mut line, "t_ms", self.t_ms);
        if let Some(tag) = &self.tag {
            json::push_str_field(&mut line, "tag", tag);
        }
        event.write_json_fields(&mut line);
        line.push_str("}\n");
        line
    }
}

fn get_u64(v: &Value, key: &str, name: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{name}: missing or non-integer field {key:?}"))
}

/// Floats may be `null` (the writer maps non-finite values there).
fn get_f64(v: &Value, key: &str, name: &str) -> Result<f64, String> {
    match v.get(key) {
        Some(Value::Number(n)) => Ok(*n),
        Some(Value::Null) => Ok(f64::NAN),
        _ => Err(format!("{name}: missing or non-numeric field {key:?}")),
    }
}

fn get_level(v: &Value, key: &str, name: &str) -> Result<Level, String> {
    match v.get(key).and_then(Value::as_str) {
        Some("upper") => Ok(Level::Upper),
        Some("lower") => Ok(Level::Lower),
        other => Err(format!("{name}: bad level {other:?}")),
    }
}

/// Parse one JSONL trace line into a [`TraceRecord`].
pub fn parse_line(line: &str) -> Result<TraceRecord, String> {
    let v = json::parse(line.trim_end_matches('\n'))?;
    let name = v
        .get("event")
        .and_then(Value::as_str)
        .ok_or("line has no \"event\" field")?
        .to_string();
    let n = name.as_str();
    let event = match n {
        "RunStart" => OwnedEvent::RunStart {
            algo: v
                .get("algo")
                .and_then(Value::as_str)
                .ok_or("RunStart: missing algo")?
                .to_string(),
            seed: get_u64(&v, "seed", n)?,
        },
        "PhaseChange" => OwnedEvent::PhaseChange {
            phase: v
                .get("phase")
                .and_then(Value::as_str)
                .ok_or("PhaseChange: missing phase")?
                .to_string(),
        },
        "GenerationStart" => {
            OwnedEvent::GenerationStart { generation: get_u64(&v, "generation", n)? }
        }
        "Evaluation" => OwnedEvent::Evaluation {
            level: get_level(&v, "level", n)?,
            count: get_u64(&v, "count", n)?,
            gp_nodes: get_u64(&v, "gp_nodes", n)?,
            micros: get_u64(&v, "micros", n)?,
        },
        "LowerLevelSolve" => OwnedEvent::LowerLevelSolve {
            solves: get_u64(&v, "solves", n)?,
            pivots: get_u64(&v, "pivots", n)?,
            micros: get_u64(&v, "micros", n)?,
        },
        "CacheProbe" => OwnedEvent::CacheProbe {
            hits: get_u64(&v, "hits", n)?,
            misses: get_u64(&v, "misses", n)?,
            evictions: get_u64(&v, "evictions", n)?,
            entries: get_u64(&v, "entries", n)?,
        },
        "CompileCacheProbe" => OwnedEvent::CompileCacheProbe {
            hits: get_u64(&v, "hits", n)?,
            misses: get_u64(&v, "misses", n)?,
            evictions: get_u64(&v, "evictions", n)?,
            entries: get_u64(&v, "entries", n)?,
            compile_micros: get_u64(&v, "compile_micros", n)?,
        },
        "DecodeCacheProbe" => OwnedEvent::DecodeCacheProbe {
            hits: get_u64(&v, "hits", n)?,
            misses: get_u64(&v, "misses", n)?,
            evictions: get_u64(&v, "evictions", n)?,
            entries: get_u64(&v, "entries", n)?,
        },
        "SurrogateProbe" => OwnedEvent::SurrogateProbe {
            cells: get_u64(&v, "cells", n)?,
            exact: get_u64(&v, "exact", n)?,
            skipped: get_u64(&v, "skipped", n)?,
            rank_corr: get_f64(&v, "rank_corr", n)?,
        },
        "ObjectivePair" => OwnedEvent::ObjectivePair {
            level: get_level(&v, "level", n)?,
            ul_value: get_f64(&v, "ul_value", n)?,
            ll_value: get_f64(&v, "ll_value", n)?,
        },
        "ArchiveUpdate" => OwnedEvent::ArchiveUpdate {
            level: get_level(&v, "level", n)?,
            size: get_u64(&v, "size", n)?,
            best: get_f64(&v, "best", n)?,
        },
        "GenerationEnd" => OwnedEvent::GenerationEnd {
            generation: get_u64(&v, "generation", n)?,
            evaluations: get_u64(&v, "evaluations", n)?,
            ul_best: get_f64(&v, "ul_best", n)?,
            gap_best: get_f64(&v, "gap_best", n)?,
        },
        "RunComplete" => OwnedEvent::RunComplete {
            generations: get_u64(&v, "generations", n)?,
            ul_evaluations: get_u64(&v, "ul_evaluations", n)?,
            ll_evaluations: get_u64(&v, "ll_evaluations", n)?,
            best_value: get_f64(&v, "best_value", n)?,
            best_gap: get_f64(&v, "best_gap", n)?,
        },
        other => return Err(format!("unknown event {other:?}")),
    };
    Ok(TraceRecord {
        seq: get_u64(&v, "seq", n)?,
        t_ms: get_u64(&v, "t_ms", n)?,
        tag: v.get("tag").and_then(Value::as_str).map(str::to_string),
        event,
    })
}

/// Parse a whole JSONL trace. Blank lines are skipped; any malformed
/// line aborts with its 1-based line number.
pub fn parse_trace(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::observer::RunObserver;
    use crate::sinks::jsonl::{JsonlSink, SharedBuffer};

    #[test]
    fn every_variant_round_trips_byte_identically() {
        let buffer = SharedBuffer::new();
        let sink = JsonlSink::new(buffer.clone()).with_tag("roundtrip");
        for event in Event::examples() {
            sink.observe(&event);
        }
        let text = buffer.contents();
        let records = parse_trace(&text).expect("trace must parse");
        assert_eq!(records.len(), Event::examples().len());
        let rebuilt: String = records.iter().map(TraceRecord::to_jsonl_line).collect();
        assert_eq!(rebuilt, text, "re-serialization must be byte-identical");
    }

    #[test]
    fn untagged_lines_round_trip_too() {
        let buffer = SharedBuffer::new();
        let sink = JsonlSink::new(buffer.clone());
        sink.observe(&Event::GenerationStart { generation: 3 });
        let text = buffer.contents();
        let records = parse_trace(&text).unwrap();
        assert_eq!(records[0].tag, None);
        assert_eq!(records[0].to_jsonl_line(), text);
    }

    #[test]
    fn non_finite_floats_survive_as_nan() {
        let buffer = SharedBuffer::new();
        let sink = JsonlSink::new(buffer.clone());
        sink.observe(&Event::GenerationEnd {
            generation: 0,
            evaluations: 0,
            ul_best: f64::NEG_INFINITY,
            gap_best: f64::NAN,
        });
        let text = buffer.contents();
        let records = parse_trace(&text).unwrap();
        match &records[0].event {
            OwnedEvent::GenerationEnd { ul_best, gap_best, .. } => {
                assert!(ul_best.is_nan() && gap_best.is_nan());
            }
            other => panic!("wrong event {other:?}"),
        }
        // Both serialize back to null, so bytes still match.
        assert_eq!(records[0].to_jsonl_line(), text);
    }

    #[test]
    fn semantic_key_ignores_timing_payloads() {
        let a =
            OwnedEvent::Evaluation { level: Level::Lower, count: 5, gp_nodes: 9, micros: 11 };
        let b =
            OwnedEvent::Evaluation { level: Level::Lower, count: 5, gp_nodes: 9, micros: 99 };
        let c =
            OwnedEvent::Evaluation { level: Level::Lower, count: 6, gp_nodes: 9, micros: 11 };
        assert_eq!(a.semantic_key(), b.semantic_key());
        assert_ne!(a.semantic_key(), c.semantic_key());
    }

    #[test]
    fn malformed_lines_report_their_line_number() {
        let err = parse_trace("{\"event\":\"RunStart\",\"seq\":0,\"t_ms\":0,\"algo\":\"x\",\"seed\":1}\nnot json\n")
            .unwrap_err();
        assert!(err.starts_with("line 2:"), "got {err}");
        let err = parse_trace("{\"event\":\"Nope\",\"seq\":0,\"t_ms\":0}\n").unwrap_err();
        assert!(err.contains("unknown event"), "got {err}");
    }
}
