//! Reproduce **Fig. 5** — COBRA's convergence on the n=500, m=30 class:
//! the alternating improvement phases produce a *see-saw*: each upper
//! phase inflates the revenue while degrading the (frozen) reactions'
//! gap, and each lower phase does the reverse.
//!
//! Prints the averaged series as CSV and writes `fig5.csv`.
//!
//! ```text
//! cargo run -p bico-bench --release --bin fig5 [--full|--smoke] [--runs N] [--seed S]
//!     [--trace-out run.jsonl] [--metrics-out metrics.json] [--log-level info]
//! ```

use bico_bench::{run_class_observed, write_csv, AlgoKind, ExperimentOpts, ObsStack};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = ExperimentOpts::from_args(&args);
    let stack = ObsStack::from_opts(&opts);
    let class = (500, 30);
    eprintln!(
        "Fig. 5 reproduction (COBRA convergence on {}x{}) — tier {:?}, {} runs",
        class.0,
        class.1,
        opts.tier,
        opts.runs()
    );
    let result = run_class_observed(AlgoKind::Cobra, class, &opts, &stack);
    stack.finish();
    let mut stdout = std::io::stdout().lock();
    write_csv(&mut stdout, &result.trace).expect("stdout");
    let mut file = std::fs::File::create("fig5.csv").expect("create fig5.csv");
    write_csv(&mut file, &result.trace).expect("write fig5.csv");
    eprintln!("wrote fig5.csv ({} points)", result.trace.points().len());

    // Shape check: count direction reversals in the gap series —
    // the see-saw signature.
    let pts = result.trace.points();
    let mut reversals = 0usize;
    for w in pts.windows(3) {
        let d1 = w[1].gap_best - w[0].gap_best;
        let d2 = w[2].gap_best - w[1].gap_best;
        if d1 * d2 < 0.0 {
            reversals += 1;
        }
    }
    let mean_step: f64 =
        pts.windows(2).map(|w| (w[1].gap_best - w[0].gap_best).abs()).sum::<f64>()
            / (pts.len().max(2) - 1) as f64;
    eprintln!(
        "gap-series direction reversals: {reversals} over {} points; \
         mean per-generation gap swing: {mean_step:.3} points \
         (CARBON's steady series in fig4 swings an order of magnitude less)",
        pts.len()
    );
}
