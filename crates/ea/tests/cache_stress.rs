//! Concurrency stress for [`bico_ea::SolveCache`]: hammer one cache from
//! the rayon pool with heavily overlapping keys and check the invariants
//! that the solvers rely on — no duplicate inserts, monotonic counters,
//! and the capacity bound never exceeded even transiently.

use bico_ea::SolveCache;
use rayon::prelude::*;

const PROBES: u64 = 10_000;
const DISTINCT: u64 = 100;

fn value_of(k: u64) -> u64 {
    k.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

#[test]
fn concurrent_probes_on_roomy_cache_insert_each_key_once() {
    // Capacity comfortably above the distinct-key count: no evictions,
    // so every key must be inserted exactly once even when many workers
    // miss on it simultaneously (first writer wins, the rest drop).
    let cache: SolveCache<u64> = SolveCache::new(256);
    (0..PROBES).into_par_iter().for_each(|i| {
        let k = i % DISTINCT;
        let (v, _) = cache.get_or_insert_with(&[k as f64], || value_of(k));
        assert_eq!(v, value_of(k), "cache returned a value for the wrong key");
    });
    let s = cache.stats();
    assert_eq!(s.hits + s.misses, PROBES, "every probe is a hit or a miss");
    assert_eq!(s.probes, PROBES, "probe counter tracks every lookup");
    s.assert_consistent();
    assert_eq!(s.insertions, DISTINCT, "no duplicate inserts");
    assert_eq!(s.evictions, 0);
    assert_eq!(s.entries, DISTINCT as usize);
    assert!(s.hits >= PROBES - DISTINCT * rayon::current_num_threads() as u64);
}

#[test]
fn concurrent_probes_never_exceed_capacity() {
    // More distinct keys than capacity: constant eviction churn while
    // workers probe. Sample the resident count from inside the workers.
    const CAP: usize = 64;
    let cache: SolveCache<u64> = SolveCache::new(CAP);
    (0..PROBES).into_par_iter().for_each(|i| {
        let k = i % DISTINCT;
        let (v, _) = cache.get_or_insert_with(&[k as f64], || value_of(k));
        assert_eq!(v, value_of(k));
        if i % 97 == 0 {
            assert!(cache.len() <= CAP, "capacity exceeded mid-run");
        }
    });
    let s = cache.stats();
    assert_eq!(s.hits + s.misses, PROBES);
    s.assert_consistent();
    assert!(s.entries <= CAP);
    assert_eq!(
        s.entries as u64,
        s.insertions - s.evictions,
        "resident count must equal inserts minus evictions (no duplicates)"
    );
}

#[test]
fn counters_are_monotonic_under_load() {
    let cache: SolveCache<u64> = SolveCache::new(32);
    let mut last = cache.stats();
    for round in 0..8u64 {
        (0..1_000u64).into_par_iter().for_each(|i| {
            let k = (round * 131 + i) % DISTINCT;
            cache.get_or_insert_with(&[k as f64], || value_of(k));
        });
        let now = cache.stats();
        assert!(now.hits >= last.hits, "hits went backwards");
        assert!(now.misses >= last.misses, "misses went backwards");
        assert!(now.insertions >= last.insertions, "insertions went backwards");
        assert!(now.evictions >= last.evictions, "evictions went backwards");
        assert_eq!(now.hits + now.misses, (round + 1) * 1_000);
        assert_eq!(now.probes, (round + 1) * 1_000);
        last = now;
    }
    last.assert_consistent();
}

#[test]
fn probe_identity_holds_across_concurrent_eviction() {
    // A tiny cache forces eviction on nearly every insert while workers
    // probe concurrently: the hits + misses == probes identity must hold
    // exactly once the workers have quiesced, no matter how the races
    // between get / insert / evict interleave.
    let cache: SolveCache<u64> = SolveCache::new(4);
    (0..PROBES).into_par_iter().for_each(|i| {
        let k = i % DISTINCT;
        let (v, _) = cache.get_or_insert_with(&[k as f64], || value_of(k));
        assert_eq!(v, value_of(k));
    });
    let s = cache.stats();
    assert_eq!(s.probes, PROBES);
    s.assert_consistent();
    assert!(s.evictions > 0, "a 4-entry cache under 100 keys must evict");
    assert_eq!(s.entries as u64, s.insertions - s.evictions);
}

#[test]
fn pinned_keys_survive_concurrent_churn() {
    // Pin a handful of "elite" keys, then storm the cache with one-off
    // keys from the whole pool. The pinned entries must still answer
    // hits afterwards; everything else is fair game for eviction.
    const CAP: usize = 32;
    let cache: SolveCache<u64> = SolveCache::new(CAP);
    let elites: Vec<u64> = (1_000..1_008).collect();
    for &e in &elites {
        let key = SolveCache::<u64>::key_of(&[e as f64]);
        cache.pin(&key);
        cache.insert(&key, value_of(e));
    }
    (0..PROBES).into_par_iter().for_each(|i| {
        let k = i % DISTINCT;
        cache.get_or_insert_with(&[k as f64], || value_of(k));
    });
    for &e in &elites {
        let key = SolveCache::<u64>::key_of(&[e as f64]);
        assert_eq!(cache.get(&key), Some(value_of(e)), "pinned key {e} churned out");
    }
    let s = cache.stats();
    s.assert_consistent();
    assert!(
        s.entries <= CAP + cache.pinned_len(),
        "bound soft only by the pinned count: {} entries",
        s.entries
    );
}
