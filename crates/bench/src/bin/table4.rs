//! Reproduce **Table IV** — best upper-level objective per class — plus
//! the Eq. 2/3 relaxation-ordering check (`w(x) ≤ A_carbon ≤ A_cobra`):
//! COBRA's *higher* revenue is an artifact of looser lower-level
//! reactions relaxing the upper level, not of better pricing.
//!
//! ```text
//! cargo run -p bico-bench --release --bin table4 [--full|--smoke] [--runs N] [--seed S]
//!     [--trace-out run.jsonl] [--metrics-out metrics.json] [--log-level info]
//! ```

use bico_bench::{markdown_table, run_class_observed, AlgoKind, ExperimentOpts, ObsStack};

/// Paper Table IV values (CARBON, COBRA) per class.
const PAPER_TABLE4: [(f64, f64); 9] = [
    (10964.07, 14710.78),
    (8976.39, 15226.79),
    (8669.49, 14762.83),
    (25750.66, 35479.64),
    (26897.33, 38283.71),
    (24338.39, 39368.26),
    (50177.28, 73529.34),
    (49441.39, 75041.02),
    (48904.15, 75386.02),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = ExperimentOpts::from_args(&args);
    eprintln!(
        "Table IV reproduction — tier {:?}, {} runs/class, seed {}",
        opts.tier,
        opts.runs(),
        opts.seed
    );

    let stack = ObsStack::from_opts(&opts);
    let mut rows = Vec::new();
    let mut overestimation_classes = 0usize;
    let mut ordering_ok = 0usize;
    let classes = opts.classes();
    for (idx, &class) in classes.iter().enumerate() {
        eprintln!("  class {}x{} ...", class.0, class.1);
        let carbon = run_class_observed(AlgoKind::Carbon, class, &opts, &stack);
        let cobra = run_class_observed(AlgoKind::Cobra, class, &opts, &stack);
        if cobra.best_ul > carbon.best_ul {
            overestimation_classes += 1;
        }
        // Eq. 3: gap ordering implies A_carbon(x) <= A_cobra(x)
        // statistically; compare mean reported gaps.
        if carbon.gap_stats.mean() <= cobra.gap_stats.mean() {
            ordering_ok += 1;
        }
        let (p_car, p_cob) = PAPER_TABLE4.get(idx).copied().unwrap_or((f64::NAN, f64::NAN));
        rows.push(vec![
            class.0.to_string(),
            class.1.to_string(),
            format!("{:.2}", carbon.best_ul),
            format!("{:.2}", cobra.best_ul),
            format!("{p_car:.2}"),
            format!("{p_cob:.2}"),
        ]);
    }

    println!(
        "{}",
        markdown_table(
            &[
                "# Variables",
                "# Constraints",
                "CARBON UL",
                "COBRA UL",
                "paper CARBON",
                "paper COBRA",
            ],
            &rows
        )
    );
    println!(
        "COBRA reports higher UL objective on {overestimation_classes}/{} classes \
         (paper: 9/9 — an overestimation artifact, §V.B).",
        classes.len()
    );
    println!(
        "Gap ordering (CARBON ≤ COBRA ⇒ S_opt ⊂ S_carbon ⊂ S_cobra, Eq. 3) holds on \
         {ordering_ok}/{} classes.",
        classes.len()
    );
    stack.finish();
}
