//! Non-parametric hypothesis testing for run-set comparisons.
//!
//! The paper reports statistics over 30 independent runs per algorithm;
//! a principled comparison of "CARBON's gaps vs COBRA's gaps" is the
//! Mann–Whitney U (Wilcoxon rank-sum) test — no normality assumption,
//! robust to the heavy-tailed fitness distributions EAs produce. The
//! experiment binaries report its p-value next to the raw means.

/// Result of a two-sided Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitney {
    /// The smaller of U_a and U_b.
    pub u: f64,
    /// Normal-approximation z-score (tie-corrected, continuity-corrected).
    pub z: f64,
    /// Two-sided p-value from the normal approximation.
    pub p_two_sided: f64,
    /// Effect direction: negative when `a` tends to be smaller than `b`.
    pub a_shift: f64,
}

/// Two-sided Mann–Whitney U test between samples `a` and `b`, using the
/// tie-corrected normal approximation (adequate for n ≥ ~8 per side;
/// the paper's 30-run protocol is comfortably inside).
///
/// Returns `None` when either sample is empty or the variance collapses
/// (all observations identical).
///
/// ```
/// use bico_ea::mann_whitney_u;
///
/// let carbon_gaps = [1.1, 0.9, 1.3, 1.0, 1.2, 0.8, 1.1, 1.0];
/// let cobra_gaps = [24.0, 21.5, 26.1, 23.3, 25.0, 22.8, 24.4, 23.9];
/// let t = mann_whitney_u(&carbon_gaps, &cobra_gaps).unwrap();
/// assert!(t.p_two_sided < 0.001);
/// assert!(t.a_shift < 0.0); // CARBON's gaps are smaller
/// ```
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Option<MannWhitney> {
    let na = a.len();
    let nb = b.len();
    if na == 0 || nb == 0 {
        return None;
    }
    let n = na + nb;

    // Rank the pooled sample with average ranks on ties.
    let mut pooled: Vec<(f64, bool)> =
        a.iter().map(|&v| (v, true)).chain(b.iter().map(|&v| (v, false))).collect();
    pooled.sort_by(|x, y| x.0.total_cmp(&y.0));

    let mut rank_sum_a = 0.0f64;
    let mut tie_term = 0.0f64;
    let mut i = 0usize;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let count = (j - i + 1) as f64;
        // Average rank of the tie group (ranks are 1-based).
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for item in &pooled[i..=j] {
            if item.1 {
                rank_sum_a += avg_rank;
            }
        }
        tie_term += count * count * count - count;
        i = j + 1;
    }

    let na_f = na as f64;
    let nb_f = nb as f64;
    let u_a = rank_sum_a - na_f * (na_f + 1.0) / 2.0;
    let u_b = na_f * nb_f - u_a;
    let u = u_a.min(u_b);

    let mean = na_f * nb_f / 2.0;
    let n_f = n as f64;
    let var = na_f * nb_f / 12.0 * ((n_f + 1.0) - tie_term / (n_f * (n_f - 1.0)));
    if var <= 0.0 {
        return None;
    }
    // Continuity correction toward the mean.
    let z = (u - mean + 0.5) / var.sqrt();
    let p = (2.0 * normal_cdf(-z.abs())).min(1.0);
    Some(MannWhitney { u, z, p_two_sided: p, a_shift: u_a - mean })
}

/// Summary statistics of a [`compare_run_sets`] comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSetComparison {
    /// Mean of the `a` sample.
    pub a_mean: f64,
    /// Mean of the `b` sample.
    pub b_mean: f64,
    /// Median of the `a` sample.
    pub a_median: f64,
    /// Median of the `b` sample.
    pub b_median: f64,
    /// Mann–Whitney U outcome (`None` on degenerate samples).
    pub test: Option<MannWhitney>,
}

fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        0.5 * (sorted[mid - 1] + sorted[mid])
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Run a per-seed experiment over `n` seeds derived from `base` via
/// [`seed_stream`](crate::seed_stream) — the multi-seed harness behind
/// the pathology regression suite. Seeds are decorrelated (splitmix64
/// streams), deterministic, and identical across strategies sharing the
/// same `base`, so comparisons are paired at the seed level.
pub fn seed_matrix(base: u64, n: usize, f: impl Fn(u64) -> f64) -> Vec<f64> {
    (0..n).map(|i| f(crate::seed_stream(base, i as u64))).collect()
}

/// Compare two run sets: means, medians and the Mann–Whitney U test.
/// Lower-is-better conventions are the caller's — the comparison only
/// summarizes.
pub fn compare_run_sets(a: &[f64], b: &[f64]) -> RunSetComparison {
    RunSetComparison {
        a_mean: mean(a),
        b_mean: mean(b),
        a_median: median(a),
        b_median: median(b),
        test: mann_whitney_u(a, b),
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (absolute error < 1.5e-7 — plenty for reporting p-values).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_points() {
        assert!((erf(0.0)).abs() < 1.5e-7); // A&S 7.1.26 error bound
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_26).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1.5e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn separated_samples_give_small_p() {
        // scipy.stats.mannwhitneyu([1,2,3],[4,5,6], use_continuity=True,
        // alternative='two-sided', method='asymptotic') -> U=0, p≈0.0809
        let r = mann_whitney_u(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(r.u, 0.0);
        assert!((r.p_two_sided - 0.0809).abs() < 0.002, "p = {}", r.p_two_sided);
        assert!(r.a_shift < 0.0, "a is smaller, shift must be negative");
    }

    #[test]
    fn identical_distributions_give_large_p() {
        let a = [1.0, 3.0, 5.0, 7.0, 9.0, 11.0];
        let b = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_two_sided > 0.3, "p = {}", r.p_two_sided);
    }

    #[test]
    fn strongly_separated_large_samples() {
        let a: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| 100.0 + i as f64).collect();
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_two_sided < 1e-9, "p = {}", r.p_two_sided);
    }

    #[test]
    fn ties_are_handled() {
        let a = [1.0, 1.0, 1.0, 2.0];
        let b = [1.0, 2.0, 2.0, 2.0];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_two_sided > 0.05 && r.p_two_sided <= 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(mann_whitney_u(&[], &[1.0]).is_none());
        assert!(mann_whitney_u(&[1.0], &[]).is_none());
        // All identical: zero variance.
        assert!(mann_whitney_u(&[2.0, 2.0], &[2.0, 2.0]).is_none());
    }

    #[test]
    fn seed_matrix_is_deterministic_and_decorrelated() {
        let a = seed_matrix(7, 5, |s| s as f64);
        let b = seed_matrix(7, 5, |s| s as f64);
        assert_eq!(a, b, "same base, same seeds");
        let c = seed_matrix(8, 5, |s| s as f64);
        assert_ne!(a, c, "different base, different seeds");
        let distinct: std::collections::HashSet<u64> = a.iter().map(|v| v.to_bits()).collect();
        assert_eq!(distinct.len(), 5, "streams must not collide");
    }

    #[test]
    fn compare_run_sets_summarizes_both_sides() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0];
        let c = compare_run_sets(&a, &b);
        assert!((c.a_mean - 2.5).abs() < 1e-12);
        assert!((c.a_median - 2.5).abs() < 1e-12);
        assert!((c.b_mean - 20.0).abs() < 1e-12);
        assert!((c.b_median - 20.0).abs() < 1e-12);
        let t = c.test.expect("non-degenerate samples");
        assert!(t.a_shift < 0.0, "a is the smaller sample");
        let empty = compare_run_sets(&[], &b);
        assert!(empty.a_mean.is_nan() && empty.a_median.is_nan());
        assert!(empty.test.is_none());
    }

    #[test]
    fn symmetry_in_arguments() {
        let a = [1.0, 5.0, 3.0, 8.0];
        let b = [2.0, 9.0, 4.0, 7.0];
        let r1 = mann_whitney_u(&a, &b).unwrap();
        let r2 = mann_whitney_u(&b, &a).unwrap();
        assert_eq!(r1.u, r2.u);
        assert!((r1.p_two_sided - r2.p_two_sided).abs() < 1e-12);
        assert!((r1.a_shift + r2.a_shift).abs() < 1e-9);
    }
}
