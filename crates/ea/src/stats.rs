//! Running statistics and convergence traces.
//!
//! The paper's Fig. 4 and Fig. 5 plot, per generation, the average (over
//! 30 runs) best upper-level fitness and best %-gap. [`Trace`] records
//! one run's series; [`Summary`] aggregates values with Welford's online
//! algorithm (numerically stable single pass).

/// Online mean/variance/min/max accumulator (Welford).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Build a summary from a slice.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Accumulate one value (NaN values are ignored).
    pub fn push(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.n += 1;
        let delta = v - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Count of accumulated values.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (NaN when n < 2).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Minimum (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// One sampled point of a convergence trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Generation index.
    pub generation: usize,
    /// Cumulative fitness evaluations consumed when sampled.
    pub evaluations: u64,
    /// Best upper-level objective so far.
    pub ul_best: f64,
    /// Best lower-level %-gap so far.
    pub gap_best: f64,
}

/// A per-run convergence series.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    points: Vec<TracePoint>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample.
    pub fn record(&mut self, generation: usize, evaluations: u64, ul_best: f64, gap_best: f64) {
        self.points.push(TracePoint { generation, evaluations, ul_best, gap_best });
    }

    /// The recorded points, in order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Average several traces point-wise (series are truncated to the
    /// shortest — the paper averages aligned generations over 30 runs).
    pub fn average(traces: &[Trace]) -> Trace {
        let Some(min_len) = traces.iter().map(|t| t.points.len()).min() else {
            return Trace::new();
        };
        let mut out = Trace::new();
        for i in 0..min_len {
            let n = traces.len() as f64;
            let gen = traces[0].points[i].generation;
            let evals =
                (traces.iter().map(|t| t.points[i].evaluations).sum::<u64>() as f64 / n) as u64;
            let ul = traces.iter().map(|t| t.points[i].ul_best).sum::<f64>() / n;
            let gap = traces.iter().map(|t| t.points[i].gap_best).sum::<f64>() / n;
            out.record(gen, evals, ul, gap);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty_and_singleton() {
        let s = Summary::new();
        assert!(s.mean().is_nan());
        let s = Summary::of(&[3.0]);
        assert_eq!(s.mean(), 3.0);
        assert!(s.std_dev().is_nan());
    }

    #[test]
    fn summary_ignores_nan() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_matches_naive_on_large_offset() {
        // Stability check: values with a large common offset.
        let values: Vec<f64> = (0..1000).map(|i| 1e9 + (i % 7) as f64).collect();
        let s = Summary::of(&values);
        let naive_mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((s.mean() - naive_mean).abs() < 1e-3);
    }

    #[test]
    fn trace_average_is_pointwise() {
        let mut t1 = Trace::new();
        t1.record(0, 100, 10.0, 5.0);
        t1.record(1, 200, 20.0, 3.0);
        let mut t2 = Trace::new();
        t2.record(0, 100, 30.0, 1.0);
        t2.record(1, 200, 40.0, 1.0);
        t2.record(2, 300, 50.0, 0.5); // extra point is truncated
        let avg = Trace::average(&[t1, t2]);
        assert_eq!(avg.points().len(), 2);
        assert_eq!(avg.points()[0].ul_best, 20.0);
        assert_eq!(avg.points()[1].gap_best, 2.0);
    }

    #[test]
    fn trace_average_of_empty_set() {
        let avg = Trace::average(&[]);
        assert!(avg.points().is_empty());
    }
}
