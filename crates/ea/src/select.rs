//! Tournament selection.
//!
//! Both algorithms in the paper use tournaments: binary tournament at the
//! upper level for CARBON and COBRA, a (configurable-arity) tournament at
//! CARBON's lower level (Table II).

use rand::Rng;

/// Whether larger or smaller fitness wins a tournament.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger fitness is better (upper-level revenue maximization).
    Maximize,
    /// Smaller fitness is better (%-gap minimization).
    Minimize,
}

impl Direction {
    /// `true` if `a` is strictly better than `b` in this direction.
    #[inline]
    pub fn better(&self, a: f64, b: f64) -> bool {
        match self {
            Direction::Maximize => a > b,
            Direction::Minimize => a < b,
        }
    }

    /// The worst possible fitness value in this direction.
    #[inline]
    pub fn worst(&self) -> f64 {
        match self {
            Direction::Maximize => f64::NEG_INFINITY,
            Direction::Minimize => f64::INFINITY,
        }
    }
}

/// Select the index of the winner of a size-`k` tournament over
/// `fitness`. NaN fitnesses always lose.
///
/// # Panics
/// Panics if `fitness` is empty or `k == 0`.
pub fn tournament<R: Rng + ?Sized>(
    fitness: &[f64],
    k: usize,
    dir: Direction,
    rng: &mut R,
) -> usize {
    assert!(!fitness.is_empty(), "empty population");
    assert!(k > 0, "tournament size must be positive");
    let mut best = rng.random_range(0..fitness.len());
    for _ in 1..k {
        let challenger = rng.random_range(0..fitness.len());
        let fb = fitness[best];
        let fc = fitness[challenger];
        if fb.is_nan() || (!fc.is_nan() && dir.better(fc, fb)) {
            best = challenger;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn direction_better() {
        assert!(Direction::Maximize.better(2.0, 1.0));
        assert!(!Direction::Maximize.better(1.0, 2.0));
        assert!(Direction::Minimize.better(1.0, 2.0));
        assert!(!Direction::Minimize.better(1.0, 1.0));
    }

    #[test]
    fn tournament_prefers_better_on_average() {
        let mut rng = SmallRng::seed_from_u64(1);
        let fitness = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut wins = [0usize; 5];
        for _ in 0..20_000 {
            wins[tournament(&fitness, 2, Direction::Maximize, &mut rng)] += 1;
        }
        // Win counts must be monotone in fitness for maximization.
        for i in 1..5 {
            assert!(wins[i] > wins[i - 1], "selection pressure violated: {wins:?}");
        }
    }

    #[test]
    fn minimize_flips_pressure() {
        let mut rng = SmallRng::seed_from_u64(2);
        let fitness = [1.0, 2.0, 3.0];
        let mut wins = [0usize; 3];
        for _ in 0..10_000 {
            wins[tournament(&fitness, 2, Direction::Minimize, &mut rng)] += 1;
        }
        assert!(wins[0] > wins[2]);
    }

    #[test]
    fn large_tournament_is_near_elitist() {
        let mut rng = SmallRng::seed_from_u64(3);
        let fitness = [1.0, 9.0, 3.0];
        for _ in 0..100 {
            let w = tournament(&fitness, 64, Direction::Maximize, &mut rng);
            assert_eq!(w, 1);
        }
    }

    #[test]
    fn nan_loses_to_any_number_it_meets() {
        // With a tournament large enough to sample the single non-NaN
        // entry with overwhelming probability, it must always win.
        let mut rng = SmallRng::seed_from_u64(4);
        let fitness = [f64::NAN, 1.0];
        for _ in 0..200 {
            let w = tournament(&fitness, 48, Direction::Maximize, &mut rng);
            assert_eq!(w, 1);
        }
    }

    #[test]
    fn singleton_population() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(tournament(&[7.0], 2, Direction::Maximize, &mut rng), 0);
    }
}
