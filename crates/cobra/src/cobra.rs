//! COBRA (Legillon, Liefooghe & Talbi 2012) on the BCPOP.
//!
//! Algorithm 1 of the paper:
//!
//! ```text
//! pop        ← create_initial_pop()
//! pop_upper  ← copy_upper(pop);  pop_lower ← copy_lower(pop)
//! while stopping criterion is not met:
//!     upper_improvement(pop_upper)  and  lower_improvement(pop_lower)
//!     upper_archiving(pop_upper)    and  lower_archiving(pop_lower)
//!     selection(pop_upper)          and  selection(pop_lower)
//!     coevolution(pop_upper, pop_lower)
//!     adding from upper archive     and  from lower archive
//! return lower archive
//! ```
//!
//! The two populations are index-paired: upper individual `i` is always
//! evaluated against lower individual `i` (its current partner).
//! Improvement phases evolve one population for `improvement_gens`
//! generations *while the other is frozen* — the source of the see-saw
//! convergence the paper shows in Fig. 5: pushing prices up degrades the
//! (frozen, no-longer-rational) reactions' quality, and re-optimizing
//! the reactions deflates the revenue.
//!
//! COBRA scores its lower level by the raw lower-level objective value
//! (not the %-gap) — the design decision §V.B blames for its larger
//! gaps; the `gap` metric is computed at archiving/extraction time only,
//! to report Tables III/IV.

use bico_bcpop::{evaluate_pair, BcpopInstance, Relaxation, RelaxationSolver};
use bico_ea::{
    archive::Archive,
    binary::{random_bits, shuffle_mutation, two_point_crossover},
    cache::SolveCache,
    real::{polynomial_mutation, sbx_crossover, RealOpsConfig},
    rng::seed_stream,
    select::{tournament, Direction},
    stats::Trace,
};
use bico_obs::{elapsed_micros, timer_if, Event, Level, NullObserver, RunObserver};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// COBRA parameters; `Default` is the COBRA column of Table II.
#[derive(Debug, Clone)]
pub struct CobraConfig {
    /// Upper-level population size.
    pub ul_pop_size: usize,
    /// Upper-level archive capacity.
    pub ul_archive_size: usize,
    /// Upper-level fitness-evaluation budget.
    pub ul_evaluations: u64,
    /// SBX probability.
    pub ul_crossover_prob: f64,
    /// Polynomial-mutation probability per gene.
    pub ul_mutation_prob: f64,
    /// Real-operator distribution indices.
    pub ul_real_ops: RealOpsConfig,
    /// Lower-level population size.
    pub ll_pop_size: usize,
    /// Lower-level archive capacity.
    pub ll_archive_size: usize,
    /// Lower-level fitness-evaluation budget.
    pub ll_evaluations: u64,
    /// Two-point crossover probability.
    pub ll_crossover_prob: f64,
    /// GA generations per improvement phase (the paper highlights that
    /// tuning this is COBRA's Achilles heel).
    pub improvement_gens: usize,
    /// Repair uncovered reactions after initialization and variation
    /// (COBRA needs *some* feasibility handling on a covering LL; the
    /// repair adds random useful bundles until covering).
    pub repair: bool,
    /// Capacity of the lower-level solve cache (`0` = off). COBRA solves
    /// the relaxation once per generation for the trace gap and once per
    /// archived pair at extraction; re-injected elites and archived
    /// repeats hit the cache. Results are bit-identical either way (see
    /// [`bico_ea::SolveCache`]).
    pub ll_cache_capacity: usize,
}

impl Default for CobraConfig {
    fn default() -> Self {
        CobraConfig {
            ul_pop_size: 100,
            ul_archive_size: 100,
            ul_evaluations: 50_000,
            ul_crossover_prob: 0.85,
            ul_mutation_prob: 0.01,
            ul_real_ops: RealOpsConfig::default(),
            ll_pop_size: 100,
            ll_archive_size: 100,
            ll_evaluations: 50_000,
            ll_crossover_prob: 0.85,
            improvement_gens: 5,
            repair: true,
            ll_cache_capacity: 0,
        }
    }
}

impl CobraConfig {
    /// Reduced-budget configuration for tests and demos.
    pub fn quick() -> Self {
        CobraConfig {
            ul_pop_size: 20,
            ul_archive_size: 20,
            ul_evaluations: 1_000,
            ll_pop_size: 20,
            ll_archive_size: 20,
            ll_evaluations: 1_000,
            ..Default::default()
        }
    }
}

/// Result of a COBRA run (extraction from the lower archive, §V.B).
#[derive(Debug, Clone)]
pub struct CobraResult {
    /// Pricing of the best-gap archived pair.
    pub best_pricing: Vec<f64>,
    /// Its lower-level reaction.
    pub best_reaction: Vec<bool>,
    /// Best upper-level revenue over the archive (Table IV's metric).
    pub best_ul_value: f64,
    /// Best %-gap over the archive (Table III's metric).
    pub best_gap: f64,
    /// Lower-level cost of the best-gap pair.
    pub best_ll_value: f64,
    /// Convergence series (Fig. 5's data), one point per improvement
    /// generation.
    pub trace: Trace,
    /// Upper-level evaluations consumed.
    pub ul_evals_used: u64,
    /// Lower-level evaluations consumed.
    pub ll_evals_used: u64,
    /// Full co-evolution cycles completed.
    pub cycles: usize,
}

/// The COBRA solver bound to one instance.
///
/// ```
/// use bico_bcpop::{generate, GeneratorConfig};
/// use bico_cobra::{Cobra, CobraConfig};
///
/// let inst = generate(
///     &GeneratorConfig { num_bundles: 30, num_services: 4, ..Default::default() },
///     42,
/// );
/// let mut cfg = CobraConfig::quick();
/// cfg.ul_pop_size = 10;
/// cfg.ll_pop_size = 10;
/// cfg.ul_evaluations = 200;
/// cfg.ll_evaluations = 200;
/// let result = Cobra::new(&inst, cfg).run(1);
/// assert!(inst.is_covering(&result.best_reaction));
/// ```
pub struct Cobra<'a> {
    inst: &'a BcpopInstance,
    cfg: CobraConfig,
    relaxer: RelaxationSolver,
}

/// An archived bilevel pair.
#[derive(Debug, Clone, PartialEq)]
struct Pair {
    prices: Vec<f64>,
    reaction: Vec<bool>,
}

impl<'a> Cobra<'a> {
    /// Bind COBRA to an instance.
    pub fn new(inst: &'a BcpopInstance, cfg: CobraConfig) -> Self {
        Cobra { relaxer: RelaxationSolver::new(inst), inst, cfg }
    }

    /// Run to budget exhaustion; deterministic per seed.
    pub fn run(&self, seed: u64) -> CobraResult {
        self.run_observed(seed, &NullObserver)
    }

    /// [`run`](Self::run) with an observer attached. Events are emitted
    /// from the coordinating thread only; attaching any observer leaves
    /// the result bit-identical (see `tests/determinism.rs`).
    pub fn run_observed<O: RunObserver + ?Sized>(&self, seed: u64, obs: &O) -> CobraResult {
        let cfg = &self.cfg;
        let inst = self.inst;
        let (lo, hi) = inst.price_bounds();
        let nl = inst.num_own();
        let m = inst.num_bundles();
        let mut rng = SmallRng::seed_from_u64(seed_stream(seed, 1));
        let pop_size = cfg.ul_pop_size.min(cfg.ll_pop_size);

        // --- create_initial_pop + split ---
        let mut uppers: Vec<Vec<f64>> = (0..pop_size)
            .map(|_| (0..nl).map(|j| rng.random_range(lo[j]..=hi[j])).collect())
            .collect();
        let mut lowers: Vec<Vec<bool>> = (0..pop_size)
            .map(|_| {
                let mut y = random_bits(m, 0.5, &mut rng);
                if cfg.repair {
                    repair(inst, &mut y, &mut rng);
                }
                y
            })
            .collect();

        let mut ul_archive: Archive<Vec<f64>> =
            Archive::new(cfg.ul_archive_size, Direction::Maximize);
        // Lower archive ranks pairs by the LL objective value — COBRA's
        // own criterion (the gap is only computed for reporting).
        let mut ll_archive: Archive<Pair> =
            Archive::new(cfg.ll_archive_size, Direction::Minimize);

        let mut trace = Trace::new();
        let mut ul_evals: u64 = 0;
        let mut ll_evals: u64 = 0;
        let mut cycles = 0usize;
        let mut gen_counter = 0usize;
        let cache: SolveCache<Relaxation> = SolveCache::new(cfg.ll_cache_capacity);
        // Evictions already reported in earlier CacheProbe events.
        let mut cache_ev_emitted = 0u64;

        if obs.enabled() {
            obs.observe(&Event::RunStart { algo: "cobra", seed });
        }

        let phase_cost = (pop_size * cfg.improvement_gens) as u64;
        while ul_evals + phase_cost <= cfg.ul_evaluations
            && ll_evals + phase_cost <= cfg.ll_evaluations
        {
            // ---- upper improvement: evolve prices against frozen reactions ----
            if obs.enabled() {
                obs.observe(&Event::PhaseChange { phase: "upper_improvement" });
            }
            for _ in 0..cfg.improvement_gens {
                if obs.enabled() {
                    obs.observe(&Event::GenerationStart { generation: gen_counter as u64 });
                }
                let t_fit = timer_if(obs.enabled());
                let fit: Vec<f64> = uppers
                    .par_iter()
                    .zip(lowers.par_iter())
                    .map(|(x, y)| ul_fitness(inst, x, y))
                    .collect();
                ul_evals += pop_size as u64;
                if obs.enabled() {
                    obs.observe(&Event::Evaluation {
                        level: Level::Upper,
                        count: pop_size as u64,
                        gp_nodes: 0,
                        micros: elapsed_micros(t_fit),
                    });
                }
                self.record(
                    &mut trace,
                    gen_counter,
                    ul_evals + ll_evals,
                    &uppers,
                    &lowers,
                    Level::Upper,
                    &cache,
                    &mut cache_ev_emitted,
                    obs,
                );
                gen_counter += 1;

                let mut next = Vec::with_capacity(pop_size);
                while next.len() < pop_size {
                    let i = tournament(&fit, 2, Direction::Maximize, &mut rng);
                    let j = tournament(&fit, 2, Direction::Maximize, &mut rng);
                    let (mut c1, mut c2) = if rng.random::<f64>() < cfg.ul_crossover_prob {
                        sbx_crossover(
                            &uppers[i],
                            &uppers[j],
                            &lo,
                            &hi,
                            &cfg.ul_real_ops,
                            &mut rng,
                        )
                    } else {
                        (uppers[i].clone(), uppers[j].clone())
                    };
                    polynomial_mutation(
                        &mut c1,
                        &lo,
                        &hi,
                        cfg.ul_mutation_prob,
                        &cfg.ul_real_ops,
                        &mut rng,
                    );
                    polynomial_mutation(
                        &mut c2,
                        &lo,
                        &hi,
                        cfg.ul_mutation_prob,
                        &cfg.ul_real_ops,
                        &mut rng,
                    );
                    next.push(c1);
                    if next.len() < pop_size {
                        next.push(c2);
                    }
                }
                uppers = next;
            }

            // ---- lower improvement: evolve reactions against frozen prices ----
            if obs.enabled() {
                obs.observe(&Event::PhaseChange { phase: "lower_improvement" });
            }
            for _ in 0..cfg.improvement_gens {
                if obs.enabled() {
                    obs.observe(&Event::GenerationStart { generation: gen_counter as u64 });
                }
                let t_fit = timer_if(obs.enabled());
                let fit: Vec<f64> = lowers
                    .par_iter()
                    .zip(uppers.par_iter())
                    .map(|(y, x)| ll_fitness(inst, x, y))
                    .collect();
                ll_evals += pop_size as u64;
                if obs.enabled() {
                    obs.observe(&Event::Evaluation {
                        level: Level::Lower,
                        count: pop_size as u64,
                        gp_nodes: 0,
                        micros: elapsed_micros(t_fit),
                    });
                }
                self.record(
                    &mut trace,
                    gen_counter,
                    ul_evals + ll_evals,
                    &uppers,
                    &lowers,
                    Level::Lower,
                    &cache,
                    &mut cache_ev_emitted,
                    obs,
                );
                gen_counter += 1;

                let mut next = Vec::with_capacity(pop_size);
                while next.len() < pop_size {
                    let i = tournament(&fit, 2, Direction::Minimize, &mut rng);
                    let j = tournament(&fit, 2, Direction::Minimize, &mut rng);
                    let (mut c1, mut c2) = if rng.random::<f64>() < cfg.ll_crossover_prob {
                        two_point_crossover(&lowers[i], &lowers[j], &mut rng)
                    } else {
                        (lowers[i].clone(), lowers[j].clone())
                    };
                    // Table II: "(GA) swap" with probability 1/#variables.
                    shuffle_mutation(&mut c1, 1.0 / m as f64, &mut rng);
                    shuffle_mutation(&mut c2, 1.0 / m as f64, &mut rng);
                    if cfg.repair {
                        repair(inst, &mut c1, &mut rng);
                        repair(inst, &mut c2, &mut rng);
                    }
                    next.push(c1);
                    if next.len() < pop_size {
                        next.push(c2);
                    }
                }
                lowers = next;
            }

            // ---- archiving (both levels) ----
            if obs.enabled() {
                obs.observe(&Event::PhaseChange { phase: "archiving" });
            }
            for (x, y) in uppers.iter().zip(&lowers) {
                let f = ul_fitness(inst, x, y);
                ul_archive.push(x.clone(), f);
                let cost = ll_fitness(inst, x, y);
                ll_archive.push(Pair { prices: x.clone(), reaction: y.clone() }, cost);
            }
            if obs.enabled() {
                obs.observe(&Event::ArchiveUpdate {
                    level: Level::Upper,
                    size: ul_archive.len() as u64,
                    best: ul_archive.best().map_or(f64::NAN, |(_, f)| f),
                });
                obs.observe(&Event::ArchiveUpdate {
                    level: Level::Lower,
                    size: ll_archive.len() as u64,
                    best: ll_archive.best().map_or(f64::NAN, |(_, f)| f),
                });
                obs.observe(&Event::PhaseChange { phase: "coevolution" });
            }

            // ---- coevolution: random re-pairing of the two populations ----
            shuffle(&mut lowers, &mut rng);

            // ---- adding from archives: re-inject elites over the worst ----
            if let Some((g, _)) = ul_archive.best() {
                uppers[0] = g.clone();
            }
            if let Some((p, _)) = ll_archive.best() {
                lowers[0] = p.reaction.clone();
            }

            cycles += 1;
        }

        let result = self.extract(
            ll_archive,
            trace,
            ul_evals,
            ll_evals,
            cycles,
            &cache,
            &mut cache_ev_emitted,
            obs,
        );
        if obs.enabled() {
            obs.observe(&Event::RunComplete {
                generations: gen_counter as u64,
                ul_evaluations: ul_evals,
                ll_evaluations: ll_evals,
                best_value: result.best_ul_value,
                best_gap: result.best_gap,
            });
        }
        result
    }

    /// One trace point: the *current* populations' best pair, by revenue,
    /// and its gap — the quantities Fig. 5 plots. Recording the current
    /// (not best-so-far) pair is what exposes the see-saw: each upper
    /// improvement phase inflates revenue against frozen reactions, and
    /// each lower phase deflates it while repairing the gap.
    /// Probe the solve cache for the relaxation of `prices`, computing
    /// (and storing) it on a miss. Returns the relaxation and whether it
    /// was a hit; insertion is skipped on the (impossible-for-validated-
    /// instances) solver-failure path so the cache never holds failures.
    fn probe(
        &self,
        cache: &SolveCache<Relaxation>,
        prices: &[f64],
    ) -> (Option<Relaxation>, bool) {
        if !cache.is_enabled() {
            return (self.relaxer.solve(&self.inst.costs_for(prices)), false);
        }
        let key = SolveCache::<Relaxation>::key_of(prices);
        if let Some(r) = cache.get(&key) {
            return (Some(r), true);
        }
        let relax = self.relaxer.solve(&self.inst.costs_for(prices));
        if let Some(r) = &relax {
            cache.insert(&key, r.clone());
        }
        (relax, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn record<O: RunObserver + ?Sized>(
        &self,
        trace: &mut Trace,
        generation: usize,
        evals: u64,
        uppers: &[Vec<f64>],
        lowers: &[Vec<bool>],
        level: Level,
        cache: &SolveCache<Relaxation>,
        ev_emitted: &mut u64,
        obs: &O,
    ) {
        // Gap of the current best pair by revenue.
        let mut best_pair = 0usize;
        let mut best_rev = f64::NEG_INFINITY;
        for (i, (x, y)) in uppers.iter().zip(lowers).enumerate() {
            let f = ul_fitness(self.inst, x, y);
            if f > best_rev {
                best_rev = f;
                best_pair = i;
            }
        }
        let x = &uppers[best_pair];
        let y = &lowers[best_pair];
        let t_solve = timer_if(obs.enabled());
        let (relax, hit) = self.probe(cache, x);
        let solve_micros = elapsed_micros(t_solve);
        // A hit spends no pivots: the pivot series reflects work done.
        let (gap, ll_value, pivots) = relax
            .map(|r| {
                let ev = evaluate_pair(self.inst, x, y, r.lower_bound);
                (ev.gap, ev.ll_value, if hit { 0 } else { r.pivots })
            })
            .unwrap_or((f64::INFINITY, f64::NAN, 0));
        trace.record(generation, evals, best_rev, gap);
        if obs.enabled() {
            obs.observe(&Event::LowerLevelSolve { solves: 1, pivots, micros: solve_micros });
            // The improving level tags the sample: segmenting the
            // ObjectivePair stream by `level` is what lets `bico trace`
            // measure the see-saw amplitude between phases.
            obs.observe(&Event::ObjectivePair { level, ul_value: best_rev, ll_value });
            if cache.is_enabled() {
                let s = cache.stats();
                obs.observe(&Event::CacheProbe {
                    hits: u64::from(hit),
                    misses: u64::from(!hit),
                    evictions: s.evictions - *ev_emitted,
                    entries: s.entries as u64,
                });
                *ev_emitted = s.evictions;
            }
            obs.observe(&Event::GenerationEnd {
                generation: generation as u64,
                evaluations: evals,
                ul_best: best_rev,
                gap_best: gap,
            });
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn extract<O: RunObserver + ?Sized>(
        &self,
        ll_archive: Archive<Pair>,
        trace: Trace,
        ul_evals: u64,
        ll_evals: u64,
        cycles: usize,
        cache: &SolveCache<Relaxation>,
        ev_emitted: &mut u64,
        obs: &O,
    ) -> CobraResult {
        let inst = self.inst;
        if obs.enabled() {
            obs.observe(&Event::PhaseChange { phase: "extraction" });
        }
        let mut best_gap = f64::INFINITY;
        let mut best_ul = 0.0f64;
        let mut best: Option<(Pair, f64)> = None;
        let (mut solves, mut pivots, mut hits) = (0u64, 0u64, 0u64);
        let t_extract = timer_if(obs.enabled());
        for (pair, ll_value) in ll_archive.iter() {
            let (relax, hit) = self.probe(cache, &pair.prices);
            solves += 1;
            let Some(relax) = relax else {
                continue;
            };
            if hit {
                hits += 1;
            } else {
                pivots += relax.pivots;
            }
            let ev = evaluate_pair(inst, &pair.prices, &pair.reaction, relax.lower_bound);
            if !ev.feasible {
                continue;
            }
            best_ul = best_ul.max(ev.ul_value);
            if ev.gap < best_gap {
                best_gap = ev.gap;
                best = Some((pair.clone(), ll_value));
            }
        }
        if obs.enabled() && solves > 0 {
            obs.observe(&Event::LowerLevelSolve {
                solves,
                pivots,
                micros: elapsed_micros(t_extract),
            });
            if cache.is_enabled() {
                let s = cache.stats();
                obs.observe(&Event::CacheProbe {
                    hits,
                    misses: solves - hits,
                    evictions: s.evictions - *ev_emitted,
                    entries: s.entries as u64,
                });
                *ev_emitted = s.evictions;
            }
        }
        match best {
            Some((pair, ll_value)) => CobraResult {
                best_pricing: pair.prices,
                best_reaction: pair.reaction,
                best_ul_value: best_ul,
                best_gap,
                best_ll_value: ll_value,
                trace,
                ul_evals_used: ul_evals,
                ll_evals_used: ll_evals,
                cycles,
            },
            None => CobraResult {
                best_pricing: vec![0.0; inst.num_own()],
                best_reaction: vec![false; inst.num_bundles()],
                best_ul_value: 0.0,
                best_gap: f64::INFINITY,
                best_ll_value: f64::INFINITY,
                trace,
                ul_evals_used: ul_evals,
                ll_evals_used: ll_evals,
                cycles,
            },
        }
    }
}

/// Upper-level fitness: revenue if the partner reaction covers,
/// zero otherwise (no sale on unmet needs).
fn ul_fitness(inst: &BcpopInstance, prices: &[f64], reaction: &[bool]) -> f64 {
    if !inst.is_covering(reaction) {
        return 0.0;
    }
    bico_bcpop::ul_revenue(inst, prices, reaction)
}

/// Lower-level fitness: cost plus a proportional penalty per unit of
/// uncovered requirement (COBRA handles the LL as a penalized
/// single-level problem). Coverage is summed over the instance's
/// service→bundles inverted index (nonzeros only); integer sums are
/// order-independent, so the value is bit-identical to a dense scan.
fn ll_fitness(inst: &BcpopInstance, prices: &[f64], reaction: &[bool]) -> f64 {
    let costs = inst.costs_for(prices);
    let cost = bico_bcpop::ll_cost(&costs, reaction);
    let mut violation = 0.0f64;
    for k in 0..inst.num_services() {
        let covered: i64 = inst
            .covering_bundles(k)
            .iter()
            .filter(|&&(j, _)| reaction[j as usize])
            .map(|&(_, units)| units as i64)
            .sum();
        violation += (inst.requirement(k) as i64 - covered).max(0) as f64;
    }
    let max_cost: f64 = costs.iter().sum();
    cost + violation * (1.0 + max_cost)
}

/// Add random useful bundles until the reaction covers all requirements.
///
/// Residuals, the uncovered-service count, and the per-bundle count of
/// still-useful services are maintained incrementally via the instance's
/// service→bundles inverted index, replacing the dense O(m·n) rescan per
/// added bundle. Each iteration's candidate list is the same set in the
/// same ascending-`j` order as the dense formulation (`useful[j] > 0` ⟺
/// ∃k: residual_k > 0 ∧ q_jk > 0), so the RNG draw sequence — and hence
/// the repaired reaction — is bit-identical.
pub(crate) fn repair<R: Rng + ?Sized>(inst: &BcpopInstance, y: &mut [bool], rng: &mut R) {
    let n = inst.num_services();
    let m = inst.num_bundles();
    let mut residual: Vec<i64> = (0..n).map(|k| inst.requirement(k) as i64).collect();
    for (k, rem) in residual.iter_mut().enumerate() {
        for &(j, units) in inst.covering_bundles(k) {
            if y[j as usize] {
                *rem -= units as i64;
            }
        }
    }
    let mut useful = vec![0u32; m];
    let mut uncovered = 0usize;
    for (k, &rem) in residual.iter().enumerate() {
        if rem > 0 {
            uncovered += 1;
            for &(j, _) in inst.covering_bundles(k) {
                useful[j as usize] += 1;
            }
        }
    }
    let mut candidates: Vec<usize> = Vec::with_capacity(m);
    while uncovered > 0 {
        // Pick a random unselected bundle that reduces some residual.
        candidates.clear();
        candidates.extend((0..m).filter(|&j| !y[j] && useful[j] > 0));
        let Some(&j) = candidates.get(rng.random_range(0..candidates.len().max(1))) else {
            return; // cannot repair (impossible on validated instances)
        };
        y[j] = true;
        for (k, rem) in residual.iter_mut().enumerate() {
            let c = inst.coverage(j, k) as i64;
            if c == 0 {
                continue;
            }
            let old = *rem;
            *rem = old - c;
            if old > 0 && *rem <= 0 {
                uncovered -= 1;
                for &(jj, _) in inst.covering_bundles(k) {
                    useful[jj as usize] -= 1;
                }
            }
        }
    }
}

/// Fisher–Yates shuffle (the co-evolution re-pairing operator).
fn shuffle<T, R: Rng + ?Sized>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bico_bcpop::{generate, GeneratorConfig};

    fn small_instance() -> BcpopInstance {
        generate(&GeneratorConfig { num_bundles: 30, num_services: 4, ..Default::default() }, 7)
    }

    #[test]
    fn defaults_match_table_2() {
        let c = CobraConfig::default();
        assert_eq!(c.ul_pop_size, 100);
        assert_eq!(c.ul_archive_size, 100);
        assert_eq!(c.ul_evaluations, 50_000);
        assert_eq!(c.ul_crossover_prob, 0.85);
        assert_eq!(c.ul_mutation_prob, 0.01);
        assert_eq!(c.ll_evaluations, 50_000);
        assert_eq!(c.ll_crossover_prob, 0.85);
    }

    #[test]
    fn quick_run_extracts_feasible_pair() {
        let inst = small_instance();
        let mut cfg = CobraConfig::quick();
        cfg.ul_pop_size = 10;
        cfg.ll_pop_size = 10;
        cfg.ul_evaluations = 400;
        cfg.ll_evaluations = 400;
        cfg.improvement_gens = 2;
        let r = Cobra::new(&inst, cfg).run(42);
        assert!(r.cycles > 0);
        assert!(inst.is_covering(&r.best_reaction));
        assert!(r.best_gap.is_finite());
        assert!(r.best_gap >= -1e-6);
        assert!(r.best_ll_value.is_finite());
        assert!(!r.trace.points().is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = small_instance();
        let mut cfg = CobraConfig::quick();
        cfg.ul_pop_size = 8;
        cfg.ll_pop_size = 8;
        cfg.ul_evaluations = 160;
        cfg.ll_evaluations = 160;
        cfg.improvement_gens = 2;
        let a = Cobra::new(&inst, cfg.clone()).run(5);
        let b = Cobra::new(&inst, cfg).run(5);
        assert_eq!(a.best_pricing, b.best_pricing);
        assert_eq!(a.best_gap, b.best_gap);
        assert_eq!(a.trace.points(), b.trace.points());
    }

    #[test]
    fn solve_cache_leaves_results_bit_identical() {
        let inst = small_instance();
        let mut cfg = CobraConfig::quick();
        cfg.ul_pop_size = 8;
        cfg.ll_pop_size = 8;
        cfg.ul_evaluations = 160;
        cfg.ll_evaluations = 160;
        cfg.improvement_gens = 2;
        assert_eq!(cfg.ll_cache_capacity, 0, "cache defaults to off");
        let cold = Cobra::new(&inst, cfg.clone()).run(5);
        cfg.ll_cache_capacity = 512;
        let cached = Cobra::new(&inst, cfg).run(5);
        assert_eq!(cold.best_pricing, cached.best_pricing);
        assert_eq!(cold.best_reaction, cached.best_reaction);
        assert_eq!(cold.best_ul_value.to_bits(), cached.best_ul_value.to_bits());
        assert_eq!(cold.best_gap.to_bits(), cached.best_gap.to_bits());
        assert_eq!(cold.trace.points(), cached.trace.points());
    }

    #[test]
    fn budget_respected() {
        let inst = small_instance();
        let mut cfg = CobraConfig::quick();
        cfg.ul_pop_size = 10;
        cfg.ll_pop_size = 10;
        cfg.improvement_gens = 3;
        cfg.ul_evaluations = 100; // 3 cycles of 30 fits, 4th would bust
        cfg.ll_evaluations = 100;
        let r = Cobra::new(&inst, cfg).run(3);
        assert!(r.ul_evals_used <= 100);
        assert!(r.ll_evals_used <= 100);
        assert_eq!(r.cycles, 3);
    }

    /// The pre-index dense formulation of [`repair`], kept as the
    /// reference the incremental version must match draw for draw.
    #[allow(clippy::needless_range_loop)]
    fn repair_dense<R: Rng + ?Sized>(inst: &BcpopInstance, y: &mut [bool], rng: &mut R) {
        let n = inst.num_services();
        let mut residual: Vec<i64> = (0..n)
            .map(|k| {
                inst.requirement(k) as i64
                    - (0..inst.num_bundles())
                        .filter(|&j| y[j])
                        .map(|j| inst.coverage(j, k) as i64)
                        .sum::<i64>()
            })
            .collect();
        while residual.iter().any(|&r| r > 0) {
            let candidates: Vec<usize> = (0..inst.num_bundles())
                .filter(|&j| {
                    !y[j] && (0..n).any(|k| residual[k] > 0 && inst.coverage(j, k) > 0)
                })
                .collect();
            let Some(&j) = candidates.get(rng.random_range(0..candidates.len().max(1))) else {
                return;
            };
            y[j] = true;
            for k in 0..n {
                residual[k] -= inst.coverage(j, k) as i64;
            }
        }
    }

    #[test]
    fn repair_matches_dense_reference_bitwise() {
        for (m, n, inst_seed) in [(30usize, 4usize, 7u64), (80, 10, 13)] {
            let inst = generate(
                &GeneratorConfig { num_bundles: m, num_services: n, ..Default::default() },
                inst_seed,
            );
            for seed in 0..40u64 {
                let density = (seed % 10) as f64 / 20.0;
                let mut ya = random_bits(
                    inst.num_bundles(),
                    density,
                    &mut SmallRng::seed_from_u64(seed ^ 0xA5A5),
                );
                let mut yb = ya.clone();
                let mut rng_a = SmallRng::seed_from_u64(seed);
                let mut rng_b = SmallRng::seed_from_u64(seed);
                repair(&inst, &mut ya, &mut rng_a);
                repair_dense(&inst, &mut yb, &mut rng_b);
                assert_eq!(ya, yb, "reaction diverged (seed {seed}, {m}x{n})");
                assert_eq!(
                    rng_a.random::<u64>(),
                    rng_b.random::<u64>(),
                    "RNG stream diverged (seed {seed}, {m}x{n})"
                );
            }
        }
    }

    #[test]
    fn ll_fitness_matches_dense_reference_bitwise() {
        let inst = small_instance();
        let mut rng = SmallRng::seed_from_u64(31);
        for trial in 0..50 {
            let prices: Vec<f64> = {
                let (lo, hi) = inst.price_bounds();
                (0..inst.num_own()).map(|j| rng.random_range(lo[j]..=hi[j])).collect()
            };
            let y = random_bits(inst.num_bundles(), 0.3, &mut rng);
            let fast = ll_fitness(&inst, &prices, &y);
            let costs = inst.costs_for(&prices);
            let cost = bico_bcpop::ll_cost(&costs, &y);
            let mut violation = 0.0f64;
            for k in 0..inst.num_services() {
                let covered: i64 = (0..inst.num_bundles())
                    .filter(|&j| y[j])
                    .map(|j| inst.coverage(j, k) as i64)
                    .sum();
                violation += (inst.requirement(k) as i64 - covered).max(0) as f64;
            }
            let max_cost: f64 = costs.iter().sum();
            let dense = cost + violation * (1.0 + max_cost);
            assert_eq!(fast.to_bits(), dense.to_bits(), "trial {trial}");
        }
    }

    #[test]
    fn repair_produces_covering_reactions() {
        let inst = small_instance();
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..20 {
            let mut y = random_bits(inst.num_bundles(), 0.05, &mut rng);
            repair(&inst, &mut y, &mut rng);
            assert!(inst.is_covering(&y));
        }
    }

    #[test]
    fn ll_fitness_penalizes_uncovered() {
        let inst = small_instance();
        let prices = vec![10.0; inst.num_own()];
        let nothing = vec![false; inst.num_bundles()];
        let everything = vec![true; inst.num_bundles()];
        assert!(
            ll_fitness(&inst, &prices, &nothing) > ll_fitness(&inst, &prices, &everything),
            "an empty basket must be worse than buying everything"
        );
    }

    #[test]
    fn ul_fitness_zero_when_reaction_uncovered() {
        let inst = small_instance();
        let prices = vec![10.0; inst.num_own()];
        let nothing = vec![false; inst.num_bundles()];
        assert_eq!(ul_fitness(&inst, &prices, &nothing), 0.0);
    }
}
