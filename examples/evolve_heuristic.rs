//! Pure GP hyper-heuristics: evolve a greedy scoring function for the
//! covering problem and race it against the handcrafted classics.
//!
//! ```text
//! cargo run --release --example evolve_heuristic
//! ```
//!
//! This isolates the paper's lower-level population (no upper level):
//! a small GP loop minimizes the mean %-gap over a batch of covering
//! instances and usually rediscovers (and beats) the classic
//! cost-per-coverage rule within a few generations.

use bico::bcpop::{
    bcpop_primitives, generate, greedy_cover, CostPerCoverageScorer, CostScorer,
    DualAdjustedScorer, GeneratorConfig, GpScorer, RelaxationSolver, Scorer,
};
use bico::ea::select::{tournament, Direction};
use bico::gp::{
    mutate_uniform, ramped_half_and_half, simplify, subtree_crossover, to_infix, Expr,
    VariationConfig,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let ps = bcpop_primitives();
    let mut rng = SmallRng::seed_from_u64(4242);

    // A batch of fixed covering instances (pricings frozen).
    let batch: Vec<_> = (0..4)
        .map(|i| {
            let inst = generate(
                &GeneratorConfig { num_bundles: 80, num_services: 8, ..Default::default() },
                500 + i,
            );
            let costs = inst.costs_for(&vec![40.0; inst.num_own()]);
            let relax = RelaxationSolver::new(&inst).solve(&costs).unwrap();
            (inst, costs, relax)
        })
        .collect();

    let mean_gap = |mut scorer: &mut dyn Scorer| -> f64 {
        batch
            .iter()
            .map(|(inst, costs, relax)| {
                let out = greedy_cover(inst, costs, &mut scorer, Some(relax));
                100.0 * (out.cost - relax.lower_bound) / relax.lower_bound
            })
            .sum::<f64>()
            / batch.len() as f64
    };

    println!("handcrafted baselines (mean %-gap over {} instances):", batch.len());
    println!("  cheapest-first:        {:>6.2}%", mean_gap(&mut CostScorer));
    println!("  cost-per-coverage:     {:>6.2}%", mean_gap(&mut CostPerCoverageScorer));
    println!("  dual-adjusted (LP):    {:>6.2}%", mean_gap(&mut DualAdjustedScorer));

    // Tiny GP loop.
    let var = VariationConfig { max_depth: 7, mutation_grow_depth: 2 };
    let mut pop: Vec<Expr> = ramped_half_and_half(&ps, 40, 1, 4, &mut rng).unwrap();
    let mut best: Option<(Expr, f64)> = None;
    for generation in 0..25 {
        let fits: Vec<f64> = pop
            .iter()
            .map(|e| {
                let mut scorer = GpScorer::new(e, &ps);
                mean_gap(&mut scorer)
            })
            .collect();
        for (e, &f) in pop.iter().zip(&fits) {
            if best.as_ref().is_none_or(|(_, bf)| f < *bf) {
                best = Some((e.clone(), f));
            }
        }
        if generation % 5 == 0 {
            println!(
                "gen {generation:>2}: best-so-far %-gap = {:.2}%",
                best.as_ref().unwrap().1
            );
        }
        let mut next = vec![best.as_ref().unwrap().0.clone()]; // elitism
        while next.len() < pop.len() {
            let i = tournament(&fits, 3, Direction::Minimize, &mut rng);
            let j = tournament(&fits, 3, Direction::Minimize, &mut rng);
            let (mut c1, c2) = if rng.random::<f64>() < 0.85 {
                subtree_crossover(&pop[i], &pop[j], &ps, &var, &mut rng)
            } else {
                (pop[i].clone(), pop[j].clone())
            };
            if rng.random::<f64>() < 0.15 {
                c1 = mutate_uniform(&c1, &ps, &var, &mut rng);
            }
            next.push(c1);
            if next.len() < pop.len() {
                next.push(c2);
            }
        }
        pop = next;
    }

    let (champion, gap) = best.unwrap();
    println!("\nevolved champion: mean %-gap = {gap:.2}%");
    println!("  raw:        {}", to_infix(&champion, &ps));
    println!("  simplified: {}", to_infix(&simplify(&champion, &ps), &ps));
}
