//! Binary-vector genetic operators.
//!
//! COBRA's lower-level population encodes covering solutions as binary
//! vectors evolved with "(GA) Two-points" crossover and "(GA) swap"
//! mutation (Table II). Bit-flip mutation and uniform initialization are
//! provided as well (the swap/bit-flip choice is exercised by the
//! ablation benches).

use rand::Rng;

/// A binary genome is a plain `Vec<bool>`.
pub type BitVec = Vec<bool>;

/// Sample a uniform random bit vector of length `n` with per-bit
/// probability `p_one` of being set.
pub fn random_bits<R: Rng + ?Sized>(n: usize, p_one: f64, rng: &mut R) -> BitVec {
    (0..n).map(|_| rng.random::<f64>() < p_one).collect()
}

/// Two-point crossover: exchange the segment `[i, j)` between parents.
///
/// # Panics
/// Panics if parents differ in length or are empty.
pub fn two_point_crossover<R: Rng + ?Sized>(
    p1: &[bool],
    p2: &[bool],
    rng: &mut R,
) -> (BitVec, BitVec) {
    assert_eq!(p1.len(), p2.len(), "parents must have equal length");
    assert!(!p1.is_empty(), "parents must be non-empty");
    let n = p1.len();
    let a = rng.random_range(0..n);
    let b = rng.random_range(0..n);
    let (i, j) = (a.min(b), a.max(b) + 1);
    let mut c1 = p1.to_vec();
    let mut c2 = p2.to_vec();
    c1[i..j].copy_from_slice(&p2[i..j]);
    c2[i..j].copy_from_slice(&p1[i..j]);
    (c1, c2)
}

/// Swap mutation: exchange the values at two random positions.
pub fn swap_mutation<R: Rng + ?Sized>(x: &mut [bool], rng: &mut R) {
    if x.len() < 2 {
        return;
    }
    let i = rng.random_range(0..x.len());
    let j = rng.random_range(0..x.len());
    x.swap(i, j);
}

/// Shuffle-indexes mutation (DEAP's `mutShuffleIndexes`): each position
/// independently, with probability `indpb`, swaps its value with another
/// uniformly chosen position. Table II's COBRA row —
/// "(GA) swap" with probability `1/#variables` — is this operator with
/// `indpb = 1/n`.
pub fn shuffle_mutation<R: Rng + ?Sized>(x: &mut [bool], indpb: f64, rng: &mut R) {
    let n = x.len();
    if n < 2 {
        return;
    }
    for i in 0..n {
        if rng.random::<f64>() < indpb {
            let j = rng.random_range(0..n);
            x.swap(i, j);
        }
    }
}

/// Independent bit-flip mutation with per-bit probability `p`.
pub fn bitflip_mutation<R: Rng + ?Sized>(x: &mut [bool], p: f64, rng: &mut R) {
    for bit in x.iter_mut() {
        if rng.random::<f64>() < p {
            *bit = !*bit;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn two_point_preserves_multiset() {
        let mut rng = SmallRng::seed_from_u64(1);
        let p1 = random_bits(32, 0.3, &mut rng);
        let p2 = random_bits(32, 0.7, &mut rng);
        for _ in 0..100 {
            let (c1, c2) = two_point_crossover(&p1, &p2, &mut rng);
            for k in 0..32 {
                // Column-wise the two children are a permutation of parents.
                let parents = [p1[k], p2[k]];
                let children = [c1[k], c2[k]];
                let mut a = parents.to_vec();
                let mut b = children.to_vec();
                a.sort();
                b.sort();
                assert_eq!(a, b, "column {k} not preserved");
            }
        }
    }

    #[test]
    fn two_point_exchanges_contiguous_segment() {
        let mut rng = SmallRng::seed_from_u64(2);
        let p1 = vec![false; 16];
        let p2 = vec![true; 16];
        let (c1, _) = two_point_crossover(&p1, &p2, &mut rng);
        // c1 = all false except one contiguous true segment.
        let trues: Vec<usize> =
            c1.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        if trues.len() >= 2 {
            assert_eq!(trues.last().unwrap() - trues[0] + 1, trues.len(), "not contiguous");
        }
    }

    #[test]
    fn swap_mutation_preserves_popcount() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let mut x = random_bits(20, 0.4, &mut rng);
            let before = x.iter().filter(|&&b| b).count();
            swap_mutation(&mut x, &mut rng);
            let after = x.iter().filter(|&&b| b).count();
            assert_eq!(before, after, "swap changed popcount");
        }
    }

    #[test]
    fn swap_mutation_on_short_vectors_is_noop() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut x = vec![true];
        swap_mutation(&mut x, &mut rng);
        assert_eq!(x, vec![true]);
        let mut empty: BitVec = vec![];
        swap_mutation(&mut empty, &mut rng);
        assert!(empty.is_empty());
    }

    #[test]
    fn shuffle_mutation_preserves_popcount() {
        let mut rng = SmallRng::seed_from_u64(31);
        for _ in 0..100 {
            let mut x = random_bits(24, 0.4, &mut rng);
            let before = x.iter().filter(|&&b| b).count();
            shuffle_mutation(&mut x, 1.0 / 24.0, &mut rng);
            assert_eq!(x.iter().filter(|&&b| b).count(), before);
        }
    }

    #[test]
    fn shuffle_mutation_zero_prob_is_identity() {
        let mut rng = SmallRng::seed_from_u64(32);
        let mut x = random_bits(24, 0.4, &mut rng);
        let orig = x.clone();
        shuffle_mutation(&mut x, 0.0, &mut rng);
        assert_eq!(x, orig);
    }

    #[test]
    fn bitflip_zero_prob_is_identity() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut x = random_bits(16, 0.5, &mut rng);
        let orig = x.clone();
        bitflip_mutation(&mut x, 0.0, &mut rng);
        assert_eq!(x, orig);
    }

    #[test]
    fn bitflip_one_prob_inverts() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut x = random_bits(16, 0.5, &mut rng);
        let orig = x.clone();
        bitflip_mutation(&mut x, 1.0, &mut rng);
        for (a, b) in x.iter().zip(&orig) {
            assert_eq!(*a, !*b);
        }
    }

    #[test]
    fn random_bits_density_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(7);
        let x = random_bits(10_000, 0.25, &mut rng);
        let ones = x.iter().filter(|&&b| b).count() as f64 / 10_000.0;
        assert!((ones - 0.25).abs() < 0.03, "density {ones} far from 0.25");
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn crossover_length_mismatch_panics() {
        let mut rng = SmallRng::seed_from_u64(8);
        let _ = two_point_crossover(&[true], &[true, false], &mut rng);
    }
}
