//! Sparse revised simplex over a CSC constraint matrix.
//!
//! The dense tableau in [`crate::simplex`] carries the full `m × (n+2m)`
//! matrix through every pivot: each iteration costs `O(m · n_total)`
//! regardless of how sparse the instance is. Covering relaxations at the
//! `--huge` bench tier (tens of thousands of bundle columns, ~5% density)
//! spend almost all of that work multiplying zeros.
//!
//! This module implements the classic *revised* simplex instead: the
//! constraint matrix is stored once in compressed-sparse-column (CSC)
//! form and never modified; the only dense object is an LU factorization
//! of the `m × m` basis, updated between refactorizations by a
//! product-form eta file. Per-iteration cost drops to
//! `O(m² + nnz(candidates))`:
//!
//! * **pricing** — duals `y = B^{-T} c_B` via BTRAN, then reduced costs
//!   `d_j = c_j − y·a_j` as sparse dot products. A candidate-list partial
//!   pricing rule re-prices a small retained set of violating columns per
//!   iteration; when the list dies, a rotating sectional sweep refills it
//!   from the next stretch of the column ring. Optimality is only ever
//!   declared by a refill that wraps the entire ring without finding a
//!   violator — i.e. by a genuine full sweep under the current duals;
//! * **ratio test** — the entering column `α = B^{-1} a_q` via FTRAN;
//!   the bounded-variable ratio test itself is the same as the dense
//!   path's (bound flips included, identical tie-breaking);
//! * **basis update** — a product-form eta per pivot, with a fresh dense
//!   LU (partial pivoting) every [`REFACTOR_EVERY`] pivots; the basic
//!   primal values are recomputed from scratch at each refactorization
//!   to shed accumulated drift.
//!
//! Column layout, two-phase structure, artificial handling and all
//! tolerances mirror the dense path so both solve the *same* internal
//! model; they are not pivot-for-pivot identical (pricing order differs),
//! so agreement is asserted through the optimal objective and the KKT
//! certificate in [`crate::certificate`], never through pivot sequences.
//!
//! Any numerical failure (singular refactorization) abandons the sparse
//! attempt and the caller re-solves on the dense reference path, keeping
//! the public contract identical to a dense-only build.

use crate::problem::{LpProblem, Relation, Sense};
use crate::simplex::SimplexOptions;
use crate::solution::{BasisSnapshot, LpSolution, LpStatus, VarStatus};

/// Which simplex implementation a solve should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SparseMode {
    /// Use the sparse revised simplex when the instance is both large
    /// (`m·n ≥ 50 000` cells) and sparse (constraint density `< 0.25`);
    /// otherwise the dense tableau. Small instances always stay dense, so
    /// existing paper-class workloads keep their bit-exact trajectories.
    #[default]
    Auto,
    /// Always the dense tableau (the differential reference path).
    Never,
    /// Force the sparse path regardless of size or density; used by the
    /// differential test suites. Numerical fallback to dense still
    /// applies.
    Always,
}

/// Minimum `m · n` cell count before [`SparseMode::Auto`] considers the
/// sparse path. Paper-class instances (≤ 560 × 30) stay well below this,
/// preserving their dense bit-exact trajectories.
const AUTO_MIN_CELLS: usize = 50_000;
/// Maximum structural-row density for [`SparseMode::Auto`] to pick the
/// sparse path.
const AUTO_MAX_DENSITY: f64 = 0.25;
/// Pivots between basis refactorizations (eta-file length cap).
const REFACTOR_EVERY: usize = 64;
/// Candidate-list capacity for partial pricing.
const CANDIDATES: usize = 64;
/// Minimum pivot magnitude when driving artificials out after phase 1
/// (mirrors the dense path's drive-out threshold).
const DRIVE_OUT_TOL: f64 = 1e-7;

/// Decide whether `p` should be solved on the sparse path under `opts`.
pub(crate) fn selected(p: &LpProblem, opts: &SimplexOptions) -> bool {
    match opts.sparse {
        SparseMode::Never => false,
        SparseMode::Always => true,
        SparseMode::Auto => {
            let cells = p.rows.len() * p.n;
            if cells < AUTO_MIN_CELLS {
                return false;
            }
            let nnz: usize = p.rows.iter().map(|r| r.len()).sum();
            (nnz as f64) < AUTO_MAX_DENSITY * cells as f64
        }
    }
}

/// Compressed sparse columns over the full `[structural | slack |
/// artificial]` layout. Row indices within a column are ascending;
/// duplicate entries (legal in [`LpProblem::add_constraint`]) are kept
/// and accumulate in every dot product, matching the dense assembly.
#[derive(Debug, Clone)]
struct Csc {
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl Csc {
    fn col(&self, j: usize) -> (&[u32], &[f64]) {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        (&self.row_idx[lo..hi], &self.vals[lo..hi])
    }
}

/// Build the CSC matrix: structural columns from the problem rows, slack
/// column `n+i = e_i`, artificial column `n+m+i = sign_i · e_i` (so the
/// all-artificial start basis is `diag(sign)` with non-negative values).
fn build_csc(p: &LpProblem, signs: &[f64]) -> Csc {
    let n = p.n;
    let m = p.rows.len();
    let n_total = n + 2 * m;
    let mut col_ptr = vec![0usize; n_total + 1];
    for row in &p.rows {
        for &(j, _) in row {
            col_ptr[j + 1] += 1;
        }
    }
    for i in 0..m {
        col_ptr[n + i + 1] += 1;
        col_ptr[n + m + i + 1] += 1;
    }
    for j in 0..n_total {
        col_ptr[j + 1] += col_ptr[j];
    }
    let nnz = col_ptr[n_total];
    let mut row_idx = vec![0u32; nnz];
    let mut vals = vec![0.0f64; nnz];
    let mut next = col_ptr.clone();
    for (i, row) in p.rows.iter().enumerate() {
        for &(j, a) in row {
            let pos = next[j];
            next[j] += 1;
            row_idx[pos] = i as u32;
            vals[pos] = a;
        }
    }
    for i in 0..m {
        let pos = next[n + i];
        next[n + i] += 1;
        row_idx[pos] = i as u32;
        vals[pos] = 1.0;
        let pos = next[n + m + i];
        next[n + m + i] += 1;
        row_idx[pos] = i as u32;
        vals[pos] = signs[i];
    }
    Csc { col_ptr, row_idx, vals }
}

/// Dense LU factorization of the `m × m` basis with partial pivoting:
/// `P B = L U`, `L` unit-lower and `U` upper stored in one buffer. `m` is
/// the (small) constraint count, so a dense factor beats a sparse one for
/// every workload this crate serves.
#[derive(Debug, Clone, Default)]
struct Lu {
    m: usize,
    /// `m × m` row-major; strictly-lower part holds `L`, rest holds `U`.
    f: Vec<f64>,
    /// `perm[k]` = original row in position `k` after pivoting.
    perm: Vec<usize>,
}

impl Lu {
    /// Factor the row-major matrix `f`; `None` on a (near-)singular pivot.
    /// (`LpProblem::validate` rejects NaN coefficients, so the pivot
    /// magnitudes here are ordinary non-negative floats.)
    fn factor(m: usize, mut f: Vec<f64>) -> Option<Lu> {
        let mut perm: Vec<usize> = (0..m).collect();
        for k in 0..m {
            let mut pr = k;
            let mut pv = f[k * m + k].abs();
            for i in k + 1..m {
                let a = f[i * m + k].abs();
                if a > pv {
                    pv = a;
                    pr = i;
                }
            }
            if pv <= 1e-12 {
                return None;
            }
            if pr != k {
                for j in 0..m {
                    f.swap(k * m + j, pr * m + j);
                }
                perm.swap(k, pr);
            }
            let inv = 1.0 / f[k * m + k];
            for i in k + 1..m {
                let l = f[i * m + k] * inv;
                f[i * m + k] = l;
                if l != 0.0 {
                    for j in k + 1..m {
                        f[i * m + j] -= l * f[k * m + j];
                    }
                }
            }
        }
        Some(Lu { m, f, perm })
    }

    /// Solve `B x = b` (forward then backward substitution).
    #[allow(clippy::needless_range_loop)] // strided triangular sweeps
    fn ftran(&self, b: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        for k in 0..m {
            let xk = x[k];
            if xk != 0.0 {
                for i in k + 1..m {
                    x[i] -= self.f[i * m + k] * xk;
                }
            }
        }
        for k in (0..m).rev() {
            let xk = x[k] / self.f[k * m + k];
            x[k] = xk;
            if xk != 0.0 {
                for i in 0..k {
                    x[i] -= self.f[i * m + k] * xk;
                }
            }
        }
        x
    }

    /// Solve `B^T y = c`, where `c` is indexed by basis position and the
    /// result by matrix row.
    #[allow(clippy::needless_range_loop)] // strided triangular sweeps
    fn btran(&self, c: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut v = c.to_vec();
        // U^T v = c (U^T is lower-triangular).
        for k in 0..m {
            let vk = v[k] / self.f[k * m + k];
            v[k] = vk;
            if vk != 0.0 {
                for j in k + 1..m {
                    v[j] -= self.f[k * m + j] * vk;
                }
            }
        }
        // L^T w = v (unit upper-triangular in transpose).
        for i in (0..m).rev() {
            let wi = v[i];
            if wi != 0.0 {
                for k in 0..i {
                    v[k] -= self.f[i * m + k] * wi;
                }
            }
        }
        let mut y = vec![0.0; m];
        for (k, &p) in self.perm.iter().enumerate() {
            y[p] = v[k];
        }
        y
    }
}

/// One product-form basis update from a pivot at basis position `r`.
/// `v` is stored in "pure-axpy" form: `v[i≠r] = −α_i/α_r` and
/// `v[r] = 1/α_r − 1`, so FTRAN application is `x += x[r] · v`.
#[derive(Debug, Clone)]
struct Eta {
    r: usize,
    v: Vec<f64>,
}

enum SparseOutcome {
    Optimal,
    Unbounded,
    IterationLimit,
    /// Singular refactorization — abandon the sparse attempt; the caller
    /// falls back to the dense reference path.
    Numerical,
}

/// Full revised-simplex state. Cloned per [`finish`] call exactly like
/// the dense `Tableau` inside `PreparedLp`.
#[derive(Debug, Clone)]
pub(crate) struct SparseState {
    m: usize,
    n_struct: usize,
    n_total: usize,
    a: Csc,
    rhs: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    stat: Vec<VarStatus>,
    xval: Vec<f64>,
    /// `basis[r]` = column occupying basis position `r`.
    basis: Vec<usize>,
    /// Current phase cost vector.
    cost: Vec<f64>,
    iterations: usize,
    /// Rotating start position of the next pricing refill sweep.
    price_cursor: usize,
    pub(crate) opts: SimplexOptions,
    lu: Lu,
    etas: Vec<Eta>,
}

impl SparseState {
    fn assemble(p: &LpProblem, opts: &SimplexOptions) -> Option<SparseState> {
        let n = p.n;
        let m = p.rows.len();
        let n_total = n + 2 * m;

        let mut lower = Vec::with_capacity(n_total);
        let mut upper = Vec::with_capacity(n_total);
        lower.extend_from_slice(&p.lower);
        upper.extend_from_slice(&p.upper);
        for rel in &p.relations {
            match rel {
                Relation::Le => {
                    lower.push(0.0);
                    upper.push(f64::INFINITY);
                }
                Relation::Ge => {
                    lower.push(f64::NEG_INFINITY);
                    upper.push(0.0);
                }
                Relation::Eq => {
                    lower.push(0.0);
                    upper.push(0.0);
                }
            }
        }
        for _ in 0..m {
            lower.push(0.0);
            upper.push(f64::INFINITY);
        }

        let mut stat = Vec::with_capacity(n_total);
        let mut xval = Vec::with_capacity(n_total);
        for j in 0..n + m {
            if lower[j].is_finite() {
                stat.push(VarStatus::AtLower);
                xval.push(lower[j]);
            } else {
                stat.push(VarStatus::AtUpper);
                xval.push(upper[j]);
            }
        }

        let mut resid = p.rhs.clone();
        for (i, row) in p.rows.iter().enumerate() {
            for &(j, a) in row {
                resid[i] -= a * xval[j];
            }
        }
        let signs: Vec<f64> =
            resid.iter().map(|&r| if r >= 0.0 { 1.0 } else { -1.0 }).collect();
        for r in &resid {
            stat.push(VarStatus::Basic);
            xval.push(r.abs());
        }

        let a = build_csc(p, &signs);
        let basis: Vec<usize> = (n + m..n_total).collect();
        let mut st = SparseState {
            m,
            n_struct: n,
            n_total,
            a,
            rhs: p.rhs.clone(),
            lower,
            upper,
            stat,
            xval,
            basis,
            cost: vec![0.0; n_total],
            iterations: 0,
            price_cursor: 0,
            opts: opts.clone(),
            lu: Lu::default(),
            etas: Vec::new(),
        };
        if !st.refactor(false) {
            return None; // diag(±1) cannot be singular, but stay defensive
        }
        Some(st)
    }

    /// Rebuild the LU factor from the current basis columns and clear the
    /// eta file. With `recompute_x`, the basic primal values are restored
    /// from `x_B = B^{-1}(b − N x_N)` to shed drift accumulated by the
    /// incremental updates.
    fn refactor(&mut self, recompute_x: bool) -> bool {
        let m = self.m;
        let mut bmat = vec![0.0f64; m * m];
        for (r, &j) in self.basis.iter().enumerate() {
            let (ri, vs) = self.a.col(j);
            for (&i, &v) in ri.iter().zip(vs) {
                bmat[i as usize * m + r] += v;
            }
        }
        let Some(lu) = Lu::factor(m, bmat) else {
            return false;
        };
        self.lu = lu;
        self.etas.clear();
        if recompute_x {
            let mut r = self.rhs.clone();
            for j in 0..self.n_total {
                if self.stat[j] != VarStatus::Basic && self.xval[j] != 0.0 {
                    let (ri, vs) = self.a.col(j);
                    for (&i, &v) in ri.iter().zip(vs) {
                        r[i as usize] -= v * self.xval[j];
                    }
                }
            }
            let xb = self.lu.ftran(&r);
            for (k, &j) in self.basis.iter().enumerate() {
                self.xval[j] = xb[k];
            }
        }
        true
    }

    /// `B^{-1} b` through the LU factor and the eta file (in order).
    fn ftran(&self, b: &[f64]) -> Vec<f64> {
        let mut x = self.lu.ftran(b);
        for eta in &self.etas {
            let xr = x[eta.r];
            if xr != 0.0 {
                for (xi, &vi) in x.iter_mut().zip(&eta.v) {
                    *xi += vi * xr;
                }
            }
        }
        x
    }

    /// `B^{-T} c` (input indexed by basis position, output by row):
    /// etas applied newest-first, then the LU BTRAN.
    fn btran(&self, c: &[f64]) -> Vec<f64> {
        let mut v = c.to_vec();
        for eta in self.etas.iter().rev() {
            let dot: f64 = v.iter().zip(&eta.v).map(|(a, b)| a * b).sum();
            v[eta.r] += dot;
        }
        self.lu.btran(&v)
    }

    /// The entering column `α = B^{-1} a_q`.
    fn ftran_column(&self, j: usize) -> Vec<f64> {
        let mut b = vec![0.0f64; self.m];
        let (ri, vs) = self.a.col(j);
        for (&i, &v) in ri.iter().zip(vs) {
            b[i as usize] += v;
        }
        self.ftran(&b)
    }

    /// Duals of the current phase costs: `y = B^{-T} c_B`.
    fn pricing_duals(&self) -> Vec<f64> {
        let cb: Vec<f64> = self.basis.iter().map(|&j| self.cost[j]).collect();
        self.btran(&cb)
    }

    /// Reduced cost `d_j = c_j − y·a_j` as a sparse dot product.
    fn reduced_cost(&self, j: usize, y: &[f64]) -> f64 {
        let (ri, vs) = self.a.col(j);
        let mut acc = self.cost[j];
        for (&i, &v) in ri.iter().zip(vs) {
            acc -= y[i as usize] * v;
        }
        acc
    }

    /// Pricing violation of nonbasic column `j` (how strongly it wants to
    /// move off its bound); `> tol` means eligible to enter.
    fn violation(&self, j: usize, y: &[f64]) -> f64 {
        let dj = self.reduced_cost(j, y);
        match self.stat[j] {
            VarStatus::AtLower => -dj,
            VarStatus::AtUpper => dj,
            VarStatus::Basic => 0.0,
        }
    }

    fn phase_objective(&self) -> f64 {
        self.cost.iter().zip(&self.xval).map(|(c, x)| c * x).sum()
    }

    /// Nonbasic part of the phase objective, `Σ c_j x_j` over nonbasic
    /// columns. Computed once per phase and then maintained incrementally
    /// by `run_phase` (a column's contribution only changes when it flips
    /// bound, enters, or leaves the basis), so the per-iteration stall
    /// check costs O(m) instead of a full O(n) sweep.
    fn nonbasic_objective(&self) -> f64 {
        (0..self.n_total)
            .filter(|&j| self.stat[j] != VarStatus::Basic)
            .map(|j| self.cost[j] * self.xval[j])
            .sum()
    }

    /// Basic part of the phase objective: `Σ c_B x_B` (O(m)).
    fn basic_objective(&self) -> f64 {
        self.basis.iter().map(|&j| self.cost[j] * self.xval[j]).sum()
    }

    /// Candidate-list partial pricing: re-price the retained list and take
    /// its best violator; when the list runs dry, refill it with a
    /// rotating sectional sweep. Optimality is only ever declared by a
    /// refill that wraps the whole column ring without finding a violator
    /// (which *is* a full pricing sweep under the current duals).
    fn price_partial(
        &mut self,
        y: &[f64],
        allow_artificial: bool,
        tol: f64,
        candidates: &mut Vec<usize>,
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        candidates.retain(|&j| {
            if self.stat[j] == VarStatus::Basic || self.lower[j] == self.upper[j] {
                return false;
            }
            let viol = self.violation(j, y);
            if viol > tol {
                match best {
                    Some((_, b)) if b >= viol => {}
                    _ => best = Some((j, viol)),
                }
                true
            } else {
                false
            }
        });
        if let Some((j, _)) = best {
            return Some(j);
        }
        self.price_refill(y, allow_artificial, tol, candidates)
    }

    /// Rotating sectional refill: scan eligible columns starting at the
    /// saved cursor, wrapping at most once around the ring, and collect
    /// the first `CANDIDATES` violators (returning the best of them).
    /// The cursor advances past the last scanned column, so successive
    /// refills cover fresh sections instead of re-ranking the same hot
    /// ones — O(section) per refill instead of a full O(n) sort-sweep,
    /// which dominates the solve when the candidate list dies every few
    /// pivots on large correlated instances. A refill that wraps the
    /// whole ring without finding any violator proves phase optimality.
    fn price_refill(
        &mut self,
        y: &[f64],
        allow_artificial: bool,
        tol: f64,
        candidates: &mut Vec<usize>,
    ) -> Option<usize> {
        candidates.clear();
        let art_start = self.n_struct + self.m;
        let mut best: Option<(f64, usize)> = None;
        let start = self.price_cursor % self.n_total.max(1);
        for step in 0..self.n_total {
            let j = (start + step) % self.n_total;
            if self.stat[j] == VarStatus::Basic {
                continue;
            }
            if !allow_artificial && j >= art_start {
                continue;
            }
            if self.lower[j] == self.upper[j] {
                continue;
            }
            let viol = self.violation(j, y);
            if viol > tol {
                candidates.push(j);
                match best {
                    Some((b, _)) if b >= viol => {}
                    _ => best = Some((viol, j)),
                }
                if candidates.len() >= CANDIDATES {
                    self.price_cursor = (j + 1) % self.n_total;
                    return best.map(|(_, j)| j);
                }
            }
        }
        // Wrapped the whole ring: either optimal (no violator anywhere
        // under these duals) or everything eligible is already listed.
        self.price_cursor = start;
        best.map(|(_, j)| j)
    }

    /// Bland's rule: the lowest-index violating column (anti-cycling).
    fn price_bland(&self, y: &[f64], allow_artificial: bool, tol: f64) -> Option<usize> {
        let art_start = self.n_struct + self.m;
        (0..self.n_total).find(|&j| {
            self.stat[j] != VarStatus::Basic
                && (allow_artificial || j < art_start)
                && self.lower[j] != self.upper[j]
                && self.violation(j, y) > tol
        })
    }

    /// Record the product-form eta of a pivot at basis position `r` with
    /// entering column `α`, then install the entering variable.
    fn apply_pivot(&mut self, r: usize, q: usize, alpha: &[f64]) {
        let ar = alpha[r];
        let mut v: Vec<f64> = alpha.iter().map(|&ai| -ai / ar).collect();
        v[r] = 1.0 / ar - 1.0;
        self.etas.push(Eta { r, v });
        self.basis[r] = q;
        self.stat[q] = VarStatus::Basic;
    }

    /// One simplex phase; mirrors the dense `Tableau::run_phase` loop
    /// (entering rule aside) including the stall-triggered switch to
    /// Bland's rule.
    fn run_phase(&mut self, allow_artificial: bool) -> SparseOutcome {
        let tol = self.opts.opt_tol;
        // The stall detector only compares successive phase objectives,
        // so the incrementally-maintained split (nonbasic part updated on
        // status changes, basic part summed fresh each iteration) is a
        // valid stand-in for the full `phase_objective` sweep.
        let mut nonbasic_obj = self.nonbasic_objective();
        let mut last_obj = nonbasic_obj + self.basic_objective();
        let mut stall = 0usize;
        let mut bland = false;
        let mut candidates: Vec<usize> = Vec::new();

        loop {
            if self.iterations >= self.opts.max_iterations {
                return SparseOutcome::IterationLimit;
            }
            let y = self.pricing_duals();
            let entering = if bland {
                self.price_bland(&y, allow_artificial, tol)
            } else {
                self.price_partial(&y, allow_artificial, tol, &mut candidates)
            };
            let Some(q) = entering else {
                return SparseOutcome::Optimal;
            };
            let dir: f64 = if self.stat[q] == VarStatus::AtLower { 1.0 } else { -1.0 };
            let entering_x = self.xval[q];
            let alpha = self.ftran_column(q);

            // --- ratio test (same three leaving cases as the dense path) ---
            let mut theta = self.upper[q] - self.lower[q];
            let mut leave: Option<(usize, bool)> = None;
            let mut leave_pivot = 0.0f64;
            for (i, &a) in alpha.iter().enumerate() {
                if a.abs() <= self.opts.pivot_tol {
                    continue;
                }
                let bi = self.basis[i];
                let change = -dir * a;
                let (lim, hits_upper) = if change < 0.0 {
                    ((self.xval[bi] - self.lower[bi]) / -change, false)
                } else {
                    ((self.upper[bi] - self.xval[bi]) / change, true)
                };
                if !lim.is_finite() {
                    continue;
                }
                let lim = lim.max(0.0);
                let take = match leave {
                    None => lim < theta,
                    Some((r_prev, _)) => {
                        if lim < theta - 1e-10 {
                            true
                        } else if lim < theta + 1e-10 {
                            if bland {
                                self.basis[i] < self.basis[r_prev]
                            } else {
                                a.abs() > leave_pivot
                            }
                        } else {
                            false
                        }
                    }
                };
                if take {
                    theta = lim.min(theta);
                    leave = Some((i, hits_upper));
                    leave_pivot = a.abs();
                }
            }
            if !theta.is_finite() {
                return SparseOutcome::Unbounded;
            }
            let theta = theta.max(0.0);

            // --- primal update ---
            self.xval[q] += dir * theta;
            if theta != 0.0 {
                for (i, &a) in alpha.iter().enumerate() {
                    if a != 0.0 {
                        self.xval[self.basis[i]] -= dir * theta * a;
                    }
                }
            }

            match leave {
                None => {
                    self.stat[q] = match self.stat[q] {
                        VarStatus::AtLower => {
                            self.xval[q] = self.upper[q];
                            VarStatus::AtUpper
                        }
                        VarStatus::AtUpper => {
                            self.xval[q] = self.lower[q];
                            VarStatus::AtLower
                        }
                        VarStatus::Basic => unreachable!(),
                    };
                    nonbasic_obj += self.cost[q] * (self.xval[q] - entering_x);
                }
                Some((r, hits_upper)) => {
                    let leaving = self.basis[r];
                    if hits_upper {
                        self.stat[leaving] = VarStatus::AtUpper;
                        self.xval[leaving] = self.upper[leaving];
                    } else {
                        self.stat[leaving] = VarStatus::AtLower;
                        self.xval[leaving] = self.lower[leaving];
                    }
                    nonbasic_obj += self.cost[leaving] * self.xval[leaving];
                    nonbasic_obj -= self.cost[q] * entering_x;
                    self.apply_pivot(r, q, &alpha);
                    if self.etas.len() >= REFACTOR_EVERY && !self.refactor(true) {
                        return SparseOutcome::Numerical;
                    }
                }
            }

            self.iterations += 1;

            let obj = nonbasic_obj + self.basic_objective();
            if obj < last_obj - 1e-10 {
                stall = 0;
            } else {
                stall += 1;
                if stall > self.opts.bland_after {
                    bland = true;
                }
            }
            last_obj = obj;
        }
    }

    /// After phase 1: pin artificials to `[0, 0]` is done by the caller;
    /// here, pivot every basic artificial out of the basis where a
    /// non-artificial column with a usable pivot exists (degenerate
    /// pivots — the artificial sits at value 0). Redundant rows keep a
    /// basic artificial at 0, which is harmless.
    fn drive_out_artificials(&mut self) -> bool {
        let art_start = self.n_struct + self.m;
        for r in 0..self.m {
            if self.basis[r] < art_start {
                continue;
            }
            let mut e = vec![0.0f64; self.m];
            e[r] = 1.0;
            let rho = self.btran(&e); // row r of B^{-1}
            let mut pivot_col = None;
            for j in 0..art_start {
                if self.stat[j] == VarStatus::Basic {
                    continue;
                }
                let (ri, vs) = self.a.col(j);
                let arj: f64 = ri.iter().zip(vs).map(|(&i, &v)| rho[i as usize] * v).sum();
                if arj.abs() > DRIVE_OUT_TOL {
                    pivot_col = Some(j);
                    break;
                }
            }
            if let Some(q) = pivot_col {
                let leaving = self.basis[r];
                self.stat[leaving] = VarStatus::AtLower;
                self.xval[leaving] = 0.0;
                let alpha = self.ftran_column(q);
                self.apply_pivot(r, q, &alpha);
                if self.etas.len() >= REFACTOR_EVERY && !self.refactor(true) {
                    return false;
                }
            }
        }
        true
    }
}

/// Sparse analogue of [`crate::simplex::Prepared`]: phase 1 done, ready
/// to run phase 2 per objective. Keeps a copy of the problem so a
/// numerical failure mid-phase-2 can re-solve on the dense path.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // one long-lived value per PreparedLp
pub(crate) enum SparsePrepared {
    /// Phase 1 found a feasible basis.
    Ready { state: SparseState, phase1_iterations: usize, problem: LpProblem },
    /// Phase 1 proved infeasibility or ran out of iterations.
    Stopped { status: LpStatus, iterations: usize, phase1_iterations: usize },
}

impl SparsePrepared {
    pub(crate) fn is_feasible(&self) -> bool {
        matches!(self, SparsePrepared::Ready { .. })
    }

    pub(crate) fn phase1_iterations(&self) -> usize {
        match self {
            SparsePrepared::Ready { phase1_iterations, .. } => *phase1_iterations,
            SparsePrepared::Stopped { phase1_iterations, .. } => *phase1_iterations,
        }
    }

    /// Run phase 2 for `obj`. Never fails: a singular refactorization
    /// falls back to a dense cold solve of the same problem+objective.
    pub(crate) fn solve_objective(&self, sense: Sense, obj: &[f64]) -> LpSolution {
        match self {
            SparsePrepared::Stopped { status, iterations, phase1_iterations } => {
                LpSolution::non_optimal(*status, *iterations, *phase1_iterations)
            }
            SparsePrepared::Ready { state, phase1_iterations, problem } => {
                match finish(state.clone(), *phase1_iterations, sense, obj) {
                    Some(sol) => sol,
                    None => {
                        let mut p = problem.clone();
                        p.obj.clear();
                        p.obj.extend_from_slice(obj);
                        crate::simplex::solve_dense(&p, &state.opts)
                    }
                }
            }
        }
    }
}

/// Sparse phase 1: assemble, minimize the artificial sum, pin artificials
/// and drive them out. `None` means "numerical trouble — use the dense
/// path"; infeasibility and iteration exhaustion are ordinary results.
pub(crate) fn prepare(p: &LpProblem, opts: &SimplexOptions) -> Option<SparsePrepared> {
    let n = p.n;
    let m = p.rows.len();
    let n_total = n + 2 * m;
    let mut st = SparseState::assemble(p, opts)?;

    for j in n + m..n_total {
        st.cost[j] = 1.0;
    }
    let scale = 1.0 + p.rhs.iter().fold(0.0f64, |a, b| a.max(b.abs()));
    match st.run_phase(true) {
        SparseOutcome::Optimal => {}
        SparseOutcome::Unbounded => return None, // phase 1 is bounded below by 0
        SparseOutcome::IterationLimit => {
            return Some(SparsePrepared::Stopped {
                status: LpStatus::IterationLimit,
                iterations: st.iterations,
                phase1_iterations: st.iterations,
            });
        }
        SparseOutcome::Numerical => return None,
    }
    let phase1_iterations = st.iterations;
    if st.phase_objective() > opts.feas_tol * scale {
        return Some(SparsePrepared::Stopped {
            status: LpStatus::Infeasible,
            iterations: st.iterations,
            phase1_iterations,
        });
    }

    for j in n + m..n_total {
        st.lower[j] = 0.0;
        st.upper[j] = 0.0;
    }
    if !st.drive_out_artificials() {
        return None;
    }
    Some(SparsePrepared::Ready { state: st, phase1_iterations, problem: p.clone() })
}

/// Sparse phase 2 + extraction. `None` on numerical failure (caller falls
/// back to dense). Duals come directly from `y = B^{-T} c_B`; with
/// unscaled rows this is already the internal-minimization multiplier
/// vector, so the user-sense conversion is a single sign.
pub(crate) fn finish(
    mut st: SparseState,
    phase1_iterations: usize,
    sense: Sense,
    obj: &[f64],
) -> Option<LpSolution> {
    let n = st.n_struct;
    let m = st.m;
    let obj_sign = match sense {
        Sense::Min => 1.0,
        Sense::Max => -1.0,
    };
    st.cost.iter_mut().for_each(|c| *c = 0.0);
    for (c, &o) in st.cost[..n].iter_mut().zip(obj) {
        *c = obj_sign * o;
    }
    match st.run_phase(false) {
        SparseOutcome::Optimal => {}
        SparseOutcome::Unbounded => {
            return Some(LpSolution::non_optimal(
                LpStatus::Unbounded,
                st.iterations,
                phase1_iterations,
            ));
        }
        SparseOutcome::IterationLimit => {
            return Some(LpSolution::non_optimal(
                LpStatus::IterationLimit,
                st.iterations,
                phase1_iterations,
            ));
        }
        SparseOutcome::Numerical => return None,
    }

    let mut x = st.xval[..n].to_vec();
    for (j, v) in x.iter_mut().enumerate() {
        if *v < st.lower[j] {
            *v = st.lower[j];
        }
        if *v > st.upper[j] {
            *v = st.upper[j];
        }
    }
    let objective: f64 = obj.iter().zip(&x).map(|(c, v)| c * v).sum();
    let y = st.pricing_duals();
    let duals: Vec<f64> = y.iter().map(|&yi| obj_sign * yi).collect();
    let reduced_costs: Vec<f64> = (0..n).map(|j| obj_sign * st.reduced_cost(j, &y)).collect();
    let statuses: Vec<VarStatus> = st.stat[..n + m].to_vec();

    Some(LpSolution {
        status: LpStatus::Optimal,
        objective,
        x,
        duals,
        reduced_costs,
        iterations: st.iterations,
        phase1_iterations,
        basis: Some(BasisSnapshot::from_statuses(statuses)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_certificate, LpProblem, Relation};

    fn sparse_opts() -> SimplexOptions {
        SimplexOptions { sparse: SparseMode::Always, ..Default::default() }
    }

    fn solve_sparse(p: &LpProblem) -> LpSolution {
        p.solve_with(&sparse_opts()).unwrap()
    }

    #[test]
    fn auto_selection_gates_on_size_and_density() {
        // Tiny: below the cell floor regardless of density.
        let mut tiny = LpProblem::minimize(4);
        tiny.add_constraint(&[(0, 1.0)], Relation::Ge, 1.0);
        assert!(!selected(&tiny, &SimplexOptions::default()));

        // Large and sparse: selected.
        let mut big = LpProblem::minimize(10_000);
        for i in 0..10 {
            let row: Vec<(usize, f64)> = (0..50).map(|k| (i * 50 + k, 1.0)).collect();
            big.add_constraint(&row, Relation::Ge, 1.0);
        }
        assert!(selected(&big, &SimplexOptions::default()));

        // Large and dense: not selected.
        let mut dense = LpProblem::minimize(10_000);
        for _ in 0..10 {
            let row: Vec<(usize, f64)> = (0..10_000).map(|j| (j, 1.0)).collect();
            dense.add_constraint(&row, Relation::Ge, 1.0);
        }
        assert!(!selected(&dense, &SimplexOptions::default()));

        // Modes override the heuristic in both directions.
        let never = SimplexOptions { sparse: SparseMode::Never, ..Default::default() };
        assert!(!selected(&big, &never));
        assert!(selected(&tiny, &sparse_opts()));
    }

    #[test]
    fn textbook_max_le_on_sparse_path() {
        let mut p = LpProblem::maximize(2);
        p.set_objective(&[3.0, 5.0]);
        p.add_constraint_dense(&[1.0, 0.0], Relation::Le, 4.0);
        p.add_constraint_dense(&[0.0, 2.0], Relation::Le, 12.0);
        p.add_constraint_dense(&[3.0, 2.0], Relation::Le, 18.0);
        let sol = solve_sparse(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 36.0).abs() < 1e-8);
        assert!((sol.x[0] - 2.0).abs() < 1e-8);
        assert!((sol.x[1] - 6.0).abs() < 1e-8);
        check_certificate(&p, &sol, 1e-6).unwrap();
    }

    #[test]
    fn phase1_ge_rows_on_sparse_path() {
        let mut p = LpProblem::minimize(2);
        p.set_objective(&[2.0, 3.0]);
        p.add_constraint_dense(&[1.0, 1.0], Relation::Ge, 4.0);
        p.add_constraint_dense(&[1.0, 2.0], Relation::Ge, 6.0);
        let sol = solve_sparse(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 10.0).abs() < 1e-8);
        check_certificate(&p, &sol, 1e-6).unwrap();
        // Both rows bind; duals solve y1 + y2 = 2, y1 + 2 y2 = 3.
        assert!((sol.duals[0] - 1.0).abs() < 1e-6);
        assert!((sol.duals[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible_and_unbounded() {
        let mut inf = LpProblem::minimize(1);
        inf.add_constraint_dense(&[1.0], Relation::Ge, 5.0);
        inf.add_constraint_dense(&[1.0], Relation::Le, 2.0);
        assert_eq!(solve_sparse(&inf).status, LpStatus::Infeasible);

        let mut unb = LpProblem::minimize(1);
        unb.set_objective(&[-1.0]);
        unb.add_constraint_dense(&[1.0], Relation::Ge, 1.0);
        assert_eq!(solve_sparse(&unb).status, LpStatus::Unbounded);
    }

    #[test]
    fn bound_flips_and_equalities() {
        let mut p = LpProblem::maximize(2);
        p.set_objective(&[1.0, 1.0]);
        p.set_bounds(0, 0.0, 1.0);
        p.set_bounds(1, 0.0, 1.0);
        p.add_constraint_dense(&[1.0, 1.0], Relation::Le, 1.5);
        let sol = solve_sparse(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 1.5).abs() < 1e-8);
        check_certificate(&p, &sol, 1e-6).unwrap();

        let mut q = LpProblem::minimize(2);
        q.set_objective(&[1.0, 1.0]);
        q.add_constraint_dense(&[1.0, 1.0], Relation::Eq, 5.0);
        q.add_constraint_dense(&[1.0, 0.0], Relation::Le, 2.0);
        let sol = solve_sparse(&q);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 5.0).abs() < 1e-8);
        check_certificate(&q, &sol, 1e-6).unwrap();
    }

    #[test]
    fn redundant_rows_leave_artificial_basic() {
        let mut p = LpProblem::minimize(2);
        p.set_objective(&[1.0, 2.0]);
        p.add_constraint_dense(&[1.0, 1.0], Relation::Eq, 3.0);
        p.add_constraint_dense(&[2.0, 2.0], Relation::Eq, 6.0);
        let sol = solve_sparse(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 3.0).abs() < 1e-8);
    }

    #[test]
    fn degenerate_lp_terminates_on_sparse_path() {
        let mut p = LpProblem::minimize(4);
        p.set_objective(&[-0.75, 150.0, -0.02, 6.0]);
        p.add_constraint_dense(&[0.25, -60.0, -0.04, 9.0], Relation::Le, 0.0);
        p.add_constraint_dense(&[0.5, -90.0, -0.02, 3.0], Relation::Le, 0.0);
        p.add_constraint_dense(&[0.0, 0.0, 1.0, 0.0], Relation::Le, 1.0);
        let sol = solve_sparse(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective + 0.05).abs() < 1e-6);
        check_certificate(&p, &sol, 1e-6).unwrap();
    }

    #[test]
    fn zero_rows_zero_vars() {
        let p = LpProblem::minimize(0);
        let sol = solve_sparse(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, 0.0);

        // No rows but variables: everything rests on its cheapest bound.
        let mut q = LpProblem::minimize(2);
        q.set_objective(&[1.0, -1.0]);
        q.set_bounds(1, 0.0, 7.0);
        let sol = solve_sparse(&q);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective + 7.0).abs() < 1e-9);
    }

    #[test]
    fn covering_agrees_with_dense_and_eta_refactorization_survives() {
        // Big enough that phase 1 + phase 2 exceed REFACTOR_EVERY pivots,
        // exercising the refactorization + drift-recompute path.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 300;
        let m = 40;
        let mut p = LpProblem::minimize(n);
        for j in 0..n {
            p.set_bounds(j, 0.0, 1.0);
            p.set_objective_coeff(j, rng.random_range(1.0..10.0));
        }
        for _ in 0..m {
            let mut row = Vec::new();
            for j in 0..n {
                if rng.random_bool(0.07) {
                    row.push((j, rng.random_range(1.0..4.0f64).round()));
                }
            }
            if row.is_empty() {
                row.push((rng.random_range(0..n), 2.0));
            }
            p.add_constraint(&row, Relation::Ge, rng.random_range(1.0..3.0f64).round());
        }
        let sparse = solve_sparse(&p);
        let dense = p
            .solve_with(&SimplexOptions { sparse: SparseMode::Never, ..Default::default() })
            .unwrap();
        assert_eq!(sparse.status, LpStatus::Optimal);
        assert_eq!(dense.status, LpStatus::Optimal);
        let scale = 1.0 + dense.objective.abs();
        assert!(
            (sparse.objective - dense.objective).abs() < 1e-6 * scale,
            "objective mismatch: sparse {} vs dense {}",
            sparse.objective,
            dense.objective
        );
        check_certificate(&p, &sparse, 1e-6).unwrap();
        check_certificate(&p, &dense, 1e-6).unwrap();
    }

    #[test]
    fn prepared_sparse_matches_cold_sparse() {
        let mut p = LpProblem::minimize(4);
        p.set_objective(&[3.0, 2.0, 4.0, 1.0]);
        for j in 0..4 {
            p.set_bounds(j, 0.0, 1.0);
        }
        p.add_constraint_dense(&[2.0, 1.0, 0.0, 1.0], Relation::Ge, 2.0);
        p.add_constraint_dense(&[0.0, 2.0, 3.0, 1.0], Relation::Ge, 3.0);
        let prepared = p.prepare_with(&sparse_opts()).unwrap();
        assert!(prepared.is_feasible());
        for obj in [[3.0, 2.0, 4.0, 1.0], [1.0, 1.0, 1.0, 1.0], [0.5, 9.0, 0.25, 2.0]] {
            let warm = prepared.solve_objective(&obj).unwrap();
            let mut q = p.clone();
            q.set_objective(&obj);
            let cold = solve_sparse(&q);
            assert_eq!(warm.status, cold.status);
            assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
            assert_eq!(warm.iterations, cold.iterations);
            check_certificate(&q, &warm, 1e-6).unwrap();
        }
    }

    #[test]
    fn fixed_variables_and_negative_bounds() {
        let mut p = LpProblem::minimize(2);
        p.set_objective(&[1.0, 1.0]);
        p.set_bounds(0, 2.0, 2.0);
        p.add_constraint_dense(&[1.0, 1.0], Relation::Ge, 5.0);
        let sol = solve_sparse(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.x[0] - 2.0).abs() < 1e-9);
        assert!((sol.objective - 5.0).abs() < 1e-8);

        let mut q = LpProblem::minimize(2);
        q.set_objective(&[1.0, 1.0]);
        q.set_bounds(0, -5.0, f64::INFINITY);
        q.set_bounds(1, -2.0, 2.0);
        q.add_constraint_dense(&[1.0, 1.0], Relation::Ge, -4.0);
        let sol = solve_sparse(&q);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective + 4.0).abs() < 1e-8);
        check_certificate(&q, &sol, 1e-6).unwrap();
    }

    #[test]
    fn iteration_limit_is_reported() {
        let mut p = LpProblem::minimize(2);
        p.set_objective(&[2.0, 3.0]);
        p.add_constraint_dense(&[1.0, 1.0], Relation::Ge, 4.0);
        let opts = SimplexOptions {
            max_iterations: 0,
            sparse: SparseMode::Always,
            ..Default::default()
        };
        let sol = p.solve_with(&opts).unwrap();
        assert_eq!(sol.status, LpStatus::IterationLimit);
    }
}
