//! Cloud pricing head-to-head: CARBON vs COBRA vs nested-sequential on
//! one of the paper's instance classes.
//!
//! ```text
//! cargo run --release --example cloud_pricing
//! ```
//!
//! Reproduces the paper's core comparison at reduced budget: CARBON's
//! predicted customer reactions are far closer to rational (smaller
//! %-gap), and COBRA's apparently higher revenue is an overestimation
//! artifact of its loose reactions (§V.B).

use bico::bcpop::{generate, GeneratorConfig};
use bico::cobra::{Cobra, CobraConfig, NestedConfig, NestedSequential};
use bico::core::{Carbon, CarbonConfig};

fn main() {
    let class = (100usize, 10usize);
    let instance = generate(&GeneratorConfig::paper_class(class.0, class.1), 99);
    println!("class {}x{} — one instance, same budget for every algorithm\n", class.0, class.1);

    let evals = 4_000u64;
    let pop = 24usize;

    let carbon = Carbon::new(
        &instance,
        CarbonConfig {
            ul_pop_size: pop,
            ll_pop_size: pop,
            ul_archive_size: pop,
            ll_archive_size: pop,
            ul_evaluations: evals,
            ll_evaluations: evals,
            ..Default::default()
        },
    )
    .run(1);

    let cobra = Cobra::new(
        &instance,
        CobraConfig {
            ul_pop_size: pop,
            ll_pop_size: pop,
            ul_archive_size: pop,
            ll_archive_size: pop,
            ul_evaluations: evals,
            ll_evaluations: evals,
            ..Default::default()
        },
    )
    .run(1);

    // The nested baseline burns its lower-level budget ~pop×gens faster:
    // with the same LL budget it can afford only a handful of UL evals.
    let nested = NestedSequential::new(
        &instance,
        NestedConfig {
            ul_pop_size: 8,
            ul_evaluations: 64,
            ll_pop_size: 10,
            ll_gens_per_eval: 6,
            ll_evaluations: evals,
            ..Default::default()
        },
    )
    .run(1);

    println!("algorithm          | %-gap   | UL revenue | notes");
    println!("-------------------|---------|------------|------------------------------");
    println!(
        "CARBON             | {:>6.2}% | {:>10.2} | gap-driven heuristic evolution",
        carbon.best_gap, carbon.best_ul_value
    );
    println!(
        "COBRA              | {:>6.2}% | {:>10.2} | revenue is overestimated (loose LL)",
        cobra.best_gap, cobra.best_ul_value
    );
    println!(
        "nested-sequential  | {:>6.2}% | {:>10.2} | only {} UL evals for the same LL budget",
        nested.best_gap, nested.best_ul_value, nested.ul_evals_used
    );

    println!("\nCARBON's champion heuristic: {}", carbon.best_heuristic_infix);
    if carbon.best_gap < cobra.best_gap {
        println!("=> CARBON forecasts the customer better (paper's Table III shape).");
    }
}
