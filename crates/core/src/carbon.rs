//! CARBON: Competitive co-evolution of upper-level pricings (prey) and
//! lower-level GP heuristics (predators).
//!
//! The workflow follows Fig. 3 of the paper, with the coupling choices
//! documented in DESIGN.md §6.1:
//!
//! 1. per generation, the lower-level relaxation LP is solved once per
//!    upper-level individual (it is needed for the %-gap anyway and its
//!    duals / relaxed primal feed the Table I terminals);
//! 2. each GP heuristic is scored by its mean %-gap over a rotating
//!    training subset of the current pricings — gap, *not* lower-level
//!    cost, so heuristics are comparable across upper-level decisions
//!    (the paper's central argument in §IV.A);
//! 3. each pricing is scored by the revenue it achieves against the
//!    *champion* heuristic's reaction — the best forecast available of
//!    the customer's rational behaviour;
//! 4. both populations then evolve with their Table II operators, and
//!    elite archives are maintained at both levels.

use crate::compile_cache::GpCompileCache;
use crate::decode_cache::{
    cell_key, decode_mode, dedup_by_key, pricing_key, tree_scorer_key, DecodeCache,
    DecodeOutcome,
};
use crate::surrogate::{
    cell_features, normalized_ranks, probe_indices, quantile_value, select_exact, spearman,
    RankSurrogate, SurrogateGate, NUM_FEATURES,
};
use bico_bcpop::{
    bcpop_primitives, bundle_features, evaluate_pair, greedy_cover, greedy_cover_batched,
    BatchScorer, BcpopInstance, CompiledGpScorer, CoverOutcome, FeatureColumns, GpScorer,
    Relaxation, RelaxationSolver,
};
use bico_ea::{
    archive::Archive,
    cache::{EvictionPolicy, SolveCache},
    real::{polynomial_mutation, sbx_crossover, RealOpsConfig},
    rng::seed_stream,
    select::{tournament, Direction},
    stats::Trace,
};
use bico_gp::{
    mutate_uniform, ramped_half_and_half, subtree_crossover, to_infix, Expr, PrimitiveSet,
    VariationConfig,
};
use bico_obs::{elapsed_micros, timer_if, Event, Level, NullObserver, RunObserver};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::sync::Arc;

/// Per-column probe context for the surrogate gate: the probe bundles'
/// feature columns, their priced costs and greedy-reference ordering,
/// and the pricing's (lower bound, mean, spread) statistics.
type ColumnProbe = (FeatureColumns, Vec<f64>, Vec<f64>, f64, f64, f64);

/// How the lower-level population's fitness is aggregated from the
/// evaluation matrix — the co-evolutionary "strategy" of the arms race.
///
/// The paper's CARBON is plain predator–prey scoring (mean %-gap over
/// the training pricings). The two alternatives target its §V.B
/// pathologies: competitive fitness sharing (Rosin & Belew; pybrain's
/// `CompetitiveCoevolution`) rewards beating pricings few rivals beat,
/// flattening see-saw cycles, and the hall-of-fame sampler scores
/// heuristics against archived elite pricings instead of only the
/// current population, preventing disengagement from a drifting prey.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoevStrategy {
    /// Mean %-gap over the training pricings (the paper's CARBON).
    #[default]
    PredatorPrey,
    /// Competitive fitness sharing: a heuristic "beats" a training
    /// pricing when its value is within `share_margin` of the column's
    /// best, and each beat is worth `1 / beatsum` where `beatsum` is how
    /// many rivals also beat that pricing — rare victories dominate.
    SharedFitness,
    /// Hall-of-fame opponent sampling: training columns beyond the elite
    /// slot are drawn from the upper-level archive (falling back to the
    /// population while the archive warms up), so heuristics must keep
    /// answering historically strong pricings, not just today's.
    HallOfFame,
}

impl CoevStrategy {
    /// Stable lower-case name (used in docs and CLI output).
    pub fn as_str(self) -> &'static str {
        match self {
            CoevStrategy::PredatorPrey => "predator-prey",
            CoevStrategy::SharedFitness => "shared",
            CoevStrategy::HallOfFame => "hall-of-fame",
        }
    }
}

impl std::str::FromStr for CoevStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "plain" | "predator-prey" | "predator_prey" => Ok(CoevStrategy::PredatorPrey),
            "shared" | "shared-fitness" | "fitness-sharing" => Ok(CoevStrategy::SharedFitness),
            "hof" | "hall-of-fame" | "hall_of_fame" => Ok(CoevStrategy::HallOfFame),
            other => Err(format!(
                "unknown co-evolution strategy '{other}' (expected plain, shared, or hof)"
            )),
        }
    }
}

/// CARBON parameters. `Default` is the paper's Table II column
/// (50 000 + 50 000 evaluations, population/archive 100, SBX 0.85,
/// polynomial mutation 0.01, GP crossover 0.85, uniform mutation 0.1,
/// reproduction 0.05).
#[derive(Debug, Clone)]
pub struct CarbonConfig {
    /// Upper-level population size.
    pub ul_pop_size: usize,
    /// Upper-level archive capacity.
    pub ul_archive_size: usize,
    /// Upper-level fitness-evaluation budget.
    pub ul_evaluations: u64,
    /// SBX probability per couple.
    pub ul_crossover_prob: f64,
    /// Polynomial-mutation probability per gene.
    pub ul_mutation_prob: f64,
    /// SBX / polynomial-mutation distribution indices.
    pub ul_real_ops: RealOpsConfig,
    /// Lower-level (heuristic) population size.
    pub ll_pop_size: usize,
    /// Lower-level archive capacity.
    pub ll_archive_size: usize,
    /// Lower-level fitness-evaluation budget (one evaluation = one
    /// greedy pass of one heuristic on one pricing).
    pub ll_evaluations: u64,
    /// GP tournament size ("Tournament" in Table II, vs binary at UL).
    pub ll_tournament: usize,
    /// GP subtree-crossover probability.
    pub ll_crossover_prob: f64,
    /// GP uniform-mutation probability per individual.
    pub ll_mutation_prob: f64,
    /// GP reproduction (verbatim cloning) probability.
    pub ll_reproduction_prob: f64,
    /// GP depth limits.
    pub gp_variation: VariationConfig,
    /// Ramped half-and-half initialization depth window.
    pub gp_init_depth: (usize, usize),
    /// Number of pricings each heuristic is scored on per generation.
    pub training_samples: usize,
    /// Keep elite archives (ablation knob; the paper keeps them on).
    pub use_archives: bool,
    /// Score heuristics by %-gap (CARBON) or raw lower-level cost
    /// (the `ablation_fitness` variant mimicking COBRA's criterion).
    pub gap_fitness: bool,
    /// Provide the LP terminals (`d_k`, `x̄_j`) to the heuristics
    /// (`false` = the `ablation_terminals` variant).
    pub lp_terminals: bool,
    /// Capacity of the lower-level solve cache (`0` = off). Relaxations
    /// are memoized by the exact bit pattern of the pricing vector, so
    /// re-evaluating an elite or archived pricing skips the LP solve;
    /// results are bit-identical either way (see [`bico_ea::SolveCache`]).
    pub ll_cache_capacity: usize,
    /// Use the compiled fast path for lower-level decodes: GP scoring
    /// trees are lowered to bytecode (with subtree CSE) once per distinct
    /// expression and the greedy decoder maintains residual features and
    /// a retained candidate list incrementally, scoring each step's
    /// candidates as one batch. `false` falls back to the tree-walking
    /// interpreter + recomputing decoder (the reference implementation).
    /// Results are bit-identical either way, including `nodes_evaluated`
    /// accounting (asserted by differential tests).
    pub compiled_eval: bool,
    /// Capacity of the cross-generation GP compile cache (`0` = off;
    /// only meaningful with `compiled_eval`). Compiled programs are
    /// memoized by the tree's exact structural encoding, so elites,
    /// archive members, and reproduction clones compile once per run
    /// instead of once per generation; results are bit-identical either
    /// way (see [`crate::GpCompileCache`]).
    pub gp_compile_cache_capacity: usize,
    /// Schedule fitness through the deduplicated evaluation matrix:
    /// unique (tree, pricing) pairs are collected across the population
    /// up front, each unique cell decodes once, and results scatter back
    /// to every population slot that requested them — duplicated trees
    /// (clones, elites, reproduction) and duplicated pricings never
    /// decode twice within a generation. `false` runs the straight
    /// per-individual reference loop. Results are bit-identical either
    /// way (asserted by differential tests).
    pub eval_matrix: bool,
    /// Capacity of the cross-generation decode cache (`0` = off; only
    /// probed by the evaluation matrix, so it needs `eval_matrix`).
    /// Full lower-level outcomes are memoized by (scorer encoding ×
    /// pricing bits × decode mode), so re-decoding an elite pairing in a
    /// later generation — or the champion re-decoding a training pricing
    /// it just saw in the lower-level phase — recalls the stored outcome
    /// including its GP-node charge; results are bit-identical either
    /// way (see [`crate::DecodeCache`]).
    pub decode_cache_capacity: usize,
    /// Lower-level fitness-aggregation strategy (applies to the
    /// tree-GP CARBON solver; CARBON-W keeps predator–prey scoring).
    /// [`CoevStrategy::PredatorPrey`] reproduces the paper exactly; the
    /// alternatives are bit-identical across the eval-matrix/reference
    /// paths and every cache setting (asserted by `tests/determinism.rs`).
    pub coev_strategy: CoevStrategy,
    /// Beat margin for [`CoevStrategy::SharedFitness`], in the fitness
    /// unit (%-gap points under `gap_fitness`): a heuristic beats a
    /// training pricing when its value is within this margin of the
    /// column's best value.
    pub share_margin: f64,
    /// Surrogate gating of the lower-level evaluation matrix (needs
    /// `eval_matrix`). [`SurrogateGate::Off`] — the default — decodes
    /// every unique cell exactly and is bit-identical to pre-surrogate
    /// builds; [`SurrogateGate::TopK`] screens cells with the
    /// [`RankSurrogate`] and imputes the predicted-worst ones from rank,
    /// which *changes trajectories* and is therefore guarded by the
    /// 30-run Mann–Whitney protocol in the scaling bench (DESIGN §6.7).
    pub surrogate_gate: SurrogateGate,
    /// Replacement policy for the solve and decode caches.
    /// [`EvictionPolicy::Fifo`] is the historical default;
    /// [`EvictionPolicy::Clock`] gives hot entries a second chance.
    /// Policy choice moves hit rates only, never results.
    pub cache_eviction: EvictionPolicy,
}

impl Default for CarbonConfig {
    fn default() -> Self {
        CarbonConfig {
            ul_pop_size: 100,
            ul_archive_size: 100,
            ul_evaluations: 50_000,
            ul_crossover_prob: 0.85,
            ul_mutation_prob: 0.01,
            ul_real_ops: RealOpsConfig::default(),
            ll_pop_size: 100,
            ll_archive_size: 100,
            ll_evaluations: 50_000,
            ll_tournament: 3,
            ll_crossover_prob: 0.85,
            ll_mutation_prob: 0.1,
            ll_reproduction_prob: 0.05,
            gp_variation: VariationConfig { max_depth: 8, mutation_grow_depth: 2 },
            gp_init_depth: (1, 4),
            training_samples: 1,
            use_archives: true,
            gap_fitness: true,
            lp_terminals: true,
            ll_cache_capacity: 0,
            compiled_eval: true,
            gp_compile_cache_capacity: 1024,
            eval_matrix: true,
            decode_cache_capacity: 4096,
            coev_strategy: CoevStrategy::PredatorPrey,
            share_margin: 0.5,
            surrogate_gate: SurrogateGate::Off,
            cache_eviction: EvictionPolicy::Fifo,
        }
    }
}

impl CarbonConfig {
    /// A reduced-budget configuration for tests and quick demos.
    pub fn quick() -> Self {
        CarbonConfig {
            ul_pop_size: 20,
            ul_archive_size: 20,
            ul_evaluations: 1_000,
            ll_pop_size: 20,
            ll_archive_size: 20,
            ll_evaluations: 1_000,
            ..Default::default()
        }
    }
}

/// Result of a CARBON run.
#[derive(Debug, Clone)]
pub struct CarbonResult {
    /// Best pricing found (extraction per §V.B: best archived solution).
    pub best_pricing: Vec<f64>,
    /// Upper-level revenue of the best pricing under the champion
    /// heuristic's reaction.
    pub best_ul_value: f64,
    /// %-gap of that reaction (Table III's reported metric).
    pub best_gap: f64,
    /// The champion heuristic.
    pub best_heuristic: Expr,
    /// The champion rendered as an infix formula.
    pub best_heuristic_infix: String,
    /// Per-generation convergence series (Fig. 4's data).
    pub trace: Trace,
    /// Upper-level evaluations actually consumed.
    pub ul_evals_used: u64,
    /// Lower-level evaluations actually consumed.
    pub ll_evals_used: u64,
    /// Generations completed.
    pub generations: usize,
}

/// The CARBON solver, bound to one BCPOP instance.
///
/// ```
/// use bico_bcpop::{generate, GeneratorConfig};
/// use bico_core::{Carbon, CarbonConfig};
///
/// let instance = generate(
///     &GeneratorConfig { num_bundles: 30, num_services: 4, ..Default::default() },
///     42,
/// );
/// let mut cfg = CarbonConfig::quick();
/// cfg.ul_pop_size = 10;
/// cfg.ll_pop_size = 10;
/// cfg.ul_evaluations = 100;
/// cfg.ll_evaluations = 100;
/// let result = Carbon::new(&instance, cfg).run(7);
/// assert!(result.best_gap.is_finite());
/// assert_eq!(result.best_pricing.len(), instance.num_own());
/// println!("evolved: {}", result.best_heuristic_infix);
/// ```
pub struct Carbon<'a> {
    inst: &'a BcpopInstance,
    cfg: CarbonConfig,
    primitives: PrimitiveSet,
    relaxer: RelaxationSolver,
}

impl<'a> Carbon<'a> {
    /// Bind CARBON to an instance.
    pub fn new(inst: &'a BcpopInstance, cfg: CarbonConfig) -> Self {
        Carbon {
            primitives: bcpop_primitives(),
            relaxer: RelaxationSolver::new(inst),
            inst,
            cfg,
        }
    }

    /// The GP primitive set used for the heuristics.
    pub fn primitives(&self) -> &PrimitiveSet {
        &self.primitives
    }

    /// Run to budget exhaustion. Deterministic for a fixed seed,
    /// independent of the rayon thread count.
    pub fn run(&self, seed: u64) -> CarbonResult {
        self.run_observed(seed, &NullObserver)
    }

    /// [`run`](Self::run) with an observer attached.
    ///
    /// Events are emitted from the coordinating thread only, outside the
    /// rayon sections, and the observer never touches the RNG — attaching
    /// any observer leaves the result bit-identical to [`run`](Self::run)
    /// (asserted by `tests/determinism.rs`).
    pub fn run_observed<O: RunObserver + ?Sized>(&self, seed: u64, obs: &O) -> CarbonResult {
        let cfg = &self.cfg;
        let inst = self.inst;
        let (lo, hi) = inst.price_bounds();
        let nl = inst.num_own();
        let mut rng = SmallRng::seed_from_u64(seed_stream(seed, 0));

        // --- initial populations ---
        let mut ul_pop: Vec<Vec<f64>> = (0..cfg.ul_pop_size)
            .map(|_| (0..nl).map(|j| rng.random_range(lo[j]..=hi[j])).collect())
            .collect();
        let mut ll_pop: Vec<Expr> = ramped_half_and_half(
            &self.primitives,
            cfg.ll_pop_size,
            cfg.gp_init_depth.0,
            cfg.gp_init_depth.1,
            &mut rng,
        )
        .expect("BCPOP primitive set supports generation");

        let mut ul_archive: Archive<Vec<f64>> =
            Archive::new(cfg.ul_archive_size, Direction::Maximize);
        let mut ll_archive: Archive<Expr> =
            Archive::new(cfg.ll_archive_size, Direction::Minimize);

        let mut trace = Trace::new();
        let mut ul_evals: u64 = 0;
        let mut ll_evals: u64 = 0;
        let mut generation = 0usize;
        let mut champion: Expr = ll_pop[0].clone();
        let mut best: Option<(Vec<f64>, f64, f64)> = None; // (pricing, F, gap of that pairing)
        let mut best_gap_overall = f64::INFINITY; // Table III extraction: best gap of any evaluated pair
        let cache: SolveCache<Relaxation> =
            SolveCache::with_policy(cfg.ll_cache_capacity, cfg.cache_eviction);
        // Compiled programs are shared across workers and generations;
        // with the cache off (or the interpreted path) every preparation
        // compiles/binds fresh, which is the pre-cache behaviour.
        let gp_cache = GpCompileCache::new(if cfg.compiled_eval {
            cfg.gp_compile_cache_capacity
        } else {
            0
        });
        // Compile-cache traffic emitted per generation as deltas
        // (hits, misses, evictions, compile micros).
        let mut cc_emitted = (0u64, 0u64, 0u64, 0u64);
        // Solve-cache evictions already reported in earlier probes.
        let mut cache_ev_emitted = 0u64;
        // Decode outcomes are only memoized by the evaluation-matrix
        // scheduler: the reference loop stays exactly the pre-matrix
        // code path, cache and all.
        let decode_cache = DecodeCache::with_policy(
            if cfg.eval_matrix { cfg.decode_cache_capacity } else { 0 },
            cfg.cache_eviction,
        );
        let mode = decode_mode(false, cfg.lp_terminals, cfg.compiled_eval);
        // Decode-cache traffic emitted per generation as deltas.
        let mut dc_emitted = (0u64, 0u64, 0u64);
        // The online ranker behind `SurrogateGate::TopK`; untouched (and
        // RNG-free) under `Off`, so the default path stays bit-identical.
        let mut surrogate = RankSurrogate::new();
        // Per-generation gate telemetry: (cells screened, exact decodes,
        // imputed cells, rank correlation of predictions vs realized).
        let mut surr_probe: Option<(u64, u64, u64, f64)> = None;

        if obs.enabled() {
            obs.observe(&Event::RunStart { algo: "carbon", seed });
        }

        loop {
            let gen_ul_cost = cfg.ul_pop_size as u64;
            let gen_ll_cost = (cfg.ll_pop_size * cfg.training_samples) as u64;
            if ul_evals + gen_ul_cost > cfg.ul_evaluations
                || ll_evals + gen_ll_cost > cfg.ll_evaluations
            {
                break;
            }
            if obs.enabled() {
                obs.observe(&Event::GenerationStart { generation: generation as u64 });
                obs.observe(&Event::PhaseChange { phase: "relaxation" });
            }

            // --- 1. relaxations for every pricing (parallel LP solves,
            // memoized by exact pricing bits when the cache is on) ---
            let t_relax = timer_if(obs.enabled());
            let probed: Vec<(Relaxation, bool)> = ul_pop
                .par_iter()
                .map(|prices| {
                    cache.get_or_insert_with(prices, || {
                        self.relaxer
                            .solve(&inst.costs_for(prices))
                            .expect("validated instances always relax")
                    })
                })
                .collect();
            // Cache hits spend no pivots: only actual solves are counted,
            // so the pivot series reflects work done, not work recalled.
            let gen_hits = probed.iter().filter(|&&(_, hit)| hit).count() as u64;
            let gen_pivots: u64 =
                probed.iter().filter(|&&(_, hit)| !hit).map(|(r, _)| r.pivots).sum();
            let relaxations: Vec<Relaxation> = probed.into_iter().map(|(r, _)| r).collect();

            // --- 2. training opponents for the heuristic fitness: the
            // elite pricing (slot 0 after archive re-injection) plus
            // rotating samples — predators always train against the
            // current best prey, so the arms race cannot stall on stale
            // targets. Under the hall-of-fame strategy the rotating
            // slots draw archived elite pricings instead (falling back
            // to the population while the archive is empty); their
            // relaxations go through the same solve cache, and the
            // extra solves are folded into this batch's events.
            let mut hof_solves = 0u64;
            let mut hof_hits = 0u64;
            let mut hof_pivots = 0u64;
            let training: Vec<(Vec<f64>, Relaxation)> = (0..cfg.training_samples)
                .map(|s| {
                    let rotation = (generation * cfg.training_samples + s * 37) % ul_pop.len();
                    let pop_slot = if s == 0 { 0 } else { rotation };
                    if cfg.coev_strategy == CoevStrategy::HallOfFame
                        && s > 0
                        && !ul_archive.is_empty()
                    {
                        let pick =
                            (generation * cfg.training_samples + s * 37) % ul_archive.len();
                        let prices =
                            ul_archive.iter().nth(pick).expect("pick < archive len").0.clone();
                        let (relax, hit) = cache.get_or_insert_with(&prices, || {
                            self.relaxer
                                .solve(&inst.costs_for(&prices))
                                .expect("validated instances always relax")
                        });
                        hof_solves += 1;
                        if hit {
                            hof_hits += 1;
                        } else {
                            hof_pivots += relax.pivots;
                        }
                        (prices, relax)
                    } else {
                        (ul_pop[pop_slot].clone(), relaxations[pop_slot].clone())
                    }
                })
                .collect();
            if obs.enabled() {
                obs.observe(&Event::LowerLevelSolve {
                    solves: relaxations.len() as u64 + hof_solves,
                    pivots: gen_pivots + hof_pivots,
                    micros: elapsed_micros(t_relax),
                });
                if cache.is_enabled() {
                    let s = cache.stats();
                    obs.observe(&Event::CacheProbe {
                        hits: gen_hits + hof_hits,
                        misses: relaxations.len() as u64 + hof_solves - gen_hits - hof_hits,
                        evictions: s.evictions - cache_ev_emitted,
                        entries: s.entries as u64,
                    });
                    cache_ev_emitted = s.evictions;
                }
                obs.observe(&Event::PhaseChange { phase: "ll_fitness" });
            }
            let t_ll = timer_if(obs.enabled());
            let ll_values: Vec<(Vec<f64>, u64)> = if cfg.eval_matrix {
                match cfg.surrogate_gate {
                    SurrogateGate::Off => {
                        // Evaluation matrix: rows are the population's *unique*
                        // trees (clones, elites, and reproduction copies share a
                        // row), columns its unique training pricings. Each cell
                        // decodes at most once per generation — and not at all
                        // when the decode cache recalls it from an earlier one.
                        let (row_of, rows) = dedup_by_key(ll_pop.iter().map(tree_scorer_key));
                        let (col_of, cols) =
                            dedup_by_key(training.iter().map(|(p, _)| pricing_key(p)));
                        let cells: Vec<Vec<Arc<DecodeOutcome>>> = rows
                            .par_iter()
                            .map(|(rep, tkey)| {
                                // Bound lazily: a row whose every cell hits the
                                // decode cache never compiles or binds at all.
                                let mut scorer: Option<PreparedScorer> = None;
                                cols.iter()
                                    .map(|(rep_slot, _)| {
                                        let (prices, relax) = &training[*rep_slot];
                                        decode_cache
                                            .get_or_decode(cell_key(mode, tkey, prices), || {
                                                let s = scorer.get_or_insert_with(|| {
                                                    PreparedScorer::bind(
                                                        &ll_pop[*rep],
                                                        &self.primitives,
                                                        cfg.compiled_eval,
                                                        &gp_cache,
                                                    )
                                                });
                                                decode_cell(
                                                    inst,
                                                    s,
                                                    prices,
                                                    relax,
                                                    cfg.lp_terminals,
                                                )
                                            })
                                            .0
                                    })
                                    .collect()
                            })
                            .collect();
                        // Scatter: every population slot reads its row, listing
                        // training contributions in the same order the reference
                        // loop visits them, so downstream f64 aggregation is
                        // bit-identical across the two paths.
                        (0..ll_pop.len())
                            .map(|i| {
                                let row = &cells[row_of[i]];
                                let mut vals = Vec::with_capacity(col_of.len());
                                let mut gp_nodes = 0u64;
                                for &c in &col_of {
                                    let cell = &row[c];
                                    gp_nodes += cell.gp_nodes;
                                    vals.push(if cfg.gap_fitness {
                                        if cell.eval.gap.is_finite() {
                                            cell.eval.gap
                                        } else {
                                            1e9
                                        }
                                    } else {
                                        cell.eval.ll_value
                                    });
                                }
                                (vals, gp_nodes)
                            })
                            .collect()
                    }
                    SurrogateGate::TopK { frac, explore } => {
                        // Surrogate-gated matrix (DESIGN §6.7): same unique
                        // rows × columns, but only the predicted-best cells
                        // (plus exploration and champion/elite pins) decode
                        // exactly; the rest are imputed from predicted rank.
                        // Everything surrogate-side runs on the coordinating
                        // thread and consumes no RNG, so gated runs stay
                        // deterministic per seed and thread count.
                        let (row_of, rows) = dedup_by_key(ll_pop.iter().map(tree_scorer_key));
                        let (col_of, cols) =
                            dedup_by_key(training.iter().map(|(p, _)| pricing_key(p)));
                        let nrows = rows.len();
                        let ncols = cols.len();
                        let ncells = nrows * ncols;

                        // Column statistics: a handful of probe bundles per
                        // unique pricing, featurized against the instance's
                        // initial residual state.
                        let residual: Vec<i64> =
                            inst.requirements().iter().map(|&b| b as i64).collect();
                        let pidx = probe_indices(inst.num_bundles(), 8);
                        let col_probes: Vec<ColumnProbe> = cols
                            .iter()
                            .map(|(rep_slot, _)| {
                                let (prices, relax) = &training[*rep_slot];
                                let costs = inst.costs_for(prices);
                                let mut fc = FeatureColumns::with_capacity(pidx.len());
                                let mut probe_costs = Vec::with_capacity(pidx.len());
                                let mut probe_greedy = Vec::with_capacity(pidx.len());
                                for &j in &pidx {
                                    let f = bundle_features(
                                        inst,
                                        &costs,
                                        &residual,
                                        cfg.lp_terminals.then_some(relax),
                                        j,
                                    );
                                    probe_costs.push(f.cost);
                                    probe_greedy.push(f.cost / f.residual_coverage.max(1.0));
                                    fc.push(&f);
                                }
                                let mean = if prices.is_empty() {
                                    0.0
                                } else {
                                    prices.iter().sum::<f64>() / prices.len() as f64
                                };
                                let (plo, phi) = prices.iter().fold(
                                    (f64::INFINITY, f64::NEG_INFINITY),
                                    |(lo, hi), &p| (lo.min(p), hi.max(p)),
                                );
                                let spread = (phi - plo).max(0.0);
                                (fc, probe_costs, probe_greedy, relax.lower_bound, mean, spread)
                            })
                            .collect();

                        // Feature + prediction per cell, in row-major order.
                        // Probe scoring binds through the compile cache but
                        // its node counts are never charged to accounting.
                        let mut feats: Vec<[f64; NUM_FEATURES]> = Vec::with_capacity(ncells);
                        let mut scores_buf: Vec<f64> = Vec::new();
                        for (rep, _) in &rows {
                            let mut probe_scorer = PreparedScorer::bind(
                                &ll_pop[*rep],
                                &self.primitives,
                                cfg.compiled_eval,
                                &gp_cache,
                            );
                            for (fc, pcosts, pgreedy, lb, mean, spread) in &col_probes {
                                probe_scorer.score_probe_batch(fc, &mut scores_buf);
                                feats.push(cell_features(
                                    &scores_buf,
                                    pcosts,
                                    pgreedy,
                                    *lb,
                                    *mean,
                                    *spread,
                                ));
                            }
                        }
                        let warmed = generation > 0 && surrogate.ready();
                        let preds: Vec<f64> =
                            feats.iter().map(|f| surrogate.predict(f)).collect();

                        // The reigning champion's and archive best's rows are
                        // the opponents breeding re-injects — they always
                        // decode exactly, whatever the surrogate thinks.
                        let champ_key = tree_scorer_key(&champion);
                        let arch_key = ll_archive.best().map(|(e, _)| tree_scorer_key(e));
                        let mut pinned = vec![false; ncells];
                        for (r, (_, tkey)) in rows.iter().enumerate() {
                            if *tkey == champ_key
                                || arch_key.as_ref().is_some_and(|k| k == tkey)
                            {
                                for flag in &mut pinned[r * ncols..(r + 1) * ncols] {
                                    *flag = true;
                                }
                            }
                        }
                        let exact = if warmed {
                            select_exact(&preds, frac, explore, &pinned, generation as u64)
                        } else {
                            // Warm-up (generation 0 or too few samples):
                            // evaluate everything exactly while the model
                            // accumulates training pairs.
                            vec![true; ncells]
                        };

                        // Decode only the exact cells (parallel, same cell-key
                        // namespace as the ungated matrix).
                        let cells: Vec<Vec<Option<Arc<DecodeOutcome>>>> = rows
                            .par_iter()
                            .enumerate()
                            .map(|(r, (rep, tkey))| {
                                let mut scorer: Option<PreparedScorer> = None;
                                cols.iter()
                                    .enumerate()
                                    .map(|(c, (rep_slot, _))| {
                                        if !exact[r * ncols + c] {
                                            return None;
                                        }
                                        let (prices, relax) = &training[*rep_slot];
                                        Some(
                                            decode_cache
                                                .get_or_decode(
                                                    cell_key(mode, tkey, prices),
                                                    || {
                                                        let s =
                                                            scorer.get_or_insert_with(|| {
                                                                PreparedScorer::bind(
                                                                    &ll_pop[*rep],
                                                                    &self.primitives,
                                                                    cfg.compiled_eval,
                                                                    &gp_cache,
                                                                )
                                                            });
                                                        decode_cell(
                                                            inst,
                                                            s,
                                                            prices,
                                                            relax,
                                                            cfg.lp_terminals,
                                                        )
                                                    },
                                                )
                                                .0,
                                        )
                                    })
                                    .collect()
                            })
                            .collect();

                        // Realized values of the exact cells feed this
                        // generation's telemetry, the model update, and the
                        // imputation quantiles.
                        let value_of = |cell: &DecodeOutcome| {
                            if cfg.gap_fitness {
                                if cell.eval.gap.is_finite() {
                                    cell.eval.gap
                                } else {
                                    1e9
                                }
                            } else {
                                cell.eval.ll_value
                            }
                        };
                        let mut exact_vals = Vec::new();
                        let mut exact_feats = Vec::new();
                        let mut exact_preds = Vec::new();
                        for (r, row) in cells.iter().enumerate() {
                            for (c, cell) in row.iter().enumerate() {
                                if let Some(cell) = cell {
                                    let i = r * ncols + c;
                                    exact_vals.push(value_of(cell));
                                    exact_feats.push(feats[i]);
                                    exact_preds.push(preds[i]);
                                }
                            }
                        }
                        let rank_corr = if warmed && exact_vals.len() >= 2 {
                            spearman(&exact_preds, &exact_vals)
                        } else {
                            f64::NAN
                        };
                        surrogate.decay_generation();
                        for (f, &t) in
                            exact_feats.iter().zip(normalized_ranks(&exact_vals).iter())
                        {
                            surrogate.observe(f, t);
                        }
                        surrogate.fit();
                        let exact_count = exact_vals.len() as u64;
                        surr_probe = Some((
                            ncells as u64,
                            exact_count,
                            ncells as u64 - exact_count,
                            rank_corr,
                        ));
                        // Imputation: predicted rank → quantile of this
                        // generation's realized exact values, so imputed
                        // fitnesses live on the same scale as real ones.
                        let mut sorted_vals = exact_vals;
                        sorted_vals.sort_by(f64::total_cmp);
                        let imputed: Vec<f64> =
                            preds.iter().map(|&p| quantile_value(&sorted_vals, p)).collect();

                        // Scatter exactly as the ungated matrix does; imputed
                        // cells contribute their quantile value and no
                        // GP-node charge.
                        (0..ll_pop.len())
                            .map(|i| {
                                let row = &cells[row_of[i]];
                                let mut vals = Vec::with_capacity(col_of.len());
                                let mut gp_nodes = 0u64;
                                for &c in &col_of {
                                    match &row[c] {
                                        Some(cell) => {
                                            gp_nodes += cell.gp_nodes;
                                            vals.push(value_of(cell));
                                        }
                                        None => vals.push(imputed[row_of[i] * ncols + c]),
                                    }
                                }
                                (vals, gp_nodes)
                            })
                            .collect()
                    }
                }
            } else {
                ll_pop
                    .par_iter()
                    .map(|expr| {
                        // One scorer per (expr, generation): compilation is
                        // served by the cross-generation cache (at most one
                        // compile per distinct tree per run), and the
                        // interpreted reference binds its evaluator once here
                        // instead of once per decode.
                        let mut scorer = PreparedScorer::bind(
                            expr,
                            &self.primitives,
                            cfg.compiled_eval,
                            &gp_cache,
                        );
                        let mut vals = Vec::with_capacity(training.len());
                        let mut gp_nodes = 0u64;
                        for (prices, relax) in &training {
                            let costs = inst.costs_for(prices);
                            let (out, nodes) =
                                scorer.decode(inst, &costs, cfg.lp_terminals.then_some(relax));
                            gp_nodes += nodes;
                            let ev =
                                evaluate_pair(inst, prices, &out.chosen, relax.lower_bound);
                            vals.push(if cfg.gap_fitness {
                                if ev.gap.is_finite() {
                                    ev.gap
                                } else {
                                    1e9
                                }
                            } else {
                                ev.ll_value
                            });
                        }
                        (vals, gp_nodes)
                    })
                    .collect()
            };
            let ll_micros = elapsed_micros(t_ll);
            let ll_fitness =
                ll_strategy_fitness(&ll_values, cfg.coev_strategy, cfg.share_margin);
            ll_evals += gen_ll_cost;
            if obs.enabled() {
                obs.observe(&Event::Evaluation {
                    level: Level::Lower,
                    count: gen_ll_cost,
                    gp_nodes: ll_values.iter().map(|(_, n)| *n).sum(),
                    micros: ll_micros,
                });
                if let Some((cells, exact, skipped, rank_corr)) = surr_probe.take() {
                    obs.observe(&Event::SurrogateProbe { cells, exact, skipped, rank_corr });
                }
            }

            // --- 3. champion selection + archive update. The champion is
            // the *current* generation's best heuristic: archive fitness
            // goes stale as the prey evolve (it was measured against old
            // pricings), and a stale frozen champion lets pricings drift
            // toward exploits it cannot answer — the gap would creep up.
            // The archive still feeds elites back into breeding.
            let mut best_ll = 0;
            for i in 1..ll_pop.len() {
                if ll_fitness[i] < ll_fitness[best_ll] {
                    best_ll = i;
                }
            }
            champion = ll_pop[best_ll].clone();
            if cfg.use_archives {
                for (expr, &fit) in ll_pop.iter().zip(&ll_fitness) {
                    ll_archive.push(expr.clone(), fit);
                }
                if obs.enabled() {
                    obs.observe(&Event::ArchiveUpdate {
                        level: Level::Lower,
                        size: ll_archive.len() as u64,
                        best: ll_archive.best().map_or(f64::NAN, |(_, f)| f),
                    });
                }
            }
            // Frequency-aware admission: the trees most likely to be
            // probed again next generation — the champion and the archive
            // best that breeding re-injects — are pinned so compile-cache
            // capacity churn cannot evict them mid-arms-race. Pin sets are
            // per-generation: last generation's elite loses its shield
            // when it stops being elite.
            if gp_cache.is_enabled() {
                gp_cache.clear_pins();
                gp_cache.pin(&champion);
                if let Some((elite, _)) = ll_archive.best() {
                    gp_cache.pin(elite);
                }
            }
            if obs.enabled() {
                // The lower level just moved: sample the best pair's
                // objectives so the see-saw detector can segment the
                // arms race (ul side is NaN until a pairing exists;
                // non-finite deltas are ignored by the detector).
                obs.observe(&Event::ObjectivePair {
                    level: Level::Lower,
                    ul_value: best.as_ref().map_or(f64::NAN, |(_, f, _)| *f),
                    ll_value: ll_fitness[best_ll],
                });
                obs.observe(&Event::PhaseChange { phase: "ul_fitness" });
            }

            // --- 4. upper-level fitness against the champion. The
            // champion's program is resolved once per generation on the
            // coordinating thread (one cache probe — usually a hit, the
            // tree was just decoded in the ll phase); workers share the
            // Arc'd bytecode with private register files. ---
            let champ_prog = cfg
                .compiled_eval
                .then(|| gp_cache.get_or_compile(&champion, &self.primitives).0);
            let bind_champ = || match &champ_prog {
                Some(prog) => {
                    PreparedScorer::Compiled(CompiledGpScorer::from_program(prog.clone()))
                }
                None => PreparedScorer::Interp(GpScorer::new(&champion, &self.primitives)),
            };
            let t_ul = timer_if(obs.enabled());
            let ul_scored: Vec<(f64, f64, u64)> = if cfg.eval_matrix {
                // One matrix row (the champion) wide over the population's
                // unique pricings. Champion cells share the lower-level
                // key namespace, so the training pricings the champion
                // just decoded in phase 2 are recalled, not re-decoded.
                let (col_of, cols) = dedup_by_key(ul_pop.iter().map(|p| pricing_key(p)));
                let champ_key = tree_scorer_key(&champion);
                // Champion-row cells are the outcomes most likely to be
                // probed again next generation (elitism re-injects the
                // best pricing, and the champion often repeats), so pin
                // them against FIFO churn — mirroring the compile-cache
                // elite pinning above. Pin sets are per-generation;
                // pinning only affects eviction order, never results.
                if decode_cache.is_enabled() {
                    decode_cache.clear_pins();
                    for (rep, _) in &cols {
                        decode_cache.pin(cell_key(mode, &champ_key, &ul_pop[*rep]));
                    }
                }
                let cells: Vec<Arc<DecodeOutcome>> = cols
                    .par_iter()
                    .map(|(rep, _)| {
                        let prices = &ul_pop[*rep];
                        let relax = &relaxations[*rep];
                        decode_cache
                            .get_or_decode(cell_key(mode, &champ_key, prices), || {
                                let mut scorer = bind_champ();
                                decode_cell(inst, &mut scorer, prices, relax, cfg.lp_terminals)
                            })
                            .0
                    })
                    .collect();
                col_of
                    .iter()
                    .map(|&c| {
                        let cell = &cells[c];
                        (cell.eval.ul_value, cell.eval.gap, cell.gp_nodes)
                    })
                    .collect()
            } else {
                ul_pop
                    .par_iter()
                    .zip(relaxations.par_iter())
                    .map(|(prices, relax)| {
                        let costs = inst.costs_for(prices);
                        let mut scorer = bind_champ();
                        let (out, nodes) =
                            scorer.decode(inst, &costs, cfg.lp_terminals.then_some(relax));
                        let ev = evaluate_pair(inst, prices, &out.chosen, relax.lower_bound);
                        (ev.ul_value, ev.gap, nodes)
                    })
                    .collect()
            };
            let ul_micros = elapsed_micros(t_ul);
            ul_evals += gen_ul_cost;
            if obs.enabled() {
                obs.observe(&Event::Evaluation {
                    level: Level::Upper,
                    count: gen_ul_cost,
                    gp_nodes: ul_scored.iter().map(|&(_, _, n)| n).sum(),
                    micros: ul_micros,
                });
                if gp_cache.is_enabled() {
                    // This generation's compile-cache traffic (ll phase +
                    // champion resolution), as deltas of the monotone
                    // counters. Counts are observability-only: concurrent
                    // first probes of one tree may both miss, so exact
                    // numbers can vary with thread interleaving while
                    // results stay bit-identical.
                    let s = gp_cache.stats();
                    let micros = gp_cache.compile_micros();
                    obs.observe(&Event::CompileCacheProbe {
                        hits: s.hits - cc_emitted.0,
                        misses: s.misses - cc_emitted.1,
                        evictions: s.evictions - cc_emitted.2,
                        entries: s.entries as u64,
                        compile_micros: micros - cc_emitted.3,
                    });
                    cc_emitted = (s.hits, s.misses, s.evictions, micros);
                }
                if decode_cache.is_enabled() {
                    // This generation's decode-cache traffic (ll matrix +
                    // champion row), as deltas. Hits + misses counts
                    // *unique* matrix cells — intra-generation duplicates
                    // were deduplicated before probing.
                    let s = decode_cache.stats();
                    obs.observe(&Event::DecodeCacheProbe {
                        hits: s.hits - dc_emitted.0,
                        misses: s.misses - dc_emitted.1,
                        evictions: s.evictions - dc_emitted.2,
                        entries: s.entries as u64,
                    });
                    dc_emitted = (s.hits, s.misses, s.evictions);
                }
            }

            let mut gen_best_f = f64::NEG_INFINITY;
            let mut gen_best_gap = f64::INFINITY;
            for (prices, &(f, gap, _)) in ul_pop.iter().zip(&ul_scored) {
                if cfg.use_archives {
                    ul_archive.push(prices.clone(), f);
                }
                gen_best_f = gen_best_f.max(f);
                if gap.is_finite() {
                    gen_best_gap = gen_best_gap.min(gap);
                    best_gap_overall = best_gap_overall.min(gap);
                }
                let better = match &best {
                    None => true,
                    Some((_, bf, _)) => f > *bf,
                };
                if better && gap.is_finite() {
                    best = Some((prices.clone(), f, gap));
                }
            }

            // --- 5. trace: the *current* generation's best revenue and
            // best pair gap — the quantities Fig. 4 plots (the paper's
            // steady curves are a property of CARBON, not of best-so-far
            // bookkeeping, so we deliberately do not make them monotone).
            trace.record(generation, ul_evals + ll_evals, gen_best_f, gen_best_gap);
            if obs.enabled() {
                // The upper level just moved: the matching see-saw sample.
                obs.observe(&Event::ObjectivePair {
                    level: Level::Upper,
                    ul_value: gen_best_f,
                    ll_value: gen_best_gap,
                });
                if cfg.use_archives {
                    obs.observe(&Event::ArchiveUpdate {
                        level: Level::Upper,
                        size: ul_archive.len() as u64,
                        best: ul_archive.best().map_or(f64::NAN, |(_, f)| f),
                    });
                }
                obs.observe(&Event::GenerationEnd {
                    generation: generation as u64,
                    evaluations: ul_evals + ll_evals,
                    ul_best: gen_best_f,
                    gap_best: gen_best_gap,
                });
                obs.observe(&Event::PhaseChange { phase: "breeding" });
            }

            // --- 6. breed the upper level (GA, Table II left column) ---
            let ul_fit: Vec<f64> = ul_scored.iter().map(|&(f, _, _)| f).collect();
            ul_pop = breed_ul(&ul_pop, &ul_fit, &ul_archive, &lo, &hi, cfg, &mut rng);

            // --- 7. breed the lower level (GP, Table II right column) ---
            ll_pop =
                breed_ll(&ll_pop, &ll_fitness, &ll_archive, &self.primitives, cfg, &mut rng);

            generation += 1;
        }

        // --- extraction (same protocol as COBRA, §V.B): Table IV's
        // metric is the best revenue, Table III's the best gap of any
        // evaluated pair — they need not come from the same solution.
        let (best_pricing, best_ul_value) = match best {
            Some((p, f, _)) => (p, f),
            None => (vec![0.0; nl], 0.0),
        };
        let best_gap = best_gap_overall;
        let best_heuristic_infix = to_infix(&champion, &self.primitives);
        if obs.enabled() {
            obs.observe(&Event::RunComplete {
                generations: generation as u64,
                ul_evaluations: ul_evals,
                ll_evaluations: ll_evals,
                best_value: best_ul_value,
                best_gap,
            });
        }
        CarbonResult {
            best_pricing,
            best_ul_value,
            best_gap,
            best_heuristic: champion,
            best_heuristic_infix,
            trace,
            ul_evals_used: ul_evals,
            ll_evals_used: ll_evals,
            generations: generation,
        }
    }
}

/// A GP scoring tree bound as a reusable decoder: the compiled +
/// incremental fast path or the interpreter + recomputing reference, per
/// `compiled_eval`. Construct once per (expr, worker task) and decode
/// many times — hoisting compilation and evaluator allocation out of the
/// per-decode closure both paths used to pay.
enum PreparedScorer<'e> {
    Compiled(CompiledGpScorer),
    Interp(GpScorer<'e>),
}

impl<'e> PreparedScorer<'e> {
    /// Bind `expr`, compiling through `gp_cache` on the fast path.
    fn bind(
        expr: &'e Expr,
        ps: &'e PrimitiveSet,
        compiled_eval: bool,
        gp_cache: &GpCompileCache,
    ) -> Self {
        if compiled_eval {
            let (prog, _) = gp_cache.get_or_compile(expr, ps);
            PreparedScorer::Compiled(CompiledGpScorer::from_program(prog))
        } else {
            PreparedScorer::Interp(GpScorer::new(expr, ps))
        }
    }

    /// Score a batch of surrogate probe bundles, one value per row of
    /// `cols`. Used only for feature extraction: the node counts this
    /// incurs are deliberately *not* charged to GP-node accounting
    /// (probes are bookkeeping, not evaluations).
    fn score_probe_batch(&mut self, cols: &FeatureColumns, out: &mut Vec<f64>) {
        match self {
            PreparedScorer::Compiled(scorer) => scorer.score_batch(cols, cols.rows(), out),
            PreparedScorer::Interp(scorer) => scorer.score_batch(cols, cols.rows(), out),
        }
    }

    /// One lower-level decode against `costs`. Returns the outcome and
    /// the GP nodes charged by *this* decode (identical between the two
    /// paths: both charge source-tree length per candidate scored).
    fn decode(
        &mut self,
        inst: &BcpopInstance,
        costs: &[f64],
        relax: Option<&Relaxation>,
    ) -> (CoverOutcome, u64) {
        match self {
            PreparedScorer::Compiled(scorer) => {
                let before = scorer.nodes_evaluated();
                let out = greedy_cover_batched(inst, costs, scorer, relax);
                (out, scorer.nodes_evaluated() - before)
            }
            PreparedScorer::Interp(scorer) => {
                let before = scorer.nodes_evaluated();
                let out = greedy_cover(inst, costs, scorer, relax);
                (out, scorer.nodes_evaluated() - before)
            }
        }
    }
}

/// Decode one evaluation-matrix cell — one scorer against one pricing —
/// and evaluate the resulting pair. Pure: the outcome depends only on
/// the scorer, the pricing bits, and the decode mode, which is what
/// makes the cell memoizable.
fn decode_cell(
    inst: &BcpopInstance,
    scorer: &mut PreparedScorer,
    prices: &[f64],
    relax: &Relaxation,
    lp_terminals: bool,
) -> DecodeOutcome {
    let costs = inst.costs_for(prices);
    let (cover, gp_nodes) = scorer.decode(inst, &costs, lp_terminals.then_some(relax));
    let eval = evaluate_pair(inst, prices, &cover.chosen, relax.lower_bound);
    DecodeOutcome { cover, eval, gp_nodes }
}

/// Aggregate each heuristic's per-training-column values into one
/// fitness (minimized downstream), per the configured co-evolution
/// strategy. `values` holds, per population slot, the column values in
/// reference summation order plus the slot's GP-node charge.
///
/// Predator–prey and hall-of-fame both take the plain column mean —
/// hall-of-fame differs only in *which* opponents fill the columns —
/// and the sequential `iter().sum()` reproduces the pre-strategy inline
/// accumulation bit-for-bit. Shared fitness scores a beat (a value
/// within `share_margin` of the column's best) at `1 / beatsum`, so
/// beating a pricing few rivals handle outweighs piling onto easy ones
/// (Rosin–Belew competitive fitness sharing); the sum is negated to
/// keep smaller-is-better selection semantics.
fn ll_strategy_fitness(
    values: &[(Vec<f64>, u64)],
    strategy: CoevStrategy,
    share_margin: f64,
) -> Vec<f64> {
    match strategy {
        CoevStrategy::PredatorPrey | CoevStrategy::HallOfFame => values
            .iter()
            .map(|(vals, _)| vals.iter().sum::<f64>() / vals.len() as f64)
            .collect(),
        CoevStrategy::SharedFitness => {
            let ncols = values.first().map_or(0, |(v, _)| v.len());
            let mut shared = vec![0.0f64; values.len()];
            for c in 0..ncols {
                let col_best = values.iter().map(|(v, _)| v[c]).fold(f64::INFINITY, f64::min);
                let threshold = col_best + share_margin;
                let beatsum = values.iter().filter(|(v, _)| v[c] <= threshold).count();
                if beatsum == 0 {
                    continue;
                }
                let weight = 1.0 / beatsum as f64;
                for (i, (v, _)) in values.iter().enumerate() {
                    if v[c] <= threshold {
                        shared[i] += weight;
                    }
                }
            }
            shared.into_iter().map(|s| -s).collect()
        }
    }
}

fn breed_ul<R: Rng + ?Sized>(
    pop: &[Vec<f64>],
    fitness: &[f64],
    archive: &Archive<Vec<f64>>,
    lo: &[f64],
    hi: &[f64],
    cfg: &CarbonConfig,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    let mut next = Vec::with_capacity(pop.len());
    // Elitism: re-inject the archive best (the paper re-adds archive
    // members each cycle).
    if cfg.use_archives {
        if let Some((g, _)) = archive.best() {
            next.push(g.clone());
        }
    }
    while next.len() < pop.len() {
        let i = tournament(fitness, 2, Direction::Maximize, rng);
        let j = tournament(fitness, 2, Direction::Maximize, rng);
        let (mut c1, mut c2) = if rng.random::<f64>() < cfg.ul_crossover_prob {
            sbx_crossover(&pop[i], &pop[j], lo, hi, &cfg.ul_real_ops, rng)
        } else {
            (pop[i].clone(), pop[j].clone())
        };
        polynomial_mutation(&mut c1, lo, hi, cfg.ul_mutation_prob, &cfg.ul_real_ops, rng);
        polynomial_mutation(&mut c2, lo, hi, cfg.ul_mutation_prob, &cfg.ul_real_ops, rng);
        next.push(c1);
        if next.len() < pop.len() {
            next.push(c2);
        }
    }
    next
}

fn breed_ll<R: Rng + ?Sized>(
    pop: &[Expr],
    fitness: &[f64],
    archive: &Archive<Expr>,
    ps: &PrimitiveSet,
    cfg: &CarbonConfig,
    rng: &mut R,
) -> Vec<Expr> {
    let mut next = Vec::with_capacity(pop.len());
    if cfg.use_archives {
        if let Some((g, _)) = archive.best() {
            next.push(g.clone());
        }
    }
    while next.len() < pop.len() {
        // Reproduction: clone a tournament winner verbatim (Table II's
        // "LL Reproduction probability").
        if rng.random::<f64>() < cfg.ll_reproduction_prob {
            let i = tournament(fitness, cfg.ll_tournament, Direction::Minimize, rng);
            next.push(pop[i].clone());
            continue;
        }
        let i = tournament(fitness, cfg.ll_tournament, Direction::Minimize, rng);
        let j = tournament(fitness, cfg.ll_tournament, Direction::Minimize, rng);
        let (mut c1, mut c2) = if rng.random::<f64>() < cfg.ll_crossover_prob {
            subtree_crossover(&pop[i], &pop[j], ps, &cfg.gp_variation, rng)
        } else {
            (pop[i].clone(), pop[j].clone())
        };
        if rng.random::<f64>() < cfg.ll_mutation_prob {
            c1 = mutate_uniform(&c1, ps, &cfg.gp_variation, rng);
        }
        if rng.random::<f64>() < cfg.ll_mutation_prob {
            c2 = mutate_uniform(&c2, ps, &cfg.gp_variation, rng);
        }
        next.push(c1);
        if next.len() < pop.len() {
            next.push(c2);
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use bico_bcpop::{generate, GeneratorConfig};

    #[test]
    fn defaults_match_table_2() {
        let c = CarbonConfig::default();
        assert_eq!(c.ul_pop_size, 100);
        assert_eq!(c.ul_archive_size, 100);
        assert_eq!(c.ul_evaluations, 50_000);
        assert_eq!(c.ul_crossover_prob, 0.85);
        assert_eq!(c.ul_mutation_prob, 0.01);
        assert_eq!(c.ll_archive_size, 100);
        assert_eq!(c.ll_evaluations, 50_000);
        assert_eq!(c.ll_crossover_prob, 0.85);
        assert_eq!(c.ll_mutation_prob, 0.1);
        assert_eq!(c.ll_reproduction_prob, 0.05);
        assert!(c.gap_fitness);
        assert!(c.use_archives);
        assert!(c.compiled_eval, "compiled fast path defaults on");
        assert_eq!(c.gp_compile_cache_capacity, 1024, "compile cache defaults on");
    }

    fn small_instance() -> BcpopInstance {
        generate(&GeneratorConfig { num_bundles: 30, num_services: 4, ..Default::default() }, 7)
    }

    #[test]
    fn quick_run_produces_feasible_result() {
        let inst = small_instance();
        let mut cfg = CarbonConfig::quick();
        cfg.ul_pop_size = 10;
        cfg.ll_pop_size = 10;
        cfg.ul_evaluations = 200;
        cfg.ll_evaluations = 200;
        let result = Carbon::new(&inst, cfg).run(42);
        assert!(result.generations > 0);
        assert_eq!(result.best_pricing.len(), inst.num_own());
        assert!(result.best_gap.is_finite());
        assert!(result.best_gap >= -1e-6, "gap {} negative", result.best_gap);
        assert!(result.best_ul_value >= 0.0);
        assert!(!result.trace.points().is_empty());
        assert!(result.ul_evals_used <= 200);
        assert!(result.ll_evals_used <= 200);
        assert!(!result.best_heuristic_infix.is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let inst = small_instance();
        let mut cfg = CarbonConfig::quick();
        cfg.ul_pop_size = 8;
        cfg.ll_pop_size = 8;
        cfg.ul_evaluations = 64;
        cfg.ll_evaluations = 64;
        let a = Carbon::new(&inst, cfg.clone()).run(5);
        let b = Carbon::new(&inst, cfg).run(5);
        assert_eq!(a.best_pricing, b.best_pricing);
        assert_eq!(a.best_ul_value, b.best_ul_value);
        assert_eq!(a.best_gap, b.best_gap);
        assert_eq!(a.trace.points(), b.trace.points());
    }

    #[test]
    fn different_seeds_explore_differently() {
        let inst = small_instance();
        let mut cfg = CarbonConfig::quick();
        cfg.ul_pop_size = 8;
        cfg.ll_pop_size = 8;
        cfg.ul_evaluations = 64;
        cfg.ll_evaluations = 64;
        let a = Carbon::new(&inst, cfg.clone()).run(1);
        let b = Carbon::new(&inst, cfg).run(2);
        assert_ne!(a.best_pricing, b.best_pricing);
    }

    #[test]
    fn budget_is_respected_exactly() {
        let inst = small_instance();
        let mut cfg = CarbonConfig::quick();
        cfg.ul_pop_size = 10;
        cfg.ll_pop_size = 10;
        cfg.training_samples = 2;
        cfg.ul_evaluations = 105; // 10 generations of 10, 11th would bust
        cfg.ll_evaluations = 1_000;
        let r = Carbon::new(&inst, cfg).run(3);
        assert_eq!(r.generations, 10);
        assert_eq!(r.ul_evals_used, 100);
        assert_eq!(r.ll_evals_used, 200);
    }

    #[test]
    fn gap_improves_over_a_longer_run() {
        let inst = generate(
            &GeneratorConfig { num_bundles: 40, num_services: 5, ..Default::default() },
            11,
        );
        let mut cfg = CarbonConfig::quick();
        cfg.ul_pop_size = 16;
        cfg.ll_pop_size = 16;
        cfg.ul_evaluations = 1600;
        cfg.ll_evaluations = 1600;
        let r = Carbon::new(&inst, cfg).run(9);
        let pts = r.trace.points();
        assert!(pts.len() >= 10);
        let first = pts[0].gap_best;
        assert!(
            r.best_gap <= first + 1e-9,
            "best gap {} should improve on the first generation's {first}",
            r.best_gap
        );
        // The second half of the run should on average beat the first
        // half. The per-generation series is noisy — gap_best tracks the
        // *current* population's best pair, which regresses whenever
        // selection explores — so a strict inequality flakes across
        // otherwise-benign changes to RNG stream consumption. A 5%
        // relative slack still catches a run that genuinely fails to
        // trend downward while tolerating trajectory-level noise.
        let half = pts.len() / 2;
        let mean = |s: &[bico_ea::stats::TracePoint]| {
            s.iter().map(|p| p.gap_best).sum::<f64>() / s.len() as f64
        };
        let (early, late) = (mean(&pts[..half]), mean(&pts[half..]));
        assert!(
            late <= early * 1.05 + 1e-9,
            "gap did not trend downward: first-half mean {early}, second-half mean {late}"
        );
    }

    #[test]
    fn solve_cache_leaves_results_bit_identical() {
        let inst = small_instance();
        let mut cfg = CarbonConfig::quick();
        cfg.ul_pop_size = 8;
        cfg.ll_pop_size = 8;
        cfg.ul_evaluations = 80;
        cfg.ll_evaluations = 80;
        assert_eq!(cfg.ll_cache_capacity, 0, "cache defaults to off");
        let cold = Carbon::new(&inst, cfg.clone()).run(6);
        cfg.ll_cache_capacity = 512;
        let cached = Carbon::new(&inst, cfg).run(6);
        assert_eq!(cold.best_pricing, cached.best_pricing);
        assert_eq!(cold.best_ul_value.to_bits(), cached.best_ul_value.to_bits());
        assert_eq!(cold.best_gap.to_bits(), cached.best_gap.to_bits());
        assert_eq!(cold.trace.points(), cached.trace.points());
    }

    #[test]
    fn compiled_eval_leaves_runs_bit_identical() {
        // The compiled + incremental fast path must reproduce the
        // interpreter reference bit for bit: 3 seeds × 2 instance
        // classes, full run comparison including the trace.
        for (nb, ns, inst_seed) in [(30usize, 4usize, 7u64), (40, 5, 11)] {
            let inst = generate(
                &GeneratorConfig { num_bundles: nb, num_services: ns, ..Default::default() },
                inst_seed,
            );
            for seed in [1u64, 2, 3] {
                let mut cfg = CarbonConfig::quick();
                cfg.ul_pop_size = 8;
                cfg.ll_pop_size = 8;
                cfg.ul_evaluations = 80;
                cfg.ll_evaluations = 80;
                assert!(cfg.compiled_eval, "fast path defaults on");
                let fast = Carbon::new(&inst, cfg.clone()).run(seed);
                cfg.compiled_eval = false;
                let reference = Carbon::new(&inst, cfg).run(seed);
                let ctx = format!("{nb}x{ns} seed {seed}");
                assert_eq!(fast.best_pricing, reference.best_pricing, "{ctx}");
                assert_eq!(
                    fast.best_ul_value.to_bits(),
                    reference.best_ul_value.to_bits(),
                    "{ctx}"
                );
                assert_eq!(fast.best_gap.to_bits(), reference.best_gap.to_bits(), "{ctx}");
                assert_eq!(fast.best_heuristic, reference.best_heuristic, "{ctx}");
                assert_eq!(fast.trace.points(), reference.trace.points(), "{ctx}");
                assert_eq!(fast.generations, reference.generations, "{ctx}");
            }
        }
    }

    #[test]
    fn eval_matrix_matches_reference_loop_bit_for_bit() {
        // The deduplicated evaluation matrix (with its decode cache) must
        // reproduce the straight per-individual loop bit for bit,
        // including when training subsets are wide enough to contain
        // duplicate pricings.
        for (nb, ns, inst_seed) in [(30usize, 4usize, 7u64), (40, 5, 11)] {
            let inst = generate(
                &GeneratorConfig { num_bundles: nb, num_services: ns, ..Default::default() },
                inst_seed,
            );
            for seed in [1u64, 2, 3] {
                let mut cfg = CarbonConfig::quick();
                cfg.ul_pop_size = 8;
                cfg.ll_pop_size = 8;
                cfg.ul_evaluations = 80;
                cfg.ll_evaluations = 160;
                cfg.training_samples = 2;
                assert!(cfg.eval_matrix, "matrix scheduler defaults on");
                assert!(cfg.decode_cache_capacity > 0, "decode cache defaults on");
                let matrix = Carbon::new(&inst, cfg.clone()).run(seed);
                cfg.eval_matrix = false;
                let reference = Carbon::new(&inst, cfg).run(seed);
                let ctx = format!("{nb}x{ns} seed {seed}");
                assert_eq!(matrix.trace.points(), reference.trace.points(), "{ctx}");
                assert_eq!(matrix.best_pricing, reference.best_pricing, "{ctx}");
                assert_eq!(
                    matrix.best_ul_value.to_bits(),
                    reference.best_ul_value.to_bits(),
                    "{ctx}"
                );
                assert_eq!(matrix.best_gap.to_bits(), reference.best_gap.to_bits(), "{ctx}");
                assert_eq!(matrix.best_heuristic, reference.best_heuristic, "{ctx}");
                assert_eq!(matrix.generations, reference.generations, "{ctx}");
            }
        }
    }

    #[test]
    fn surrogate_full_exact_gate_matches_off_bit_for_bit() {
        // TopK with frac = 1.0 and no exploration evaluates every cell
        // exactly; the surrogate only observes and never imputes, so the
        // run must be bit-identical to the gate being off.
        for (nb, ns, inst_seed) in [(30usize, 4usize, 7u64), (40, 5, 11)] {
            let inst = generate(
                &GeneratorConfig { num_bundles: nb, num_services: ns, ..Default::default() },
                inst_seed,
            );
            for seed in [1u64, 2, 3] {
                let mut cfg = CarbonConfig::quick();
                cfg.ul_pop_size = 8;
                cfg.ll_pop_size = 8;
                cfg.ul_evaluations = 80;
                cfg.ll_evaluations = 160;
                cfg.training_samples = 2;
                assert_eq!(cfg.surrogate_gate, SurrogateGate::Off, "gate defaults off");
                let off = Carbon::new(&inst, cfg.clone()).run(seed);
                cfg.surrogate_gate = SurrogateGate::TopK { frac: 1.0, explore: 0.0 };
                let gated = Carbon::new(&inst, cfg).run(seed);
                let ctx = format!("{nb}x{ns} seed {seed}");
                assert_eq!(gated.trace.points(), off.trace.points(), "{ctx}");
                assert_eq!(gated.best_pricing, off.best_pricing, "{ctx}");
                assert_eq!(gated.best_ul_value.to_bits(), off.best_ul_value.to_bits(), "{ctx}");
                assert_eq!(gated.best_gap.to_bits(), off.best_gap.to_bits(), "{ctx}");
                assert_eq!(gated.best_heuristic, off.best_heuristic, "{ctx}");
            }
        }
    }

    #[test]
    fn surrogate_gate_runs_deterministically_and_skips_cells() {
        // The default top-k gate must finish, stay feasible, reproduce
        // itself bit for bit per seed, and actually impute some cells
        // once the ranker has warmed up.
        let inst = small_instance();
        let mut cfg = CarbonConfig::quick();
        cfg.ul_pop_size = 10;
        cfg.ll_pop_size = 10;
        cfg.ul_evaluations = 400;
        cfg.ll_evaluations = 800;
        cfg.training_samples = 3;
        cfg.surrogate_gate = SurrogateGate::top_k();
        let a = Carbon::new(&inst, cfg.clone()).run(21);
        let b = Carbon::new(&inst, cfg.clone()).run(21);
        assert!(a.best_gap.is_finite() && a.best_gap >= -1e-6, "gap {}", a.best_gap);
        assert_eq!(a.best_pricing, b.best_pricing);
        assert_eq!(a.best_ul_value.to_bits(), b.best_ul_value.to_bits());
        assert_eq!(a.best_gap.to_bits(), b.best_gap.to_bits());
        assert_eq!(a.trace.points(), b.trace.points());

        // Count skipped cells through the observer to prove the gate is
        // actually screening once warmed up.
        let sink = bico_obs::MetricsSink::new();
        let c = Carbon::new(&inst, cfg).run_observed(21, &sink);
        assert_eq!(c.best_gap.to_bits(), a.best_gap.to_bits(), "observer must not perturb");
        let m = sink.report();
        assert!(m.surrogate_cells > 0, "gated run screens the eval matrix");
        assert!(m.surrogate_skipped > 0, "warm surrogate imputes some cells");
        assert_eq!(m.surrogate_cells, m.surrogate_exact + m.surrogate_skipped);
    }

    #[test]
    fn gp_compile_cache_leaves_runs_bit_identical() {
        // Cache on (default) vs off, same compiled path: memoizing
        // compilation must not change a single bit of the run.
        for (nb, ns, inst_seed) in [(30usize, 4usize, 7u64), (40, 5, 11)] {
            let inst = generate(
                &GeneratorConfig { num_bundles: nb, num_services: ns, ..Default::default() },
                inst_seed,
            );
            for seed in [1u64, 2, 3] {
                let mut cfg = CarbonConfig::quick();
                cfg.ul_pop_size = 8;
                cfg.ll_pop_size = 8;
                cfg.ul_evaluations = 80;
                cfg.ll_evaluations = 80;
                assert!(cfg.gp_compile_cache_capacity > 0, "cache defaults on");
                let cached = Carbon::new(&inst, cfg.clone()).run(seed);
                cfg.gp_compile_cache_capacity = 0;
                let uncached = Carbon::new(&inst, cfg).run(seed);
                let ctx = format!("{nb}x{ns} seed {seed}");
                assert_eq!(cached.best_pricing, uncached.best_pricing, "{ctx}");
                assert_eq!(
                    cached.best_ul_value.to_bits(),
                    uncached.best_ul_value.to_bits(),
                    "{ctx}"
                );
                assert_eq!(cached.best_gap.to_bits(), uncached.best_gap.to_bits(), "{ctx}");
                assert_eq!(cached.best_heuristic, uncached.best_heuristic, "{ctx}");
                assert_eq!(cached.trace.points(), uncached.trace.points(), "{ctx}");
            }
        }
    }

    #[test]
    fn archives_can_be_disabled() {
        let inst = small_instance();
        let mut cfg = CarbonConfig::quick();
        cfg.ul_pop_size = 8;
        cfg.ll_pop_size = 8;
        cfg.ul_evaluations = 80;
        cfg.ll_evaluations = 80;
        cfg.use_archives = false;
        let r = Carbon::new(&inst, cfg).run(4);
        assert!(r.generations > 0);
    }
}
