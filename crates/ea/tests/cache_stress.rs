//! Concurrency stress for [`bico_ea::SolveCache`]: hammer one cache from
//! the rayon pool with heavily overlapping keys and check the invariants
//! that the solvers rely on — no duplicate inserts, monotonic counters,
//! and the capacity bound never exceeded even transiently.

use bico_ea::SolveCache;
use rayon::prelude::*;

const PROBES: u64 = 10_000;
const DISTINCT: u64 = 100;

fn value_of(k: u64) -> u64 {
    k.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

#[test]
fn concurrent_probes_on_roomy_cache_insert_each_key_once() {
    // Capacity comfortably above the distinct-key count: no evictions,
    // so every key must be inserted exactly once even when many workers
    // miss on it simultaneously (first writer wins, the rest drop).
    let cache: SolveCache<u64> = SolveCache::new(256);
    (0..PROBES).into_par_iter().for_each(|i| {
        let k = i % DISTINCT;
        let (v, _) = cache.get_or_insert_with(&[k as f64], || value_of(k));
        assert_eq!(v, value_of(k), "cache returned a value for the wrong key");
    });
    let s = cache.stats();
    assert_eq!(s.hits + s.misses, PROBES, "every probe is a hit or a miss");
    assert_eq!(s.insertions, DISTINCT, "no duplicate inserts");
    assert_eq!(s.evictions, 0);
    assert_eq!(s.entries, DISTINCT as usize);
    assert!(s.hits >= PROBES - DISTINCT * rayon::current_num_threads() as u64);
}

#[test]
fn concurrent_probes_never_exceed_capacity() {
    // More distinct keys than capacity: constant eviction churn while
    // workers probe. Sample the resident count from inside the workers.
    const CAP: usize = 64;
    let cache: SolveCache<u64> = SolveCache::new(CAP);
    (0..PROBES).into_par_iter().for_each(|i| {
        let k = i % DISTINCT;
        let (v, _) = cache.get_or_insert_with(&[k as f64], || value_of(k));
        assert_eq!(v, value_of(k));
        if i % 97 == 0 {
            assert!(cache.len() <= CAP, "capacity exceeded mid-run");
        }
    });
    let s = cache.stats();
    assert_eq!(s.hits + s.misses, PROBES);
    assert!(s.entries <= CAP);
    assert_eq!(
        s.entries as u64,
        s.insertions - s.evictions,
        "resident count must equal inserts minus evictions (no duplicates)"
    );
}

#[test]
fn counters_are_monotonic_under_load() {
    let cache: SolveCache<u64> = SolveCache::new(32);
    let mut last = cache.stats();
    for round in 0..8u64 {
        (0..1_000u64).into_par_iter().for_each(|i| {
            let k = (round * 131 + i) % DISTINCT;
            cache.get_or_insert_with(&[k as f64], || value_of(k));
        });
        let now = cache.stats();
        assert!(now.hits >= last.hits, "hits went backwards");
        assert!(now.misses >= last.misses, "misses went backwards");
        assert!(now.insertions >= last.insertions, "insertions went backwards");
        assert!(now.evictions >= last.evictions, "evictions went backwards");
        assert_eq!(now.hits + now.misses, (round + 1) * 1_000);
        last = now;
    }
}
