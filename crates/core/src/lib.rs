#![warn(missing_docs)]

//! # bico-core — bi-level optimization framework and CARBON
//!
//! The paper's primary contribution: **CARBON**, a hybrid competitive
//! co-evolutionary algorithm for bi-level optimization problems that
//! breaks the nested structure by evolving, instead of lower-level
//! *solutions*, the lower-level *heuristics* that produce them.
//!
//! Two populations obey a predator/prey model (§IV.A, Fig. 3):
//!
//! * the **prey** are upper-level decision vectors (CSP pricings for the
//!   BCPOP), evolved with GA operators (SBX + polynomial mutation,
//!   binary tournament — Table II);
//! * the **predators** are greedy scoring heuristics encoded as GP
//!   syntax trees over the Table I primitives, evolved with GP operators
//!   (subtree crossover, uniform mutation, reproduction) and scored by
//!   the lower-level %-gap (Eq. 1) — *not* the lower-level objective
//!   value, which is what allows comparisons across different
//!   upper-level decisions.
//!
//! The crate also contains:
//!
//! * [`linear`] — general linear bi-level problems and the paper's toy
//!   example (Program 3 / Fig. 1, the Mersha–Dempe instance with a
//!   discontinuous inducible region), with exact optimistic/pessimistic
//!   rational reactions computed through `bico-lp`;
//! * [`carbon::CarbonConfig`] — Table II's parameter column as
//!   defaults;
//! * convergence traces feeding the Fig. 4 reproduction.

pub mod carbon;
pub mod carbon_weights;
pub mod compile_cache;
pub mod decode_cache;
pub mod kkt;
pub mod linear;
pub mod maximin;
pub mod multilevel;
pub mod surrogate;

pub use carbon::{Carbon, CarbonConfig, CarbonResult, CoevStrategy};
pub use carbon_weights::{CarbonWeights, CarbonWeightsResult};
pub use compile_cache::GpCompileCache;
pub use decode_cache::{DecodeCache, DecodeOutcome};
pub use kkt::{solve_kkt, KktSolution};
pub use linear::{program3, LinearBilevel, Reaction, TieBreak};
pub use maximin::{BilinearProblem, MaximinCoev, MaximinConfig, MaximinResult};
pub use multilevel::{trilevel_example, TriObjective, TriRow, TriSolution, TrilevelLinear};
pub use surrogate::{RankSurrogate, SurrogateGate};
