//! Greedy covering pass latency — one lower-level evaluation
//! (per heuristic, per training pricing) in CARBON.

use bico_bcpop::{
    bcpop_primitives, generate, greedy_cover, CostPerCoverageScorer, GeneratorConfig, GpScorer,
    RelaxationSolver,
};
use bico_gp::grow;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_cover");
    group.sample_size(20);
    for &(n, m) in &[(100usize, 5usize), (500, 30)] {
        let inst = generate(&GeneratorConfig::paper_class(n, m), 42);
        let costs = inst.costs_for(&vec![50.0; inst.num_own()]);
        let relax = RelaxationSolver::new(&inst).solve(&costs).unwrap();

        group.bench_function(format!("handcrafted_{n}x{m}"), |b| {
            b.iter(|| {
                black_box(
                    greedy_cover(&inst, &costs, &mut CostPerCoverageScorer, Some(&relax)).cost,
                )
            })
        });

        let ps = bcpop_primitives();
        let expr = grow(&ps, 2, 5, &mut SmallRng::seed_from_u64(7)).unwrap();
        group.bench_function(format!("gp_tree_{n}x{m}"), |b| {
            b.iter(|| {
                let mut scorer = GpScorer::new(&expr, &ps);
                black_box(greedy_cover(&inst, &costs, &mut scorer, Some(&relax)).cost)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_greedy);
criterion_main!(benches);
