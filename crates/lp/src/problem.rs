//! Problem construction API: variables, bounds, objective, constraints.

use crate::simplex::{self, SimplexOptions};
use crate::solution::LpSolution;
use std::fmt;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Min,
    /// Maximize the objective.
    Max,
}

/// Relation of a linear constraint row to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// Errors raised for malformed problems (never for infeasible/unbounded
/// models — those are reported through [`crate::LpStatus`]).
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// A coefficient, bound or right-hand side was NaN.
    NotANumber(&'static str),
    /// A variable index in a sparse row was out of range.
    IndexOutOfRange {
        /// Offending variable index.
        var: usize,
        /// Number of variables in the problem.
        n: usize,
    },
    /// A variable has `lower > upper`.
    InvertedBounds {
        /// Offending variable index.
        var: usize,
        /// Its lower bound.
        lower: f64,
        /// Its upper bound.
        upper: f64,
    },
    /// A variable is free in both directions; the solver requires at least
    /// one finite bound per variable.
    FreeVariable {
        /// Offending variable index.
        var: usize,
    },
    /// Objective vector length does not match the variable count.
    ObjectiveLength {
        /// Provided length.
        got: usize,
        /// Expected length (the variable count).
        expected: usize,
    },
    /// Dense row length does not match the variable count.
    RowLength {
        /// Provided length.
        got: usize,
        /// Expected length (the variable count).
        expected: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::NotANumber(what) => write!(f, "{what} is NaN"),
            LpError::IndexOutOfRange { var, n } => {
                write!(f, "variable index {var} out of range (n = {n})")
            }
            LpError::InvertedBounds { var, lower, upper } => {
                write!(f, "variable {var} has inverted bounds [{lower}, {upper}]")
            }
            LpError::FreeVariable { var } => {
                write!(f, "variable {var} is free in both directions (unsupported)")
            }
            LpError::ObjectiveLength { got, expected } => {
                write!(f, "objective has length {got}, expected {expected}")
            }
            LpError::RowLength { got, expected } => {
                write!(f, "dense row has length {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for LpError {}

/// A linear program `opt c·x  s.t.  A x {≤,≥,=} b,  l ≤ x ≤ u`.
///
/// Rows are stored sparsely; the solver densifies internally. Variables
/// default to bounds `[0, +∞)` and objective coefficient `0`.
#[derive(Debug, Clone)]
pub struct LpProblem {
    pub(crate) sense: Sense,
    pub(crate) n: usize,
    pub(crate) obj: Vec<f64>,
    pub(crate) lower: Vec<f64>,
    pub(crate) upper: Vec<f64>,
    pub(crate) rows: Vec<Vec<(usize, f64)>>,
    pub(crate) relations: Vec<Relation>,
    pub(crate) rhs: Vec<f64>,
}

impl LpProblem {
    /// Create a minimization problem over `n` variables with default
    /// bounds `[0, +∞)`.
    pub fn minimize(n: usize) -> Self {
        Self::new(Sense::Min, n)
    }

    /// Create a maximization problem over `n` variables with default
    /// bounds `[0, +∞)`.
    pub fn maximize(n: usize) -> Self {
        Self::new(Sense::Max, n)
    }

    /// Create a problem with an explicit sense.
    pub fn new(sense: Sense, n: usize) -> Self {
        LpProblem {
            sense,
            n,
            obj: vec![0.0; n],
            lower: vec![0.0; n],
            upper: vec![f64::INFINITY; n],
            rows: Vec::new(),
            relations: Vec::new(),
            rhs: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// The objective coefficient vector.
    pub fn objective(&self) -> &[f64] {
        &self.obj
    }

    /// Bounds `(lower, upper)` of variable `var`.
    pub fn bounds(&self, var: usize) -> (f64, f64) {
        (self.lower[var], self.upper[var])
    }

    /// Right-hand side of constraint `row`.
    pub fn rhs(&self, row: usize) -> f64 {
        self.rhs[row]
    }

    /// Replace the right-hand side of constraint `row` — the usual way
    /// two "nearby" problems differ when warm-starting with
    /// [`LpProblem::solve_with_basis`].
    pub fn set_rhs(&mut self, row: usize, rhs: f64) {
        self.rhs[row] = rhs;
    }

    /// Set the full objective vector.
    ///
    /// # Panics
    /// Panics if `c.len() != n`; use [`LpProblem::try_set_objective`] for a
    /// fallible variant.
    pub fn set_objective(&mut self, c: &[f64]) {
        self.try_set_objective(c).expect("objective length mismatch");
    }

    /// Fallible variant of [`LpProblem::set_objective`].
    pub fn try_set_objective(&mut self, c: &[f64]) -> Result<(), LpError> {
        if c.len() != self.n {
            return Err(LpError::ObjectiveLength { got: c.len(), expected: self.n });
        }
        self.obj.copy_from_slice(c);
        Ok(())
    }

    /// Set a single objective coefficient.
    pub fn set_objective_coeff(&mut self, var: usize, c: f64) {
        self.obj[var] = c;
    }

    /// Set bounds `lower ≤ x_var ≤ upper` (either side may be infinite,
    /// but not both — validated at solve time).
    pub fn set_bounds(&mut self, var: usize, lower: f64, upper: f64) {
        self.lower[var] = lower;
        self.upper[var] = upper;
    }

    /// Add a sparse constraint row given as `(variable, coefficient)` pairs.
    pub fn add_constraint(&mut self, coeffs: &[(usize, f64)], rel: Relation, rhs: f64) {
        self.rows.push(coeffs.to_vec());
        self.relations.push(rel);
        self.rhs.push(rhs);
    }

    /// Add a dense constraint row; `coeffs.len()` must equal the variable
    /// count.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn add_constraint_dense(&mut self, coeffs: &[f64], rel: Relation, rhs: f64) {
        assert_eq!(coeffs.len(), self.n, "dense row length mismatch");
        let sparse: Vec<(usize, f64)> = coeffs
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0.0)
            .map(|(j, &c)| (j, c))
            .collect();
        self.rows.push(sparse);
        self.relations.push(rel);
        self.rhs.push(rhs);
    }

    /// Validate the model: finite-ness, index ranges, bound ordering.
    pub fn validate(&self) -> Result<(), LpError> {
        for (j, &c) in self.obj.iter().enumerate() {
            if c.is_nan() {
                return Err(LpError::NotANumber("objective coefficient"));
            }
            let (l, u) = (self.lower[j], self.upper[j]);
            if l.is_nan() || u.is_nan() {
                return Err(LpError::NotANumber("bound"));
            }
            if l > u {
                return Err(LpError::InvertedBounds { var: j, lower: l, upper: u });
            }
            if l == f64::NEG_INFINITY && u == f64::INFINITY {
                return Err(LpError::FreeVariable { var: j });
            }
        }
        for row in &self.rows {
            for &(j, a) in row {
                if j >= self.n {
                    return Err(LpError::IndexOutOfRange { var: j, n: self.n });
                }
                if a.is_nan() {
                    return Err(LpError::NotANumber("constraint coefficient"));
                }
            }
        }
        if self.rhs.iter().any(|b| b.is_nan()) {
            return Err(LpError::NotANumber("right-hand side"));
        }
        Ok(())
    }

    /// Solve with default [`SimplexOptions`].
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        self.solve_with(&SimplexOptions::default())
    }

    /// Solve with explicit options.
    pub fn solve_with(&self, opts: &SimplexOptions) -> Result<LpSolution, LpError> {
        self.validate()?;
        Ok(simplex::solve(self, opts))
    }

    /// Warm-started solve: rebuild the basis recorded in `basis` (taken
    /// from a previous optimal [`LpSolution::basis`](crate::LpSolution),
    /// typically of a *nearby* problem) and go straight to phase 2.
    ///
    /// Falls back to the cold two-phase path whenever the snapshot cannot
    /// be restored here — wrong shape, numerically singular basis, or a
    /// vertex that is primal-infeasible for this problem's data — so the
    /// returned status is always the same as an ordinary solve would
    /// report; only the pivot route (and hence possibly which optimal
    /// vertex is reported) may differ.
    pub fn solve_with_basis(
        &self,
        opts: &SimplexOptions,
        basis: &crate::BasisSnapshot,
    ) -> Result<LpSolution, LpError> {
        self.validate()?;
        Ok(simplex::solve_with_basis(self, opts, basis))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let p = LpProblem::minimize(3);
        assert_eq!(p.num_vars(), 3);
        assert_eq!(p.num_rows(), 0);
        assert_eq!(p.sense(), Sense::Min);
        assert_eq!(p.lower, vec![0.0; 3]);
        assert!(p.upper.iter().all(|u| u.is_infinite()));
    }

    #[test]
    fn dense_row_drops_zeros() {
        let mut p = LpProblem::minimize(3);
        p.add_constraint_dense(&[1.0, 0.0, 2.0], Relation::Le, 5.0);
        assert_eq!(p.rows[0], vec![(0, 1.0), (2, 2.0)]);
    }

    #[test]
    fn validate_rejects_nan_objective() {
        let mut p = LpProblem::minimize(1);
        p.set_objective_coeff(0, f64::NAN);
        assert_eq!(p.validate(), Err(LpError::NotANumber("objective coefficient")));
    }

    #[test]
    fn validate_rejects_inverted_bounds() {
        let mut p = LpProblem::minimize(1);
        p.set_bounds(0, 2.0, 1.0);
        assert!(matches!(p.validate(), Err(LpError::InvertedBounds { var: 0, .. })));
    }

    #[test]
    fn validate_rejects_free_variable() {
        let mut p = LpProblem::minimize(1);
        p.set_bounds(0, f64::NEG_INFINITY, f64::INFINITY);
        assert_eq!(p.validate(), Err(LpError::FreeVariable { var: 0 }));
    }

    #[test]
    fn validate_rejects_bad_index() {
        let mut p = LpProblem::minimize(2);
        p.add_constraint(&[(5, 1.0)], Relation::Ge, 0.0);
        assert!(matches!(p.validate(), Err(LpError::IndexOutOfRange { var: 5, n: 2 })));
    }

    #[test]
    fn try_set_objective_length() {
        let mut p = LpProblem::minimize(2);
        assert!(matches!(
            p.try_set_objective(&[1.0]),
            Err(LpError::ObjectiveLength { got: 1, expected: 2 })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = LpError::InvertedBounds { var: 3, lower: 2.0, upper: 1.0 };
        assert!(e.to_string().contains("variable 3"));
    }
}
