//! Rayon scaling of the population-evaluation kernel: the same batch of
//! lower-level evaluations on thread pools of different sizes.

use bico_bcpop::{
    generate, greedy_cover, CostPerCoverageScorer, GeneratorConfig, RelaxationSolver,
};
use criterion::{criterion_group, criterion_main, Criterion};
use rayon::prelude::*;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let inst = generate(&GeneratorConfig::paper_class(250, 10), 42);
    let pricings: Vec<Vec<f64>> =
        (0..32).map(|i| vec![10.0 + i as f64 * 3.0; inst.num_own()]).collect();
    let solver = RelaxationSolver::new(&inst);

    let mut group = c.benchmark_group("rayon_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let pool =
            rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool");
        group.bench_function(format!("eval32_threads_{threads}"), |b| {
            b.iter(|| {
                pool.install(|| {
                    let total: f64 = pricings
                        .par_iter()
                        .map(|prices| {
                            let costs = inst.costs_for(prices);
                            let relax = solver.solve(&costs).unwrap();
                            greedy_cover(
                                &inst,
                                &costs,
                                &mut CostPerCoverageScorer,
                                Some(&relax),
                            )
                            .cost
                        })
                        .sum();
                    black_box(total)
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
