//! GP tree evaluation throughput — the innermost loop of the greedy
//! (one evaluation per candidate bundle per greedy step).

use bico_bcpop::bcpop_primitives;
use bico_gp::{grow, Evaluator};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_eval(c: &mut Criterion) {
    let ps = bcpop_primitives();
    let mut rng = SmallRng::seed_from_u64(3);
    let mut group = c.benchmark_group("gp_eval");
    for depth in [2usize, 5, 8] {
        let expr = grow(&ps, depth, depth, &mut rng).unwrap();
        let vals = [3.0, 120.0, 40.0, 800.0, 6.5, 0.4];
        group.bench_function(format!("depth_{depth}_{}_nodes", expr.len()), |b| {
            let mut ev = Evaluator::new();
            b.iter(|| black_box(ev.eval(&expr, &ps, black_box(&vals))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
