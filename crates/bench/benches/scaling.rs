//! Rayon scaling of the population-evaluation kernel: the same batch of
//! lower-level evaluations on thread pools of different sizes, plus the
//! lower-level solve cache on a repeated-pricing workload.

use bico_bcpop::{
    bcpop_primitives, generate, greedy_cover, greedy_cover_batched, CompiledGpScorer,
    CostPerCoverageScorer, GeneratorConfig, GpScorer, Relaxation, RelaxationSolver,
};
use bico_ea::SolveCache;
use bico_gp::grow;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::hint::black_box;
use std::time::Instant;

/// Untimed accounting pass: GP scoring and greedy decode throughput of
/// the interpreted and compiled paths on a paper-class instance,
/// reported in the same spirit as the cache hit-rate below.
fn report_decode_throughput() {
    let inst = generate(&GeneratorConfig::paper_class(250, 10), 42);
    let costs = inst.costs_for(&vec![50.0; inst.num_own()]);
    let relax = RelaxationSolver::new(&inst).solve(&costs).unwrap();
    let ps = bcpop_primitives();
    let expr = grow(&ps, 4, 7, &mut SmallRng::seed_from_u64(7)).unwrap();
    let reps = 50u32;

    let t0 = Instant::now();
    let mut interp_nodes = 0u64;
    let mut interp_steps = 0u64;
    for _ in 0..reps {
        let mut scorer = GpScorer::new(&expr, &ps);
        interp_steps += greedy_cover(&inst, &costs, &mut scorer, Some(&relax)).steps as u64;
        interp_nodes += scorer.nodes_evaluated();
    }
    let interp = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let mut comp_nodes = 0u64;
    let mut comp_steps = 0u64;
    for _ in 0..reps {
        let mut scorer = CompiledGpScorer::new(&expr, &ps).unwrap();
        comp_steps +=
            greedy_cover_batched(&inst, &costs, &mut scorer, Some(&relax)).steps as u64;
        comp_nodes += scorer.nodes_evaluated();
    }
    let comp = t1.elapsed().as_secs_f64();

    assert_eq!(interp_nodes, comp_nodes, "node accounting must agree across paths");
    eprintln!(
        "decode_throughput 250x10 ({} nodes/tree): interpreted {:.2e} GP nodes/s, \
         {:.2e} greedy steps/s; compiled {:.2e} GP nodes/s, {:.2e} greedy steps/s",
        expr.len(),
        interp_nodes as f64 / interp.max(1e-12),
        interp_steps as f64 / interp.max(1e-12),
        comp_nodes as f64 / comp.max(1e-12),
        comp_steps as f64 / comp.max(1e-12),
    );
}

fn bench_scaling(c: &mut Criterion) {
    report_decode_throughput();
    let inst = generate(&GeneratorConfig::paper_class(250, 10), 42);
    let pricings: Vec<Vec<f64>> =
        (0..32).map(|i| vec![10.0 + i as f64 * 3.0; inst.num_own()]).collect();
    let solver = RelaxationSolver::new(&inst);

    let mut group = c.benchmark_group("rayon_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let pool =
            rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool");
        group.bench_function(format!("eval32_threads_{threads}"), |b| {
            b.iter(|| {
                pool.install(|| {
                    let total: f64 = pricings
                        .par_iter()
                        .map(|prices| {
                            let costs = inst.costs_for(prices);
                            let relax = solver.solve(&costs).unwrap();
                            greedy_cover(
                                &inst,
                                &costs,
                                &mut CostPerCoverageScorer,
                                Some(&relax),
                            )
                            .cost
                        })
                        .sum();
                    black_box(total)
                })
            })
        });
    }
    group.finish();
}

/// The solve cache on a repeated-pricing workload: a small set of
/// distinct pricings probed many times over, the access pattern elite
/// re-injection and archive replay produce during co-evolution.
fn bench_solve_cache(c: &mut Criterion) {
    let inst = generate(&GeneratorConfig::paper_class(250, 10), 42);
    let solver = RelaxationSolver::new(&inst);
    let distinct: Vec<Vec<f64>> =
        (0..8).map(|i| vec![10.0 + i as f64 * 3.0; inst.num_own()]).collect();
    let workload: Vec<&Vec<f64>> = (0..256).map(|i| &distinct[i % distinct.len()]).collect();

    // Untimed accounting pass: report hit rate and pivot reduction, and
    // hold the ISSUE's acceptance bar (hits > 0, fewer total pivots).
    let cold_pivots: u64 =
        workload.iter().map(|p| solver.solve(&inst.costs_for(p)).unwrap().pivots).sum();
    let cache: SolveCache<Relaxation> = SolveCache::new(1024);
    let mut cached_pivots = 0u64;
    for p in &workload {
        let (r, hit) =
            cache.get_or_insert_with(p, || solver.solve(&inst.costs_for(p)).unwrap());
        if !hit {
            cached_pivots += r.pivots;
        }
    }
    let s = cache.stats();
    assert!(s.hits > 0, "repeated pricings must hit the cache");
    assert!(
        cached_pivots < cold_pivots,
        "caching must reduce total simplex pivots ({cached_pivots} vs {cold_pivots})"
    );
    eprintln!(
        "solve_cache: {} probes, {} hits ({:.1}% hit rate), pivots {cold_pivots} -> \
         {cached_pivots} ({:.1}% reduction)",
        s.hits + s.misses,
        s.hits,
        100.0 * s.hits as f64 / (s.hits + s.misses) as f64,
        100.0 * (cold_pivots - cached_pivots) as f64 / cold_pivots as f64,
    );

    let mut group = c.benchmark_group("solve_cache");
    group.sample_size(10);
    group.bench_function("repeated_pricing_cold", |b| {
        b.iter(|| {
            let total: f64 = workload
                .iter()
                .map(|p| solver.solve(&inst.costs_for(p)).unwrap().lower_bound)
                .sum();
            black_box(total)
        })
    });
    group.bench_function("repeated_pricing_cached", |b| {
        b.iter(|| {
            let cache: SolveCache<Relaxation> = SolveCache::new(1024);
            let total: f64 = workload
                .iter()
                .map(|p| {
                    cache
                        .get_or_insert_with(p, || solver.solve(&inst.costs_for(p)).unwrap())
                        .0
                        .lower_bound
                })
                .sum();
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scaling, bench_solve_cache);
criterion_main!(benches);
