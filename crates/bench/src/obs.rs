//! Observability wiring for the experiment binaries.
//!
//! One [`ObsStack`] is built per process from the shared CLI flags
//! (`--trace-out`, `--metrics-out`, `--log-level`); each (class, run)
//! then borrows a tagged [`RunObservers`] view so that all runs stream
//! into one JSONL file and one metrics report. Counters stay exact
//! under rayon (they are atomic); wall-clock phase timings are only
//! meaningful for single-run attachments and are therefore most useful
//! via the `bico` CLI rather than the parallel benches.

use crate::experiment::ExperimentOpts;
use bico_obs::sinks::prometheus;
use bico_obs::{Event, JsonlSink, LogLevel, MetricsSink, ProgressSink, RunObserver};

/// Process-wide observability state for a bench binary.
pub struct ObsStack {
    jsonl: Option<JsonlSink>,
    metrics: Option<MetricsSink>,
    progress: Option<ProgressSink>,
    metrics_out: Option<String>,
    prom_out: Option<String>,
}

impl ObsStack {
    /// A stack with no sinks: `for_run` hands out disabled observers and
    /// the instrumentation folds away.
    pub fn disabled() -> Self {
        ObsStack {
            jsonl: None,
            metrics: None,
            progress: None,
            metrics_out: None,
            prom_out: None,
        }
    }

    /// Build the stack the options ask for. Unwritable trace paths are
    /// reported on stderr and skipped rather than aborting the bench.
    pub fn from_opts(opts: &ExperimentOpts) -> Self {
        let jsonl = opts.trace_out.as_deref().and_then(|path| match JsonlSink::create(path) {
            Ok(sink) => Some(sink),
            Err(err) => {
                eprintln!("bico: cannot create trace file {path}: {err}");
                None
            }
        });
        // One sink feeds both the JSON and the Prometheus report.
        let metrics =
            (opts.metrics_out.is_some() || opts.prom_out.is_some()).then(MetricsSink::new);
        let progress =
            (opts.log_level > LogLevel::Warn).then(|| ProgressSink::stderr(opts.log_level));
        ObsStack {
            jsonl,
            metrics,
            progress,
            metrics_out: opts.metrics_out.clone(),
            prom_out: opts.prom_out.clone(),
        }
    }

    /// True when no sink is attached.
    pub fn is_disabled(&self) -> bool {
        self.jsonl.is_none() && self.metrics.is_none() && self.progress.is_none()
    }

    /// The metrics sink, when `--metrics-out` was given.
    pub fn metrics(&self) -> Option<&MetricsSink> {
        self.metrics.as_ref()
    }

    /// A borrowed observer for one tagged run.
    pub fn for_run(&self, tag: &str) -> RunObservers<'_> {
        RunObservers {
            jsonl: self.jsonl.as_ref().map(|sink| sink.with_tag(tag)),
            metrics: self.metrics.as_ref(),
            progress: self.progress.as_ref(),
        }
    }

    /// Flush the trace file and write the metrics report. Call once,
    /// after the last run.
    pub fn finish(&self) {
        if let Some(sink) = &self.jsonl {
            if let Err(err) = sink.flush() {
                eprintln!("bico: trace flush failed: {err}");
            }
        }
        let Some(metrics) = &self.metrics else {
            return;
        };
        let report = metrics.report();
        if let Some(path) = &self.metrics_out {
            if let Err(err) = std::fs::write(path, report.to_json() + "\n") {
                eprintln!("bico: cannot write metrics file {path}: {err}");
            }
        }
        if let Some(path) = &self.prom_out {
            if let Err(err) = std::fs::write(path, prometheus::render(&report)) {
                eprintln!("bico: cannot write prometheus file {path}: {err}");
            }
        }
    }
}

/// The per-run observer view handed to `run_observed`: a tagged JSONL
/// handle plus shared metrics/progress sinks.
pub struct RunObservers<'a> {
    jsonl: Option<JsonlSink>,
    metrics: Option<&'a MetricsSink>,
    progress: Option<&'a ProgressSink>,
}

impl RunObserver for RunObservers<'_> {
    fn enabled(&self) -> bool {
        self.jsonl.is_some()
            || self.metrics.is_some()
            || self.progress.is_some_and(|p| p.enabled())
    }

    fn observe(&self, event: &Event<'_>) {
        if let Some(sink) = &self.jsonl {
            sink.observe(event);
        }
        if let Some(sink) = self.metrics {
            sink.observe(event);
        }
        if let Some(sink) = self.progress {
            if sink.enabled() {
                sink.observe(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_stack_hands_out_disabled_observers() {
        let stack = ObsStack::disabled();
        assert!(stack.is_disabled());
        assert!(!stack.for_run("x").enabled());
        stack.finish(); // no-op
    }

    #[test]
    fn metrics_only_stack_counts_events() {
        let opts = ExperimentOpts {
            metrics_out: Some("/nonexistent-dir/never-written.json".into()),
            ..Default::default()
        };
        let stack = ObsStack::from_opts(&opts);
        let obs = stack.for_run("run0");
        assert!(obs.enabled());
        obs.observe(&Event::RunStart { algo: "carbon", seed: 1 });
        obs.observe(&Event::LowerLevelSolve { solves: 3, pivots: 40, micros: 120 });
        let report = stack.metrics().unwrap().report();
        assert_eq!(report.runs, 1);
        assert_eq!(report.ll_solves, 3);
        assert_eq!(report.simplex_pivots, 40);
    }
}
