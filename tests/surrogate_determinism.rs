//! Determinism contract for the surrogate gate.
//!
//! Two layers: differential tests proving that an explicit
//! `SurrogateGate::Off` is bit-identical to the default configuration
//! under every cache regime (the gate consumes no randomness, so
//! leaving it off can never perturb a run), and property tests proving
//! that the ranker itself — fitting, prediction, rank transforms, and
//! the exact-set selector — is a pure function of its inputs and never
//! panics on degenerate feature columns.

mod common;

use bico::bcpop::{generate, BcpopInstance, GeneratorConfig};
use bico::core::surrogate::{
    normalized_ranks, quantile_value, select_exact, spearman, NUM_FEATURES,
};
use bico::core::{Carbon, CarbonConfig, CarbonResult, RankSurrogate, SurrogateGate};
use bico::ea::cache::EvictionPolicy;
use proptest::prelude::*;

fn diff_instances() -> Vec<BcpopInstance> {
    vec![
        generate(
            &GeneratorConfig { num_bundles: 40, num_services: 5, ..Default::default() },
            77,
        ),
        generate(
            &GeneratorConfig { num_bundles: 30, num_services: 4, ..Default::default() },
            5,
        ),
    ]
}

const DIFF_SEEDS: [u64; 3] = [9, 10, 11];

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_bit_identical(a: &CarbonResult, b: &CarbonResult, tag: &str) {
    assert_eq!(bits(&a.best_pricing), bits(&b.best_pricing), "pricing {tag}");
    assert_eq!(a.best_ul_value.to_bits(), b.best_ul_value.to_bits(), "best F {tag}");
    assert_eq!(a.best_gap.to_bits(), b.best_gap.to_bits(), "best gap {tag}");
    assert_eq!(a.best_heuristic, b.best_heuristic, "champion {tag}");
    assert_eq!(a.trace.points(), b.trace.points(), "trace {tag}");
}

#[test]
fn explicit_off_gate_matches_default_bit_for_bit_across_cache_regimes() {
    // The default config must not change behind users' backs…
    assert_eq!(CarbonConfig::default().surrogate_gate, SurrogateGate::Off);
    // …and spelling the default out must be a no-op under every cache
    // regime: cold (all memo layers off), the default warm caches, and
    // warm caches under CLOCK eviction.
    type Shape = Box<dyn Fn(&mut CarbonConfig)>;
    let regimes: [(&str, Shape); 3] = [
        (
            "cold",
            Box::new(|c: &mut CarbonConfig| {
                c.ll_cache_capacity = 0;
                c.gp_compile_cache_capacity = 0;
                c.decode_cache_capacity = 0;
            }),
        ),
        ("warm", Box::new(|_| {})),
        ("clock", Box::new(|c: &mut CarbonConfig| c.cache_eviction = EvictionPolicy::Clock)),
    ];
    for inst in &diff_instances() {
        for &seed in &DIFF_SEEDS {
            for (name, shape) in &regimes {
                let mut base = CarbonConfig {
                    ul_pop_size: 10,
                    ll_pop_size: 10,
                    ul_archive_size: 10,
                    ll_archive_size: 10,
                    ul_evaluations: 150,
                    ll_evaluations: 150,
                    ..Default::default()
                };
                shape(&mut base);
                let mut explicit = base.clone();
                explicit.surrogate_gate = SurrogateGate::Off;
                let a = Carbon::new(inst, base).run(seed);
                let b = Carbon::new(inst, explicit).run(seed);
                let tag = format!(
                    "{}x{} seed {seed} regime {name}",
                    inst.num_bundles(),
                    inst.num_services()
                );
                assert_bit_identical(&a, &b, &tag);
            }
        }
    }
}

#[test]
fn topk_gate_is_thread_count_invariant() {
    // The gated path screens, pins, and imputes from per-cell state that
    // is collected in deterministic order; rayon only parallelizes the
    // pure per-cell decodes, so the thread count must not matter.
    let with_threads = |n: usize, f: &dyn Fn() -> CarbonResult| {
        rayon::ThreadPoolBuilder::new().num_threads(n).build().expect("pool").install(f)
    };
    let inst = &diff_instances()[0];
    let cfg = CarbonConfig {
        ul_pop_size: 10,
        ll_pop_size: 10,
        ul_archive_size: 10,
        ll_archive_size: 10,
        ul_evaluations: 400,
        ll_evaluations: 800,
        surrogate_gate: SurrogateGate::top_k(),
        ..Default::default()
    };
    let run = || Carbon::new(inst, cfg.clone()).run(33);
    let one = with_threads(1, &run);
    let four = with_threads(4, &run);
    assert_bit_identical(&one, &four, "threads 1 vs 4");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fitting_and_scoring_are_deterministic(
        rows in proptest::collection::vec(
            (proptest::collection::vec(-1e3f64..1e3, NUM_FEATURES), 0.0f64..1.0),
            1..40,
        ),
        generations in 1usize..4,
    ) {
        let feed = |s: &mut RankSurrogate| {
            for _ in 0..generations {
                for (f, t) in &rows {
                    let mut feats = [0.0; NUM_FEATURES];
                    feats.copy_from_slice(f);
                    s.observe(&feats, *t);
                }
                s.fit();
                s.decay_generation();
            }
        };
        let mut a = RankSurrogate::new();
        let mut b = RankSurrogate::new();
        feed(&mut a);
        feed(&mut b);
        prop_assert_eq!(a.samples(), b.samples());
        for (wa, wb) in a.weights().iter().zip(b.weights()) {
            prop_assert_eq!(wa.to_bits(), wb.to_bits());
        }
        let probe = [0.5; NUM_FEATURES];
        prop_assert_eq!(a.predict(&probe).to_bits(), b.predict(&probe).to_bits());
    }

    #[test]
    fn degenerate_feature_columns_never_panic(
        constant in -1e6f64..1e6,
        n in 1usize..64,
        target in 0.0f64..1.0,
    ) {
        // Constant columns make the normal equations singular; huge
        // magnitudes stress the elimination's pivoting. The fit must
        // fall back to zero weights rather than panic or emit NaN.
        let mut s = RankSurrogate::new();
        for _ in 0..n {
            s.observe(&[constant; NUM_FEATURES], target);
        }
        s.fit();
        for w in s.weights() {
            prop_assert!(w.is_finite(), "weight {w} not finite");
        }
        let p = s.predict(&[constant; NUM_FEATURES]);
        prop_assert!(p.is_finite(), "prediction {p} not finite");
    }

    #[test]
    fn normalized_ranks_land_in_unit_interval(
        values in proptest::collection::vec(-1e9f64..1e9, 0..50),
    ) {
        let ranks = normalized_ranks(&values);
        prop_assert_eq!(ranks.len(), values.len());
        for r in &ranks {
            prop_assert!((0.0..=1.0).contains(r), "rank {r} out of range");
        }
        // Rank-transform again: idempotent ordering, still in bounds.
        let again = normalized_ranks(&ranks);
        prop_assert_eq!(again.len(), ranks.len());
    }

    #[test]
    fn spearman_is_bounded_and_finite(
        pairs in proptest::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 0..40),
    ) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let rho = spearman(&a, &b);
        prop_assert!(rho.is_finite());
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rho), "rho {rho} out of range");
    }

    #[test]
    fn select_exact_keeps_pins_and_is_deterministic(
        cells in proptest::collection::vec((0.0f64..1.0, proptest::bool::ANY), 1..60),
        frac in 0.0f64..1.0,
        explore in 0.0f64..0.5,
        round in 0u64..100,
    ) {
        let preds: Vec<f64> = cells.iter().map(|c| c.0).collect();
        let pinned: Vec<bool> = cells.iter().map(|c| c.1).collect();
        let a = select_exact(&preds, frac, explore, &pinned, round);
        let b = select_exact(&preds, frac, explore, &pinned, round);
        prop_assert_eq!(&a, &b, "selection must be a pure function");
        prop_assert_eq!(a.len(), preds.len());
        prop_assert!(a.iter().any(|&x| x), "at least one cell stays exact");
        for (i, &pin) in pinned.iter().enumerate() {
            if pin {
                prop_assert!(a[i], "pinned cell {i} dropped from the exact set");
            }
        }
    }

    #[test]
    fn quantile_value_stays_within_the_sorted_range(
        mut values in proptest::collection::vec(-1e6f64..1e6, 1..40),
        q in -0.5f64..1.5,
    ) {
        values.sort_by(f64::total_cmp);
        let v = quantile_value(&values, q);
        prop_assert!(v >= values[0] && v <= values[values.len() - 1]);
    }
}
