//! GP tree evaluation throughput — the innermost loop of the greedy
//! (one evaluation per candidate bundle per greedy step) — comparing the
//! tree-walking interpreter against the bytecode-compiled program, both
//! per-candidate (scalar) and over a whole candidate batch.

use bico_bcpop::bcpop_primitives;
use bico_gp::{grow, CompiledEvaluator, CompiledProgram, Evaluator};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_eval(c: &mut Criterion) {
    let ps = bcpop_primitives();
    let mut rng = SmallRng::seed_from_u64(3);
    let mut group = c.benchmark_group("gp_eval");
    for depth in [2usize, 5, 8] {
        let expr = grow(&ps, depth, depth, &mut rng).unwrap();
        let vals = [3.0, 120.0, 40.0, 800.0, 6.5, 0.4];
        group.bench_function(format!("interpreted_depth_{depth}_{}_nodes", expr.len()), |b| {
            let mut ev = Evaluator::new();
            b.iter(|| black_box(ev.eval(&expr, &ps, black_box(&vals))))
        });

        let prog = CompiledProgram::compile(&expr, &ps).unwrap();
        group.bench_function(format!("compiled_depth_{depth}_{}_nodes", expr.len()), |b| {
            let mut ev = CompiledEvaluator::new();
            b.iter(|| black_box(ev.eval(&prog, black_box(&vals))))
        });

        // One batched sweep over 512 candidate rows — the shape the
        // incremental greedy decoder produces each step. Throughput is
        // per-row: divide the reported time by `rows`.
        let rows = 512usize;
        let cols: Vec<Vec<f64>> =
            (0..vals.len()).map(|t| (0..rows).map(|r| vals[t] + r as f64).collect()).collect();
        let col_refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        group.bench_function(
            format!("compiled_batch{rows}_depth_{depth}_{}_nodes", expr.len()),
            |b| {
                let mut ev = CompiledEvaluator::new();
                let mut out = Vec::new();
                b.iter(|| {
                    ev.eval_batch(&prog, black_box(&col_refs), rows, &mut out);
                    black_box(out.last().copied())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
