//! The Mersha–Dempe linear toy (Program 3 / Fig. 1 of the paper):
//! why an accurate lower-level forecast is everything in bi-level
//! optimization.
//!
//! ```text
//! cargo run --release --example mersha_dempe
//! ```

use bico::core::{program3, TieBreak};

fn main() {
    let p = program3();

    println!("Program 3:  min F = -x - 2y   s.t. 2x-3y >= -12, x+y <= 14");
    println!("            LL: min f = -y    s.t. -3x+y <= -3, 3x+y <= 30\n");

    // 1. The rational reaction map.
    println!("rational reactions (optimistic):");
    for &x in &[1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0] {
        match p.rational_reaction(&[x], TieBreak::Optimistic) {
            Some(r) => {
                let ok = p.ul_feasible(&[x], &r.y, 1e-7);
                println!(
                    "  x = {x:>4.1} -> y = {:>5.2}   UL-feasible: {}   F = {:>7.2}",
                    r.y[0],
                    if ok { "yes" } else { "NO " },
                    p.ul_objective(&[x], &r.y)
                );
            }
            None => println!("  x = {x:>4.1} -> lower level infeasible"),
        }
    }

    // 2. The trap the paper describes.
    println!("\nThe trap at x = 6:");
    println!(
        "  a sloppy lower-level solver might answer y = 8 (feasible for the LL, \
         and UL-feasible: {})",
        p.ul_feasible(&[6.0], &[8.0], 1e-7)
    );
    println!("  promising the leader F = {:.1} ...", p.ul_objective(&[6.0], &[8.0]));
    let r = p.rational_reaction(&[6.0], TieBreak::Optimistic).unwrap();
    println!(
        "  but the RATIONAL follower plays y = {:.1}, which violates the UL \
         constraint 2x - 3y >= -12:",
        r.y[0]
    );
    println!("  the leader ends up with no feasible solution at all.");

    // 3. The discontinuous inducible region and the true optimum.
    let (x, y, f) = p.solve_grid(0.0, 10.0, 4000, TieBreak::Optimistic).unwrap();
    println!(
        "\nInducible region: x in [1,3] u [8,10] (discontinuous!), optimum at \
         x = {x:.2}, y = {:.2}, F = {f:.2}",
        y[0]
    );
}
