//! Exact lower-level solver for *small* instances — a branch-and-bound
//! test oracle.
//!
//! Used to validate that greedy costs are ≥ the true optimum, that the
//! LP bound is ≤ the true optimum, and (in the CARBON integration tests)
//! to measure true gaps on toy instances. Exponential in the number of
//! bundles; guarded by an explicit size limit.

use crate::instance::BcpopInstance;

/// Maximum bundle count accepted by [`exact_ll_optimum`].
pub const EXACT_LIMIT: usize = 24;

/// Exhaustively solve the lower-level covering problem
/// `min Σ c_j x_j  s.t.  Σ q_j^k x_j ≥ b^k` by DFS with cost pruning.
///
/// Returns `(optimal_cost, chosen)`, or `None` when no covering exists
/// (impossible on a validated instance).
///
/// # Panics
/// Panics if the instance has more than [`EXACT_LIMIT`] bundles.
#[allow(clippy::needless_range_loop)] // residual/suffix arrays share indices
pub fn exact_ll_optimum(inst: &BcpopInstance, costs: &[f64]) -> Option<(f64, Vec<bool>)> {
    let m = inst.num_bundles();
    assert!(m <= EXACT_LIMIT, "exact solver limited to {EXACT_LIMIT} bundles (got {m})");
    let n = inst.num_services();
    let mut best_cost = f64::INFINITY;
    let mut best_sel: Option<Vec<bool>> = None;
    let mut chosen = vec![false; m];
    let mut residual: Vec<i64> = inst.requirements().iter().map(|&v| v as i64).collect();

    // Suffix coverage per service: what bundles j.. can still add.
    let mut suffix = vec![0i64; (m + 1) * n];
    for j in (0..m).rev() {
        for k in 0..n {
            suffix[j * n + k] = suffix[(j + 1) * n + k] + inst.coverage(j, k) as i64;
        }
    }

    #[allow(clippy::needless_range_loop)]
    #[allow(clippy::too_many_arguments)] // explicit DFS state beats a struct here
    fn dfs(
        inst: &BcpopInstance,
        costs: &[f64],
        suffix: &[i64],
        j: usize,
        cost: f64,
        chosen: &mut Vec<bool>,
        residual: &mut Vec<i64>,
        best_cost: &mut f64,
        best_sel: &mut Option<Vec<bool>>,
    ) {
        let n = inst.num_services();
        if residual.iter().all(|&r| r <= 0) {
            if cost < *best_cost {
                *best_cost = cost;
                *best_sel = Some(chosen.clone());
            }
            return;
        }
        if j >= inst.num_bundles() || cost >= *best_cost {
            return;
        }
        // Infeasibility prune: remaining bundles cannot cover residuals.
        for k in 0..n {
            if residual[k] > suffix[j * n + k] {
                return;
            }
        }
        // Branch 1: take bundle j.
        chosen[j] = true;
        for k in 0..n {
            residual[k] -= inst.coverage(j, k) as i64;
        }
        dfs(inst, costs, suffix, j + 1, cost + costs[j], chosen, residual, best_cost, best_sel);
        chosen[j] = false;
        for k in 0..n {
            residual[k] += inst.coverage(j, k) as i64;
        }
        // Branch 2: skip bundle j.
        dfs(inst, costs, suffix, j + 1, cost, chosen, residual, best_cost, best_sel);
    }

    dfs(
        inst,
        costs,
        &suffix,
        0,
        0.0,
        &mut chosen,
        &mut residual,
        &mut best_cost,
        &mut best_sel,
    );
    best_sel.map(|sel| (best_cost, sel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::test_fixtures::tiny;
    use crate::scoring::CostPerCoverageScorer;
    use crate::{generate, greedy_cover, GeneratorConfig, RelaxationSolver};

    #[test]
    fn tiny_exact_optimum() {
        let inst = tiny();
        // Own prices 1.5/2.5: best covering = both own bundles at 4.0.
        let costs = inst.costs_for(&[1.5, 2.5]);
        let (cost, sel) = exact_ll_optimum(&inst, &costs).unwrap();
        assert!((cost - 4.0).abs() < 1e-12);
        assert!(inst.is_covering(&sel));
    }

    #[test]
    fn exact_switches_to_competitors_when_own_is_expensive() {
        let inst = tiny();
        let costs = inst.costs_for(&[9.0, 9.0]);
        let (cost, sel) = exact_ll_optimum(&inst, &costs).unwrap();
        // Competitors: bundles 2 (4.0) + 3 (3.0) cover (2,2) at 7.0.
        assert!((cost - 7.0).abs() < 1e-12);
        assert!(!sel[0] && !sel[1]);
    }

    #[test]
    fn sandwich_lp_le_exact_le_greedy() {
        let cfg = GeneratorConfig { num_bundles: 14, num_services: 4, ..Default::default() };
        for seed in 0..8 {
            let inst = generate(&cfg, seed);
            let prices = vec![20.0; inst.num_own()];
            let costs = inst.costs_for(&prices);
            let relax = RelaxationSolver::new(&inst).solve(&costs).unwrap();
            let (opt, _) = exact_ll_optimum(&inst, &costs).unwrap();
            let greedy = greedy_cover(&inst, &costs, &mut CostPerCoverageScorer, Some(&relax));
            assert!(
                relax.lower_bound <= opt + 1e-6,
                "LP bound {} above optimum {opt} (seed {seed})",
                relax.lower_bound
            );
            assert!(
                opt <= greedy.cost + 1e-6,
                "optimum {opt} above greedy {} (seed {seed})",
                greedy.cost
            );
        }
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn size_guard() {
        let inst = generate(&GeneratorConfig::paper_class(100, 5), 0);
        let costs = inst.costs_for(&vec![1.0; inst.num_own()]);
        let _ = exact_ll_optimum(&inst, &costs);
    }
}
