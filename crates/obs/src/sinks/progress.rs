//! Human-readable progress sink (stderr, level-filtered).
//!
//! Verbosity is a [`LogLevel`], settable per sink or from the
//! `BICO_LOG` environment variable (`off|error|warn|info|debug|trace`,
//! default `warn`). Event → level mapping:
//!
//! * `info`: `RunStart`, `GenerationEnd` (the progress line),
//!   `RunComplete`;
//! * `debug`: `PhaseChange`, `ArchiveUpdate`;
//! * `trace`: everything else (`GenerationStart`, `Evaluation`,
//!   `LowerLevelSolve`, `CacheProbe`, `CompileCacheProbe`,
//!   `DecodeCacheProbe`, `ObjectivePair`).

use crate::event::Event;
use crate::observer::RunObserver;
use std::io::Write;
use std::str::FromStr;
use std::sync::Mutex;

/// Verbosity threshold, ordered `Off < Error < … < Trace`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LogLevel {
    /// Log nothing.
    Off,
    /// Errors only (reserved; the solvers currently emit none).
    Error,
    /// Warnings only — the quiet default.
    #[default]
    Warn,
    /// Run lifecycle and per-generation progress.
    Info,
    /// Plus phase changes and archive updates.
    Debug,
    /// Every event.
    Trace,
}

impl LogLevel {
    /// Read the level from `BICO_LOG` (default [`LogLevel::Warn`];
    /// unparseable values also fall back to the default).
    pub fn from_env() -> LogLevel {
        std::env::var("BICO_LOG").ok().and_then(|v| v.parse().ok()).unwrap_or_default()
    }

    /// The canonical lower-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Off => "off",
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
            LogLevel::Trace => "trace",
        }
    }
}

impl FromStr for LogLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Ok(LogLevel::Off),
            "error" => Ok(LogLevel::Error),
            "warn" | "warning" => Ok(LogLevel::Warn),
            "info" => Ok(LogLevel::Info),
            "debug" => Ok(LogLevel::Debug),
            "trace" => Ok(LogLevel::Trace),
            other => {
                Err(format!("unknown log level {other:?} (off|error|warn|info|debug|trace)"))
            }
        }
    }
}

/// The level at which an event is logged.
fn event_level(event: &Event<'_>) -> LogLevel {
    match event {
        Event::RunStart { .. } | Event::GenerationEnd { .. } | Event::RunComplete { .. } => {
            LogLevel::Info
        }
        Event::PhaseChange { .. } | Event::ArchiveUpdate { .. } => LogLevel::Debug,
        Event::GenerationStart { .. }
        | Event::Evaluation { .. }
        | Event::LowerLevelSolve { .. }
        | Event::CacheProbe { .. }
        | Event::CompileCacheProbe { .. }
        | Event::DecodeCacheProbe { .. }
        | Event::SurrogateProbe { .. }
        | Event::ObjectivePair { .. } => LogLevel::Trace,
    }
}

/// An observer that renders events as single human-readable lines.
pub struct ProgressSink {
    level: LogLevel,
    out: Mutex<Box<dyn Write + Send>>,
}

impl ProgressSink {
    /// Log to stderr at `level`.
    pub fn stderr(level: LogLevel) -> Self {
        Self::to_writer(level, Box::new(std::io::stderr()))
    }

    /// Log to stderr at the `BICO_LOG` level.
    pub fn from_env() -> Self {
        Self::stderr(LogLevel::from_env())
    }

    /// Log to an arbitrary writer (used by the tests).
    pub fn to_writer(level: LogLevel, out: Box<dyn Write + Send>) -> Self {
        ProgressSink { level, out: Mutex::new(out) }
    }

    /// The configured threshold.
    pub fn level(&self) -> LogLevel {
        self.level
    }

    fn render(event: &Event<'_>) -> String {
        match *event {
            Event::RunStart { algo, seed } => format!("run start: {algo}, seed {seed}"),
            Event::PhaseChange { phase } => format!("phase: {phase}"),
            Event::GenerationStart { generation } => format!("gen {generation} start"),
            Event::Evaluation { level, count, gp_nodes, micros } => {
                format!(
                    "evaluated {count} {} individuals ({gp_nodes} GP nodes, {micros} µs)",
                    level.as_str()
                )
            }
            Event::LowerLevelSolve { solves, pivots, micros } => {
                format!("relaxation: {solves} LP solves, {pivots} pivots, {micros} µs")
            }
            Event::CacheProbe { hits, misses, evictions, entries } => {
                format!("cache: {hits} hits, {misses} misses, {evictions} evicted, {entries} resident")
            }
            Event::CompileCacheProbe { hits, misses, evictions, entries, compile_micros } => {
                format!("compile cache: {hits} hits, {misses} misses, {evictions} evicted, {entries} resident, {compile_micros} µs compiling")
            }
            Event::DecodeCacheProbe { hits, misses, evictions, entries } => {
                format!("decode cache: {hits} hits, {misses} misses, {evictions} evicted, {entries} resident")
            }
            Event::SurrogateProbe { cells, exact, skipped, rank_corr } => {
                format!("surrogate: {cells} cells, {exact} exact, {skipped} imputed, rank corr {rank_corr:.3}")
            }
            Event::ObjectivePair { level, ul_value, ll_value } => {
                format!("objectives ({} improving): F {ul_value:.4}, f {ll_value:.4}", level.as_str())
            }
            Event::ArchiveUpdate { level, size, best } => {
                format!("{} archive: size {size}, best {best:.4}", level.as_str())
            }
            Event::GenerationEnd { generation, evaluations, ul_best, gap_best } => {
                format!(
                    "gen {generation:>4} | evals {evaluations:>8} | best F {ul_best:>12.2} | best gap {gap_best:>8.3}%"
                )
            }
            Event::RunComplete {
                generations,
                ul_evaluations,
                ll_evaluations,
                best_value,
                best_gap,
            } => format!(
                "run complete: {generations} generations, {ul_evaluations}+{ll_evaluations} evals, best F {best_value:.2}, best gap {best_gap:.3}%"
            ),
        }
    }
}

impl RunObserver for ProgressSink {
    fn enabled(&self) -> bool {
        self.level > LogLevel::Warn
    }

    fn observe(&self, event: &Event<'_>) {
        if event_level(event) > self.level {
            return;
        }
        let line = format!("bico: {}\n", Self::render(event));
        // Best-effort, like the JSONL sink.
        let _ = self.out.lock().expect("progress writer poisoned").write_all(line.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Level;
    use crate::sinks::jsonl::SharedBuffer;

    fn capture(level: LogLevel, events: &[Event<'_>]) -> String {
        let buffer = SharedBuffer::new();
        let sink = ProgressSink::to_writer(level, Box::new(buffer.clone()));
        for event in events {
            if sink.enabled() {
                sink.observe(event);
            }
        }
        buffer.contents()
    }

    #[test]
    fn levels_parse_and_order() {
        assert_eq!("info".parse::<LogLevel>().unwrap(), LogLevel::Info);
        assert_eq!("TRACE".parse::<LogLevel>().unwrap(), LogLevel::Trace);
        assert_eq!("warning".parse::<LogLevel>().unwrap(), LogLevel::Warn);
        assert!("verbose".parse::<LogLevel>().is_err());
        assert!(LogLevel::Off < LogLevel::Error);
        assert!(LogLevel::Info < LogLevel::Debug);
        assert_eq!(LogLevel::default(), LogLevel::Warn);
    }

    #[test]
    fn warn_default_logs_nothing() {
        let out = capture(LogLevel::Warn, &Event::examples());
        assert!(out.is_empty(), "unexpected output: {out}");
    }

    #[test]
    fn info_logs_lifecycle_and_progress_only() {
        let out = capture(LogLevel::Info, &Event::examples());
        assert!(out.contains("run start"));
        assert!(out.contains("| best gap"));
        assert!(out.contains("run complete"));
        assert!(!out.contains("phase:"));
        assert!(!out.contains("LP solves"));
    }

    #[test]
    fn debug_adds_phases_and_archives() {
        let out = capture(LogLevel::Debug, &Event::examples());
        assert!(out.contains("phase: relaxation"));
        assert!(out.contains("archive: size"));
        assert!(!out.contains("LP solves"));
    }

    #[test]
    fn trace_logs_everything() {
        let out = capture(LogLevel::Trace, &Event::examples());
        assert!(out.contains("LP solves"));
        assert!(out.contains("cache:"));
        assert!(out.contains("gen 0 start"));
        assert_eq!(out.lines().count(), Event::examples().len());
    }

    #[test]
    fn evaluation_line_names_the_level() {
        let out = capture(
            LogLevel::Trace,
            &[Event::Evaluation { level: Level::Upper, count: 9, gp_nodes: 0, micros: 0 }],
        );
        assert!(out.contains("9 upper individuals"));
    }
}
