//! Lower-level LP relaxation: `LB(x)`, duals and relaxed primal.
//!
//! The paper's Eq. 1 measures heuristic quality as
//! `%-gap(x) = 100 · (A(x) − LB(x)) / LB(x)` where `LB(x)` is the
//! continuous-relaxation bound of the lower-level covering problem under
//! pricing `x`. The duals `d_k` and relaxed primal `x̄_j` additionally
//! feed the GP terminal set (Table I) — the paper notes the relaxation
//! "will be in any case computed since we require it to compute the
//! lower-level gap".

use crate::instance::BcpopInstance;
use bico_lp::{LpProblem, LpStatus, PreparedLp, Relation, SimplexOptions};

/// The relaxation artifacts for one pricing.
#[derive(Debug, Clone)]
pub struct Relaxation {
    /// Relaxation optimum `LB(x)` — the gap denominator.
    pub lower_bound: f64,
    /// Covering-constraint duals `d_k` (one per service, ≥ 0).
    pub duals: Vec<f64>,
    /// Relaxed primal `x̄_j ∈ [0, 1]` (one per bundle).
    pub xbar: Vec<f64>,
    /// Simplex pivots spent on this solve (both phases) — observability
    /// only; carries no information about the optimum.
    pub pivots: u64,
}

/// Reusable relaxation solver: the constraint structure of an instance
/// is fixed; only the objective (prices of the CSP block) changes per
/// upper-level decision, so rows are assembled — and simplex phase 1 is
/// run — exactly once. Every [`solve`](RelaxationSolver::solve) resumes
/// from the prepared feasible basis and goes straight to phase 2, which
/// is bit-identical to a cold two-phase solve of the same objective (see
/// [`bico_lp::PreparedLp`]); warm-starting is therefore invisible to the
/// determinism contract.
///
/// ```
/// use bico_bcpop::{generate, GeneratorConfig, RelaxationSolver};
///
/// let inst = generate(&GeneratorConfig::paper_class(100, 5), 1);
/// let solver = RelaxationSolver::new(&inst);
/// let relax = solver.solve(&inst.costs_for(&vec![10.0; inst.num_own()])).unwrap();
/// assert!(relax.lower_bound > 0.0);
/// assert_eq!(relax.duals.len(), inst.num_services());
/// assert_eq!(relax.xbar.len(), inst.num_bundles());
/// ```
#[derive(Debug, Clone)]
pub struct RelaxationSolver {
    prepared: PreparedLp,
}

impl RelaxationSolver {
    /// Pre-assemble the covering rows of `inst` and run simplex phase 1
    /// on them once (the phase-1 basis is objective-independent).
    pub fn new(inst: &BcpopInstance) -> Self {
        Self::with_options(inst, &SimplexOptions::default())
    }

    /// [`RelaxationSolver::new`] with explicit [`SimplexOptions`] —
    /// notably [`bico_lp::SparseMode`], which lets benchmarks pin the
    /// dense tableau or the sparse revised simplex instead of relying
    /// on auto-selection.
    pub fn with_options(inst: &BcpopInstance, opts: &SimplexOptions) -> Self {
        let m = inst.num_bundles();
        let n = inst.num_services();
        let mut p = LpProblem::minimize(m);
        for j in 0..m {
            p.set_bounds(j, 0.0, 1.0);
        }
        for k in 0..n {
            let row: Vec<(usize, f64)> = (0..m)
                .filter_map(|j| {
                    let v = inst.coverage(j, k);
                    (v > 0).then_some((j, v as f64))
                })
                .collect();
            p.add_constraint(&row, Relation::Ge, inst.requirement(k) as f64);
        }
        let prepared = p.prepare_with(opts).expect("covering template is well-formed");
        RelaxationSolver { prepared }
    }

    /// Solve the relaxation for a full cost vector (see
    /// [`BcpopInstance::costs_for`]), warm-starting phase 2 from the
    /// prepared feasible basis.
    ///
    /// Returns `None` only if the LP solver fails, which for a validated
    /// instance (coverable requirements, finite costs) cannot happen.
    pub fn solve(&self, costs: &[f64]) -> Option<Relaxation> {
        let sol = self.prepared.solve_objective(costs).ok()?;
        if sol.status != LpStatus::Optimal {
            return None;
        }
        Some(Relaxation {
            lower_bound: sol.objective,
            duals: sol.duals,
            xbar: sol.x,
            pivots: sol.iterations as u64,
        })
    }
}

/// Eq. 1 of the paper: `%-gap = 100 · (value − lb) / lb`.
///
/// Degenerate denominators (|lb| ≈ 0, possible when all prices are zero)
/// fall back to the absolute difference so the measure stays finite and
/// monotone.
pub fn gap_percent(value: f64, lb: f64) -> f64 {
    const EPS: f64 = 1e-9;
    if lb.abs() < EPS {
        100.0 * (value - lb).max(0.0)
    } else {
        100.0 * (value - lb) / lb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::test_fixtures::tiny;
    use crate::{generate, GeneratorConfig};

    #[test]
    fn tiny_relaxation_is_exact_here() {
        // With prices (1.5, 2.5): own bundles cover each service fully at
        // unit costs 0.75/1.25 per unit of requirement — LP picks them.
        let inst = tiny();
        let solver = RelaxationSolver::new(&inst);
        let relax = solver.solve(&inst.costs_for(&[1.5, 2.5])).unwrap();
        assert!((relax.lower_bound - 4.0).abs() < 1e-8);
        assert_eq!(relax.xbar.len(), 4);
        assert_eq!(relax.duals.len(), 2);
        assert!((relax.xbar[0] - 1.0).abs() < 1e-8);
        assert!((relax.xbar[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn expensive_own_bundles_are_fractionally_ignored() {
        let inst = tiny();
        let solver = RelaxationSolver::new(&inst);
        // Own bundles cost 9 each; competitors (cost 4 and 3, covering
        // (1,1) each) are cheaper per unit.
        let relax = solver.solve(&inst.costs_for(&[9.0, 9.0])).unwrap();
        assert!(relax.lower_bound < 9.0);
        assert!(relax.xbar[0] < 0.5);
    }

    #[test]
    fn duals_are_nonnegative_on_generated_instances() {
        let inst = generate(&GeneratorConfig::paper_class(100, 10), 3);
        let solver = RelaxationSolver::new(&inst);
        let prices = vec![50.0; inst.num_own()];
        let relax = solver.solve(&inst.costs_for(&prices)).unwrap();
        assert!(relax.lower_bound > 0.0);
        for &d in &relax.duals {
            assert!(d >= -1e-9, "negative covering dual {d}");
        }
        for &x in &relax.xbar {
            assert!((-1e-9..=1.0 + 1e-9).contains(&x));
        }
    }

    #[test]
    fn lower_prices_lower_the_bound() {
        let inst = generate(&GeneratorConfig::paper_class(100, 5), 4);
        let solver = RelaxationSolver::new(&inst);
        let cheap = solver.solve(&inst.costs_for(&vec![1.0; inst.num_own()])).unwrap();
        let dear = solver.solve(&inst.costs_for(&vec![150.0; inst.num_own()])).unwrap();
        assert!(cheap.lower_bound <= dear.lower_bound + 1e-9);
    }

    #[test]
    fn gap_percent_basic() {
        assert!((gap_percent(110.0, 100.0) - 10.0).abs() < 1e-12);
        assert_eq!(gap_percent(100.0, 100.0), 0.0);
    }

    #[test]
    fn gap_percent_degenerate_lb() {
        let g = gap_percent(3.0, 0.0);
        assert!(g.is_finite());
        assert!(g > 0.0);
        assert_eq!(gap_percent(0.0, 0.0), 0.0);
    }

    #[test]
    fn relaxation_reports_pivots() {
        let inst = tiny();
        let solver = RelaxationSolver::new(&inst);
        let relax = solver.solve(&inst.costs_for(&[1.5, 2.5])).unwrap();
        assert!(relax.pivots > 0, "a non-trivial covering LP needs at least one pivot");
    }

    #[test]
    fn relaxation_solver_is_reusable() {
        let inst = tiny();
        let solver = RelaxationSolver::new(&inst);
        let a = solver.solve(&inst.costs_for(&[1.0, 1.0])).unwrap();
        let b = solver.solve(&inst.costs_for(&[1.0, 1.0])).unwrap();
        assert_eq!(a.lower_bound, b.lower_bound);
        let c = solver.solve(&inst.costs_for(&[8.0, 8.0])).unwrap();
        assert!(c.lower_bound > a.lower_bound);
    }
}
