//! End-to-end generation throughput of CARBON and COBRA at a small
//! budget — the macro-benchmark behind the experiment wall-clock.

use bico_bcpop::{generate, GeneratorConfig};
use bico_cobra::{Cobra, CobraConfig};
use bico_core::{Carbon, CarbonConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_step(c: &mut Criterion) {
    let inst = generate(&GeneratorConfig::paper_class(100, 5), 42);
    let mut group = c.benchmark_group("coevolution");
    group.sample_size(10);

    let carbon_cfg = CarbonConfig {
        ul_pop_size: 16,
        ll_pop_size: 16,
        ul_archive_size: 16,
        ll_archive_size: 16,
        ul_evaluations: 160, // 10 generations
        ll_evaluations: 160,
        ..Default::default()
    };
    group.bench_function("carbon_10_generations_100x5", |b| {
        b.iter(|| black_box(Carbon::new(&inst, carbon_cfg.clone()).run(1).generations))
    });

    // Same budget through the tree-walking interpreter with per-step
    // feature recomputation — the gap to the default run above is the
    // end-to-end payoff of the compiled + incremental decode path.
    let interpreted_cfg = CarbonConfig { compiled_eval: false, ..carbon_cfg.clone() };
    group.bench_function("carbon_10_generations_100x5_interpreted", |b| {
        b.iter(|| black_box(Carbon::new(&inst, interpreted_cfg.clone()).run(1).generations))
    });

    let cobra_cfg = CobraConfig {
        ul_pop_size: 16,
        ll_pop_size: 16,
        ul_archive_size: 16,
        ll_archive_size: 16,
        ul_evaluations: 160,
        ll_evaluations: 160,
        improvement_gens: 5,
        ..Default::default()
    };
    group.bench_function("cobra_2_cycles_100x5", |b| {
        b.iter(|| black_box(Cobra::new(&inst, cobra_cfg.clone()).run(1).cycles))
    });
    group.finish();
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
