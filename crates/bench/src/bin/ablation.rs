//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! ```text
//! cargo run -p bico-bench --release --bin ablation -- <which> [--full|--smoke] [--runs N]
//! ```
//!
//! * `fitness`   — gap-fitness (CARBON) vs raw lower-level-cost fitness
//!   for the heuristic population (COBRA's criterion grafted onto
//!   CARBON);
//! * `terminals` — full Table I terminal set vs no LP terminals
//!   (`d_k`, `x̄_j` dropped);
//! * `archive`   — elite archives on vs off at both levels;
//! * `representation` — GP-tree predators (CARBON) vs linear
//!   weight-vector predators (CARBON-W): how much of the edge is the
//!   hyper-heuristic representation itself.

use bico_bench::{class_instance, markdown_table, BudgetTier, ExperimentOpts};
use bico_core::{Carbon, CarbonConfig, CarbonWeights};
use bico_ea::rng::seed_stream;
use bico_ea::stats::Summary;
use rayon::prelude::*;

fn run_variant(
    label: &str,
    cfg: CarbonConfig,
    opts: &ExperimentOpts,
    class: (usize, usize),
) -> (String, Summary, Summary) {
    let inst = class_instance(class, opts.seed);
    let runs = opts.runs();
    let outcomes: Vec<(f64, f64)> = (0..runs)
        .into_par_iter()
        .map(|run| {
            let r = Carbon::new(&inst, cfg.clone())
                .run(seed_stream(opts.seed, 0x2000 + run as u64));
            (r.best_gap, r.best_ul_value)
        })
        .collect();
    let mut gaps = Summary::new();
    let mut uls = Summary::new();
    for (g, u) in outcomes {
        gaps.push(g);
        uls.push(u);
    }
    (label.to_string(), gaps, uls)
}

fn run_weights_variant(
    label: &str,
    cfg: CarbonConfig,
    opts: &ExperimentOpts,
    class: (usize, usize),
) -> (String, Summary, Summary) {
    let inst = class_instance(class, opts.seed);
    let runs = opts.runs();
    let outcomes: Vec<(f64, f64)> = (0..runs)
        .into_par_iter()
        .map(|run| {
            let r = CarbonWeights::new(&inst, cfg.clone())
                .run(seed_stream(opts.seed, 0x2000 + run as u64));
            (r.best_gap, r.best_ul_value)
        })
        .collect();
    let mut gaps = Summary::new();
    let mut uls = Summary::new();
    for (g, u) in outcomes {
        gaps.push(g);
        uls.push(u);
    }
    (label.to_string(), gaps, uls)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(|s| s.as_str()).unwrap_or("fitness");
    let opts = ExperimentOpts::from_args(&args);
    let class = (100, 10);
    let base = match opts.tier {
        BudgetTier::Full => BudgetTier::Full.carbon_config(),
        t => t.carbon_config(),
    };

    let variants: Vec<(String, Summary, Summary)> = match which {
        "fitness" => vec![
            run_variant("gap fitness (CARBON)", base.clone(), &opts, class),
            run_variant(
                "LL-cost fitness (COBRA criterion)",
                CarbonConfig { gap_fitness: false, ..base },
                &opts,
                class,
            ),
        ],
        "terminals" => vec![
            run_variant("full Table I terminals", base.clone(), &opts, class),
            run_variant(
                "no LP terminals (d_k, x̄_j dropped)",
                CarbonConfig { lp_terminals: false, ..base },
                &opts,
                class,
            ),
        ],
        "archive" => vec![
            run_variant("archives on", base.clone(), &opts, class),
            run_variant(
                "archives off",
                CarbonConfig { use_archives: false, ..base },
                &opts,
                class,
            ),
        ],
        "representation" => vec![
            run_variant("GP trees (CARBON)", base.clone(), &opts, class),
            run_weights_variant("linear weights (CARBON-W)", base, &opts, class),
        ],
        other => {
            eprintln!(
                "unknown ablation {other:?}; use fitness|terminals|archive|representation"
            );
            std::process::exit(2);
        }
    };

    eprintln!(
        "Ablation `{which}` on class {}x{} — tier {:?}, {} runs/variant",
        class.0,
        class.1,
        opts.tier,
        opts.runs()
    );
    let rows: Vec<Vec<String>> = variants
        .iter()
        .map(|(label, gaps, uls)| {
            vec![
                label.clone(),
                format!("{:.2}", gaps.mean()),
                format!("{:.2}", gaps.min()),
                format!("{:.2}", uls.mean()),
                format!("{:.2}", uls.max()),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["variant", "mean %-gap", "best %-gap", "mean UL", "best UL"], &rows)
    );
}
