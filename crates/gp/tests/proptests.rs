//! Property tests for the GP engine: structural invariants survive any
//! sequence of variation operators, evaluation is total and finite, and
//! simplification is semantics-preserving.

use bico_gp::{
    full, grow, mutate_point, mutate_shrink, mutate_uniform, parse_sexpr, ramped_half_and_half,
    simplify, subtree_crossover, to_sexpr, CompiledEvaluator, CompiledProgram, Evaluator, Expr,
    Node, PrimitiveSet, VariationConfig,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn table1_like_ps() -> PrimitiveSet {
    let mut ps = PrimitiveSet::arithmetic();
    for name in ["cj", "qj", "bk", "dk", "xbar"] {
        ps.add_terminal(name);
    }
    ps.set_const_range(-2.0, 2.0);
    ps
}

fn random_tree(seed: u64, max_depth: usize) -> (PrimitiveSet, Expr) {
    let ps = table1_like_ps();
    let mut rng = SmallRng::seed_from_u64(seed);
    let e = grow(&ps, 0, max_depth, &mut rng).unwrap();
    (ps, e)
}

/// Operator applications in a prefix node slice (what the compiler
/// emits instructions for — terminals and constants are operand refs).
fn ops_in(nodes: &[Node]) -> usize {
    nodes.iter().filter(|n| matches!(n, Node::Op(_))).count()
}

/// Self-graft: replace the subtree rooted at `at` with `(+ S S)` where
/// `S` is that subtree, guaranteeing the result contains a duplicated
/// subtree (the raw material of common-subexpression elimination).
fn self_graft(e: &Expr, at: usize, ps: &PrimitiveSet) -> Expr {
    let sub: Vec<Node> = e.nodes()[e.subtree(at, ps)].to_vec();
    let mut grafted = Vec::with_capacity(1 + 2 * sub.len());
    grafted.push(Node::Op(0)); // "+" in PrimitiveSet::arithmetic
    grafted.extend_from_slice(&sub);
    grafted.extend_from_slice(&sub);
    let mut out = e.clone();
    out.replace_subtree(at, &grafted, ps);
    out
}

/// Terminal-value strategy biased toward the adversarial cases the
/// evaluator's `sanitize` handles: NaN, ±∞, signed zero, clamp-magnitude
/// values, and near-`PROTECT_EPS` denominators. A macro (expanded inside
/// `proptest!`) rather than an `impl Strategy` fn so the suite still
/// compiles against proptest stand-ins that only provide the macro.
macro_rules! term_value {
    () => {
        prop_oneof![
            6 => -1e12f64..1e12,
            1 => Just(f64::NAN),
            1 => Just(f64::INFINITY),
            1 => Just(f64::NEG_INFINITY),
            1 => Just(1e305),
            1 => Just(-1e305),
            1 => Just(-0.0),
            1 => Just(1e-10),
        ]
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn generated_trees_are_valid_and_bounded(seed: u64, depth in 0usize..7) {
        let (ps, e) = random_tree(seed, depth);
        prop_assert!(e.validate(&ps).is_ok());
        prop_assert!(e.depth(&ps) <= depth);
    }

    #[test]
    fn evaluation_is_always_finite(seed: u64, vals in proptest::collection::vec(-1e12f64..1e12, 5)) {
        let (ps, e) = random_tree(seed, 6);
        let v = Evaluator::new().eval(&e, &ps, &vals);
        prop_assert!(v.is_finite(), "eval produced {v}");
    }

    #[test]
    fn variation_chain_preserves_invariants(seed: u64, steps in 1usize..12) {
        let ps = table1_like_ps();
        let cfg = VariationConfig { max_depth: 8, mutation_grow_depth: 2 };
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pop = ramped_half_and_half(&ps, 8, 1, 4, &mut rng).unwrap();
        for step in 0..steps {
            let a = pop[step % pop.len()].clone();
            let b = pop[(step + 1) % pop.len()].clone();
            let (c1, c2) = subtree_crossover(&a, &b, &ps, &cfg, &mut rng);
            let m1 = mutate_uniform(&c1, &ps, &cfg, &mut rng);
            let m2 = mutate_point(&c2, &ps, &mut rng);
            let m3 = mutate_shrink(&m1, &ps, &mut rng);
            for e in [&c1, &c2, &m1, &m2, &m3] {
                prop_assert!(e.validate(&ps).is_ok(), "invalid tree after variation");
                prop_assert!(e.depth(&ps) <= 8, "depth limit violated");
            }
            let idx = step % pop.len();
            pop[idx] = m3;
        }
    }

    #[test]
    fn simplify_preserves_semantics(
        seed: u64,
        vals in proptest::collection::vec(-1e6f64..1e6, 5),
    ) {
        let (ps, e) = random_tree(seed, 6);
        let s = simplify(&e, &ps);
        prop_assert!(s.validate(&ps).is_ok());
        prop_assert!(s.len() <= e.len(), "simplify must never grow a tree");
        let mut ev = Evaluator::new();
        let v0 = ev.eval(&e, &ps, &vals);
        let v1 = ev.eval(&s, &ps, &vals);
        prop_assert_eq!(v0, v1, "simplify changed semantics: {} vs {}", v0, v1);
    }

    #[test]
    fn sexpr_roundtrip_is_exact(seed: u64, depth in 0usize..7) {
        let (ps, e) = random_tree(seed, depth);
        let text = to_sexpr(&e, &ps);
        let back = parse_sexpr(&text, &ps).unwrap();
        prop_assert_eq!(&back, &e, "roundtrip changed the tree: {}", text);
    }

    #[test]
    fn full_trees_are_perfect(seed: u64, depth in 0usize..6) {
        let ps = table1_like_ps();
        let mut rng = SmallRng::seed_from_u64(seed);
        let e = full(&ps, depth, &mut rng).unwrap();
        prop_assert_eq!(e.depth(&ps), depth);
        // A full binary tree over binary ops has exactly 2^(d+1)-1 nodes.
        prop_assert_eq!(e.len(), (1usize << (depth + 1)) - 1);
    }

    #[test]
    fn compiled_matches_interpreter_bitwise(
        seed: u64,
        depth in 0usize..8,
        vals in proptest::collection::vec(term_value!(), 5),
    ) {
        let (ps, e) = random_tree(seed, depth);
        let prog = CompiledProgram::compile(&e, &ps).unwrap();
        let mut iev = Evaluator::new();
        let mut cev = CompiledEvaluator::new();
        let i = iev.eval(&e, &ps, &vals);
        let c = cev.eval(&prog, &vals);
        prop_assert_eq!(
            c.to_bits(), i.to_bits(),
            "compiled {} != interpreted {} for tree {}", c, i, to_sexpr(&e, &ps)
        );
        prop_assert_eq!(cev.nodes_evaluated(), iev.nodes_evaluated());
    }

    #[test]
    fn cse_dedups_self_grafted_duplicates(
        seed: u64,
        depth in 1usize..7,
        at_sel: u64,
        vals in proptest::collection::vec(term_value!(), 5),
    ) {
        let (ps, e) = random_tree(seed, depth);
        let at = (at_sel % e.len() as u64) as usize;
        let g = self_graft(&e, at, &ps);
        prop_assert!(g.validate(&ps).is_ok());
        let prog = CompiledProgram::compile(&g, &ps).unwrap();
        // (a) CSE must not change a bit of the result, including on
        // NaN/±∞ inputs, and node accounting still charges the source.
        let mut iev = Evaluator::new();
        let mut cev = CompiledEvaluator::new();
        let i = iev.eval(&g, &ps, &vals);
        let c = cev.eval(&prog, &vals);
        prop_assert_eq!(
            c.to_bits(), i.to_bits(),
            "CSE diverged: compiled {} != interpreted {} for {}", c, i, to_sexpr(&g, &ps)
        );
        prop_assert_eq!(cev.nodes_evaluated(), iev.nodes_evaluated());
        // (b) sharing is real: the program is always shorter than the
        // source (strictly below node count), and when the duplicated
        // subtree applies at least one operator, strictly below even the
        // source's operator count — the duplicate's ops were not re-emitted.
        prop_assert!(prog.num_instructions() < g.len());
        let dup_ops = ops_in(&e.nodes()[e.subtree(at, &ps)]);
        if dup_ops >= 1 {
            prop_assert!(
                prog.num_instructions() < ops_in(g.nodes()),
                "{} instrs for {} ops in {}",
                prog.num_instructions(), ops_in(g.nodes()), to_sexpr(&g, &ps)
            );
        }
    }

    #[test]
    fn batch_matches_scalar_rows_bitwise(
        seed: u64,
        depth in 0usize..8,
        rows in proptest::collection::vec(proptest::collection::vec(term_value!(), 5), 1..24),
    ) {
        let (ps, e) = random_tree(seed, depth);
        let prog = CompiledProgram::compile(&e, &ps).unwrap();
        // Transpose row-major samples into terminal columns.
        let n = rows.len();
        let cols: Vec<Vec<f64>> = (0..5).map(|t| rows.iter().map(|r| r[t]).collect()).collect();
        let col_refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let mut cev = CompiledEvaluator::new();
        let mut out = Vec::new();
        cev.eval_batch(&prog, &col_refs, n, &mut out);
        prop_assert_eq!(out.len(), n);
        let mut iev = Evaluator::new();
        for (row, tv) in rows.iter().enumerate() {
            let i = iev.eval(&e, &ps, tv);
            prop_assert_eq!(
                out[row].to_bits(), i.to_bits(),
                "row {} diverged: batch {} vs interpreted {}", row, out[row], i
            );
        }
        prop_assert_eq!(cev.nodes_evaluated(), iev.nodes_evaluated());
    }
}

/// Deterministic twin of the differential properties above: a fixed sweep
/// of seeded random trees × adversarial terminal vectors, so the
/// bit-identity guarantee is exercised even where the proptest runner is
/// unavailable.
#[test]
fn compiled_differential_deterministic_twin() {
    let ps = table1_like_ps();
    let specials = [
        0.0,
        -0.0,
        1.0,
        -1.0,
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        1e305,
        -1e305,
        1e-10,
        -3.75,
        12345.678,
    ];
    let mut iev = Evaluator::new();
    let mut cev = CompiledEvaluator::new();
    let mut out = Vec::new();
    for seed in 0..200u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let e = grow(&ps, 0, (seed % 8) as usize, &mut rng).unwrap();
        let prog = CompiledProgram::compile(&e, &ps).unwrap();
        // 8 terminal vectors per tree, drawn from the special pool.
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for r in 0..8u64 {
            let tv: Vec<f64> = (0..5)
                .map(|t| specials[((seed * 31 + r * 7 + t) % specials.len() as u64) as usize])
                .collect();
            let i = iev.eval(&e, &ps, &tv);
            let c = cev.eval(&prog, &tv);
            assert_eq!(
                c.to_bits(),
                i.to_bits(),
                "seed {seed} row {r}: compiled {c} != interpreted {i} for {}",
                to_sexpr(&e, &ps)
            );
            rows.push(tv);
        }
        let cols: Vec<Vec<f64>> = (0..5).map(|t| rows.iter().map(|r| r[t]).collect()).collect();
        let col_refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        cev.eval_batch(&prog, &col_refs, rows.len(), &mut out);
        for (row, tv) in rows.iter().enumerate() {
            let i = iev.eval(&e, &ps, tv);
            assert_eq!(out[row].to_bits(), i.to_bits(), "seed {seed} batch row {row} diverged");
        }
    }
    // Node accounting stayed in lockstep across the whole sweep: the
    // interpreter ran each row twice (scalar + batch check), the compiled
    // path once each scalar and batched.
    assert_eq!(iev.nodes_evaluated(), cev.nodes_evaluated());
}

/// Chunk-lane adversarial sweep for the fixed-width batched kernels: a
/// single special value (NaN, ±∞, -0.0, near-overflow) rotates through
/// every row position of a 19-row batch — two full 8-lane chunks plus a
/// 3-row scalar tail — so a lane that mishandles non-finite inputs,
/// reorders reductions, or leaks into a neighbouring lane breaks
/// bit-identity with the scalar path at a pinpointed position.
#[test]
fn batch_chunk_lanes_handle_specials_in_every_position() {
    let ps = table1_like_ps();
    let specials = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 1e305];
    let n = 19;
    let mut iev = Evaluator::new();
    let mut cev = CompiledEvaluator::new();
    let mut out = Vec::new();
    for seed in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let e = grow(&ps, 1, 1 + (seed % 7) as usize, &mut rng).unwrap();
        let prog = CompiledProgram::compile(&e, &ps).unwrap();
        for &special in &specials {
            for pos in 0..n {
                let rows: Vec<Vec<f64>> =
                    (0..n)
                        .map(|r| {
                            (0..5)
                                .map(|t| {
                                    if r == pos {
                                        special
                                    } else {
                                        (r as f64) - 2.0 * (t as f64)
                                    }
                                })
                                .collect()
                        })
                        .collect();
                let cols: Vec<Vec<f64>> =
                    (0..5).map(|t| rows.iter().map(|r| r[t]).collect()).collect();
                let col_refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
                cev.eval_batch(&prog, &col_refs, n, &mut out);
                for (row, tv) in rows.iter().enumerate() {
                    let i = iev.eval(&e, &ps, tv);
                    assert_eq!(
                        out[row].to_bits(),
                        i.to_bits(),
                        "seed {seed}: special {special} at row {pos} corrupted row {row} of {}",
                        to_sexpr(&e, &ps)
                    );
                }
            }
        }
    }
    assert_eq!(iev.nodes_evaluated(), cev.nodes_evaluated());
}

/// Deterministic twin of `cse_dedups_self_grafted_duplicates`: seeded
/// self-grafted trees × adversarial inputs, scalar and batched.
#[test]
fn cse_differential_deterministic_twin() {
    let ps = table1_like_ps();
    let specials =
        [0.0, -0.0, 1.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1e305, 1e-10, -3.75];
    let mut iev = Evaluator::new();
    let mut cev = CompiledEvaluator::new();
    let mut out = Vec::new();
    let mut op_dups = 0usize;
    for seed in 0..150u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let e = grow(&ps, 1, 1 + (seed % 6) as usize, &mut rng).unwrap();
        let at = (seed.wrapping_mul(17) % e.len() as u64) as usize;
        let g = self_graft(&e, at, &ps);
        g.validate(&ps).unwrap();
        let prog = CompiledProgram::compile(&g, &ps).unwrap();
        assert!(prog.num_instructions() < g.len(), "seed {seed}");
        if ops_in(&e.nodes()[e.subtree(at, &ps)]) >= 1 {
            assert!(
                prog.num_instructions() < ops_in(g.nodes()),
                "seed {seed}: duplicated ops were re-emitted"
            );
            op_dups += 1;
        }
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for r in 0..6u64 {
            let tv: Vec<f64> = (0..5)
                .map(|t| specials[((seed * 13 + r * 7 + t) % specials.len() as u64) as usize])
                .collect();
            let i = iev.eval(&g, &ps, &tv);
            let c = cev.eval(&prog, &tv);
            assert_eq!(
                c.to_bits(),
                i.to_bits(),
                "seed {seed} row {r}: CSE diverged on {}",
                to_sexpr(&g, &ps)
            );
            rows.push(tv);
        }
        let cols: Vec<Vec<f64>> = (0..5).map(|t| rows.iter().map(|r| r[t]).collect()).collect();
        let col_refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        cev.eval_batch(&prog, &col_refs, rows.len(), &mut out);
        for (row, tv) in rows.iter().enumerate() {
            let i = iev.eval(&g, &ps, tv);
            assert_eq!(out[row].to_bits(), i.to_bits(), "seed {seed} batch row {row} diverged");
        }
    }
    assert_eq!(iev.nodes_evaluated(), cev.nodes_evaluated());
    assert!(op_dups >= 30, "sweep too weak: only {op_dups} operator-arity duplicates");
}
