//! Cross-crate integration: full CARBON and COBRA runs through the
//! public facade, on the same generated instance.

use bico::bcpop::{generate, GeneratorConfig, RelaxationSolver};
use bico::cobra::{Cobra, CobraConfig};
use bico::core::{Carbon, CarbonConfig};

fn instance() -> bico::bcpop::BcpopInstance {
    generate(&GeneratorConfig { num_bundles: 50, num_services: 6, ..Default::default() }, 1234)
}

#[test]
fn carbon_end_to_end() {
    let inst = instance();
    let cfg = CarbonConfig {
        ul_pop_size: 16,
        ll_pop_size: 16,
        ul_archive_size: 16,
        ll_archive_size: 16,
        ul_evaluations: 800,
        ll_evaluations: 800,
        ..Default::default()
    };
    let r = Carbon::new(&inst, cfg).run(5);
    assert!(r.generations >= 10);
    assert_eq!(r.best_pricing.len(), inst.num_own());
    for (j, &p) in r.best_pricing.iter().enumerate() {
        assert!(
            (0.0..=inst.price_cap()).contains(&p),
            "price {j} = {p} outside [0, {}]",
            inst.price_cap()
        );
    }
    assert!(r.best_gap.is_finite() && r.best_gap >= -1e-9);
    assert!(r.best_ul_value >= 0.0);

    // The champion heuristic must actually produce a covering reaction
    // on the best pricing.
    use bico::bcpop::{greedy_cover, GpScorer};
    let costs = inst.costs_for(&r.best_pricing);
    let relax = RelaxationSolver::new(&inst).solve(&costs).unwrap();
    let ps = bico::bcpop::bcpop_primitives();
    let mut scorer = GpScorer::new(&r.best_heuristic, &ps);
    let out = greedy_cover(&inst, &costs, &mut scorer, Some(&relax));
    assert!(out.feasible);
    assert!(inst.is_covering(&out.chosen));
    assert!(out.cost >= relax.lower_bound - 1e-6);
}

#[test]
fn cobra_end_to_end() {
    let inst = instance();
    let cfg = CobraConfig {
        ul_pop_size: 16,
        ll_pop_size: 16,
        ul_archive_size: 16,
        ll_archive_size: 16,
        ul_evaluations: 800,
        ll_evaluations: 800,
        improvement_gens: 4,
        ..Default::default()
    };
    let r = Cobra::new(&inst, cfg).run(5);
    assert!(r.cycles >= 5);
    assert!(inst.is_covering(&r.best_reaction));
    assert!(r.best_gap.is_finite() && r.best_gap >= -1e-9);
    // The reported lower-level value must be consistent with the reaction.
    let costs = inst.costs_for(&r.best_pricing);
    let recomputed = bico::bcpop::ll_cost(&costs, &r.best_reaction);
    let relax = RelaxationSolver::new(&inst).solve(&costs).unwrap();
    let gap = 100.0 * (recomputed - relax.lower_bound) / relax.lower_bound;
    assert!((gap - r.best_gap).abs() < 1e-6, "reported gap {} vs recomputed {gap}", r.best_gap);
}

#[test]
fn carbon_beats_cobra_on_gap_at_equal_budget() {
    // The paper's headline (Table III): CARBON's reactions are far closer
    // to rational. Checked on one instance, two seeds, small budget.
    let inst = instance();
    let evals = 1_000u64;
    let mut carbon_best = f64::INFINITY;
    let mut cobra_best = f64::INFINITY;
    for seed in [1u64, 2] {
        let c = Carbon::new(
            &inst,
            CarbonConfig {
                ul_pop_size: 20,
                ll_pop_size: 20,
                ul_archive_size: 20,
                ll_archive_size: 20,
                ul_evaluations: evals,
                ll_evaluations: evals,
                ..Default::default()
            },
        )
        .run(seed);
        carbon_best = carbon_best.min(c.best_gap);
        let b = Cobra::new(
            &inst,
            CobraConfig {
                ul_pop_size: 20,
                ll_pop_size: 20,
                ul_archive_size: 20,
                ll_archive_size: 20,
                ul_evaluations: evals,
                ll_evaluations: evals,
                ..Default::default()
            },
        )
        .run(seed);
        cobra_best = cobra_best.min(b.best_gap);
    }
    assert!(
        carbon_best < cobra_best,
        "CARBON gap {carbon_best} should beat COBRA gap {cobra_best}"
    );
}
