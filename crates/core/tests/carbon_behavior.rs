//! Behavioral tests for CARBON beyond smoke level: arms-race dynamics,
//! heuristic quality against handcrafted baselines, config knobs.

use bico_bcpop::{
    generate, greedy_cover, CostPerCoverageScorer, GeneratorConfig, GpScorer, RelaxationSolver,
};
use bico_core::{Carbon, CarbonConfig};

fn instance(seed: u64) -> bico_bcpop::BcpopInstance {
    generate(&GeneratorConfig { num_bundles: 60, num_services: 6, ..Default::default() }, seed)
}

fn cfg(pop: usize, evals: u64) -> CarbonConfig {
    CarbonConfig {
        ul_pop_size: pop,
        ll_pop_size: pop,
        ul_archive_size: pop,
        ll_archive_size: pop,
        ul_evaluations: evals,
        ll_evaluations: evals,
        ..Default::default()
    }
}

#[test]
fn evolved_champion_is_competitive_with_handcrafted_greedy() {
    // After a moderate run, the champion heuristic should be at worst
    // slightly behind the classic cost-per-coverage rule on the final
    // pricing (it usually wins; allow slack for the 2k-eval budget).
    let inst = instance(21);
    let r = Carbon::new(&inst, cfg(20, 2_000)).run(3);
    let costs = inst.costs_for(&r.best_pricing);
    let relax = RelaxationSolver::new(&inst).solve(&costs).unwrap();
    let ps = bico_bcpop::bcpop_primitives();
    let mut champ = GpScorer::new(&r.best_heuristic, &ps);
    let evolved = greedy_cover(&inst, &costs, &mut champ, Some(&relax));
    let handcrafted = greedy_cover(&inst, &costs, &mut CostPerCoverageScorer, Some(&relax));
    assert!(evolved.feasible && handcrafted.feasible);
    assert!(
        evolved.cost <= handcrafted.cost * 1.25,
        "champion ({}) much worse than handcrafted ({})",
        evolved.cost,
        handcrafted.cost
    );
}

#[test]
fn longer_budget_never_hurts_much() {
    // More evaluations should give a final gap at least as good, up to
    // stochastic noise (paired seeds, factor tolerance).
    let inst = instance(22);
    let short = Carbon::new(&inst, cfg(16, 480)).run(7);
    let long = Carbon::new(&inst, cfg(16, 3_200)).run(7);
    assert!(
        long.best_gap <= short.best_gap * 1.05 + 0.5,
        "long run gap {} much worse than short run gap {}",
        long.best_gap,
        short.best_gap
    );
}

#[test]
fn training_samples_knob_scales_ll_budget_use() {
    let inst = instance(23);
    let mut c = cfg(10, 400);
    c.training_samples = 4;
    let r = Carbon::new(&inst, c).run(1);
    // Each generation consumes pop * samples LL evals and pop UL evals:
    // with equal budgets the LL budget binds 4x earlier.
    assert_eq!(r.ll_evals_used, r.generations as u64 * 40);
    assert_eq!(r.ul_evals_used, r.generations as u64 * 10);
}

#[test]
fn gap_fitness_off_still_runs_but_tracks_cost() {
    let inst = instance(24);
    let mut c = cfg(12, 600);
    c.gap_fitness = false; // ablation: COBRA's criterion inside CARBON
    let r = Carbon::new(&inst, c).run(5);
    assert!(r.generations > 0);
    assert!(r.best_gap.is_finite());
}

#[test]
fn lp_terminals_off_still_produces_feasible_heuristics() {
    let inst = instance(25);
    let mut c = cfg(12, 600);
    c.lp_terminals = false; // ablation: no d_k / x̄_j terminals
    let r = Carbon::new(&inst, c).run(5);
    assert!(r.best_gap.is_finite());
    assert!(r.best_gap >= -1e-9);
}

#[test]
fn result_heuristic_roundtrips_through_sexpr() {
    let inst = instance(26);
    let solver = Carbon::new(&inst, cfg(10, 300));
    let r = solver.run(2);
    let text = bico_gp::to_sexpr(&r.best_heuristic, solver.primitives());
    let back = bico_gp::parse_sexpr(&text, solver.primitives()).unwrap();
    assert_eq!(back, r.best_heuristic);
}

#[test]
fn trace_evaluation_counters_are_monotone() {
    let inst = instance(27);
    let r = Carbon::new(&inst, cfg(10, 500)).run(4);
    let pts = r.trace.points();
    assert!(!pts.is_empty());
    for w in pts.windows(2) {
        assert!(w[1].evaluations > w[0].evaluations);
        assert_eq!(w[1].generation, w[0].generation + 1);
    }
    assert_eq!(pts.last().unwrap().evaluations, r.ul_evals_used + r.ll_evals_used);
}
