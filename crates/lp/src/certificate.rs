//! Independent optimality certificate: verifies the KKT conditions of a
//! returned solution against the original problem data.
//!
//! For linear programs, primal feasibility + dual sign feasibility +
//! complementary slackness is a *complete* proof of optimality, so this
//! check is used pervasively in tests (including property tests over
//! random covering LPs) to validate the simplex implementation without a
//! reference solver.

use crate::problem::{LpProblem, Relation, Sense};
use crate::solution::{LpSolution, LpStatus};

/// Verify the KKT conditions of `sol` for `p` within tolerance `tol`.
///
/// Checks performed (in the minimization convention; maximization models
/// are sign-flipped first):
///
/// 1. primal feasibility: bounds and rows hold within `tol` (scaled),
/// 2. dual sign feasibility: `y_i ≥ −tol` on `≥` rows, `y_i ≤ tol` on `≤` rows,
/// 3. reduced-cost consistency: `d_j = c_j − Σ_i y_i a_ij`,
/// 4. variable complementarity: interior variables have `|d_j| ≤ tol`,
///    `d_j > 0` forces `x_j` to its lower bound, `d_j < 0` to its upper,
/// 5. row complementarity: `|y_i (a_i·x − b_i)| ≤ tol` (scaled).
///
/// Returns `Err(description)` on the first violated condition.
#[allow(clippy::needless_range_loop)] // x, bounds and rows share the index
pub fn check_certificate(p: &LpProblem, sol: &LpSolution, tol: f64) -> Result<(), String> {
    if sol.status != LpStatus::Optimal {
        return Err(format!("solution status is {:?}, not Optimal", sol.status));
    }
    if sol.x.len() != p.n {
        return Err(format!("x has length {}, expected {}", sol.x.len(), p.n));
    }
    if sol.duals.len() != p.rows.len() {
        return Err(format!(
            "duals have length {}, expected {}",
            sol.duals.len(),
            p.rows.len()
        ));
    }

    let sense_sign = match p.sense {
        Sense::Min => 1.0,
        Sense::Max => -1.0,
    };
    // Internal minimization view.
    let c: Vec<f64> = p.obj.iter().map(|v| v * sense_sign).collect();
    let y: Vec<f64> = sol.duals.iter().map(|v| v * sense_sign).collect();

    let scale = 1.0
        + p.rhs.iter().fold(0.0f64, |a, b| a.max(b.abs()))
        + sol.x.iter().fold(0.0f64, |a, b| a.max(b.abs()));

    // 1. primal feasibility
    for j in 0..p.n {
        let xj = sol.x[j];
        if xj < p.lower[j] - tol * scale || xj > p.upper[j] + tol * scale {
            return Err(format!(
                "x[{j}] = {xj} violates bounds [{}, {}]",
                p.lower[j], p.upper[j]
            ));
        }
    }
    let mut activity = vec![0.0f64; p.rows.len()];
    for (i, row) in p.rows.iter().enumerate() {
        activity[i] = row.iter().map(|&(j, a)| a * sol.x[j]).sum();
        let b = p.rhs[i];
        let ok = match p.relations[i] {
            Relation::Le => activity[i] <= b + tol * scale,
            Relation::Ge => activity[i] >= b - tol * scale,
            Relation::Eq => (activity[i] - b).abs() <= tol * scale,
        };
        if !ok {
            return Err(format!(
                "row {i} infeasible: activity {} {:?} rhs {b}",
                activity[i], p.relations[i]
            ));
        }
    }

    // 2. dual sign feasibility (min convention)
    for (i, &yi) in y.iter().enumerate() {
        let ok = match p.relations[i] {
            Relation::Ge => yi >= -tol * scale,
            Relation::Le => yi <= tol * scale,
            Relation::Eq => true,
        };
        if !ok {
            return Err(format!(
                "dual {i} = {yi} has wrong sign for {:?} row (min convention)",
                p.relations[i]
            ));
        }
    }

    // 3. reduced-cost consistency
    let mut d = c.clone();
    for (i, row) in p.rows.iter().enumerate() {
        for &(j, a) in row {
            d[j] -= y[i] * a;
        }
    }
    if sol.reduced_costs.len() == p.n {
        for j in 0..p.n {
            let reported = sol.reduced_costs[j] * sense_sign;
            if (d[j] - reported).abs() > tol * scale * 10.0 {
                return Err(format!(
                    "reduced cost mismatch at {j}: recomputed {} vs reported {reported}",
                    d[j]
                ));
            }
        }
    }

    // 4. variable complementarity
    for j in 0..p.n {
        let xj = sol.x[j];
        let interior = xj > p.lower[j] + tol * scale && xj < p.upper[j] - tol * scale;
        if interior && d[j].abs() > tol * scale * 10.0 {
            return Err(format!("interior variable {j} has nonzero reduced cost {}", d[j]));
        }
        if d[j] > tol * scale * 10.0 && (xj - p.lower[j]).abs() > tol * scale * 10.0 {
            return Err(format!(
                "variable {j} has d = {} > 0 but sits at {xj}, not lower bound {}",
                d[j], p.lower[j]
            ));
        }
        if d[j] < -tol * scale * 10.0 && (xj - p.upper[j]).abs() > tol * scale * 10.0 {
            return Err(format!(
                "variable {j} has d = {} < 0 but sits at {xj}, not upper bound {}",
                d[j], p.upper[j]
            ));
        }
    }

    // 5. row complementarity
    for i in 0..p.rows.len() {
        let slack = activity[i] - p.rhs[i];
        if (y[i] * slack).abs() > tol * scale * scale {
            return Err(format!("row {i}: dual {} times slack {slack} is not ~0", y[i]));
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LpProblem, Relation};

    #[test]
    fn rejects_non_optimal_status() {
        let p = LpProblem::minimize(1);
        let sol = LpSolution::non_optimal(LpStatus::Infeasible, 0, 0);
        assert!(check_certificate(&p, &sol, 1e-6).is_err());
    }

    #[test]
    fn rejects_corrupted_primal() {
        let mut p = LpProblem::minimize(2);
        p.set_objective(&[2.0, 3.0]);
        p.add_constraint_dense(&[1.0, 1.0], Relation::Ge, 4.0);
        let mut sol = p.solve().unwrap();
        sol.x[0] = -100.0; // out of bounds
        assert!(check_certificate(&p, &sol, 1e-6).is_err());
    }

    #[test]
    fn rejects_suboptimal_feasible_point() {
        // x = (4, 0) is feasible for x+y >= 4 but not optimal for min 2x+3y;
        // the KKT complementarity check must flag it.
        let mut p = LpProblem::minimize(2);
        p.set_objective(&[2.0, 3.0]);
        p.add_constraint_dense(&[1.0, 1.0], Relation::Ge, 4.0);
        p.add_constraint_dense(&[1.0, 2.0], Relation::Ge, 6.0);
        let mut sol = p.solve().unwrap();
        sol.x = vec![6.0, 0.0];
        assert!(check_certificate(&p, &sol, 1e-6).is_err());
    }

    #[test]
    fn accepts_genuine_optimum() {
        let mut p = LpProblem::minimize(2);
        p.set_objective(&[2.0, 3.0]);
        p.add_constraint_dense(&[1.0, 1.0], Relation::Ge, 4.0);
        let sol = p.solve().unwrap();
        check_certificate(&p, &sol, 1e-6).unwrap();
    }
}
