//! GP variation operators.
//!
//! Table II of the paper configures the lower-level population with
//! "(GP) One-point" crossover (subtree exchange), "(GP) uniform" mutation
//! (random-subtree replacement, DEAP's `mutUniform`) and a reproduction
//! operator (cloning — handled by the algorithm loop). Point and shrink
//! mutation are provided as extensions used by the ablation studies.
//!
//! All operators enforce a static depth limit: a child exceeding
//! [`VariationConfig::max_depth`] is replaced by a clone of its first
//! parent, mirroring DEAP's `staticLimit` decorator that the original
//! implementation relied on.

use crate::generate::grow;
use crate::primitives::PrimitiveSet;
use crate::tree::{Expr, Node};
use rand::Rng;

/// Depth limits for variation.
#[derive(Debug, Clone, Copy)]
pub struct VariationConfig {
    /// Maximum tree depth a child may have (Koza's classic limit is 17).
    pub max_depth: usize,
    /// Depth window `[0, mutation_grow_depth]` of subtrees grown by
    /// uniform mutation.
    pub mutation_grow_depth: usize,
}

impl Default for VariationConfig {
    fn default() -> Self {
        VariationConfig { max_depth: 17, mutation_grow_depth: 2 }
    }
}

/// Exchange a random subtree of `a` with a random subtree of `b`.
///
/// Children violating the depth limit are replaced by a clone of the
/// respective parent.
pub fn subtree_crossover<R: Rng + ?Sized>(
    a: &Expr,
    b: &Expr,
    ps: &PrimitiveSet,
    cfg: &VariationConfig,
    rng: &mut R,
) -> (Expr, Expr) {
    let pa = rng.random_range(0..a.len());
    let pb = rng.random_range(0..b.len());
    let ra = a.subtree(pa, ps);
    let rb = b.subtree(pb, ps);

    let mut child_a = a.clone();
    child_a.replace_subtree(pa, &b.nodes()[rb.clone()], ps);
    let mut child_b = b.clone();
    child_b.replace_subtree(pb, &a.nodes()[ra], ps);

    let child_a = if child_a.depth(ps) > cfg.max_depth { a.clone() } else { child_a };
    let child_b = if child_b.depth(ps) > cfg.max_depth { b.clone() } else { child_b };
    (child_a, child_b)
}

/// Uniform mutation: replace a random subtree with a freshly grown one
/// (depth ≤ [`VariationConfig::mutation_grow_depth`]).
pub fn mutate_uniform<R: Rng + ?Sized>(
    e: &Expr,
    ps: &PrimitiveSet,
    cfg: &VariationConfig,
    rng: &mut R,
) -> Expr {
    let point = rng.random_range(0..e.len());
    let sub = grow(ps, 0, cfg.mutation_grow_depth, rng)
        .expect("primitive set must support generation");
    let mut child = e.clone();
    child.replace_subtree(point, sub.nodes(), ps);
    if child.depth(ps) > cfg.max_depth {
        e.clone()
    } else {
        child
    }
}

/// Point mutation: replace one node with a random node of identical arity
/// (operators swap with same-arity operators; leaves swap with leaves).
pub fn mutate_point<R: Rng + ?Sized>(e: &Expr, ps: &PrimitiveSet, rng: &mut R) -> Expr {
    let point = rng.random_range(0..e.len());
    let mut nodes = e.nodes().to_vec();
    match nodes[point] {
        Node::Op(id) => {
            let arity = ps.arity(id as usize);
            let same_arity: Vec<u16> =
                (0..ps.num_ops()).filter(|&j| ps.arity(j) == arity).map(|j| j as u16).collect();
            nodes[point] = Node::Op(same_arity[rng.random_range(0..same_arity.len())]);
        }
        Node::Term(_) | Node::Const(_) => {
            let n_term = ps.num_terminals();
            nodes[point] = match ps.const_range() {
                Some((lo, hi)) if n_term == 0 || rng.random_range(0..=n_term) == n_term => {
                    Node::Const(rng.random_range(lo..=hi))
                }
                _ => Node::Term(rng.random_range(0..n_term) as u16),
            };
        }
    }
    Expr::from_nodes(nodes)
}

/// Hoist mutation: replace the whole tree with one of its proper
/// subtrees — the classic anti-bloat operator (Kinnear). Returns a
/// clone when the tree is a single leaf.
pub fn mutate_hoist<R: Rng + ?Sized>(e: &Expr, ps: &PrimitiveSet, rng: &mut R) -> Expr {
    if e.len() <= 1 {
        return e.clone();
    }
    // Any position except the root yields a proper subtree.
    let point = rng.random_range(1..e.len());
    let range = e.subtree(point, ps);
    Expr::from_nodes(e.nodes()[range].to_vec())
}

/// Shrink mutation: replace a random operator subtree with one of the
/// leaves it contains, shortening the tree.
pub fn mutate_shrink<R: Rng + ?Sized>(e: &Expr, ps: &PrimitiveSet, rng: &mut R) -> Expr {
    let op_positions: Vec<usize> = e
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| matches!(n, Node::Op(_)))
        .map(|(i, _)| i)
        .collect();
    if op_positions.is_empty() {
        return e.clone();
    }
    let point = op_positions[rng.random_range(0..op_positions.len())];
    let range = e.subtree(point, ps);
    let leaves: Vec<Node> = e.nodes()[range.clone()]
        .iter()
        .filter(|n| !matches!(n, Node::Op(_)))
        .copied()
        .collect();
    let leaf = leaves[rng.random_range(0..leaves.len())];
    let mut child = e.clone();
    child.replace_subtree(point, &[leaf], ps);
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::ramped_half_and_half;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ps() -> PrimitiveSet {
        let mut ps = PrimitiveSet::arithmetic();
        ps.add_terminal("a");
        ps.add_terminal("b");
        ps
    }

    #[test]
    fn crossover_children_are_wellformed() {
        let ps = ps();
        let cfg = VariationConfig::default();
        let mut rng = SmallRng::seed_from_u64(11);
        let pop = ramped_half_and_half(&ps, 40, 1, 5, &mut rng).unwrap();
        for pair in pop.chunks(2) {
            let (c1, c2) = subtree_crossover(&pair[0], &pair[1], &ps, &cfg, &mut rng);
            c1.validate(&ps).unwrap();
            c2.validate(&ps).unwrap();
        }
    }

    #[test]
    fn crossover_respects_depth_limit() {
        let ps = ps();
        let cfg = VariationConfig { max_depth: 4, mutation_grow_depth: 2 };
        let mut rng = SmallRng::seed_from_u64(12);
        let pop = ramped_half_and_half(&ps, 60, 2, 4, &mut rng).unwrap();
        for pair in pop.chunks(2) {
            let (c1, c2) = subtree_crossover(&pair[0], &pair[1], &ps, &cfg, &mut rng);
            assert!(c1.depth(&ps) <= 4);
            assert!(c2.depth(&ps) <= 4);
        }
    }

    #[test]
    fn uniform_mutation_is_wellformed_and_bounded() {
        let ps = ps();
        let cfg = VariationConfig { max_depth: 6, mutation_grow_depth: 2 };
        let mut rng = SmallRng::seed_from_u64(13);
        let pop = ramped_half_and_half(&ps, 50, 1, 6, &mut rng).unwrap();
        for e in &pop {
            let m = mutate_uniform(e, &ps, &cfg, &mut rng);
            m.validate(&ps).unwrap();
            assert!(m.depth(&ps) <= 6);
        }
    }

    #[test]
    fn point_mutation_preserves_shape() {
        let ps = ps();
        let mut rng = SmallRng::seed_from_u64(14);
        let pop = ramped_half_and_half(&ps, 50, 1, 5, &mut rng).unwrap();
        for e in &pop {
            let m = mutate_point(e, &ps, &mut rng);
            m.validate(&ps).unwrap();
            assert_eq!(m.len(), e.len(), "point mutation must not change size");
            assert_eq!(m.depth(&ps), e.depth(&ps));
        }
    }

    #[test]
    fn hoist_strictly_shrinks_composite_trees() {
        let ps = ps();
        let mut rng = SmallRng::seed_from_u64(21);
        let pop = ramped_half_and_half(&ps, 50, 1, 5, &mut rng).unwrap();
        for e in &pop {
            let m = mutate_hoist(e, &ps, &mut rng);
            m.validate(&ps).unwrap();
            if e.len() > 1 {
                assert!(m.len() < e.len(), "hoist must strictly shrink");
            } else {
                assert_eq!(&m, e);
            }
        }
    }

    #[test]
    fn shrink_mutation_never_grows() {
        let ps = ps();
        let mut rng = SmallRng::seed_from_u64(15);
        let pop = ramped_half_and_half(&ps, 50, 1, 5, &mut rng).unwrap();
        for e in &pop {
            let m = mutate_shrink(e, &ps, &mut rng);
            m.validate(&ps).unwrap();
            assert!(m.len() <= e.len());
        }
    }

    #[test]
    fn shrink_on_leaf_is_identity() {
        let ps = ps();
        let mut rng = SmallRng::seed_from_u64(16);
        let e = Expr::terminal(0);
        assert_eq!(mutate_shrink(&e, &ps, &mut rng), e);
    }

    #[test]
    fn operators_are_deterministic_per_seed() {
        let ps = ps();
        let cfg = VariationConfig::default();
        let pop =
            ramped_half_and_half(&ps, 10, 1, 4, &mut SmallRng::seed_from_u64(17)).unwrap();
        let mut r1 = SmallRng::seed_from_u64(99);
        let mut r2 = SmallRng::seed_from_u64(99);
        let (a1, b1) = subtree_crossover(&pop[0], &pop[1], &ps, &cfg, &mut r1);
        let (a2, b2) = subtree_crossover(&pop[0], &pop[1], &ps, &cfg, &mut r2);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
    }
}
