//! Property-based tests for the simplex solver.
//!
//! Strategy: generate random covering-style LPs (the exact family CARBON
//! solves tens of thousands of times) plus random general LPs, solve them,
//! and validate the full KKT certificate. Because the certificate is a
//! complete optimality proof for linear programs, these tests do not need
//! a reference solver.

use bico_lp::{check_certificate, LpProblem, LpStatus, Relation, SimplexOptions, SparseMode};
use proptest::prelude::*;

/// Solve `p` on both implementations and require full agreement: same
/// status, and when optimal, matching objectives and a passing KKT
/// certificate from each. Pivot routes may differ (the sparse path
/// prices sectionally); the certificate is the agreement criterion.
fn assert_sparse_dense_agree(p: &LpProblem, label: &str) {
    let dense = p
        .solve_with(&SimplexOptions { sparse: SparseMode::Never, ..Default::default() })
        .unwrap();
    let sparse = p
        .solve_with(&SimplexOptions { sparse: SparseMode::Always, ..Default::default() })
        .unwrap();
    assert_eq!(dense.status, sparse.status, "{label}: statuses diverged");
    if dense.status == LpStatus::Optimal {
        let tol = 1e-6 * (1.0 + dense.objective.abs());
        assert!(
            (dense.objective - sparse.objective).abs() <= tol,
            "{label}: dense {} vs sparse {}",
            dense.objective,
            sparse.objective
        );
        assert!(
            check_certificate(p, &dense, 1e-6).is_ok(),
            "{label}: dense certificate failed: {:?}",
            check_certificate(p, &dense, 1e-6)
        );
        assert!(
            check_certificate(p, &sparse, 1e-6).is_ok(),
            "{label}: sparse certificate failed: {:?}",
            check_certificate(p, &sparse, 1e-6)
        );
    }
}

/// Deterministic twin of the sparse-vs-dense differential properties
/// below: a fixed sweep of seeded covering and general LPs through the
/// same agreement check, so the differential guarantee is exercised even
/// where the proptest runner is unavailable.
#[test]
fn sparse_dense_fixed_sweep_agrees() {
    for seed in 0..40u32 {
        let data: Vec<u8> = (0..192u32).map(|i| ((i * 97 + seed * 131) % 251) as u8).collect();
        let n = 4 + (seed as usize * 7) % 30;
        let m = 1 + (seed as usize * 3) % 10;
        let p = covering_lp(n, m, &data);
        assert_sparse_dense_agree(&p, &format!("covering seed {seed}"));
    }
    // General LPs: mixed relations, including infeasible windows.
    for seed in 0..40u32 {
        let n = 1 + (seed as usize) % 6;
        let mut p = LpProblem::minimize(n);
        for j in 0..n {
            p.set_objective_coeff(j, ((seed as i32 * 7 + j as i32 * 5) % 19 - 9) as f64);
            p.set_bounds(j, 0.0, 1.0 + ((seed as usize + j) % 30) as f64);
        }
        for r in 0..(seed as usize % 4) {
            let rel = match (seed as usize + r) % 3 {
                0 => Relation::Le,
                1 => Relation::Ge,
                _ => Relation::Eq,
            };
            let dense_row: Vec<f64> = (0..n)
                .map(|j| ((seed as i32 + r as i32 * 3 + j as i32) % 11 - 5) as f64)
                .collect();
            let rhs = ((seed as i32 * 13 + r as i32 * 17) % 41 - 20) as f64;
            p.add_constraint_dense(&dense_row, rel, rhs);
        }
        assert_sparse_dense_agree(&p, &format!("general seed {seed}"));
    }
}

/// Random covering LP: min c·x, Qx ≥ b, 0 ≤ x ≤ 1 with Q ≥ 0 and
/// b scaled so the all-ones point is feasible (guarantees feasibility).
fn covering_lp(n: usize, m: usize, seed_data: &[u8]) -> LpProblem {
    let mut p = LpProblem::minimize(n);
    let mut it = seed_data.iter().cycle();
    let mut next = || *it.next().unwrap() as f64;
    let costs: Vec<f64> = (0..n).map(|_| 1.0 + next()).collect();
    p.set_objective(&costs);
    for j in 0..n {
        p.set_bounds(j, 0.0, 1.0);
    }
    for _ in 0..m {
        let row: Vec<f64> = (0..n).map(|_| (next() % 16.0).floor()).collect();
        let total: f64 = row.iter().sum();
        // b <= total ensures x = 1 is feasible.
        let b = (total * (0.2 + (next() % 60.0) / 100.0)).floor();
        p.add_constraint_dense(&row, Relation::Ge, b);
    }
    p
}

/// Deterministic twin of the warm-start properties below, using fixed
/// data through the exact same code path — it keeps the scenario covered
/// (and type-checked) even in environments where the `proptest!` bodies
/// are compiled out.
#[test]
fn warm_start_fixed_case_matches_cold() {
    let data: Vec<u8> = (0..128u32).map(|i| (i * 37 % 251) as u8).collect();
    let base = covering_lp(12, 6, &data);
    let opts = SimplexOptions::default();
    let cold_base = base.solve_with(&opts).unwrap();
    assert_eq!(cold_base.status, LpStatus::Optimal);
    let basis = cold_base.basis.clone().expect("optimal solves carry a basis");

    // From its own basis the warm solve reproduces the cold optimum.
    let warm = base.solve_with_basis(&opts, &basis).unwrap();
    assert_eq!(warm.status, LpStatus::Optimal);
    assert!((warm.objective - cold_base.objective).abs() <= 1e-9);

    // From a nearby problem's basis it matches that problem's cold solve.
    let mut perturbed = base.clone();
    let costs: Vec<f64> = base
        .objective()
        .iter()
        .enumerate()
        .map(|(j, &c)| c * (1.0 + 0.25 * ((j % 3) as f64)))
        .collect();
    perturbed.set_objective(&costs);
    for i in 0..perturbed.num_rows() {
        let b = perturbed.rhs(i) * 0.6;
        perturbed.set_rhs(i, b);
    }
    let cold = perturbed.solve_with(&opts).unwrap();
    let warm = perturbed.solve_with_basis(&opts, &basis).unwrap();
    assert_eq!(warm.status, cold.status);
    assert_eq!(cold.status, LpStatus::Optimal);
    assert!(
        (warm.objective - cold.objective).abs() <= 1e-6 * (1.0 + cold.objective.abs()),
        "warm {} vs cold {}",
        warm.objective,
        cold.objective
    );
    assert!(
        check_certificate(&perturbed, &warm, 1e-6).is_ok(),
        "warm certificate failed: {:?}",
        check_certificate(&perturbed, &warm, 1e-6)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn covering_lps_solve_to_certified_optimum(
        n in 2usize..40,
        m in 1usize..12,
        data in proptest::collection::vec(any::<u8>(), 64..256),
    ) {
        let p = covering_lp(n, m, &data);
        let sol = p.solve().unwrap();
        prop_assert_eq!(sol.status, LpStatus::Optimal);
        prop_assert!(check_certificate(&p, &sol, 1e-6).is_ok(),
            "certificate failed: {:?}", check_certificate(&p, &sol, 1e-6));
        // Covering duals must be nonnegative (min sense, >= rows).
        for &y in &sol.duals {
            prop_assert!(y >= -1e-7);
        }
        // LP bound is at most the all-ones cost (x = 1 is feasible).
        let ones_cost: f64 = p.objective().iter().sum();
        prop_assert!(sol.objective <= ones_cost + 1e-6);
    }

    #[test]
    fn general_lps_never_violate_certificate(
        n in 1usize..10,
        rows in proptest::collection::vec(
            (proptest::collection::vec(-5i8..=5, 10), 0usize..3, -20i8..=20),
            0..6
        ),
        costs in proptest::collection::vec(-9i8..=9, 10),
        uppers in proptest::collection::vec(1u8..=30, 10),
    ) {
        let mut p = LpProblem::minimize(n);
        for j in 0..n {
            p.set_objective_coeff(j, costs[j] as f64);
            p.set_bounds(j, 0.0, uppers[j] as f64);
        }
        for (coeffs, rel, rhs) in &rows {
            let rel = match rel % 3 {
                0 => Relation::Le,
                1 => Relation::Ge,
                _ => Relation::Eq,
            };
            let dense: Vec<f64> = coeffs.iter().take(n).map(|&c| c as f64).collect();
            p.add_constraint_dense(&dense, rel, *rhs as f64);
        }
        let sol = p.solve().unwrap();
        match sol.status {
            LpStatus::Optimal => {
                prop_assert!(check_certificate(&p, &sol, 1e-6).is_ok(),
                    "certificate failed: {:?}", check_certificate(&p, &sol, 1e-6));
            }
            LpStatus::Infeasible | LpStatus::Unbounded => {}
            LpStatus::IterationLimit => prop_assert!(false, "iteration limit on tiny LP"),
        }
    }

    #[test]
    fn bounded_boxes_are_never_unbounded(
        n in 1usize..8,
        costs in proptest::collection::vec(-9i8..=9, 8),
    ) {
        // All variables boxed => never unbounded regardless of objective.
        let mut p = LpProblem::minimize(n);
        for j in 0..n {
            p.set_objective_coeff(j, costs[j] as f64);
            p.set_bounds(j, -3.0, 11.0);
        }
        let sol = p.solve().unwrap();
        prop_assert_eq!(sol.status, LpStatus::Optimal);
        // Optimum of a separable box LP is attained at the per-variable bound.
        let expected: f64 = (0..n)
            .map(|j| {
                let c = costs[j] as f64;
                if c >= 0.0 { c * -3.0 } else { c * 11.0 }
            })
            .sum();
        prop_assert!((sol.objective - expected).abs() < 1e-8);
    }

    #[test]
    fn warm_start_from_own_basis_matches_cold(
        n in 2usize..30,
        m in 1usize..10,
        data in proptest::collection::vec(any::<u8>(), 64..256),
    ) {
        // Re-solving a problem from the optimal basis of its own cold
        // solve must reproduce the cold status and objective.
        let p = covering_lp(n, m, &data);
        let opts = SimplexOptions::default();
        let cold = p.solve_with(&opts).unwrap();
        prop_assert_eq!(cold.status, LpStatus::Optimal);
        let basis = cold.basis.as_ref().expect("optimal solves carry a basis");
        let warm = p.solve_with_basis(&opts, basis).unwrap();
        prop_assert_eq!(warm.status, LpStatus::Optimal);
        prop_assert!((warm.objective - cold.objective).abs() <= opts.opt_tol.max(1e-9),
            "warm {} vs cold {}", warm.objective, cold.objective);
    }

    #[test]
    fn warm_start_on_perturbed_problem_matches_cold(
        n in 2usize..30,
        m in 1usize..10,
        data in proptest::collection::vec(any::<u8>(), 64..256),
        obj_scale in 1u8..40,
        rhs_scale in 0u8..100,
    ) {
        // The cache's warm-start path: take the optimal basis of one
        // pricing's LP and re-solve a *nearby* problem (perturbed costs
        // and loosened rhs) from it. Whatever pivot route the crash
        // start takes, status and objective must match a cold solve of
        // the perturbed problem within tolerance.
        let base = covering_lp(n, m, &data);
        let opts = SimplexOptions::default();
        let cold_base = base.solve_with(&opts).unwrap();
        prop_assert_eq!(cold_base.status, LpStatus::Optimal);
        let basis = cold_base.basis.clone().expect("optimal solves carry a basis");

        let mut perturbed = base.clone();
        let costs: Vec<f64> = base
            .objective()
            .iter()
            .enumerate()
            .map(|(j, &c)| c * (1.0 + (obj_scale as f64) / 100.0 * ((j % 3) as f64)))
            .collect();
        perturbed.set_objective(&costs);
        for i in 0..perturbed.num_rows() {
            // Shrink every covering rhs: the all-ones point stays feasible.
            let b = perturbed.rhs(i) * (rhs_scale as f64) / 100.0;
            perturbed.set_rhs(i, b);
        }

        let cold = perturbed.solve_with(&opts).unwrap();
        let warm = perturbed.solve_with_basis(&opts, &basis).unwrap();
        prop_assert_eq!(warm.status, cold.status);
        if cold.status == LpStatus::Optimal {
            let tol = 1e-6 * (1.0 + cold.objective.abs());
            prop_assert!((warm.objective - cold.objective).abs() <= tol,
                "warm {} vs cold {}", warm.objective, cold.objective);
            prop_assert!(check_certificate(&perturbed, &warm, 1e-6).is_ok(),
                "warm certificate failed: {:?}", check_certificate(&perturbed, &warm, 1e-6));
        }
    }

    #[test]
    fn sparse_and_dense_agree_on_covering_lps(
        n in 2usize..40,
        m in 1usize..12,
        data in proptest::collection::vec(any::<u8>(), 64..256),
    ) {
        // The differential contract behind SparseMode::Auto: whichever
        // implementation the threshold picks, the answer is the same —
        // equal objectives and a full KKT certificate from each path,
        // not pivot-sequence identity (the sparse path prices
        // sectionally and legitimately pivots differently).
        let p = covering_lp(n, m, &data);
        assert_sparse_dense_agree(&p, "proptest covering");
    }

    #[test]
    fn sparse_and_dense_agree_on_general_lps(
        n in 1usize..10,
        rows in proptest::collection::vec(
            (proptest::collection::vec(-5i8..=5, 10), 0usize..3, -20i8..=20),
            0..6
        ),
        costs in proptest::collection::vec(-9i8..=9, 10),
        uppers in proptest::collection::vec(1u8..=30, 10),
    ) {
        // Same generator as general_lps_never_violate_certificate, so
        // infeasible and unbounded cases exercise the status agreement.
        let mut p = LpProblem::minimize(n);
        for j in 0..n {
            p.set_objective_coeff(j, costs[j] as f64);
            p.set_bounds(j, 0.0, uppers[j] as f64);
        }
        for (coeffs, rel, rhs) in &rows {
            let rel = match rel % 3 {
                0 => Relation::Le,
                1 => Relation::Ge,
                _ => Relation::Eq,
            };
            let dense: Vec<f64> = coeffs.iter().take(n).map(|&c| c as f64).collect();
            p.add_constraint_dense(&dense, rel, *rhs as f64);
        }
        assert_sparse_dense_agree(&p, "proptest general");
    }

    #[test]
    fn infeasible_window_is_detected(lo in 5u8..50, gap in 1u8..20) {
        // x >= lo+gap and x <= lo is always infeasible.
        let mut p = LpProblem::minimize(1);
        p.add_constraint_dense(&[1.0], Relation::Ge, (lo + gap) as f64);
        p.add_constraint_dense(&[1.0], Relation::Le, lo as f64);
        let sol = p.solve().unwrap();
        prop_assert_eq!(sol.status, LpStatus::Infeasible);
    }
}
