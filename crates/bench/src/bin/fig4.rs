//! Reproduce **Fig. 4** — CARBON's convergence on the n=500, m=30 class:
//! the upper-level fitness rises *steadily* while the %-gap falls
//! *steadily* (contrast with COBRA's see-saw, `fig5`).
//!
//! Prints the averaged series as CSV and writes `fig4.csv`.
//!
//! ```text
//! cargo run -p bico-bench --release --bin fig4 [--full|--smoke] [--runs N] [--seed S]
//!     [--trace-out run.jsonl] [--metrics-out metrics.json] [--log-level info]
//! ```

use bico_bench::{run_class_observed, write_csv, AlgoKind, ExperimentOpts, ObsStack};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = ExperimentOpts::from_args(&args);
    let stack = ObsStack::from_opts(&opts);
    let class = (500, 30);
    eprintln!(
        "Fig. 4 reproduction (CARBON convergence on {}x{}) — tier {:?}, {} runs",
        class.0,
        class.1,
        opts.tier,
        opts.runs()
    );
    let result = run_class_observed(AlgoKind::Carbon, class, &opts, &stack);
    stack.finish();
    let mut stdout = std::io::stdout().lock();
    write_csv(&mut stdout, &result.trace).expect("stdout");
    let mut file = std::fs::File::create("fig4.csv").expect("create fig4.csv");
    write_csv(&mut file, &result.trace).expect("write fig4.csv");
    eprintln!("wrote fig4.csv ({} points)", result.trace.points().len());

    // Shape check: CARBON's curves are steady — few direction reversals
    // (compare with the see-saw reversal count printed by fig5).
    let pts = result.trace.points();
    let mut gap_reversals = 0usize;
    let mut ul_reversals = 0usize;
    for w in pts.windows(3) {
        if (w[1].gap_best - w[0].gap_best) * (w[2].gap_best - w[1].gap_best) < 0.0 {
            gap_reversals += 1;
        }
        if (w[1].ul_best - w[0].ul_best) * (w[2].ul_best - w[1].ul_best) < 0.0 {
            ul_reversals += 1;
        }
    }
    let mean_step: f64 =
        pts.windows(2).map(|w| (w[1].gap_best - w[0].gap_best).abs()).sum::<f64>()
            / (pts.len().max(2) - 1) as f64;
    eprintln!(
        "direction reversals over {} points — gap: {gap_reversals}, UL: {ul_reversals}; \
         mean per-generation gap swing: {mean_step:.3} points \
         (COBRA's see-saw in fig5 swings an order of magnitude harder)",
        pts.len()
    );
}
