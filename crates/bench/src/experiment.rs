//! Experiment orchestration: instance classes, budget tiers, 30-run
//! protocol, per-class summaries.

use crate::obs::ObsStack;
use bico_bcpop::{generate, BcpopInstance, GeneratorConfig};
use bico_cobra::{Cobra, CobraConfig};
use bico_core::{Carbon, CarbonConfig};
use bico_ea::rng::seed_stream;
use bico_ea::stats::{Summary, Trace};
use bico_lp::{SimplexOptions, SparseMode};
use bico_obs::LogLevel;
use rayon::prelude::*;

/// The paper's 9 instance classes: `(#variables, #constraints)` =
/// `(bundles, services)` ∈ {100, 250, 500} × {5, 10, 30}.
pub const PAPER_CLASSES: [(usize, usize); 9] = [
    (100, 5),
    (100, 10),
    (100, 30),
    (250, 5),
    (250, 10),
    (250, 30),
    (500, 5),
    (500, 10),
    (500, 30),
];

/// Which algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoKind {
    /// CARBON (the paper's contribution).
    Carbon,
    /// COBRA (the co-evolutionary baseline).
    Cobra,
}

/// Budget tier: the paper's full protocol or a reduced one that keeps
/// the qualitative shape at laptop scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetTier {
    /// 30 runs × (50 000 + 50 000) evaluations, populations of 100 —
    /// Table II verbatim.
    Full,
    /// 5 runs × (4 000 + 4 000) evaluations, populations of 24.
    Reduced,
    /// 3 runs × (800 + 800) evaluations, populations of 16 — smoke
    /// scale for CI.
    Smoke,
}

impl BudgetTier {
    /// Independent runs per (class, algorithm).
    pub fn runs(&self) -> usize {
        match self {
            BudgetTier::Full => 30,
            BudgetTier::Reduced => 5,
            BudgetTier::Smoke => 3,
        }
    }

    /// `(population, evaluations)` per level.
    pub fn scale(&self) -> (usize, u64) {
        match self {
            BudgetTier::Full => (100, 50_000),
            BudgetTier::Reduced => (24, 4_000),
            BudgetTier::Smoke => (16, 800),
        }
    }

    /// CARBON configuration at this tier.
    pub fn carbon_config(&self) -> CarbonConfig {
        let (pop, evals) = self.scale();
        CarbonConfig {
            ul_pop_size: pop,
            ul_archive_size: pop,
            ul_evaluations: evals,
            ll_pop_size: pop,
            ll_archive_size: pop,
            ll_evaluations: evals,
            ..Default::default()
        }
    }

    /// COBRA configuration at this tier.
    pub fn cobra_config(&self) -> CobraConfig {
        let (pop, evals) = self.scale();
        CobraConfig {
            ul_pop_size: pop,
            ul_archive_size: pop,
            ul_evaluations: evals,
            ll_pop_size: pop,
            ll_archive_size: pop,
            ll_evaluations: evals,
            ..Default::default()
        }
    }
}

/// Options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct ExperimentOpts {
    /// Budget tier.
    pub tier: BudgetTier,
    /// Master seed (runs derive per-run seeds from it).
    pub seed: u64,
    /// Override the tier's run count, if set.
    pub runs_override: Option<usize>,
    /// Restrict to the first `k` classes (for quick sanity passes).
    pub max_classes: Option<usize>,
    /// Stream every solver event to this JSONL file (`--trace-out`).
    pub trace_out: Option<String>,
    /// Write an aggregated metrics report to this file (`--metrics-out`).
    pub metrics_out: Option<String>,
    /// Write the same report in the Prometheus text exposition format
    /// (`--prom-out`).
    pub prom_out: Option<String>,
    /// Progress verbosity on stderr (`--log-level`, default `BICO_LOG`).
    pub log_level: LogLevel,
    /// Lower-level solve-cache capacity per run (`--ll-cache-capacity`,
    /// 0 = off). Bit-identical results either way; see
    /// [`bico_ea::SolveCache`].
    pub ll_cache_capacity: usize,
    /// LP implementation selection for the relaxation solves the
    /// harness performs itself (`--lp-sparse auto|never|always`,
    /// default `auto`). Paper-class instances stay on the dense
    /// tableau under `auto`; see [`bico_lp::SparseMode`].
    pub lp_sparse: SparseMode,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        ExperimentOpts {
            tier: BudgetTier::Reduced,
            seed: 20180521,
            runs_override: None,
            max_classes: None,
            trace_out: None,
            metrics_out: None,
            prom_out: None,
            log_level: LogLevel::from_env(),
            ll_cache_capacity: 0,
            lp_sparse: SparseMode::Auto,
        }
    }
}

impl ExperimentOpts {
    /// Parse CLI arguments of the experiment binaries
    /// (`--full | --smoke`, `--runs N`, `--seed S`, `--classes K`,
    /// `--trace-out F`, `--metrics-out F`, `--prom-out F`,
    /// `--log-level L`, `--ll-cache-capacity C`,
    /// `--lp-sparse auto|never|always`).
    pub fn from_args(args: &[String]) -> Self {
        let mut opts = ExperimentOpts::default();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => opts.tier = BudgetTier::Full,
                "--smoke" => opts.tier = BudgetTier::Smoke,
                "--runs" => {
                    opts.runs_override = it.next().and_then(|v| v.parse().ok());
                }
                "--seed" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        opts.seed = v;
                    }
                }
                "--classes" => {
                    opts.max_classes = it.next().and_then(|v| v.parse().ok());
                }
                "--trace-out" => {
                    opts.trace_out = it.next().cloned();
                }
                "--metrics-out" => {
                    opts.metrics_out = it.next().cloned();
                }
                "--prom-out" => {
                    opts.prom_out = it.next().cloned();
                }
                "--log-level" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        opts.log_level = v;
                    }
                }
                "--ll-cache-capacity" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        opts.ll_cache_capacity = v;
                    }
                }
                "--lp-sparse" => {
                    opts.lp_sparse = match it.next().map(String::as_str) {
                        Some("never") => SparseMode::Never,
                        Some("always") => SparseMode::Always,
                        _ => SparseMode::Auto,
                    };
                }
                _ => {}
            }
        }
        opts
    }

    /// Effective run count.
    pub fn runs(&self) -> usize {
        self.runs_override.unwrap_or_else(|| self.tier.runs())
    }

    /// The classes to run.
    pub fn classes(&self) -> Vec<(usize, usize)> {
        let k = self.max_classes.unwrap_or(PAPER_CLASSES.len());
        PAPER_CLASSES.iter().copied().take(k).collect()
    }

    /// Simplex options reflecting `--lp-sparse`, for relaxation solves
    /// the harness performs itself.
    pub fn simplex_options(&self) -> SimplexOptions {
        SimplexOptions { sparse: self.lp_sparse, ..SimplexOptions::default() }
    }
}

/// Aggregated outcome of `runs` independent runs of one algorithm on one
/// class.
#[derive(Debug, Clone)]
pub struct ClassResult {
    /// `(bundles, services)` of the class.
    pub class: (usize, usize),
    /// Which algorithm produced this.
    pub algo: AlgoKind,
    /// Best (minimum) %-gap across runs — the Table III statistic.
    pub best_gap: f64,
    /// Best (maximum) UL objective across runs — the Table IV statistic.
    pub best_ul: f64,
    /// Distribution of per-run gaps.
    pub gap_stats: Summary,
    /// Distribution of per-run UL objectives.
    pub ul_stats: Summary,
    /// Raw per-run best gaps (for rank-sum tests between algorithms).
    pub gaps: Vec<f64>,
    /// Raw per-run best UL objectives.
    pub uls: Vec<f64>,
    /// Per-run best lower-level objective values (for the Eq. 3
    /// relaxation-ordering check).
    pub ll_values: Vec<f64>,
    /// Averaged convergence trace across runs.
    pub trace: Trace,
}

/// Generate the canonical instance of a class for a master seed
/// (both algorithms must see the *same* instance).
pub fn class_instance(class: (usize, usize), master_seed: u64) -> BcpopInstance {
    let cfg = GeneratorConfig::paper_class(class.0, class.1);
    generate(&cfg, seed_stream(master_seed, (class.0 * 1000 + class.1) as u64))
}

/// Run `runs` independent seeded runs of `algo` on `class`, in parallel.
pub fn run_class(algo: AlgoKind, class: (usize, usize), opts: &ExperimentOpts) -> ClassResult {
    run_class_observed(algo, class, opts, &ObsStack::disabled())
}

/// [`run_class`] with an observability stack attached: each run streams
/// events tagged `Algo/NxM/runK` into the stack's shared sinks. Call
/// [`ObsStack::finish`] after the last class to flush the trace and
/// write the metrics report.
pub fn run_class_observed(
    algo: AlgoKind,
    class: (usize, usize),
    opts: &ExperimentOpts,
    stack: &ObsStack,
) -> ClassResult {
    let inst = class_instance(class, opts.seed);
    let runs = opts.runs();
    let outcomes: Vec<(f64, f64, f64, Trace)> = (0..runs)
        .into_par_iter()
        .map(|run| {
            let run_seed = seed_stream(opts.seed, 0x1000 + run as u64);
            let obs = stack.for_run(&format!("{algo:?}/{}x{}/run{run}", class.0, class.1));
            match algo {
                AlgoKind::Carbon => {
                    let mut cfg = opts.tier.carbon_config();
                    cfg.ll_cache_capacity = opts.ll_cache_capacity;
                    let r = Carbon::new(&inst, cfg).run_observed(run_seed, &obs);
                    let ll = ll_value_of(
                        &inst,
                        &r.best_pricing,
                        r.best_gap,
                        &opts.simplex_options(),
                    );
                    (r.best_gap, r.best_ul_value, ll, r.trace)
                }
                AlgoKind::Cobra => {
                    let mut cfg = opts.tier.cobra_config();
                    cfg.ll_cache_capacity = opts.ll_cache_capacity;
                    let r = Cobra::new(&inst, cfg).run_observed(run_seed, &obs);
                    (r.best_gap, r.best_ul_value, r.best_ll_value, r.trace)
                }
            }
        })
        .collect();

    let mut gap_stats = Summary::new();
    let mut ul_stats = Summary::new();
    let mut best_gap = f64::INFINITY;
    let mut best_ul = f64::NEG_INFINITY;
    let mut ll_values = Vec::with_capacity(runs);
    let mut gaps = Vec::with_capacity(runs);
    let mut uls = Vec::with_capacity(runs);
    let traces: Vec<Trace> = outcomes
        .iter()
        .map(|(gap, ul, ll, trace)| {
            gap_stats.push(*gap);
            ul_stats.push(*ul);
            best_gap = best_gap.min(*gap);
            best_ul = best_ul.max(*ul);
            gaps.push(*gap);
            uls.push(*ul);
            ll_values.push(*ll);
            trace.clone()
        })
        .collect();

    ClassResult {
        class,
        algo,
        best_gap,
        best_ul,
        gap_stats,
        ul_stats,
        gaps,
        uls,
        ll_values,
        trace: Trace::average(&traces),
    }
}

/// Reconstruct the lower-level objective value behind a (pricing, gap)
/// pair: `A(x) = LB(x) · (1 + gap/100)` (Eq. 1 inverted).
fn ll_value_of(inst: &BcpopInstance, pricing: &[f64], gap: f64, opts: &SimplexOptions) -> f64 {
    use bico_bcpop::RelaxationSolver;
    if !gap.is_finite() {
        return f64::INFINITY;
    }
    RelaxationSolver::with_options(inst, opts)
        .solve(&inst.costs_for(pricing))
        .map(|r| r.lower_bound * (1.0 + gap / 100.0))
        .unwrap_or(f64::INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_classes_match_the_paper() {
        assert_eq!(PAPER_CLASSES.len(), 9);
        assert_eq!(PAPER_CLASSES[0], (100, 5));
        assert_eq!(PAPER_CLASSES[8], (500, 30));
    }

    #[test]
    fn full_tier_is_table_2() {
        let t = BudgetTier::Full;
        assert_eq!(t.runs(), 30);
        assert_eq!(t.scale(), (100, 50_000));
        let c = t.carbon_config();
        assert_eq!(c.ul_pop_size, 100);
        assert_eq!(c.ul_evaluations, 50_000);
        let c = t.cobra_config();
        assert_eq!(c.ll_evaluations, 50_000);
    }

    #[test]
    fn args_parse() {
        let args: Vec<String> = ["--full", "--runs", "7", "--seed", "99", "--classes", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = ExperimentOpts::from_args(&args);
        assert_eq!(o.tier, BudgetTier::Full);
        assert_eq!(o.runs(), 7);
        assert_eq!(o.seed, 99);
        assert_eq!(o.classes().len(), 2);
    }

    #[test]
    fn args_default() {
        let o = ExperimentOpts::from_args(&[]);
        assert_eq!(o.tier, BudgetTier::Reduced);
        assert_eq!(o.runs(), 5);
        assert_eq!(o.classes().len(), 9);
        assert!(o.trace_out.is_none());
        assert!(o.metrics_out.is_none());
    }

    #[test]
    fn args_parse_observability_flags() {
        let args: Vec<String> =
            ["--trace-out", "run.jsonl", "--metrics-out", "m.json", "--log-level", "info"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let o = ExperimentOpts::from_args(&args);
        assert_eq!(o.trace_out.as_deref(), Some("run.jsonl"));
        assert_eq!(o.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(o.log_level, LogLevel::Info);
    }

    #[test]
    fn args_parse_cache_capacity() {
        assert_eq!(ExperimentOpts::from_args(&[]).ll_cache_capacity, 0, "off by default");
        let args: Vec<String> =
            ["--ll-cache-capacity", "1024"].iter().map(|s| s.to_string()).collect();
        assert_eq!(ExperimentOpts::from_args(&args).ll_cache_capacity, 1024);
    }

    #[test]
    fn args_parse_lp_sparse() {
        assert_eq!(
            ExperimentOpts::from_args(&[]).lp_sparse,
            SparseMode::Auto,
            "auto by default"
        );
        for (v, want) in [
            ("auto", SparseMode::Auto),
            ("never", SparseMode::Never),
            ("always", SparseMode::Always),
            ("bogus", SparseMode::Auto),
        ] {
            let args: Vec<String> = ["--lp-sparse", v].iter().map(|s| s.to_string()).collect();
            let o = ExperimentOpts::from_args(&args);
            assert_eq!(o.lp_sparse, want, "--lp-sparse {v}");
            assert_eq!(o.simplex_options().sparse, want);
        }
    }

    #[test]
    fn smoke_run_class_produces_sane_statistics() {
        let opts = ExperimentOpts {
            tier: BudgetTier::Smoke,
            seed: 1,
            runs_override: Some(2),
            ..Default::default()
        };
        let r = run_class(AlgoKind::Carbon, (100, 5), &opts);
        assert_eq!(r.gap_stats.count(), 2);
        assert!(r.best_gap.is_finite());
        assert!(r.best_gap >= -1e-9);
        assert!(r.best_ul >= 0.0);
        assert!(!r.trace.points().is_empty());
    }

    #[test]
    fn same_class_same_instance_for_both_algorithms() {
        let a = class_instance((100, 5), 3);
        let b = class_instance((100, 5), 3);
        assert_eq!(a, b);
        let c = class_instance((100, 10), 3);
        assert_ne!(a, c);
    }
}
