//! S-expression serialization of syntax trees.
//!
//! Evolved heuristics are assets: a champion scoring function found in a
//! long run should be storable and reloadable. The format is the classic
//! Lisp-style prefix form, resolved against a [`PrimitiveSet`]:
//!
//! ```text
//! (+ c_j (mod q_j 1.5))
//! ```
//!
//! Round-trip is exact for terminals/operators and for constants
//! (printed with enough digits to reconstruct the same `f64`).

use crate::primitives::PrimitiveSet;
use crate::tree::{Expr, Node};
use std::fmt;

/// Errors from [`parse_sexpr`].
#[derive(Debug, Clone, PartialEq)]
pub enum SexprError {
    /// Unbalanced parentheses or trailing tokens.
    Syntax(String),
    /// An atom is neither a number, a terminal name, nor an operator name.
    UnknownAtom(String),
    /// An operator got the wrong number of arguments.
    Arity {
        /// The operator name.
        op: String,
        /// Its declared arity.
        expected: usize,
        /// Number of arguments found.
        got: usize,
    },
    /// Operator name used in terminal position or vice versa.
    Misplaced(String),
}

impl fmt::Display for SexprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SexprError::Syntax(msg) => write!(f, "syntax error: {msg}"),
            SexprError::UnknownAtom(a) => write!(f, "unknown atom {a:?}"),
            SexprError::Arity { op, expected, got } => {
                write!(f, "operator {op:?} expects {expected} arguments, got {got}")
            }
            SexprError::Misplaced(a) => write!(f, "misplaced atom {a:?}"),
        }
    }
}

impl std::error::Error for SexprError {}

/// Render `expr` as an s-expression.
pub fn to_sexpr(expr: &Expr, ps: &PrimitiveSet) -> String {
    let (s, consumed) = render(expr.nodes(), 0, ps);
    debug_assert_eq!(consumed, expr.len());
    s
}

fn render(nodes: &[Node], at: usize, ps: &PrimitiveSet) -> (String, usize) {
    match nodes[at] {
        Node::Term(id) => (ps.terminals()[id as usize].clone(), at + 1),
        // `{v:?}` prints f64 with round-trip precision.
        Node::Const(v) => (format!("{v:?}"), at + 1),
        Node::Op(id) => {
            let op = &ps.ops()[id as usize];
            let arity = ps.arity(id as usize);
            let mut out = format!("({}", op.name);
            let mut next = at + 1;
            for _ in 0..arity {
                let (child, n) = render(nodes, next, ps);
                out.push(' ');
                out.push_str(&child);
                next = n;
            }
            out.push(')');
            (out, next)
        }
    }
}

/// Parse an s-expression into a validated [`Expr`].
pub fn parse_sexpr(text: &str, ps: &PrimitiveSet) -> Result<Expr, SexprError> {
    let tokens = tokenize(text);
    let mut pos = 0usize;
    let mut nodes = Vec::new();
    parse_into(&tokens, &mut pos, ps, &mut nodes)?;
    if pos != tokens.len() {
        return Err(SexprError::Syntax(format!(
            "trailing tokens starting at {:?}",
            tokens[pos]
        )));
    }
    let expr = Expr::from_nodes(nodes);
    expr.validate(ps).map_err(|e| SexprError::Syntax(e.to_string()))?;
    Ok(expr)
}

fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        match ch {
            '(' | ')' => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
                tokens.push(ch.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

fn parse_into(
    tokens: &[String],
    pos: &mut usize,
    ps: &PrimitiveSet,
    out: &mut Vec<Node>,
) -> Result<(), SexprError> {
    let Some(tok) = tokens.get(*pos) else {
        return Err(SexprError::Syntax("unexpected end of input".into()));
    };
    if tok == "(" {
        *pos += 1;
        let Some(op_name) = tokens.get(*pos) else {
            return Err(SexprError::Syntax("missing operator after '('".into()));
        };
        let Some(op_id) = ps.ops().iter().position(|o| &o.name == op_name) else {
            return if ps.terminals().contains(op_name) {
                Err(SexprError::Misplaced(op_name.clone()))
            } else {
                Err(SexprError::UnknownAtom(op_name.clone()))
            };
        };
        *pos += 1;
        out.push(Node::Op(op_id as u16));
        let arity = ps.arity(op_id);
        let mut got = 0usize;
        while tokens.get(*pos).map(|t| t != ")").unwrap_or(false) {
            parse_into(tokens, pos, ps, out)?;
            got += 1;
        }
        if tokens.get(*pos).is_none() {
            return Err(SexprError::Syntax("missing ')'".into()));
        }
        *pos += 1; // consume ')'
        if got != arity {
            return Err(SexprError::Arity { op: op_name.clone(), expected: arity, got });
        }
        Ok(())
    } else if tok == ")" {
        Err(SexprError::Syntax("unexpected ')'".into()))
    } else {
        // Atom: terminal name first, then numeric constant.
        if let Some(tid) = ps.terminals().iter().position(|t| t == tok) {
            out.push(Node::Term(tid as u16));
        } else if let Ok(v) = tok.parse::<f64>() {
            out.push(Node::Const(v));
        } else if ps.ops().iter().any(|o| &o.name == tok) {
            return Err(SexprError::Misplaced(tok.clone()));
        } else {
            return Err(SexprError::UnknownAtom(tok.clone()));
        }
        *pos += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps() -> PrimitiveSet {
        let mut ps = PrimitiveSet::arithmetic();
        ps.add_terminal("c_j");
        ps.add_terminal("q_j");
        ps
    }

    #[test]
    fn renders_nested() {
        let ps = ps();
        let e = Expr::from_nodes(vec![
            Node::Op(0),
            Node::Term(0),
            Node::Op(4),
            Node::Term(1),
            Node::Const(1.5),
        ]);
        assert_eq!(to_sexpr(&e, &ps), "(+ c_j (mod q_j 1.5))");
    }

    #[test]
    fn parses_what_it_prints() {
        let ps = ps();
        let e = Expr::from_nodes(vec![
            Node::Op(2),
            Node::Op(3),
            Node::Term(0),
            Node::Term(1),
            Node::Const(-0.25),
        ]);
        let text = to_sexpr(&e, &ps);
        let back = parse_sexpr(&text, &ps).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn parses_single_terminal_and_constant() {
        let ps = ps();
        assert_eq!(parse_sexpr("q_j", &ps).unwrap(), Expr::terminal(1));
        assert_eq!(parse_sexpr("  3.25 ", &ps).unwrap(), Expr::constant(3.25));
    }

    #[test]
    fn rejects_unknown_atom() {
        let ps = ps();
        assert_eq!(
            parse_sexpr("(+ c_j bogus)", &ps).unwrap_err(),
            SexprError::UnknownAtom("bogus".into())
        );
    }

    #[test]
    fn rejects_arity_mismatch() {
        let ps = ps();
        assert_eq!(
            parse_sexpr("(+ c_j)", &ps).unwrap_err(),
            SexprError::Arity { op: "+".into(), expected: 2, got: 1 }
        );
        assert!(matches!(
            parse_sexpr("(+ c_j q_j c_j)", &ps).unwrap_err(),
            SexprError::Arity { got: 3, .. }
        ));
    }

    #[test]
    fn rejects_unbalanced() {
        let ps = ps();
        assert!(matches!(parse_sexpr("(+ c_j q_j", &ps), Err(SexprError::Syntax(_))));
        assert!(matches!(parse_sexpr(")", &ps), Err(SexprError::Syntax(_))));
        assert!(matches!(parse_sexpr("c_j q_j", &ps), Err(SexprError::Syntax(_))));
    }

    #[test]
    fn rejects_misplaced_operator() {
        let ps = ps();
        assert_eq!(
            parse_sexpr("(+ c_j mod)", &ps).unwrap_err(),
            SexprError::Misplaced("mod".into())
        );
        assert_eq!(
            parse_sexpr("(c_j q_j q_j)", &ps).unwrap_err(),
            SexprError::Misplaced("c_j".into())
        );
    }

    #[test]
    fn whitespace_is_flexible() {
        let ps = ps();
        let e = parse_sexpr("(  +\n  c_j\t( *  q_j   2.0 ) )", &ps).unwrap();
        assert_eq!(to_sexpr(&e, &ps), "(+ c_j (* q_j 2.0))");
    }

    #[test]
    fn constants_roundtrip_bit_exactly() {
        let ps = ps();
        for v in [0.1, -1e-9, 1234567.890123, f64::MIN_POSITIVE, 1e30] {
            let text = to_sexpr(&Expr::constant(v), &ps);
            let back = parse_sexpr(&text, &ps).unwrap();
            assert_eq!(back, Expr::constant(v), "constant {v} did not roundtrip via {text}");
        }
    }
}
