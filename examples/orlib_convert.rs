//! OR-library workflow: parse an `mknap`-format MKP file, apply the
//! paper's `≤ → ≥` conversion, and solve the resulting covering problem.
//!
//! ```text
//! cargo run --release --example orlib_convert [path/to/mknap1.txt]
//! ```
//!
//! Without an argument, an embedded sample in the exact OR-library
//! format is used, so the example always runs offline.

use bico::bcpop::{greedy_cover, orlib::parse_mknap, CostPerCoverageScorer, RelaxationSolver};

/// First problem of the OR-library `mknap1` file (Petersen 1967).
const SAMPLE: &str = "
1
 6 10 3800
 100 600 1200 2400 500 2000
 8 12 13 64 22 41
 8 12 13 75 22 41
 3 6 4 18 6 4
 5 10 8 32 6 12
 5 13 8 42 6 20
 5 13 8 48 6 20
 0 0 0 0 8 0
 3 0 4 0 8 0
 3 2 4 0 8 4
 3 2 4 8 8 4
 80 96 20 36 44 48 10 18 22 24
";

fn main() {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).expect("read mknap file"),
        None => SAMPLE.to_string(),
    };
    let problems = parse_mknap(&text).expect("parse mknap format");
    println!("parsed {} problem(s)", problems.len());

    for (i, mkp) in problems.into_iter().enumerate() {
        println!(
            "\nproblem {i}: {} items x {} constraints (known MKP optimum: {})",
            mkp.n, mkp.m, mkp.known_optimum
        );
        let inst = mkp.into_covering(0.2).expect("convert to covering");
        println!(
            "  converted: {} bundles x {} services, CSP block = first {} bundles",
            inst.num_bundles(),
            inst.num_services(),
            inst.num_own()
        );
        let prices = vec![inst.price_cap() / 4.0; inst.num_own()];
        let costs = inst.costs_for(&prices);
        let relax = RelaxationSolver::new(&inst).solve(&costs).expect("relaxation");
        let out = greedy_cover(&inst, &costs, &mut CostPerCoverageScorer, Some(&relax));
        println!(
            "  LP bound = {:.2}, greedy cover = {:.2} ({} bundles bought), %-gap = {:.2}%",
            relax.lower_bound,
            out.cost,
            out.chosen.iter().filter(|&&b| b).count(),
            100.0 * (out.cost - relax.lower_bound) / relax.lower_bound
        );
    }
}
