//! OR-library `mknap` parser and the paper's `≤ → ≥` conversion.
//!
//! §V.A: *"we turned our attention to the OR-library … The closest
//! problem with such non-binary matrix coefficients and binary decision
//! variables is the Multi-dimensional Knapsack Problem (MKP). We
//! therefore modified the MKP instances found at the OR-library such
//! that all ≤-constraints become ≥-constraints. We also ensure that each
//! modified instance has non-empty search space."*
//!
//! The `mknap1`/`mknap2` file format is a whitespace-separated number
//! stream:
//!
//! ```text
//! K                      number of problems in the file
//! n m opt                per problem: columns, rows, known optimum (0 if unknown)
//! p_1 … p_n              profits
//! r_11 … r_1n            m rows of weights
//! …
//! b_1 … b_m              capacities
//! ```

use crate::instance::{BcpopInstance, InstanceError};
use std::fmt;

/// One parsed MKP instance (the original ≤ form).
#[derive(Debug, Clone, PartialEq)]
pub struct MkpInstance {
    /// Number of items (columns).
    pub n: usize,
    /// Number of knapsack constraints (rows).
    pub m: usize,
    /// Known optimal value recorded in the file (0 when unknown).
    pub known_optimum: f64,
    /// Item profits.
    pub profits: Vec<f64>,
    /// Row-major weights: `weights[i * n + j]`.
    pub weights: Vec<f64>,
    /// Row capacities.
    pub capacities: Vec<f64>,
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// A token could not be read as a number.
    BadToken {
        /// 1-based token index in the stream.
        index: usize,
        /// The offending token.
        token: String,
    },
    /// The stream ended before the declared data was complete.
    UnexpectedEof {
        /// What was being read when the stream ended.
        expected: &'static str,
    },
    /// A declared dimension is zero or absurd.
    BadDimension {
        /// Which dimension.
        what: &'static str,
        /// The declared value.
        value: i64,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadToken { index, token } => {
                write!(f, "token #{index} ({token:?}) is not a number")
            }
            ParseError::UnexpectedEof { expected } => {
                write!(f, "file ended while reading {expected}")
            }
            ParseError::BadDimension { what, value } => {
                write!(f, "bad {what}: {value}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

struct Tokens<'a> {
    iter: std::str::SplitWhitespace<'a>,
    index: usize,
}

impl<'a> Tokens<'a> {
    fn new(text: &'a str) -> Self {
        Tokens { iter: text.split_whitespace(), index: 0 }
    }

    fn next_f64(&mut self, expected: &'static str) -> Result<f64, ParseError> {
        let tok = self.iter.next().ok_or(ParseError::UnexpectedEof { expected })?;
        self.index += 1;
        tok.parse::<f64>()
            .map_err(|_| ParseError::BadToken { index: self.index, token: tok.to_string() })
    }

    fn next_usize(&mut self, expected: &'static str) -> Result<usize, ParseError> {
        let v = self.next_f64(expected)?;
        let i = v as i64;
        if i < 0 || v.fract() != 0.0 {
            return Err(ParseError::BadDimension { what: expected, value: i });
        }
        Ok(i as usize)
    }
}

/// Parse every problem in an OR-library `mknap` file.
pub fn parse_mknap(text: &str) -> Result<Vec<MkpInstance>, ParseError> {
    let mut t = Tokens::new(text);
    let count = t.next_usize("problem count")?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let n = t.next_usize("n (columns)")?;
        let m = t.next_usize("m (rows)")?;
        if n == 0 {
            return Err(ParseError::BadDimension { what: "n (columns)", value: 0 });
        }
        if m == 0 {
            return Err(ParseError::BadDimension { what: "m (rows)", value: 0 });
        }
        let known_optimum = t.next_f64("optimum")?;
        let mut profits = Vec::with_capacity(n);
        for _ in 0..n {
            profits.push(t.next_f64("profit")?);
        }
        let mut weights = Vec::with_capacity(m * n);
        for _ in 0..m * n {
            weights.push(t.next_f64("weight")?);
        }
        let mut capacities = Vec::with_capacity(m);
        for _ in 0..m {
            capacities.push(t.next_f64("capacity")?);
        }
        out.push(MkpInstance { n, m, known_optimum, profits, weights, capacities });
    }
    Ok(out)
}

impl MkpInstance {
    /// Apply the paper's conversion: each knapsack row
    /// `Σ r_ij x_j ≤ b_i` becomes a covering row `Σ r_ij x_j ≥ b_i'`
    /// with `b_i' = min(b_i, Σ_j r_ij)` so the search space is non-empty;
    /// item profits become bundle costs, and the first
    /// `ceil(own_fraction·n)` bundles are handed to the CSP.
    pub fn into_covering(self, own_fraction: f64) -> Result<BcpopInstance, InstanceError> {
        let n = self.n; // bundles
        let m = self.m; // services
        let own = ((n as f64 * own_fraction).ceil() as usize).clamp(1, n);
        // Transpose row-major weights[i*n + j] into bundle-major q[j*m + i].
        let mut q = vec![0u32; n * m];
        for i in 0..m {
            for j in 0..n {
                q[j * m + i] = self.weights[i * n + j].max(0.0).round() as u32;
            }
        }
        let b: Vec<u32> = (0..m)
            .map(|i| {
                let row_sum: f64 = (0..n).map(|j| self.weights[i * n + j].max(0.0)).sum();
                (self.capacities[i].min(row_sum).max(1.0)).round() as u32
            })
            .collect();
        let costs: Vec<f64> = self.profits.iter().map(|&p| p.max(0.0)).collect();
        let price_cap =
            costs[own.min(costs.len())..].iter().fold(0.0f64, |a, &c| a.max(c)).max(1.0) * 2.0;
        BcpopInstance::new(m, n, own, q, b, costs, price_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-problem mknap file, hand-written.
    const SAMPLE: &str = "
        2
        3 2 19
        10 6 4
        2 3 1
        4 1 2
        5 6
        2 1 0
        7 3
        1 2
        2
    ";

    #[test]
    fn parses_multiple_problems() {
        let v = parse_mknap(SAMPLE).unwrap();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].n, 3);
        assert_eq!(v[0].m, 2);
        assert_eq!(v[0].known_optimum, 19.0);
        assert_eq!(v[0].profits, vec![10.0, 6.0, 4.0]);
        assert_eq!(v[0].weights, vec![2.0, 3.0, 1.0, 4.0, 1.0, 2.0]);
        assert_eq!(v[0].capacities, vec![5.0, 6.0]);
        assert_eq!(v[1].n, 2);
        assert_eq!(v[1].profits, vec![7.0, 3.0]);
    }

    #[test]
    fn eof_mid_problem_is_reported() {
        let err = parse_mknap("1\n3 2 0\n1 2").unwrap_err();
        assert!(matches!(err, ParseError::UnexpectedEof { .. }));
    }

    #[test]
    fn bad_token_is_reported_with_position() {
        let err = parse_mknap("1\n3 2 0\n1 x 3").unwrap_err();
        assert_eq!(err, ParseError::BadToken { index: 6, token: "x".into() });
    }

    #[test]
    fn zero_dimension_rejected() {
        let err = parse_mknap("1\n0 2 0").unwrap_err();
        assert!(matches!(err, ParseError::BadDimension { what: "n (columns)", .. }));
    }

    #[test]
    fn conversion_transposes_and_clamps() {
        let mkp = parse_mknap(SAMPLE).unwrap().swap_remove(0);
        let inst = mkp.into_covering(0.34).unwrap();
        assert_eq!(inst.num_bundles(), 3);
        assert_eq!(inst.num_services(), 2);
        assert_eq!(inst.num_own(), 2); // ceil(0.34 * 3)
                                       // weights row 0 = [2,3,1] → coverage of service 0 per bundle
        assert_eq!(inst.coverage(0, 0), 2);
        assert_eq!(inst.coverage(1, 0), 3);
        assert_eq!(inst.coverage(2, 0), 1);
        // b' = min(capacity, row sum): min(5, 6)=5, min(6, 7)=6
        assert_eq!(inst.requirement(0), 5);
        assert_eq!(inst.requirement(1), 6);
        // All-ones must be feasible (non-empty search space guarantee).
        assert!(inst.is_covering(&[true; 3]));
    }

    #[test]
    fn conversion_clamps_oversized_capacity() {
        // Capacity 100 exceeds the row sum 6 → requirement clamps to 6.
        let mkp = MkpInstance {
            n: 2,
            m: 1,
            known_optimum: 0.0,
            profits: vec![1.0, 2.0],
            weights: vec![2.0, 4.0],
            capacities: vec![100.0],
        };
        let inst = mkp.into_covering(0.5).unwrap();
        assert_eq!(inst.requirement(0), 6);
        assert!(inst.is_covering(&[true; 2]));
    }

    #[test]
    fn roundtrip_through_display_format() {
        // Serialize an instance back to the mknap format and re-parse.
        let orig = parse_mknap(SAMPLE).unwrap();
        let mut text = format!("{}\n", orig.len());
        for p in &orig {
            text.push_str(&format!("{} {} {}\n", p.n, p.m, p.known_optimum));
            for v in &p.profits {
                text.push_str(&format!("{v} "));
            }
            text.push('\n');
            for v in &p.weights {
                text.push_str(&format!("{v} "));
            }
            text.push('\n');
            for v in &p.capacities {
                text.push_str(&format!("{v} "));
            }
            text.push('\n');
        }
        let reparsed = parse_mknap(&text).unwrap();
        assert_eq!(orig, reparsed);
    }
}
