//! OR-library → covering → CARBON pipeline, exercising the same path a
//! user with the original paper data would follow.

use bico::bcpop::orlib::parse_mknap;
use bico::core::{Carbon, CarbonConfig};

const MKNAP_SAMPLE: &str = "
1
 6 10 3800
 100 600 1200 2400 500 2000
 8 12 13 64 22 41
 8 12 13 75 22 41
 3 6 4 18 6 4
 5 10 8 32 6 12
 5 13 8 42 6 20
 5 13 8 48 6 20
 0 0 0 0 8 0
 3 0 4 0 8 0
 3 2 4 0 8 4
 3 2 4 8 8 4
 80 96 20 36 44 48 10 18 22 24
";

#[test]
fn mknap_to_carbon() {
    let mkp = parse_mknap(MKNAP_SAMPLE).unwrap().swap_remove(0);
    assert_eq!(mkp.n, 6);
    assert_eq!(mkp.m, 10);
    let inst = mkp.into_covering(0.34).unwrap();
    assert_eq!(inst.num_bundles(), 6);
    assert_eq!(inst.num_services(), 10);
    inst.validate().unwrap();

    let cfg = CarbonConfig {
        ul_pop_size: 10,
        ll_pop_size: 10,
        ul_archive_size: 10,
        ll_archive_size: 10,
        ul_evaluations: 300,
        ll_evaluations: 300,
        ..Default::default()
    };
    let r = Carbon::new(&inst, cfg).run(17);
    assert!(r.best_gap.is_finite());
    assert!(r.best_gap >= -1e-9);
    assert_eq!(r.best_pricing.len(), inst.num_own());
}

#[test]
fn fixture_file_round_trips_through_parse_convert_validate() {
    // The on-disk pipeline: an OR-library-format fixture is read from
    // tests/fixtures/, parsed, serialized back to the mknap number
    // stream, re-parsed to the identical problems, and each problem
    // survives the paper's ≤→≥ conversion into a validated instance.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/mknap_small.txt");
    let text = std::fs::read_to_string(path).expect("fixture present");
    let problems = parse_mknap(&text).unwrap();
    assert_eq!(problems.len(), 2);
    assert_eq!((problems[0].n, problems[0].m), (6, 10));
    assert_eq!((problems[1].n, problems[1].m), (10, 2));
    assert_eq!(problems[0].known_optimum, 3800.0);

    // Serialize back to the mknap format and re-parse: lossless.
    let mut back = format!("{}\n", problems.len());
    for p in &problems {
        back.push_str(&format!("{} {} {}\n", p.n, p.m, p.known_optimum));
        for block in [&p.profits, &p.weights, &p.capacities] {
            for v in block {
                back.push_str(&format!("{v} "));
            }
            back.push('\n');
        }
    }
    assert_eq!(parse_mknap(&back).unwrap(), problems);

    for (i, p) in problems.into_iter().enumerate() {
        let (n, m) = (p.n, p.m);
        let inst = p.into_covering(0.34).unwrap_or_else(|e| panic!("problem {i}: {e:?}"));
        assert_eq!(inst.num_bundles(), n, "problem {i}");
        assert_eq!(inst.num_services(), m, "problem {i}");
        inst.validate().unwrap_or_else(|e| panic!("problem {i}: {e:?}"));
        // The ≥-conversion guarantees a non-empty search space.
        assert!(inst.is_covering(&vec![true; inst.num_bundles()]), "problem {i}");
    }
}

#[test]
fn zero_constraint_row_weights_are_tolerated() {
    // The Petersen instance has rows with zero weights for some items —
    // the conversion and validation must accept them.
    let mkp = parse_mknap(MKNAP_SAMPLE).unwrap().swap_remove(0);
    let inst = mkp.into_covering(0.2).unwrap();
    // Every requirement must still be coverable by the full market.
    assert!(inst.is_covering(&vec![true; inst.num_bundles()]));
}
