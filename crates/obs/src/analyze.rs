//! Trace analysis: per-generation tables, run diffs and co-evolutionary
//! pathology detectors over replayed JSONL traces.
//!
//! Competitive bi-level co-evolution has well-known failure modes that
//! a gap-vs-generation curve hides:
//!
//! * **see-saw** — leader and follower alternately undo each other's
//!   progress, so objectives oscillate across improvement phases
//!   instead of converging ([`SeesawVerdict`]);
//! * **disengagement** — selection stops discriminating: consecutive
//!   generations end with identical bests, i.e. zero fitness-rank
//!   change ([`DisengagementVerdict`]);
//! * **stagnation** — the best-so-far gap plateaus for long windows
//!   ([`StagnationVerdict`]).
//!
//! [`analyze`] computes all three plus cache-efficiency and
//! phase-timing tables from one parsed trace; [`diff`] finds the first
//! semantic divergence between two traces (timing payloads ignored, so
//! two same-seed runs compare equal — the determinism smoke check in
//! CI is built on exactly this).

use crate::replay::{OwnedEvent, TraceRecord};

/// Per-generation roll-up of the events between two `GenerationEnd`s.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationRow {
    /// Zero-based generation index (as emitted).
    pub generation: u64,
    /// Cumulative evaluations after the generation.
    pub evaluations: u64,
    /// The generation's best upper-level objective.
    pub ul_best: f64,
    /// The generation's best %-gap.
    pub gap_best: f64,
    /// Lower-level relaxation solves during the generation.
    pub ll_solves: u64,
    /// Solve-cache hits during the generation.
    pub solve_hits: u64,
    /// Solve-cache misses during the generation.
    pub solve_misses: u64,
    /// Compile-cache hits during the generation.
    pub compile_hits: u64,
    /// Compile-cache misses during the generation.
    pub compile_misses: u64,
    /// Decode-cache hits during the generation.
    pub decode_hits: u64,
    /// Decode-cache misses during the generation.
    pub decode_misses: u64,
    /// Eval-matrix cells evaluated exactly under the surrogate gate.
    pub surrogate_exact: u64,
    /// Eval-matrix cells imputed from the surrogate (exact evals saved).
    pub surrogate_skipped: u64,
    /// Microseconds spent in fitness evaluation during the generation.
    pub eval_micros: u64,
}

impl GenerationRow {
    /// Combined cache hit rate over every probe in the generation
    /// (NaN when nothing probed).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.solve_hits + self.compile_hits + self.decode_hits;
        let total = hits + self.solve_misses + self.compile_misses + self.decode_misses;
        if total == 0 {
            f64::NAN
        } else {
            hits as f64 / total as f64
        }
    }
}

/// Wall-clock total for one phase, reconstructed from `t_ms` deltas
/// between `PhaseChange` events.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    /// Phase name.
    pub phase: String,
    /// Total milliseconds attributed to the phase.
    pub ms: u64,
    /// Times the run entered the phase.
    pub visits: u64,
}

/// See-saw detector result: oscillation of the best pair's objectives
/// across improvement phases.
///
/// `ObjectivePair` events are segmented by their `level` (which
/// population was improving); each segment's last sample is that
/// phase's outcome. The amplitude is the mean absolute change of those
/// outcomes between consecutive segments — large amplitudes with
/// alternating signs mean the populations keep undoing each other.
#[derive(Debug, Clone, PartialEq)]
pub struct SeesawVerdict {
    /// Improvement segments observed (level transitions + 1).
    pub segments: u64,
    /// Mean |Δ upper objective| between consecutive segment outcomes.
    pub ul_amplitude: f64,
    /// Mean |Δ lower objective| between consecutive segment outcomes.
    pub ll_amplitude: f64,
    /// Consecutive segment deltas with opposite signs (either level).
    pub sign_flips: u64,
    /// True when the objectives demonstrably oscillate: at least one
    /// sign flip with nonzero amplitude.
    pub detected: bool,
}

impl SeesawVerdict {
    /// Combined oscillation amplitude (mean of the finite per-level
    /// amplitudes; 0 when fewer than two segments were observed).
    pub fn amplitude(&self) -> f64 {
        0.5 * (self.ul_amplitude + self.ll_amplitude)
    }
}

/// Disengagement detector result: generations whose best upper-level
/// objective *and* best gap are bit-identical to the previous
/// generation's, i.e. zero fitness-rank change at the top.
#[derive(Debug, Clone, PartialEq)]
pub struct DisengagementVerdict {
    /// Generations compared (GenerationEnd count − 1).
    pub comparisons: u64,
    /// Comparisons with identical bests.
    pub flat: u64,
    /// Longest run of consecutive flat comparisons.
    pub longest_flat: u64,
    /// `flat / comparisons` (NaN when no comparisons).
    pub flat_fraction: f64,
    /// True when more than half of all comparisons were flat.
    pub detected: bool,
}

/// Stagnation detector result: windows where the best-so-far gap made
/// no progress.
#[derive(Debug, Clone, PartialEq)]
pub struct StagnationVerdict {
    /// Generations observed.
    pub generations: u64,
    /// Longest window (in generations) without best-so-far improvement.
    pub longest_window: u64,
    /// Number of maximal no-improvement windows of at least
    /// `window` generations.
    pub windows: u64,
    /// Window threshold the verdict was computed with.
    pub window: u64,
    /// True when at least one window reached the threshold.
    pub detected: bool,
}

/// Everything [`analyze`] derives from one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAnalysis {
    /// Events in the trace.
    pub events: u64,
    /// Algorithm name from `RunStart` (empty when absent).
    pub algo: String,
    /// Seed from `RunStart` (0 when absent).
    pub seed: u64,
    /// Per-generation roll-ups, in trace order.
    pub generations: Vec<GenerationRow>,
    /// Per-phase wall-clock totals, in first-seen order.
    pub phases: Vec<PhaseRow>,
    /// See-saw oscillation verdict.
    pub seesaw: SeesawVerdict,
    /// Disengagement verdict.
    pub disengagement: DisengagementVerdict,
    /// Stagnation verdict.
    pub stagnation: StagnationVerdict,
}

/// First semantic difference between two traces.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Zero-based index (into the record sequence) of the first
    /// differing event.
    pub index: u64,
    /// `name+payload` summary on the left side (None past its end).
    pub left: Option<String>,
    /// `name+payload` summary on the right side (None past its end).
    pub right: Option<String>,
}

/// Default stagnation window (generations without best-so-far
/// improvement) before the verdict trips.
pub const DEFAULT_STAGNATION_WINDOW: u64 = 10;

/// Typed detector thresholds for [`analyze_with`]. `Default` reproduces
/// [`analyze`]'s historical behaviour exactly; the pathology regression
/// suite tightens `seesaw_min_amplitude` to gate against amplitude
/// regressions instead of mere nonzero oscillation.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeConfig {
    /// Generations without best-so-far gap improvement before
    /// stagnation trips ([`DEFAULT_STAGNATION_WINDOW`]).
    pub stagnation_window: u64,
    /// Minimum sign flips (either level) for a see-saw verdict
    /// (clamped to at least 1 — oscillation requires a reversal).
    pub seesaw_min_flips: u64,
    /// See-saw trips only when the combined amplitude strictly exceeds
    /// this (0 = any nonzero oscillation).
    pub seesaw_min_amplitude: f64,
    /// Disengagement trips when the flat fraction strictly exceeds
    /// this (0.5 = more than half of all comparisons flat).
    pub disengagement_flat_fraction: f64,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            stagnation_window: DEFAULT_STAGNATION_WINDOW,
            seesaw_min_flips: 1,
            seesaw_min_amplitude: 0.0,
            disengagement_flat_fraction: 0.5,
        }
    }
}

fn seesaw(records: &[TraceRecord], cfg: &AnalyzeConfig) -> SeesawVerdict {
    // Segment ObjectivePair samples by the improving level; keep each
    // segment's last (final) sample as the phase outcome.
    let mut outcomes: Vec<(crate::event::Level, f64, f64)> = Vec::new();
    for r in records {
        if let OwnedEvent::ObjectivePair { level, ul_value, ll_value } = r.event {
            match outcomes.last_mut() {
                Some((l, ul, ll)) if *l == level => {
                    *ul = ul_value;
                    *ll = ll_value;
                }
                _ => outcomes.push((level, ul_value, ll_value)),
            }
        }
    }
    let segments = outcomes.len() as u64;
    let mut ul_deltas = Vec::new();
    let mut ll_deltas = Vec::new();
    for pair in outcomes.windows(2) {
        let d_ul = pair[1].1 - pair[0].1;
        let d_ll = pair[1].2 - pair[0].2;
        if d_ul.is_finite() {
            ul_deltas.push(d_ul);
        }
        if d_ll.is_finite() {
            ll_deltas.push(d_ll);
        }
    }
    let mean_abs = |d: &[f64]| {
        if d.is_empty() {
            0.0
        } else {
            d.iter().map(|x| x.abs()).sum::<f64>() / d.len() as f64
        }
    };
    let flips = |d: &[f64]| d.windows(2).filter(|w| w[0] * w[1] < 0.0).count() as u64;
    let ul_amplitude = mean_abs(&ul_deltas);
    let ll_amplitude = mean_abs(&ll_deltas);
    let sign_flips = flips(&ul_deltas) + flips(&ll_deltas);
    let amplitude = 0.5 * (ul_amplitude + ll_amplitude);
    SeesawVerdict {
        segments,
        ul_amplitude,
        ll_amplitude,
        sign_flips,
        detected: sign_flips >= cfg.seesaw_min_flips.max(1)
            && amplitude > cfg.seesaw_min_amplitude,
    }
}

fn disengagement(rows: &[GenerationRow], cfg: &AnalyzeConfig) -> DisengagementVerdict {
    let mut flat = 0u64;
    let mut longest = 0u64;
    let mut run = 0u64;
    for pair in rows.windows(2) {
        // Bit-level comparison: NaN == NaN here, a genuine f64 change
        // is a change.
        let same = pair[0].ul_best.to_bits() == pair[1].ul_best.to_bits()
            && pair[0].gap_best.to_bits() == pair[1].gap_best.to_bits();
        if same {
            flat += 1;
            run += 1;
            longest = longest.max(run);
        } else {
            run = 0;
        }
    }
    let comparisons = rows.len().saturating_sub(1) as u64;
    let flat_fraction =
        if comparisons == 0 { f64::NAN } else { flat as f64 / comparisons as f64 };
    // `flat > fraction * comparisons` with fraction = 0.5 is exactly the
    // historical `flat * 2 > comparisons` (0.5 * n is exact in f64).
    DisengagementVerdict {
        comparisons,
        flat,
        longest_flat: longest,
        flat_fraction,
        detected: comparisons > 0
            && (flat as f64) > cfg.disengagement_flat_fraction * comparisons as f64,
    }
}

fn stagnation(rows: &[GenerationRow], window: u64) -> StagnationVerdict {
    let mut best = f64::INFINITY;
    let mut run = 0u64;
    let mut longest = 0u64;
    let mut windows = 0u64;
    let mut counted_current = false;
    for row in rows {
        // NaN gaps (no feasible reference yet) never improve the best.
        if row.gap_best < best {
            best = row.gap_best;
            run = 0;
            counted_current = false;
        } else {
            run += 1;
            longest = longest.max(run);
            if run >= window && !counted_current {
                windows += 1;
                counted_current = true;
            }
        }
    }
    StagnationVerdict {
        generations: rows.len() as u64,
        longest_window: longest,
        windows,
        window,
        detected: windows > 0,
    }
}

/// Analyze one parsed trace with default detector thresholds.
/// `stagnation_window` is the plateau length (generations) after which
/// stagnation is flagged ([`DEFAULT_STAGNATION_WINDOW`] when in doubt).
///
/// Equivalent to [`analyze_with`] with a default [`AnalyzeConfig`]
/// carrying `stagnation_window`.
pub fn analyze(records: &[TraceRecord], stagnation_window: u64) -> TraceAnalysis {
    analyze_with(records, &AnalyzeConfig { stagnation_window, ..AnalyzeConfig::default() })
}

/// Analyze one parsed trace with explicit detector thresholds.
pub fn analyze_with(records: &[TraceRecord], cfg: &AnalyzeConfig) -> TraceAnalysis {
    let mut algo = String::new();
    let mut seed = 0u64;
    let mut generations: Vec<GenerationRow> = Vec::new();
    let mut phases: Vec<(String, u64, u64)> = Vec::new(); // (name, ms, visits)
    let mut open_phase: Option<(String, u64)> = None;

    // Accumulators for the generation in progress.
    let mut acc = GenerationRow {
        generation: 0,
        evaluations: 0,
        ul_best: f64::NAN,
        gap_best: f64::NAN,
        ll_solves: 0,
        solve_hits: 0,
        solve_misses: 0,
        compile_hits: 0,
        compile_misses: 0,
        decode_hits: 0,
        decode_misses: 0,
        surrogate_exact: 0,
        surrogate_skipped: 0,
        eval_micros: 0,
    };
    let reset = |acc: &mut GenerationRow| {
        *acc = GenerationRow {
            generation: 0,
            evaluations: 0,
            ul_best: f64::NAN,
            gap_best: f64::NAN,
            ll_solves: 0,
            solve_hits: 0,
            solve_misses: 0,
            compile_hits: 0,
            compile_misses: 0,
            decode_hits: 0,
            decode_misses: 0,
            surrogate_exact: 0,
            surrogate_skipped: 0,
            eval_micros: 0,
        };
    };

    let close_phase =
        |open: &mut Option<(String, u64)>, t_ms: u64, phases: &mut Vec<(String, u64, u64)>| {
            if let Some((name, since)) = open.take() {
                let elapsed = t_ms.saturating_sub(since);
                match phases.iter_mut().find(|(n, _, _)| *n == name) {
                    Some((_, ms, _)) => *ms += elapsed,
                    None => unreachable!("phase rows are created on entry"),
                }
            }
        };

    for r in records {
        match &r.event {
            OwnedEvent::RunStart { algo: a, seed: s } => {
                algo = a.clone();
                seed = *s;
            }
            OwnedEvent::PhaseChange { phase } => {
                close_phase(&mut open_phase, r.t_ms, &mut phases);
                match phases.iter_mut().find(|(n, _, _)| n == phase) {
                    Some((_, _, visits)) => *visits += 1,
                    None => phases.push((phase.clone(), 0, 1)),
                }
                open_phase = Some((phase.clone(), r.t_ms));
            }
            OwnedEvent::Evaluation { micros, .. } => {
                acc.eval_micros += micros;
            }
            OwnedEvent::LowerLevelSolve { solves, .. } => {
                acc.ll_solves += solves;
            }
            OwnedEvent::CacheProbe { hits, misses, .. } => {
                acc.solve_hits += hits;
                acc.solve_misses += misses;
            }
            OwnedEvent::CompileCacheProbe { hits, misses, .. } => {
                acc.compile_hits += hits;
                acc.compile_misses += misses;
            }
            OwnedEvent::DecodeCacheProbe { hits, misses, .. } => {
                acc.decode_hits += hits;
                acc.decode_misses += misses;
            }
            OwnedEvent::SurrogateProbe { exact, skipped, .. } => {
                acc.surrogate_exact += exact;
                acc.surrogate_skipped += skipped;
            }
            OwnedEvent::GenerationEnd { generation, evaluations, ul_best, gap_best } => {
                acc.generation = *generation;
                acc.evaluations = *evaluations;
                acc.ul_best = *ul_best;
                acc.gap_best = *gap_best;
                generations.push(acc.clone());
                reset(&mut acc);
            }
            OwnedEvent::RunComplete { .. } => {
                close_phase(&mut open_phase, r.t_ms, &mut phases);
            }
            OwnedEvent::GenerationStart { .. }
            | OwnedEvent::ObjectivePair { .. }
            | OwnedEvent::ArchiveUpdate { .. } => {}
        }
    }
    // A truncated trace (no RunComplete) still closes at the last
    // timestamp so phase totals don't silently drop the tail.
    if let Some(last) = records.last() {
        close_phase(&mut open_phase, last.t_ms, &mut phases);
    }

    TraceAnalysis {
        events: records.len() as u64,
        algo,
        seed,
        seesaw: seesaw(records, cfg),
        disengagement: disengagement(&generations, cfg),
        stagnation: stagnation(&generations, cfg.stagnation_window),
        generations,
        phases: phases
            .into_iter()
            .map(|(phase, ms, visits)| PhaseRow { phase, ms, visits })
            .collect(),
    }
}

/// Compare two traces event by event on [`OwnedEvent::semantic_key`]
/// (name + payload, timing fields zeroed; `seq`/`t_ms`/`tag` envelopes
/// ignored). Returns the first divergence, or `None` when the traces
/// are semantically identical — which two runs of the same seed and
/// configuration must be.
pub fn diff(left: &[TraceRecord], right: &[TraceRecord]) -> Option<Divergence> {
    let n = left.len().max(right.len());
    for i in 0..n {
        let l = left.get(i).map(|r| r.event.semantic_key());
        let r = right.get(i).map(|r| r.event.semantic_key());
        if l != r {
            return Some(Divergence { index: i as u64, left: l, right: r });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Level;
    use crate::replay::parse_trace;

    fn rec(seq: u64, t_ms: u64, event: OwnedEvent) -> TraceRecord {
        TraceRecord { seq, t_ms, tag: None, event }
    }

    fn gen_end(generation: u64, ul_best: f64, gap_best: f64) -> OwnedEvent {
        OwnedEvent::GenerationEnd {
            generation,
            evaluations: 10 * (generation + 1),
            ul_best,
            gap_best,
        }
    }

    #[test]
    fn generation_rows_accumulate_probe_deltas() {
        let records = vec![
            rec(0, 0, OwnedEvent::RunStart { algo: "carbon".into(), seed: 9 }),
            rec(1, 1, OwnedEvent::LowerLevelSolve { solves: 10, pivots: 50, micros: 80 }),
            rec(2, 1, OwnedEvent::CacheProbe { hits: 4, misses: 6, evictions: 0, entries: 6 }),
            rec(
                3,
                2,
                OwnedEvent::Evaluation {
                    level: Level::Lower,
                    count: 10,
                    gp_nodes: 90,
                    micros: 30,
                },
            ),
            rec(4, 3, gen_end(0, 100.0, 5.0)),
            rec(5, 4, OwnedEvent::CacheProbe { hits: 9, misses: 1, evictions: 0, entries: 7 }),
            rec(6, 5, gen_end(1, 101.0, 4.0)),
        ];
        let a = analyze(&records, DEFAULT_STAGNATION_WINDOW);
        assert_eq!(a.algo, "carbon");
        assert_eq!(a.seed, 9);
        assert_eq!(a.generations.len(), 2);
        let g0 = &a.generations[0];
        assert_eq!((g0.ll_solves, g0.solve_hits, g0.solve_misses), (10, 4, 6));
        assert_eq!(g0.eval_micros, 30);
        assert!((g0.hit_rate() - 0.4).abs() < 1e-12);
        let g1 = &a.generations[1];
        assert_eq!((g1.solve_hits, g1.solve_misses), (9, 1), "deltas reset per generation");
        assert!(g1.hit_rate() > 0.89);
    }

    #[test]
    fn phase_rows_accrue_from_t_ms_deltas() {
        let records = vec![
            rec(0, 0, OwnedEvent::PhaseChange { phase: "relaxation".into() }),
            rec(1, 30, OwnedEvent::PhaseChange { phase: "breeding".into() }),
            rec(2, 40, OwnedEvent::PhaseChange { phase: "relaxation".into() }),
            rec(
                3,
                45,
                OwnedEvent::RunComplete {
                    generations: 0,
                    ul_evaluations: 0,
                    ll_evaluations: 0,
                    best_value: 0.0,
                    best_gap: 0.0,
                },
            ),
        ];
        let a = analyze(&records, DEFAULT_STAGNATION_WINDOW);
        assert_eq!(a.phases.len(), 2);
        assert_eq!(a.phases[0].phase, "relaxation");
        assert_eq!(a.phases[0].ms, 35, "30ms first visit + 5ms second");
        assert_eq!(a.phases[0].visits, 2);
        assert_eq!(a.phases[1].ms, 10);
    }

    #[test]
    fn seesaw_detects_oscillation_and_measures_amplitude() {
        // Upper improves (+10), then lower drags it back (−8), then
        // upper again (+9): classic see-saw.
        let records = vec![
            rec(
                0,
                0,
                OwnedEvent::ObjectivePair {
                    level: Level::Upper,
                    ul_value: 100.0,
                    ll_value: 50.0,
                },
            ),
            rec(
                1,
                1,
                OwnedEvent::ObjectivePair {
                    level: Level::Upper,
                    ul_value: 110.0,
                    ll_value: 50.0,
                },
            ),
            rec(
                2,
                2,
                OwnedEvent::ObjectivePair {
                    level: Level::Lower,
                    ul_value: 102.0,
                    ll_value: 60.0,
                },
            ),
            rec(
                3,
                3,
                OwnedEvent::ObjectivePair {
                    level: Level::Upper,
                    ul_value: 111.0,
                    ll_value: 58.0,
                },
            ),
        ];
        let v = seesaw(&records, &AnalyzeConfig::default());
        assert_eq!(v.segments, 3, "intra-segment samples collapse to the last");
        assert!(v.detected);
        assert!(v.sign_flips >= 1);
        // Deltas are −8 and +9 → mean |Δ| = 8.5.
        assert!((v.ul_amplitude - 8.5).abs() < 1e-12);
        assert!(v.amplitude().is_finite() && v.amplitude() > 0.0);

        // Tightened thresholds suppress the verdict without changing
        // the measurements.
        let strict = AnalyzeConfig { seesaw_min_amplitude: 100.0, ..AnalyzeConfig::default() };
        let quiet = seesaw(&records, &strict);
        assert!(!quiet.detected);
        assert_eq!(quiet.ul_amplitude, v.ul_amplitude);
        let many_flips = AnalyzeConfig { seesaw_min_flips: 50, ..AnalyzeConfig::default() };
        assert!(!seesaw(&records, &many_flips).detected);
    }

    #[test]
    fn seesaw_on_empty_trace_is_finite_and_undetected() {
        let v = seesaw(&[], &AnalyzeConfig::default());
        assert!(!v.detected);
        assert_eq!(v.segments, 0);
        assert!(v.amplitude().is_finite());
        assert_eq!(v.amplitude(), 0.0);
    }

    #[test]
    fn disengagement_counts_flat_windows() {
        let rows: Vec<TraceRecord> = [5.0, 5.0, 5.0, 4.0, 4.0]
            .iter()
            .enumerate()
            .map(|(i, &gap)| rec(i as u64, i as u64, gen_end(i as u64, 100.0, gap)))
            .collect();
        let a = analyze(&rows, DEFAULT_STAGNATION_WINDOW);
        let d = &a.disengagement;
        assert_eq!(d.comparisons, 4);
        assert_eq!(d.flat, 3, "gens 0→1, 1→2 and 3→4 are flat");
        assert_eq!(d.longest_flat, 2);
        assert!(d.detected, "3/4 flat comparisons is disengaged");

        // A laxer threshold tolerates the same trace; defaults are
        // exactly what `analyze` uses.
        let lax =
            AnalyzeConfig { disengagement_flat_fraction: 0.9, ..AnalyzeConfig::default() };
        assert!(!analyze_with(&rows, &lax).disengagement.detected);
        assert_eq!(
            analyze_with(&rows, &AnalyzeConfig::default()),
            analyze(&rows, DEFAULT_STAGNATION_WINDOW),
            "analyze is analyze_with at defaults"
        );
    }

    #[test]
    fn stagnation_windows_track_best_so_far_plateaus() {
        // Gap improves at gen 0 and 1, then plateaus for 4 generations.
        let gaps = [5.0, 4.0, 4.5, 4.2, 4.0, 4.8];
        let rows: Vec<TraceRecord> = gaps
            .iter()
            .enumerate()
            .map(|(i, &gap)| rec(i as u64, i as u64, gen_end(i as u64, 100.0, gap)))
            .collect();
        let a = analyze(&rows, 3);
        let s = &a.stagnation;
        assert_eq!(s.longest_window, 4, "gens 2..=5 never beat 4.0");
        assert_eq!(s.windows, 1);
        assert!(s.detected);
        let relaxed = analyze(&rows, 10);
        assert!(!relaxed.stagnation.detected);
    }

    #[test]
    fn diff_ignores_timing_but_catches_payload_changes() {
        let base = "{\"event\":\"RunStart\",\"seq\":0,\"t_ms\":0,\"algo\":\"cobra\",\"seed\":1}\n\
             {\"event\":\"LowerLevelSolve\",\"seq\":1,\"t_ms\":3,\"solves\":5,\"pivots\":20,\"micros\":111}\n";
        let same_but_slower =
            "{\"event\":\"RunStart\",\"seq\":0,\"t_ms\":2,\"algo\":\"cobra\",\"seed\":1}\n\
             {\"event\":\"LowerLevelSolve\",\"seq\":1,\"t_ms\":9,\"solves\":5,\"pivots\":20,\"micros\":999}\n";
        let divergent = "{\"event\":\"RunStart\",\"seq\":0,\"t_ms\":0,\"algo\":\"cobra\",\"seed\":1}\n\
             {\"event\":\"LowerLevelSolve\",\"seq\":1,\"t_ms\":3,\"solves\":6,\"pivots\":20,\"micros\":111}\n";
        let a = parse_trace(base).unwrap();
        let b = parse_trace(same_but_slower).unwrap();
        let c = parse_trace(divergent).unwrap();
        assert_eq!(diff(&a, &b), None, "timing-only differences are not divergence");
        let d = diff(&a, &c).expect("payload change must diverge");
        assert_eq!(d.index, 1);
        assert!(d.left.unwrap().contains("\"solves\":5"));
        assert!(d.right.unwrap().contains("\"solves\":6"));
    }

    #[test]
    fn diff_reports_length_mismatch_as_divergence() {
        let a = parse_trace(
            "{\"event\":\"GenerationStart\",\"seq\":0,\"t_ms\":0,\"generation\":0}\n",
        )
        .unwrap();
        let d = diff(&a, &[]).expect("length mismatch diverges");
        assert_eq!(d.index, 0);
        assert!(d.left.is_some() && d.right.is_none());
    }
}
