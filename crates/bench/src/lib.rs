#![warn(missing_docs)]

//! # bico-bench — the experiment harness
//!
//! Reproduces every table and figure of the paper's evaluation (§V):
//!
//! | target | paper artifact | binary |
//! |---|---|---|
//! | Table III | best %-gap per class, CARBON vs COBRA | `table3` |
//! | Table IV | best UL objective per class | `table4` |
//! | Fig. 4 | CARBON convergence (n=500, m=30) | `fig4` |
//! | Fig. 5 | COBRA convergence (see-saw) | `fig5` |
//! | Fig. 1 / Program 3 | discontinuous inducible region | `fig1` |
//! | ablations | fitness / terminals / archive knobs | `ablation` |
//!
//! All binaries accept `--full` (the paper's exact budget: 30 runs,
//! 50 000 + 50 000 evaluations, populations of 100) and default to a
//! reduced budget that preserves the qualitative shape in minutes on a
//! laptop. Runs are parallelized with rayon *across independent runs*
//! and are deterministic per `--seed`.

pub mod experiment;
pub mod obs;
pub mod report;

pub use experiment::{
    class_instance, run_class, run_class_observed, AlgoKind, BudgetTier, ClassResult,
    ExperimentOpts, PAPER_CLASSES,
};
pub use obs::{ObsStack, RunObservers};
pub use report::{format_row, markdown_table, write_csv};
