//! Tri-level optimization — the paper's future-work direction, made
//! concrete: three sequential decision makers, each anticipating the
//! rational reactions of everyone below.
//!
//! ```text
//! cargo run --release --example trilevel
//! ```

use bico::core::multilevel::{trilevel_example, TriRow};

fn main() {
    let p = trilevel_example();
    println!("bottom:  min -z   s.t. z <= y, z <= 10 - 2y      (z* = min(y, 10-2y))");
    println!("middle:  min -z   s.t. y <= x");
    println!("top:     min -z + 0.01 x\n");

    println!("reaction chain for a few top-level decisions:");
    for &x in &[1.0, 2.0, 10.0 / 3.0, 5.0, 6.0] {
        if let Some((y, z)) = p.middle_reaction(x, 2000) {
            println!(
                "  x = {x:>5.2}  ->  y = {y:>5.2}  ->  z = {z:>5.2}   F1 = {:>6.3}",
                p.objectives[0].eval(x, y, z)
            );
        }
    }

    let sol = p.solve(2000).unwrap();
    println!(
        "\ntri-level optimum: x = {:.3}, y = {:.3}, z = {:.3}, F1 = {:.4}",
        sol.x, sol.y, sol.z, sol.objective
    );
    println!("(analytic: x = y = z = 10/3 — every level meets at the reaction peak)\n");

    // Now the top player faces an extra constraint excluding that peak —
    // exactly the discontinuous-inducible-region effect of the bi-level
    // toy, one level deeper.
    let mut capped = p.clone();
    capped.constraints[0].push(TriRow { ax: 1.0, ay: 1.0, az: 1.0, rhs: 6.0 });
    let sol = capped.solve(2000).unwrap();
    println!(
        "with top-level cap x+y+z <= 6: x = {:.3}, y = {:.3}, z = {:.3}, F1 = {:.4}",
        sol.x, sol.y, sol.z, sol.objective
    );
    println!("(the top level retreats: deeper levels' preferences are not his to keep)");
}
