//! Shared test-support helpers for the integration suites.
//!
//! Not a test binary itself: each suite pulls this in with `mod common;`,
//! so helpers used by only some suites are expected.
#![allow(dead_code)]

use bico::bcpop::orlib::{parse_mknap, MkpInstance};

/// Exact DP over (row-0 load, row-1 load) → max profit, re-proving a
/// 2-constraint fixture's recorded optimum so the data is known-good
/// rather than a transcription taken on faith.
pub fn prove_optimum_by_dp(mkp: &MkpInstance) -> f64 {
    assert_eq!(mkp.m, 2, "the DP is specialized to two constraints");
    let (c0, c1) = (mkp.capacities[0] as usize, mkp.capacities[1] as usize);
    let mut dp = vec![f64::NEG_INFINITY; (c0 + 1) * (c1 + 1)];
    dp[0] = 0.0;
    for j in 0..mkp.n {
        let (p, a, b) =
            (mkp.profits[j], mkp.weights[j] as usize, mkp.weights[mkp.n + j] as usize);
        for w0 in (0..=c0 - a).rev() {
            for w1 in (0..=c1 - b).rev() {
                let v = dp[w0 * (c1 + 1) + w1];
                let t = &mut dp[(w0 + a) * (c1 + 1) + (w1 + b)];
                if v + p > *t {
                    *t = v + p;
                }
            }
        }
    }
    dp.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
}

/// Load a 28-item × 2-constraint Weingartner–Ness fixture, check its
/// recorded shape/capacities/optimum, and re-prove the optimum by the
/// exact DP before anything downstream trusts the data.
pub fn load_weing_proven(name: &str, caps: [f64; 2], optimum: f64) -> MkpInstance {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).expect("fixture present");
    let mkp = parse_mknap(&text).unwrap().swap_remove(0);
    assert_eq!((mkp.n, mkp.m), (28, 2), "{name}");
    assert_eq!(mkp.capacities, caps, "{name}");
    assert_eq!(mkp.known_optimum, optimum, "{name}");
    let proven = prove_optimum_by_dp(&mkp);
    assert_eq!(proven, optimum, "{name}: DP must reproduce the published optimum");
    mkp
}
