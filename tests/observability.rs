//! End-to-end observability: a real solver run streams JSONL that
//! external tooling (serde_json here, `jq` in the README) can parse,
//! and the metrics sink aggregates exactly under rayon parallelism.

use bico::bcpop::{generate, GeneratorConfig};
use bico::core::{Carbon, CarbonConfig};
use bico::obs::{Event, JsonlSink, Level, MetricsSink, RunObserver, SharedBuffer};
use std::collections::HashSet;

fn small_instance() -> bico::bcpop::BcpopInstance {
    generate(&GeneratorConfig { num_bundles: 30, num_services: 4, ..Default::default() }, 5)
}

fn small_config() -> CarbonConfig {
    CarbonConfig {
        ul_pop_size: 8,
        ll_pop_size: 8,
        ul_archive_size: 8,
        ll_archive_size: 8,
        ul_evaluations: 64,
        ll_evaluations: 64,
        ..Default::default()
    }
}

#[test]
fn carbon_jsonl_trace_round_trips_through_serde_json() {
    let buffer = SharedBuffer::new();
    let sink = JsonlSink::new(buffer.clone());
    let result = Carbon::new(&small_instance(), small_config()).run_observed(5, &sink);
    sink.flush().unwrap();

    let known: HashSet<&str> = Event::examples().iter().map(|e| e.name()).collect();
    let text = buffer.contents();
    let mut events = Vec::new();
    let mut last_seq = None;
    for line in text.lines() {
        let value: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        let event = value
            .get("event")
            .and_then(|v| v.as_str())
            .unwrap_or_else(|| panic!("no event tag in {line:?}"))
            .to_string();
        assert!(known.contains(event.as_str()), "unknown event {event:?}");
        let seq = value.get("seq").and_then(|v| v.as_u64()).expect("seq");
        assert!(last_seq.map_or(seq == 0, |s| seq == s + 1), "seq gap at {line:?}");
        last_seq = Some(seq);
        assert!(value.get("t_ms").and_then(|v| v.as_u64()).is_some(), "t_ms");
        events.push(event);
    }

    assert_eq!(events.first().map(String::as_str), Some("RunStart"));
    assert_eq!(events.last().map(String::as_str), Some("RunComplete"));
    let gen_ends = events.iter().filter(|e| *e == "GenerationEnd").count();
    assert_eq!(gen_ends, result.generations, "one GenerationEnd per generation");
    assert!(events.iter().any(|e| e == "LowerLevelSolve"));
    assert!(events.iter().any(|e| e == "Evaluation"));
}

#[test]
fn jsonl_payloads_match_the_run_trace() {
    let buffer = SharedBuffer::new();
    let sink = JsonlSink::new(buffer.clone());
    let result = Carbon::new(&small_instance(), small_config()).run_observed(5, &sink);
    sink.flush().unwrap();

    // Rebuild the convergence series from the JSON stream — this is the
    // README's jq one-liner, done in-process.
    let mut series = Vec::new();
    for line in buffer.contents().lines() {
        let value: serde_json::Value = serde_json::from_str(line).unwrap();
        if value.get("event").and_then(|v| v.as_str()) == Some("GenerationEnd") {
            series.push((
                value.get("generation").and_then(|v| v.as_u64()).unwrap() as usize,
                value.get("evaluations").and_then(|v| v.as_u64()).unwrap(),
                value.get("ul_best").and_then(|v| v.as_f64()).unwrap(),
                value.get("gap_best").and_then(|v| v.as_f64()).unwrap(),
            ));
        }
    }
    let expected: Vec<(usize, u64, f64, f64)> = result
        .trace
        .points()
        .iter()
        .map(|p| (p.generation, p.evaluations, p.ul_best, p.gap_best))
        .collect();
    assert_eq!(series, expected);
}

#[test]
fn cache_probes_stream_and_aggregate_consistently() {
    let buffer = SharedBuffer::new();
    let sink = JsonlSink::new(buffer.clone());
    let mut cfg = small_config();
    cfg.ll_cache_capacity = 512;
    Carbon::new(&small_instance(), cfg.clone()).run_observed(5, &sink);
    sink.flush().unwrap();

    let mut probes = 0u64;
    let mut hits = 0u64;
    let mut solves = 0u64;
    for line in buffer.contents().lines() {
        let value: serde_json::Value = serde_json::from_str(line).unwrap();
        match value.get("event").and_then(|v| v.as_str()) {
            Some("CacheProbe") => {
                let h = value.get("hits").and_then(|v| v.as_u64()).expect("hits field");
                let m = value.get("misses").and_then(|v| v.as_u64()).expect("misses field");
                hits += h;
                probes += h + m;
            }
            Some("LowerLevelSolve") => {
                solves += value.get("solves").and_then(|v| v.as_u64()).expect("solves field");
            }
            _ => {}
        }
    }
    assert!(probes > 0, "an enabled cache must emit CacheProbe events");
    assert_eq!(probes, solves, "every relaxation request is exactly one cache probe");
    assert!(hits > 0, "elite re-injection must produce at least one cache hit");

    // The metrics sink aggregates the same stream to the same identity.
    let metrics = MetricsSink::new();
    Carbon::new(&small_instance(), cfg).run_observed(5, &metrics);
    let m = metrics.report();
    assert_eq!(m.cache_hits + m.cache_misses, m.ll_solves);
    assert_eq!(m.cache_hits, hits, "both sinks see the same probe stream");
}

#[test]
fn disabled_cache_emits_no_probe_events() {
    let buffer = SharedBuffer::new();
    let sink = JsonlSink::new(buffer.clone());
    Carbon::new(&small_instance(), small_config()).run_observed(5, &sink);
    sink.flush().unwrap();
    for line in buffer.contents().lines() {
        let value: serde_json::Value = serde_json::from_str(line).unwrap();
        assert_ne!(
            value.get("event").and_then(|v| v.as_str()),
            Some("CacheProbe"),
            "capacity 0 must not emit CacheProbe"
        );
    }
}

#[test]
fn metrics_sink_aggregates_exactly_under_rayon() {
    use rayon::prelude::*;
    let sink = MetricsSink::new();
    (0..64u64).into_par_iter().for_each(|i| {
        sink.observe(&Event::Evaluation {
            level: Level::Lower,
            count: i,
            gp_nodes: 2 * i,
            micros: 10 * i,
        });
        sink.observe(&Event::Evaluation {
            level: Level::Upper,
            count: 1,
            gp_nodes: 0,
            micros: 5,
        });
        sink.observe(&Event::LowerLevelSolve { solves: 1, pivots: i, micros: i });
    });
    let m = sink.report();
    let total: u64 = (0..64).sum();
    assert_eq!(m.ll_evaluations, total);
    assert_eq!(m.ul_evaluations, 64);
    assert_eq!(m.evaluations, total + 64);
    assert_eq!(m.gp_node_evals, 2 * total);
    assert_eq!(m.ll_solves, 64);
    assert_eq!(m.simplex_pivots, total);
}

#[test]
fn metrics_report_json_parses_with_serde() {
    let sink = MetricsSink::new();
    Carbon::new(&small_instance(), small_config()).run_observed(5, &sink);
    let text = sink.report().to_json();
    let value: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("bad metrics JSON: {e}\n{text}"));
    assert_eq!(value.get("runs").and_then(|v| v.as_u64()), Some(1));
    for key in ["evaluations", "ll_solves", "simplex_pivots", "gp_node_evals"] {
        let n = value.get(key).and_then(|v| v.as_u64()).unwrap_or(0);
        assert!(n > 0, "{key} should be nonzero, got {n}");
    }
    assert!(value.get("phases").and_then(|v| v.as_array()).is_some_and(|a| !a.is_empty()));
}
