//! General linear bi-level problems with exact rational reactions.
//!
//! §II of the paper builds its intuition on a linear toy (Program 3,
//! originally from Mersha & Dempe): upper-level constraints can make the
//! inducible region *discontinuous*, and an upper-level decision maker
//! who mis-forecasts the lower-level rational reaction may end up with
//! an infeasible "solution". This module reproduces that machinery
//! exactly:
//!
//! * the lower-level rational reaction `P(x)` is computed by LP;
//! * ties inside `P(x)` are broken optimistically or pessimistically
//!   (§II's two cases) with a second, lexicographic LP;
//! * scalar-`x` problems can be solved to bi-level optimality by a grid
//!   scan over the upper-level interval (the inducible region of a
//!   linear bi-level program is piecewise linear in `x`).

use bico_lp::{LpProblem, LpStatus, Relation};

/// Tie-breaking rule inside the lower-level rational set `P(x)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// Choose `ŷ = argmin { F(x, y) : y ∈ P(x) }` (the paper's working
    /// assumption).
    Optimistic,
    /// Choose `ŷ = argmax { F(x, y) : y ∈ P(x) }`.
    Pessimistic,
}

/// A lower-level rational reaction.
#[derive(Debug, Clone, PartialEq)]
pub struct Reaction {
    /// The chosen lower-level decision.
    pub y: Vec<f64>,
    /// The lower-level optimal value `w(x)`.
    pub ll_value: f64,
}

/// A linear bi-level problem
///
/// ```text
/// min_x  F(x, y) = fx·x + fy·y
/// s.t.   Gx·x + Gy·y ≤ g          (upper-level constraints)
///        y solves:  min_y  c·y
///                   s.t.   Ax·x + Ay·y ≤ a,   y ≥ 0
/// x ≥ 0
/// ```
///
/// All rows are stored dense.
///
/// ```
/// use bico_core::{program3, TieBreak};
///
/// let p = program3(); // the paper's Mersha–Dempe toy
/// let r = p.rational_reaction(&[6.0], TieBreak::Optimistic).unwrap();
/// assert_eq!(r.y[0], 12.0);                      // §II's rational reaction
/// assert!(!p.ul_feasible(&[6.0], &r.y, 1e-7));   // …which the leader cannot keep
/// ```
#[derive(Debug, Clone)]
pub struct LinearBilevel {
    /// Upper-level objective coefficients on `x`.
    pub fx: Vec<f64>,
    /// Upper-level objective coefficients on `y`.
    pub fy: Vec<f64>,
    /// Upper-level constraint coefficients on `x` (row-major).
    pub gx: Vec<Vec<f64>>,
    /// Upper-level constraint coefficients on `y` (row-major).
    pub gy: Vec<Vec<f64>>,
    /// Upper-level right-hand sides.
    pub g: Vec<f64>,
    /// Lower-level objective coefficients on `y`.
    pub c: Vec<f64>,
    /// Lower-level constraint coefficients on `x`.
    pub ax: Vec<Vec<f64>>,
    /// Lower-level constraint coefficients on `y`.
    pub ay: Vec<Vec<f64>>,
    /// Lower-level right-hand sides.
    pub a: Vec<f64>,
}

impl LinearBilevel {
    /// Dimension of `x`.
    pub fn nx(&self) -> usize {
        self.fx.len()
    }

    /// Dimension of `y`.
    pub fn ny(&self) -> usize {
        self.fy.len()
    }

    /// Upper-level objective `F(x, y)`.
    pub fn ul_objective(&self, x: &[f64], y: &[f64]) -> f64 {
        dot(&self.fx, x) + dot(&self.fy, y)
    }

    /// Lower-level objective `f(x, y) = c·y`.
    pub fn ll_objective(&self, y: &[f64]) -> f64 {
        dot(&self.c, y)
    }

    /// `true` iff `(x, y)` satisfies the *upper-level* constraints.
    pub fn ul_feasible(&self, x: &[f64], y: &[f64], tol: f64) -> bool {
        self.gx
            .iter()
            .zip(&self.gy)
            .zip(&self.g)
            .all(|((rx, ry), &rhs)| dot(rx, x) + dot(ry, y) <= rhs + tol)
    }

    /// `true` iff `(x, y)` satisfies the *lower-level* constraints.
    pub fn ll_feasible(&self, x: &[f64], y: &[f64], tol: f64) -> bool {
        y.iter().all(|&v| v >= -tol)
            && self
                .ax
                .iter()
                .zip(&self.ay)
                .zip(&self.a)
                .all(|((rx, ry), &rhs)| dot(rx, x) + dot(ry, y) <= rhs + tol)
    }

    /// Compute the lower-level rational reaction for a fixed `x`:
    /// the LP `min c·y  s.t.  Ay·y ≤ a − Ax·x, y ≥ 0`, with ties inside
    /// `P(x)` broken per `tie` by a second lexicographic LP
    /// (`opt f_y·y  s.t.  LL constraints ∧ c·y ≤ w(x)`).
    ///
    /// Returns `None` when the lower level is infeasible or unbounded at
    /// this `x`.
    pub fn rational_reaction(&self, x: &[f64], tie: TieBreak) -> Option<Reaction> {
        let ny = self.ny();
        // Stage 1: lower-level optimum w(x).
        let mut lp = LpProblem::minimize(ny);
        lp.set_objective(&self.c);
        for ((rx, ry), &rhs) in self.ax.iter().zip(&self.ay).zip(&self.a) {
            lp.add_constraint_dense(ry, Relation::Le, rhs - dot(rx, x));
        }
        let sol = lp.solve().ok()?;
        if sol.status != LpStatus::Optimal {
            return None;
        }
        let w = sol.objective;

        // Stage 2: tie-break over P(x) = { y : feasible ∧ c·y ≤ w }.
        let mut lp2 = match tie {
            TieBreak::Optimistic => LpProblem::minimize(ny),
            TieBreak::Pessimistic => LpProblem::maximize(ny),
        };
        lp2.set_objective(&self.fy);
        for ((rx, ry), &rhs) in self.ax.iter().zip(&self.ay).zip(&self.a) {
            lp2.add_constraint_dense(ry, Relation::Le, rhs - dot(rx, x));
        }
        lp2.add_constraint_dense(&self.c, Relation::Le, w + 1e-7);
        let sol2 = lp2.solve().ok()?;
        if sol2.status != LpStatus::Optimal {
            // Unbounded tie-break can happen in the pessimistic case when
            // P(x) is unbounded in the F direction; fall back to stage 1.
            return Some(Reaction { y: sol.x, ll_value: w });
        }
        let ll_value = self.ll_objective(&sol2.x);
        Some(Reaction { y: sol2.x, ll_value })
    }

    /// Grid-scan bi-level solve for problems with scalar `x`: evaluate
    /// the rational reaction on `steps + 1` evenly spaced points of
    /// `[x_lo, x_hi]` and return the best *bi-level feasible* triple
    /// `(x, y, F)`.
    ///
    /// # Panics
    /// Panics if `nx() != 1`.
    pub fn solve_grid(
        &self,
        x_lo: f64,
        x_hi: f64,
        steps: usize,
        tie: TieBreak,
    ) -> Option<(f64, Vec<f64>, f64)> {
        assert_eq!(self.nx(), 1, "grid solve supports scalar x only");
        let mut best: Option<(f64, Vec<f64>, f64)> = None;
        for i in 0..=steps {
            let x = x_lo + (x_hi - x_lo) * i as f64 / steps as f64;
            let xs = [x];
            let Some(r) = self.rational_reaction(&xs, tie) else {
                continue;
            };
            if !self.ul_feasible(&xs, &r.y, 1e-7) {
                continue; // rational reaction violates UL constraints
            }
            let f = self.ul_objective(&xs, &r.y);
            if best.as_ref().is_none_or(|(_, _, bf)| f < *bf) {
                best = Some((x, r.y, f));
            }
        }
        best
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// The paper's Program 3 (the Mersha–Dempe example of §II / Fig. 1):
///
/// ```text
/// min F(x,y) = −x − 2y
/// s.t. 2x − 3y ≥ −12        (UL)
///      x + y ≤ 14           (UL)
///      min f(y) = −y
///      s.t. −3x + y ≤ −3    (LL)
///            3x + y ≤ 30    (LL)
/// x, y ≥ 0
/// ```
pub fn program3() -> LinearBilevel {
    LinearBilevel {
        fx: vec![-1.0],
        fy: vec![-2.0],
        // 2x − 3y ≥ −12  ⇔  −2x + 3y ≤ 12
        gx: vec![vec![-2.0], vec![1.0]],
        gy: vec![vec![3.0], vec![1.0]],
        g: vec![12.0, 14.0],
        c: vec![-1.0],
        ax: vec![vec![-3.0], vec![3.0]],
        ay: vec![vec![1.0], vec![1.0]],
        a: vec![-3.0, 30.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reaction_y(p: &LinearBilevel, x: f64) -> f64 {
        p.rational_reaction(&[x], TieBreak::Optimistic).unwrap().y[0]
    }

    #[test]
    fn paper_reaction_at_x2_is_3() {
        // §V.B: "If we set x=2 … optimal ŷ = 3".
        let p = program3();
        assert!((reaction_y(&p, 2.0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn paper_reaction_at_x6_is_12() {
        // §II: "an upper-level decision maker selecting x = 6 will
        // observe a lower-level rational reaction y = 12".
        let p = program3();
        assert!((reaction_y(&p, 6.0) - 12.0).abs() < 1e-6);
    }

    #[test]
    fn x6_rational_reaction_is_ul_infeasible() {
        // The crux of Fig. 1: (6, 12) violates 2x − 3y ≥ −12.
        let p = program3();
        let r = p.rational_reaction(&[6.0], TieBreak::Optimistic).unwrap();
        assert!(!p.ul_feasible(&[6.0], &r.y, 1e-7));
    }

    #[test]
    fn naive_y8_at_x6_is_ul_feasible_but_not_rational() {
        // §IV.A: a heuristic answering y = 8 at x = 6 makes the leader
        // believe x = 6 is great — but 8 is not the rational reaction.
        let p = program3();
        assert!(p.ul_feasible(&[6.0], &[8.0], 1e-7));
        assert!(p.ll_feasible(&[6.0], &[8.0], 1e-7));
        let rational = reaction_y(&p, 6.0);
        assert!((rational - 8.0).abs() > 1.0, "y=8 must not be rational");
        // And the naive pairing overestimates the leader's payoff:
        let naive_f = p.ul_objective(&[6.0], &[8.0]);
        assert!(naive_f < -20.0, "overestimate expected, got {naive_f}");
    }

    #[test]
    fn grid_solve_finds_the_bilevel_optimum() {
        // Analytic optimum of Program 3: x = 8, y = 6, F = −20
        // (IR branches x ∈ [1,3] with F = 6−7x and x ∈ [8,10] with 5x−60).
        let p = program3();
        let (x, y, f) = p.solve_grid(0.0, 10.0, 1000, TieBreak::Optimistic).unwrap();
        assert!((x - 8.0).abs() < 0.02, "x = {x}");
        assert!((y[0] - 6.0).abs() < 0.05, "y = {}", y[0]);
        assert!((f + 20.0).abs() < 0.05, "F = {f}");
    }

    #[test]
    fn inducible_region_is_discontinuous() {
        // Between the two IR branches (3 < x < 8) the rational reaction
        // must violate the UL constraints.
        let p = program3();
        for &x in &[4.0, 5.0, 6.0, 7.0] {
            let r = p.rational_reaction(&[x], TieBreak::Optimistic).unwrap();
            assert!(
                !p.ul_feasible(&[x], &r.y, 1e-7),
                "x = {x} unexpectedly inside the inducible region"
            );
        }
        // And both branches are inside.
        for &x in &[1.0, 2.0, 3.0, 8.0, 9.0, 10.0] {
            let r = p.rational_reaction(&[x], TieBreak::Optimistic).unwrap();
            assert!(
                p.ul_feasible(&[x], &r.y, 1e-6),
                "x = {x} unexpectedly outside the inducible region"
            );
        }
    }

    #[test]
    fn lower_level_infeasible_x_reports_none() {
        // x = 0: y ≤ 3·0 − 3 = −3 contradicts y ≥ 0.
        let p = program3();
        assert!(p.rational_reaction(&[0.0], TieBreak::Optimistic).is_none());
    }

    #[test]
    fn optimistic_vs_pessimistic_tie_break() {
        // A degenerate LL where every y in [0, 5] is optimal (c = 0):
        // optimistic picks the y minimizing F (fy = −1 → y = 5),
        // pessimistic the one maximizing F (y = 0).
        let p = LinearBilevel {
            fx: vec![0.0],
            fy: vec![-1.0],
            gx: vec![],
            gy: vec![],
            g: vec![],
            c: vec![0.0],
            ax: vec![vec![0.0]],
            ay: vec![vec![1.0]],
            a: vec![5.0],
        };
        let opt = p.rational_reaction(&[0.0], TieBreak::Optimistic).unwrap();
        let pes = p.rational_reaction(&[0.0], TieBreak::Pessimistic).unwrap();
        assert!((opt.y[0] - 5.0).abs() < 1e-7);
        assert!(pes.y[0].abs() < 1e-7);
    }

    #[test]
    fn objectives_evaluate_linearly() {
        let p = program3();
        assert_eq!(p.ul_objective(&[2.0], &[3.0]), -8.0);
        assert_eq!(p.ll_objective(&[3.0]), -3.0);
    }
}
