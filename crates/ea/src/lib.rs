#![warn(missing_docs)]

//! # bico-ea — evolutionary-algorithm toolkit
//!
//! The GA machinery shared by CARBON's upper-level population and both
//! COBRA populations (Table II of the paper):
//!
//! * [`real`] — real-coded operators: simulated binary crossover (SBX)
//!   and polynomial mutation, both bound-preserving (Deb & Agrawal);
//! * [`binary`] — binary-vector operators: two-point crossover and swap
//!   mutation (COBRA's lower level);
//! * [`select`] — k-ary and binary tournament selection;
//! * [`archive`] — the bounded elite archives both algorithms keep at
//!   each level;
//! * [`population`] — individuals and a rayon-parallel evaluation driver;
//! * [`rng`] — splitmix64 seed streams so parallel runs stay
//!   deterministic regardless of thread count;
//! * [`stats`] — running statistics and convergence traces (the data
//!   behind the paper's Fig. 4 and Fig. 5);
//! * [`cache`] — sharded, bounded, bit-exact memoization caches
//!   ([`ShardedCache`] and its pricing-keyed [`SolveCache`] wrapper),
//!   shared across generations and rayon workers.

pub mod archive;
pub mod binary;
pub mod cache;
pub mod hypothesis;
pub mod population;
pub mod real;
pub mod rng;
pub mod select;
pub mod stats;

pub use archive::Archive;
pub use cache::{CacheStats, EvictionPolicy, ShardedCache, SolveCache};
pub use hypothesis::{
    compare_run_sets, mann_whitney_u, seed_matrix, MannWhitney, RunSetComparison,
};
pub use population::{evaluate_parallel, Individual};
pub use real::{polynomial_mutation, sbx_crossover, RealOpsConfig};
pub use rng::seed_stream;
pub use select::{tournament, Direction};
pub use stats::{Summary, Trace, TracePoint};
