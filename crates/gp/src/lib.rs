#![warn(missing_docs)]

//! # bico-gp — genetic programming engine
//!
//! The lower-level population of CARBON does not evolve lower-level
//! *solutions* but lower-level *heuristics*: scoring functions encoded as
//! GP syntax trees (the paper's "GP hyper-heuristics", §IV.A, Table I).
//! This crate is the engine behind that population:
//!
//! * [`PrimitiveSet`] — the operator set (Table I: `+ − * %-protected
//!   mod-protected`) and named terminals, plus optional ephemeral
//!   constants;
//! * [`Expr`] — a syntax tree stored as a flat prefix-order buffer
//!   (cache-friendly, allocation-free evaluation with a reusable stack);
//! * [`generate`](crate::full) — full / grow / ramped half-and-half initialization;
//! * [`subtree_crossover`] and the `mutate_*` family — GP variation
//!   ("one-point" crossover, uniform mutation and reproduction in
//!   Table II's GP rows), all with static depth limits;
//! * [`simplify`] — constant folding and algebraic identity pruning so
//!   evolved heuristics stay human-readable.
//!
//! The engine is problem-agnostic: terminals are indices resolved against
//! a caller-provided value slice at evaluation time. `bico-bcpop` binds
//! them to the bundle features of the cloud-pricing covering problem.
//!
//! ## Example
//!
//! ```
//! use bico_gp::{Evaluator, Expr, Node, PrimitiveSet};
//!
//! let mut ps = PrimitiveSet::arithmetic(); // + - * % mod (Table I)
//! let c = ps.add_terminal("c");
//! let q = ps.add_terminal("q");
//! // score = c / q  (protected division)
//! let expr = Expr::from_nodes(vec![
//!     Node::Op(3), // '%' is the 4th arithmetic operator
//!     Node::Term(c as u16),
//!     Node::Term(q as u16),
//! ]);
//! expr.validate(&ps).unwrap();
//! let mut ev = Evaluator::new();
//! assert_eq!(ev.eval(&expr, &ps, &[6.0, 3.0]), 2.0);
//! assert_eq!(ev.eval(&expr, &ps, &[6.0, 0.0]), 1.0); // protected
//! ```

mod compile;
mod generate;
mod ops;
mod pretty;
mod primitives;
mod sexpr;
mod simplify;
mod tree;

pub use compile::{structural_key, CompiledEvaluator, CompiledProgram};
pub use generate::{full, grow, ramped_half_and_half, GenError};
pub use ops::{
    mutate_hoist, mutate_point, mutate_shrink, mutate_uniform, subtree_crossover,
    VariationConfig,
};
pub use pretty::to_infix;
pub use primitives::{OpFn, Operator, PrimitiveSet};
pub use sexpr::{parse_sexpr, to_sexpr, SexprError};
pub use simplify::simplify;
pub use tree::{Evaluator, Expr, Node, TreeError};
