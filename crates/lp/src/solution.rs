//! Solver output types.

/// Position of a variable (structural or slack) in a simplex basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarStatus {
    /// In the basis; its value is determined by the constraint system.
    Basic,
    /// Nonbasic, resting at its lower bound.
    AtLower,
    /// Nonbasic, resting at its upper bound.
    AtUpper,
}

/// A basis snapshot taken at an optimal vertex: one [`VarStatus`] per
/// structural variable (`[0, n)`) followed by one per constraint slack
/// (`[n, n+m)`).
///
/// Feed it back into [`crate::LpProblem::solve_with_basis`] to warm-start
/// a solve of a *nearby* problem (same shape, perturbed data) from this
/// vertex instead of running phase 1 from scratch. Rows left redundant by
/// phase 1 may carry fewer than `m` basic entries; that is a valid
/// snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasisSnapshot {
    statuses: Vec<VarStatus>,
}

impl BasisSnapshot {
    /// Build a snapshot from explicit per-column statuses
    /// (`n` structural then `m` slack entries).
    pub fn from_statuses(statuses: Vec<VarStatus>) -> Self {
        BasisSnapshot { statuses }
    }

    /// Per-column statuses, structural variables first.
    pub fn statuses(&self) -> &[VarStatus] {
        &self.statuses
    }

    /// Total number of columns covered (`n + m`).
    pub fn len(&self) -> usize {
        self.statuses.len()
    }

    /// `true` iff the snapshot covers zero columns.
    pub fn is_empty(&self) -> bool {
        self.statuses.is_empty()
    }

    /// Number of columns marked [`VarStatus::Basic`].
    pub fn num_basic(&self) -> usize {
        self.statuses.iter().filter(|s| **s == VarStatus::Basic).count()
    }
}

/// Termination status of a simplex solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The iteration limit was exhausted before convergence.
    IterationLimit,
}

/// Result of an LP solve.
///
/// `x`, `duals` and `reduced_costs` are only meaningful when
/// `status == LpStatus::Optimal`; they are returned empty otherwise.
///
/// Dual sign convention: `duals[i]` is the sensitivity `∂objective/∂rhs_i`
/// *in the original optimization sense*. For a minimization problem a
/// binding `≥` row therefore has `duals[i] ≥ 0` and a binding `≤` row has
/// `duals[i] ≤ 0`.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Termination status.
    pub status: LpStatus,
    /// Objective value in the original sense (meaningful only if optimal).
    pub objective: f64,
    /// Primal values of the structural variables.
    pub x: Vec<f64>,
    /// One dual multiplier per constraint row.
    pub duals: Vec<f64>,
    /// Reduced cost of each structural variable (original sense).
    pub reduced_costs: Vec<f64>,
    /// Total simplex pivots across both phases.
    pub iterations: usize,
    /// Pivots spent in phase 1 (finding a feasible basis); `0` when the
    /// initial slack basis was already feasible. Phase-2 pivots are
    /// `iterations - phase1_iterations`. For a warm-started solve this
    /// counts the basis-crash pivots instead.
    pub phase1_iterations: usize,
    /// Basis at the optimal vertex, for warm-starting nearby solves via
    /// [`crate::LpProblem::solve_with_basis`]. `None` unless
    /// `status == LpStatus::Optimal`.
    pub basis: Option<BasisSnapshot>,
}

impl LpSolution {
    /// `true` iff the solve proved optimality.
    pub fn is_optimal(&self) -> bool {
        self.status == LpStatus::Optimal
    }

    pub(crate) fn non_optimal(
        status: LpStatus,
        iterations: usize,
        phase1_iterations: usize,
    ) -> Self {
        LpSolution {
            status,
            objective: f64::NAN,
            x: Vec::new(),
            duals: Vec::new(),
            reduced_costs: Vec::new(),
            iterations,
            phase1_iterations,
            basis: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_optimal_is_empty() {
        let s = LpSolution::non_optimal(LpStatus::Infeasible, 7, 4);
        assert!(!s.is_optimal());
        assert!(s.objective.is_nan());
        assert!(s.x.is_empty());
        assert_eq!(s.iterations, 7);
        assert_eq!(s.phase1_iterations, 4);
        assert!(s.basis.is_none());
    }

    #[test]
    fn basis_snapshot_counts_basics() {
        let snap = BasisSnapshot::from_statuses(vec![
            VarStatus::Basic,
            VarStatus::AtLower,
            VarStatus::AtUpper,
            VarStatus::Basic,
        ]);
        assert_eq!(snap.len(), 4);
        assert!(!snap.is_empty());
        assert_eq!(snap.num_basic(), 2);
        assert_eq!(snap.statuses()[1], VarStatus::AtLower);
    }
}
