//! Cross-generation lower-level decode memoization.
//!
//! A lower-level decode — one greedy pass of one scoring heuristic over
//! one pricing's cost vector — is a pure function of the scorer, the
//! pricing bits, and the decode mode: the cost vector, the relaxation
//! (when LP terminals are on), and the pair evaluation all derive
//! deterministically from the pricing. CARBON re-runs the very same
//! decode constantly: elites and archive members resurface identical
//! pricings generation after generation, reproduction clones and the
//! re-injected archive best resurface identical trees, and the champion
//! decoded against the training elite in the lower-level phase is decoded
//! against it again in the upper-level phase.
//!
//! [`DecodeCache`] memoizes the *full* outcome of such a decode —
//! chosen bundles, follower objective, leader revenue, %-gap, and the
//! GP-node charge — under an injective key combining the scorer's exact
//! encoding, the pricing's exact bit pattern, and the decode mode.
//! Storing the node charge keeps `nodes_evaluated` accounting
//! bit-identical on hits: a recalled decode charges exactly what the
//! fresh decode did.
//!
//! Caching cannot change results: decodes are deterministic and keys are
//! exact, so cached and uncached runs are bit-identical (asserted by the
//! differential tests in `tests/determinism.rs`).

use bico_bcpop::{BilevelEval, CoverOutcome};
use bico_ea::cache::{CacheStats, EvictionPolicy, ShardedCache};
use bico_gp::{structural_key, Expr};
use std::sync::Arc;

/// Everything one lower-level decode of one (scorer, pricing) pair
/// produces. Cached whole so a hit can stand in for the decode *and* the
/// pair evaluation without recomputing either.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeOutcome {
    /// The greedy cover the heuristic produced (chosen bundles, follower
    /// objective, feasibility, steps).
    pub cover: CoverOutcome,
    /// The bilevel evaluation of that cover against the pricing (leader
    /// revenue, follower cost, %-gap, feasibility).
    pub eval: BilevelEval,
    /// GP nodes charged by this decode (0 for linear weight scorers).
    /// Replayed on every hit so evaluation accounting never depends on
    /// whether the decode was recalled or recomputed.
    pub gp_nodes: u64,
}

/// Mode tag: the scorer words encode a GP tree ([`structural_key`]).
pub const MODE_TREE: u64 = 1 << 32;
/// Mode tag: the scorer words encode a linear weight vector (bit
/// patterns of the weights).
pub const MODE_WEIGHTS: u64 = 2 << 32;
/// Mode flag: the LP relaxation terminals were provided to the scorer.
pub const FLAG_LP_TERMINALS: u64 = 1;
/// Mode flag: the compiled + batched decoder ran (vs the interpreter;
/// both produce bit-identical outcomes, the flag keeps keys
/// self-describing).
pub const FLAG_COMPILED: u64 = 2;

/// The mode word for a run configuration.
pub fn decode_mode(weights: bool, lp_terminals: bool, compiled: bool) -> u64 {
    (if weights { MODE_WEIGHTS } else { MODE_TREE })
        | (if lp_terminals { FLAG_LP_TERMINALS } else { 0 })
        | (if compiled { FLAG_COMPILED } else { 0 })
}

/// Scorer words for a GP tree: its canonical structural encoding.
pub fn tree_scorer_key(expr: &Expr) -> Vec<u64> {
    structural_key(expr)
}

/// Scorer words for a linear weight vector: exact bit patterns.
pub fn weights_scorer_key(weights: &[f64]) -> Vec<u64> {
    weights.iter().map(|w| w.to_bits()).collect()
}

/// A pricing's exact bit pattern — the evaluation matrix's column
/// identity (two pricings share a column iff every price is equal to
/// the bit).
pub fn pricing_key(prices: &[f64]) -> Box<[u64]> {
    prices.iter().map(|p| p.to_bits()).collect()
}

/// One evaluation-matrix cell's cache key:
/// `[mode, scorer_len, scorer words…, pricing bits…]`.
///
/// The layout is a prefix code — `scorer_len` pins down the boundary
/// between the scorer words and the pricing words — so the key is
/// injective across (scorer, pricing, mode) as long as each mode's
/// scorer encoding is itself injective ([`structural_key`] is; weight
/// bit patterns trivially are). Asserted by a proptest in
/// `tests/decode_cache_keys.rs`.
pub fn cell_key(mode: u64, scorer: &[u64], prices: &[f64]) -> Box<[u64]> {
    let mut key = Vec::with_capacity(2 + scorer.len() + prices.len());
    key.push(mode);
    key.push(scorer.len() as u64);
    key.extend_from_slice(scorer);
    key.extend(prices.iter().map(|p| p.to_bits()));
    key.into_boxed_slice()
}

/// Group a sequence by key — the evaluation matrix's row/column
/// assignment. Returns, per input position, the index of its group,
/// plus one `(representative position, key)` per group in
/// first-appearance order. Population slots sharing a group share one
/// matrix cell's outcome.
pub fn dedup_by_key<K: std::hash::Hash + Eq + Clone>(
    keys: impl Iterator<Item = K>,
) -> (Vec<usize>, Vec<(usize, K)>) {
    let mut group_of = Vec::new();
    let mut groups: Vec<(usize, K)> = Vec::new();
    let mut seen: std::collections::HashMap<K, usize> = std::collections::HashMap::new();
    for (i, key) in keys.enumerate() {
        let id = *seen.entry(key.clone()).or_insert_with(|| {
            groups.push((i, key));
            groups.len() - 1
        });
        group_of.push(id);
    }
    (group_of, groups)
}

/// A sharded, bounded, thread-safe cache of decode outcomes keyed by
/// [`cell_key`]. `capacity == 0` disables storage: every probe decodes
/// fresh (and counts a miss), which is exactly the pre-cache behaviour.
///
/// Outcomes are handed out as [`Arc`]s so the evaluation matrix can
/// scatter one cell to many population slots without cloning the chosen
/// vector.
#[derive(Debug)]
pub struct DecodeCache {
    inner: ShardedCache<Box<[u64]>, Arc<DecodeOutcome>>,
}

impl DecodeCache {
    /// Create a cache holding at most `capacity` outcomes (`0` =
    /// disabled), evicting in plain FIFO order.
    pub fn new(capacity: usize) -> Self {
        DecodeCache { inner: ShardedCache::new(capacity) }
    }

    /// [`DecodeCache::new`] with an explicit [`EvictionPolicy`] —
    /// [`EvictionPolicy::Clock`] keeps decodes that keep getting probed
    /// (recurring elites) resident through exploration churn without an
    /// explicit pin set. Like pinning, the policy moves only the hit
    /// rate, never any outcome.
    pub fn with_policy(capacity: usize, policy: EvictionPolicy) -> Self {
        DecodeCache { inner: ShardedCache::with_policy(capacity, policy) }
    }

    /// `true` iff the cache can store entries.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_enabled()
    }

    /// Outcomes currently resident.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` iff no outcome is resident.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The outcome for `key`, decoding through `compute` on a miss.
    /// Returns the outcome and whether it was a hit.
    pub fn get_or_decode(
        &self,
        key: Box<[u64]>,
        compute: impl FnOnce() -> DecodeOutcome,
    ) -> (Arc<DecodeOutcome>, bool) {
        self.inner.get_or_insert(key, || Arc::new(compute()))
    }

    /// Snapshot of probe/hit/miss/insertion/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Shield `key`'s outcome from FIFO eviction until
    /// [`clear_pins`](Self::clear_pins). Pinning affects eviction order
    /// only — never the outcome of a probe — so pinned runs stay
    /// bit-identical to unpinned ones. No-op when the cache is disabled.
    pub fn pin(&self, key: Box<[u64]>) {
        self.inner.pin(key);
    }

    /// Drop every pin (entries stay resident, just evictable again).
    pub fn clear_pins(&self) {
        self.inner.clear_pins();
    }

    /// Number of currently pinned keys.
    pub fn pinned_len(&self) -> usize {
        self.inner.pinned_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(cost: f64) -> DecodeOutcome {
        DecodeOutcome {
            cover: CoverOutcome { chosen: vec![true, false], cost, feasible: true, steps: 1 },
            eval: BilevelEval {
                ul_value: cost / 2.0,
                ll_value: cost,
                gap: 1.5,
                feasible: true,
            },
            gp_nodes: 7,
        }
    }

    #[test]
    fn second_probe_recalls_the_same_outcome() {
        let cache = DecodeCache::new(16);
        let key = cell_key(MODE_TREE, &[1, 2, 3], &[10.0, 20.0]);
        let (first, hit1) = cache.get_or_decode(key.clone(), || outcome(100.0));
        assert!(!hit1);
        let (second, hit2) = cache.get_or_decode(key, || panic!("must not recompute"));
        assert!(hit2);
        assert!(Arc::ptr_eq(&first, &second), "hit must share the stored outcome");
        assert_eq!(second.gp_nodes, 7, "node charge is replayed on hits");
    }

    #[test]
    fn disabled_cache_always_decodes_fresh() {
        let cache = DecodeCache::new(0);
        assert!(!cache.is_enabled());
        let key = cell_key(MODE_TREE, &[1], &[10.0]);
        let (_, hit1) = cache.get_or_decode(key.clone(), || outcome(1.0));
        let (_, hit2) = cache.get_or_decode(key, || outcome(1.0));
        assert!(!hit1 && !hit2);
        assert!(cache.is_empty());
    }

    #[test]
    fn mode_and_scorer_separate_otherwise_equal_keys() {
        // Same numeric content, different boundaries / modes → distinct.
        let a = cell_key(MODE_TREE, &[1, 2], &[f64::from_bits(3)]);
        let b = cell_key(MODE_TREE, &[1, 2, 3], &[]);
        let c = cell_key(MODE_WEIGHTS, &[1, 2], &[f64::from_bits(3)]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn dedup_groups_by_first_appearance() {
        let (of, groups) = dedup_by_key(["a", "b", "a", "c", "b"].into_iter());
        assert_eq!(of, vec![0, 1, 0, 2, 1]);
        assert_eq!(groups, vec![(0, "a"), (1, "b"), (3, "c")]);
    }

    #[test]
    fn pinned_outcomes_survive_fifo_churn() {
        // The champion-row blind spot: under FIFO churn a hot row is
        // evicted as readily as a cold one. Pinning shields it until the
        // pins are cleared, after which it churns out normally.
        let cache = DecodeCache::new(4);
        let champ = cell_key(MODE_TREE, &[9], &[1.0]);
        cache.get_or_decode(champ.clone(), || outcome(1.0));
        cache.pin(champ.clone());
        assert_eq!(cache.pinned_len(), 1);
        for i in 0..32 {
            cache.get_or_decode(cell_key(MODE_TREE, &[i], &[2.0]), || outcome(i as f64));
        }
        let (_, hit) = cache.get_or_decode(champ.clone(), || outcome(99.0));
        assert!(hit, "pinned champion-row cell must survive eviction churn");

        cache.clear_pins();
        assert_eq!(cache.pinned_len(), 0);
        for i in 100..140 {
            cache.get_or_decode(cell_key(MODE_TREE, &[i], &[2.0]), || outcome(i as f64));
        }
        let (_, hit) = cache.get_or_decode(champ, || outcome(99.0));
        assert!(!hit, "unpinned entries are evictable again");
    }

    #[test]
    fn clock_policy_keeps_a_hot_outcome_without_pins() {
        // The same champion-row workload as above, but unpinned: a clock
        // cache keeps the hot cell resident because every round's probe
        // re-arms its reference bit, while the default FIFO cache (shown
        // above needing a pin) would churn it out.
        // Capacity 32 → two-slot shards: the hot cell and the churn
        // stream coexist per shard, so the reference bit (not luck) is
        // what keeps the hot cell resident.
        let cache = DecodeCache::with_policy(32, EvictionPolicy::Clock);
        let champ = cell_key(MODE_TREE, &[9], &[1.0]);
        cache.get_or_decode(champ.clone(), || outcome(1.0));
        let mut hits = 0;
        for round in 0..16 {
            for i in 0..8 {
                cache.get_or_decode(cell_key(MODE_TREE, &[round * 8 + i], &[2.0]), || {
                    outcome(i as f64)
                });
            }
            let (_, hit) = cache.get_or_decode(champ.clone(), || outcome(1.0));
            if hit {
                hits += 1;
            }
        }
        assert!(hits >= 15, "clock must keep the hot unpinned cell resident, got {hits}/16");
    }

    #[test]
    fn pricing_bits_are_exact() {
        let cache = DecodeCache::new(16);
        let k1 = cell_key(MODE_TREE, &[1], &[0.0]);
        let k2 = cell_key(MODE_TREE, &[1], &[-0.0]);
        assert_ne!(k1, k2, "0.0 and -0.0 are different pricings to the bit");
        cache.get_or_decode(k1, || outcome(1.0));
        let (_, hit) = cache.get_or_decode(k2, || outcome(2.0));
        assert!(!hit);
    }
}
