//! Property tests for the `obs::analyze` pathology detectors.
//!
//! Each detector has a *target pathology*; these tests generate
//! synthetic traces exhibiting exactly one pathology and assert the
//! matching detector fires while the other two stay quiet:
//!
//! * a pure see-saw (objectives alternate around a midpoint while the
//!   gap keeps improving) trips only the see-saw verdict;
//! * a hard plateau (bit-identical bests in runs shorter than the
//!   stagnation window) trips only disengagement;
//! * a long no-improvement window with churning bests trips only
//!   stagnation;
//! * monotone convergence trips nothing.
//!
//! A golden JSON report fixture (`tests/golden/trace_report.json`) pins
//! the `bico trace --json` rendering of a fixed synthetic trace so the
//! schema the CI determinism smoke check consumes cannot drift
//! silently.

use bico::obs::analyze::{analyze, DEFAULT_STAGNATION_WINDOW};
use bico::obs::replay::{OwnedEvent, TraceRecord};
use bico::obs::Level;
use bico::trace_cmd::{render, TraceArgs, TraceReport};
use proptest::prelude::*;

fn rec(seq: u64, event: OwnedEvent) -> TraceRecord {
    TraceRecord { seq, t_ms: seq, tag: None, event }
}

fn gen_end(generation: u64, ul_best: f64, gap_best: f64) -> OwnedEvent {
    OwnedEvent::GenerationEnd {
        generation,
        evaluations: 8 * (generation + 1),
        ul_best,
        gap_best,
    }
}

/// Pure see-saw: `ObjectivePair` outcomes alternate `+amp, −amp` across
/// improvement segments (sign flips every step) while the per-generation
/// bests keep strictly improving, so neither plateau detector has
/// anything to see.
fn seesaw_trace(segments: usize, amp: f64) -> Vec<TraceRecord> {
    let mut records = vec![rec(0, OwnedEvent::RunStart { algo: "synthetic".into(), seed: 1 })];
    for i in 0..segments {
        let level = if i % 2 == 0 { Level::Upper } else { Level::Lower };
        let v = if i % 2 == 0 { amp } else { -amp };
        records.push(rec(
            records.len() as u64,
            OwnedEvent::ObjectivePair { level, ul_value: v, ll_value: v },
        ));
        records.push(rec(
            records.len() as u64,
            gen_end(i as u64, 100.0 + i as f64, 1000.0 - i as f64),
        ));
    }
    records
}

/// Hard plateau: blocks of `flat_run` bit-identical bests separated by
/// one genuine improvement, keeping every no-improvement run strictly
/// shorter than the stagnation window. No `ObjectivePair`s at all.
fn plateau_trace(flat_run: usize, blocks: usize) -> Vec<TraceRecord> {
    let mut records = Vec::new();
    let mut generation = 0u64;
    for b in 0..blocks {
        let gap = 100.0 - b as f64; // improves once per block
        let ul = 10.0 + b as f64;
        for _ in 0..=flat_run {
            records.push(rec(generation, gen_end(generation, ul, gap)));
            generation += 1;
        }
    }
    records
}

/// Stagnation only: the best-so-far gap never improves for the whole
/// tail, but the upper-level best churns every generation so no
/// comparison is flat.
fn stagnation_trace(rows: usize) -> Vec<TraceRecord> {
    (0..rows)
        .map(|i| {
            let gap = if i == 0 { 5.0 } else { 5.0 + (1 + i % 3) as f64 * 0.25 };
            rec(i as u64, gen_end(i as u64, i as f64, gap))
        })
        .collect()
}

/// Monotone convergence: objectives move in one direction (no sign
/// flips), gaps strictly improve, bests keep changing.
fn convergence_trace(rows: usize) -> Vec<TraceRecord> {
    let mut records = Vec::new();
    for i in 0..rows {
        let level = if i % 2 == 0 { Level::Upper } else { Level::Lower };
        records.push(rec(
            records.len() as u64,
            OwnedEvent::ObjectivePair { level, ul_value: i as f64, ll_value: 2.0 * i as f64 },
        ));
        records.push(rec(
            records.len() as u64,
            gen_end(i as u64, 100.0 + i as f64, 50.0 - i as f64),
        ));
    }
    records
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn seesaw_fires_only_on_the_seesaw_trace(
        segments in 4usize..40,
        amp in 0.01f64..1e6,
    ) {
        let a = analyze(&seesaw_trace(segments, amp), DEFAULT_STAGNATION_WINDOW);
        prop_assert!(a.seesaw.detected);
        prop_assert!(a.seesaw.sign_flips > 0);
        // Outcomes alternate ±amp, so every delta has magnitude 2·amp.
        prop_assert!((a.seesaw.amplitude() - 2.0 * amp).abs() <= 1e-9 * amp);
        prop_assert!(!a.disengagement.detected);
        prop_assert!(!a.stagnation.detected);
    }

    #[test]
    fn disengagement_fires_only_on_the_plateau_trace(
        flat_run in 2usize..9, // < DEFAULT_STAGNATION_WINDOW, > half flat
        blocks in 2usize..6,
    ) {
        let a = analyze(&plateau_trace(flat_run, blocks), DEFAULT_STAGNATION_WINDOW);
        prop_assert!(a.disengagement.detected);
        prop_assert_eq!(a.disengagement.longest_flat, flat_run as u64);
        prop_assert!(!a.stagnation.detected, "runs stay under the window");
        prop_assert!(!a.seesaw.detected, "no objective pairs at all");
    }

    #[test]
    fn stagnation_fires_only_on_the_stagnation_trace(
        extra in 1usize..20,
    ) {
        let rows = DEFAULT_STAGNATION_WINDOW as usize + 1 + extra;
        let a = analyze(&stagnation_trace(rows), DEFAULT_STAGNATION_WINDOW);
        prop_assert!(a.stagnation.detected);
        prop_assert_eq!(a.stagnation.longest_window, rows as u64 - 1);
        prop_assert!(!a.disengagement.detected, "bests churn every generation");
        prop_assert!(!a.seesaw.detected);
    }

    #[test]
    fn convergence_trips_nothing(rows in 3usize..40) {
        let a = analyze(&convergence_trace(rows), DEFAULT_STAGNATION_WINDOW);
        prop_assert!(!a.seesaw.detected, "monotone deltas never flip sign");
        prop_assert!(!a.disengagement.detected);
        prop_assert!(!a.stagnation.detected);
    }
}

/// Fixed-parameter twin of the proptest properties, so the exclusivity
/// claims are exercised even where the `proptest` harness is
/// unavailable (and as a fast smoke in any run).
#[test]
fn detector_exclusivity_at_fixed_parameters() {
    let a = analyze(&seesaw_trace(10, 3.0), DEFAULT_STAGNATION_WINDOW);
    assert!(a.seesaw.detected && !a.disengagement.detected && !a.stagnation.detected);
    assert!((a.seesaw.amplitude() - 6.0).abs() < 1e-9, "alternating ±3 has mean |Δ| = 6");

    let a = analyze(&plateau_trace(4, 3), DEFAULT_STAGNATION_WINDOW);
    assert!(a.disengagement.detected && !a.seesaw.detected && !a.stagnation.detected);
    assert_eq!(a.disengagement.longest_flat, 4);

    let rows = DEFAULT_STAGNATION_WINDOW as usize + 5;
    let a = analyze(&stagnation_trace(rows), DEFAULT_STAGNATION_WINDOW);
    assert!(a.stagnation.detected && !a.seesaw.detected && !a.disengagement.detected);
    assert_eq!(a.stagnation.longest_window, rows as u64 - 1);

    let a = analyze(&convergence_trace(12), DEFAULT_STAGNATION_WINDOW);
    assert!(!a.seesaw.detected && !a.disengagement.detected && !a.stagnation.detected);
}

/// The `bico trace --json` rendering of a fixed synthetic trace is a
/// golden output: any schema drift (field order, names, verdict shape)
/// diffs against `tests/golden/trace_report.json`.
#[test]
fn json_report_matches_golden_file() {
    let records = seesaw_trace(6, 2.5);
    let analysis = analyze(&records, DEFAULT_STAGNATION_WINDOW);
    let report =
        TraceReport { analyses: vec![("synthetic.jsonl".into(), analysis)], divergence: None };
    let args = TraceArgs { json: true, ..TraceArgs::default() };
    let rendered = render(&report, &args);
    let golden = include_str!("golden/trace_report.json");
    assert_eq!(rendered.trim_end(), golden.trim_end());
}
