//! Seeded synthetic instance generator.
//!
//! The paper modifies OR-library Multi-dimensional Knapsack instances
//! (`≤` rows turned into `≥` rows) because no covering instances with
//! non-binary coefficients exist publicly. We reproduce that *structure*
//! synthetically (Chu–Beasley-style coefficients, tightness-controlled
//! requirements, cost/coverage correlation) so that every experiment is
//! runnable without the original files; `orlib` parses the real files
//! for anyone who has them. The substitution is documented in DESIGN.md.

use crate::instance::BcpopInstance;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of bundles `M` (decision variables; the paper uses
    /// 100/250/500).
    pub num_bundles: usize,
    /// Number of services `N` (constraints; the paper uses 5/10/30).
    pub num_services: usize,
    /// Fraction of bundles owned by the CSP (upper-level block `L`).
    pub own_fraction: f64,
    /// Requirement tightness `α`: `b^k = α · Σ_j q_j^k`.
    /// Chu–Beasley's knapsack instances use 0.25/0.5/0.75.
    pub tightness: f64,
    /// Probability a bundle carries a given service at all (matrix
    /// density).
    pub density: f64,
    /// Maximum units of one service in one bundle (OR-library weights
    /// are uniform on [0, 1000]; we keep coefficients smaller but of the
    /// same non-binary character).
    pub max_units: u32,
    /// Relative magnitude of the uncorrelated cost noise (Chu–Beasley
    /// uses profits correlated with weights plus uniform noise).
    pub cost_noise: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            num_bundles: 100,
            num_services: 5,
            own_fraction: 0.1,
            tightness: 0.25,
            density: 0.75,
            max_units: 100,
            cost_noise: 0.25,
        }
    }
}

impl GeneratorConfig {
    /// One of the paper's 9 instance classes
    /// (`n ∈ {100, 250, 500} × m ∈ {5, 10, 30}`).
    pub fn paper_class(num_bundles: usize, num_services: usize) -> Self {
        GeneratorConfig { num_bundles, num_services, ..Default::default() }
    }
}

/// Generate a validated instance from a seed. The same `(config, seed)`
/// pair always yields the same instance.
pub fn generate(cfg: &GeneratorConfig, seed: u64) -> BcpopInstance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let m = cfg.num_bundles;
    let n = cfg.num_services;
    let own = ((m as f64 * cfg.own_fraction).round() as usize).clamp(1, m);

    // Coverage matrix: density-masked uniform integers in [1, max_units].
    let mut q = vec![0u32; m * n];
    for j in 0..m {
        let row = &mut q[j * n..(j + 1) * n];
        for v in row.iter_mut() {
            if rng.random::<f64>() < cfg.density {
                *v = rng.random_range(1..=cfg.max_units);
            }
        }
        // Every bundle must cover something, or it is a dead column.
        if row.iter().all(|&v| v == 0) {
            let k = rng.random_range(0..n);
            row[k] = rng.random_range(1..=cfg.max_units);
        }
    }
    // Dually, every service must be covered by some bundle, or the
    // requirement below (clamped to ≥ 1) would be uncoverable.
    for k in 0..n {
        if (0..m).all(|j| q[j * n + k] == 0) {
            let j = rng.random_range(0..m);
            q[j * n + k] = rng.random_range(1..=cfg.max_units);
        }
    }

    // Tightness-scaled requirements (guaranteed coverable: α ≤ 1).
    let alpha = cfg.tightness.clamp(0.01, 1.0);
    let b: Vec<u32> = (0..n)
        .map(|k| {
            let col_sum: u64 = (0..m).map(|j| q[j * n + k] as u64).sum();
            ((col_sum as f64 * alpha).floor() as u32).max(1)
        })
        .collect();

    // Costs correlated with total coverage plus noise — the classic
    // "correlated" MKP profit scheme, reused as bundle cost.
    let mean_cov: f64 = (0..m)
        .map(|j| q[j * n..(j + 1) * n].iter().map(|&v| v as f64).sum::<f64>())
        .sum::<f64>()
        / m as f64;
    let mut costs = vec![0.0f64; m];
    for (j, c) in costs.iter_mut().enumerate() {
        let cov: f64 = q[j * n..(j + 1) * n].iter().map(|&v| v as f64).sum();
        let noise = 1.0 + cfg.cost_noise * (rng.random::<f64>() * 2.0 - 1.0);
        *c = (cov / mean_cov * 100.0 * noise).max(1.0);
    }

    // The CSP may price up to twice the most expensive competitor bundle:
    // generous enough to price itself out of the market (the interesting
    // upper edge of the decision space).
    let price_cap = costs[own..].iter().fold(0.0f64, |a, &c| a.max(c)).max(1.0) * 2.0;

    BcpopInstance::new(n, m, own, q, b, costs, price_cap)
        .expect("generator must produce valid instances")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_instances_validate() {
        for (&nb, &ns) in [100usize, 250, 500].iter().zip([5usize, 10, 30].iter()) {
            let cfg = GeneratorConfig::paper_class(nb, ns);
            let inst = generate(&cfg, 42);
            assert_eq!(inst.num_bundles(), nb);
            assert_eq!(inst.num_services(), ns);
            inst.validate().unwrap();
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GeneratorConfig::paper_class(100, 10);
        assert_eq!(generate(&cfg, 7), generate(&cfg, 7));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GeneratorConfig::paper_class(100, 10);
        assert_ne!(generate(&cfg, 1), generate(&cfg, 2));
    }

    #[test]
    fn all_nine_paper_classes_produce_valid_instances() {
        for &nb in &[100usize, 250, 500] {
            for &ns in &[5usize, 10, 30] {
                let inst = generate(&GeneratorConfig::paper_class(nb, ns), 123);
                inst.validate().unwrap();
                assert!(inst.num_own() >= 1);
                assert!(inst.price_cap() > 0.0);
            }
        }
    }

    #[test]
    fn requirements_scale_with_tightness() {
        let mut cfg = GeneratorConfig::paper_class(100, 5);
        cfg.tightness = 0.25;
        let loose = generate(&cfg, 9);
        cfg.tightness = 0.75;
        let tight = generate(&cfg, 9);
        // Same seed → same matrix, so requirements must be ~3x larger.
        let ratio = tight.requirement(0) as f64 / loose.requirement(0) as f64;
        assert!((ratio - 3.0).abs() < 0.1, "tightness scaling off: {ratio}");
    }

    #[test]
    fn no_dead_bundles() {
        let inst = generate(&GeneratorConfig { density: 0.05, ..Default::default() }, 11);
        for j in 0..inst.num_bundles() {
            assert!(inst.total_coverage(j) > 0, "bundle {j} covers nothing");
        }
    }

    #[test]
    fn full_ones_is_always_feasible() {
        let inst = generate(&GeneratorConfig::paper_class(250, 30), 5);
        let all = vec![true; inst.num_bundles()];
        assert!(inst.is_covering(&all));
    }

    #[test]
    fn own_block_size_follows_fraction() {
        let cfg = GeneratorConfig { own_fraction: 0.2, ..GeneratorConfig::paper_class(100, 5) };
        let inst = generate(&cfg, 3);
        assert_eq!(inst.num_own(), 20);
    }
}
