//! Probe the §V.B overestimation artifact as a function of the CSP's
//! market share.
//!
//! The paper reports COBRA's upper-level objective *above* CARBON's on
//! every class and proves (Eq. 2–3) that this is an artifact of loose
//! lower-level reactions relaxing the upper level. For the artifact to
//! show up in *revenue*, the loose reactions must actually contain the
//! CSP's own bundles — which becomes likelier the larger the CSP's share
//! of the market. This binary sweeps `own_fraction` and reports, per
//! share, both algorithms' revenue and gap.
//!
//! ```text
//! cargo run -p bico-bench --release --bin overestimation [--runs N] [--seed S] [--smoke|--full]
//! ```

use bico_bcpop::{generate, GeneratorConfig};
use bico_bench::{markdown_table, ExperimentOpts};
use bico_cobra::Cobra;
use bico_core::Carbon;
use bico_ea::rng::seed_stream;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = ExperimentOpts::from_args(&args);
    let runs = opts.runs().min(3);
    let (n, m) = (100usize, 10usize);
    eprintln!(
        "overestimation sweep on {n}x{m}: {} runs per (share, algorithm), tier {:?}",
        runs, opts.tier
    );

    let mut rows = Vec::new();
    for own_fraction in [0.1f64, 0.25, 0.5] {
        let cfg = GeneratorConfig {
            num_bundles: n,
            num_services: m,
            own_fraction,
            ..Default::default()
        };
        let inst = generate(&cfg, seed_stream(opts.seed, 77));
        let mut carbon_ul = f64::NEG_INFINITY;
        let mut cobra_ul = f64::NEG_INFINITY;
        let mut carbon_gap = f64::INFINITY;
        let mut cobra_gap = f64::INFINITY;
        for run in 0..runs as u64 {
            let seed = seed_stream(opts.seed, 0x4000 + run);
            let c = Carbon::new(&inst, opts.tier.carbon_config()).run(seed);
            carbon_ul = carbon_ul.max(c.best_ul_value);
            carbon_gap = carbon_gap.min(c.best_gap);
            let b = Cobra::new(&inst, opts.tier.cobra_config()).run(seed);
            cobra_ul = cobra_ul.max(b.best_ul_value);
            cobra_gap = cobra_gap.min(b.best_gap);
        }
        rows.push(vec![
            format!("{own_fraction:.2}"),
            format!("{carbon_ul:.1}"),
            format!("{cobra_ul:.1}"),
            format!("{:.2}", cobra_ul / carbon_ul.max(1e-9)),
            format!("{carbon_gap:.2}"),
            format!("{cobra_gap:.2}"),
        ]);
        eprintln!("  share {own_fraction:.2} done");
    }
    println!(
        "{}",
        markdown_table(
            &[
                "CSP market share",
                "CARBON UL",
                "COBRA UL",
                "COBRA/CARBON UL ratio",
                "CARBON %-gap",
                "COBRA %-gap",
            ],
            &rows
        )
    );
    println!(
        "The paper's revenue overestimation corresponds to ratios > 1; the ratio should \
         grow with the CSP's market share (loose reactions then contain own bundles)."
    );
}
