//! Exact linear bi-level solver via the KKT single-level transformation
//! — the STA category of the paper's taxonomy (§III, Fig. 2).
//!
//! For a lower level that is a linear program, the KKT conditions are
//! necessary *and sufficient*, so replacing the inner `min` with
//!
//! * primal feasibility `A_x x + A_y y ≤ a, y ≥ 0`,
//! * dual feasibility `λ ≥ 0, c + A_yᵀ λ ≥ 0`,
//! * complementary slackness `λ_i·slack_i = 0` and `y_j·μ_j = 0`
//!   (with `μ = c + A_yᵀ λ`),
//!
//! yields an equivalent single-level program. The complementarity
//! products are the only non-linearity; this solver enumerates the
//! `2^(rows + ny)` on/off patterns and solves one LP (via `bico-lp`)
//! per pattern — exact and global for the optimistic case, exponential
//! in the *lower-level* dimensions only (fine for the small analytic
//! instances this is meant for; CARBON handles the large ones).

use crate::linear::LinearBilevel;
use bico_lp::{LpProblem, LpStatus, Relation};

/// Result of a KKT enumeration solve.
#[derive(Debug, Clone)]
pub struct KktSolution {
    /// Optimal upper-level decision.
    pub x: Vec<f64>,
    /// Optimal (optimistic) lower-level reaction.
    pub y: Vec<f64>,
    /// Optimal upper-level objective `F(x, y)`.
    pub objective: f64,
    /// Number of complementarity patterns whose LP was solved.
    pub patterns_solved: usize,
    /// Number of patterns that were feasible.
    pub patterns_feasible: usize,
}

/// Hard cap on `rows + ny` to keep `2^k` enumeration honest.
pub const KKT_LIMIT: usize = 20;

/// Solve the optimistic linear bi-level problem exactly.
///
/// Returns `None` when no complementarity pattern admits a feasible
/// point (the inducible region is empty) or every feasible pattern is
/// unbounded in `F`.
///
/// # Panics
/// Panics if `ll_rows + ny > KKT_LIMIT`.
pub fn solve_kkt(p: &LinearBilevel) -> Option<KktSolution> {
    let nx = p.nx();
    let ny = p.ny();
    let m_ll = p.a.len();
    let m_ul = p.g.len();
    assert!(
        m_ll + ny <= KKT_LIMIT,
        "KKT enumeration limited to {KKT_LIMIT} complementarity pairs (got {})",
        m_ll + ny
    );

    // Variable layout: [x (nx) | y (ny) | λ (m_ll)], all ≥ 0.
    let nvars = nx + ny + m_ll;
    let lam0 = nx + ny;

    let mut best: Option<KktSolution> = None;
    let mut solved = 0usize;
    let mut feasible = 0usize;

    for pattern in 0u64..(1u64 << (m_ll + ny)) {
        let mut lp = LpProblem::minimize(nvars);
        let mut obj = vec![0.0; nvars];
        obj[..nx].copy_from_slice(&p.fx);
        obj[nx..nx + ny].copy_from_slice(&p.fy);
        lp.set_objective(&obj);

        // Upper-level constraints.
        for r in 0..m_ul {
            let mut row: Vec<(usize, f64)> = Vec::new();
            push_dense(&mut row, 0, &p.gx[r]);
            push_dense(&mut row, nx, &p.gy[r]);
            lp.add_constraint(&row, Relation::Le, p.g[r]);
        }
        // Lower-level primal feasibility (or activity, per pattern).
        for r in 0..m_ll {
            let mut row: Vec<(usize, f64)> = Vec::new();
            push_dense(&mut row, 0, &p.ax[r]);
            push_dense(&mut row, nx, &p.ay[r]);
            let active = pattern & (1 << r) != 0;
            if active {
                // Constraint binds; λ_r free (≥ 0).
                lp.add_constraint(&row, Relation::Eq, p.a[r]);
            } else {
                // Slack allowed; complementarity forces λ_r = 0.
                lp.add_constraint(&row, Relation::Le, p.a[r]);
                lp.set_bounds(lam0 + r, 0.0, 0.0);
            }
        }
        // Dual feasibility / stationarity: μ_j = c_j + Σ_r λ_r Ay[r][j] ≥ 0,
        // with μ_j = 0 forced when y_j may be positive.
        for j in 0..ny {
            let mut row: Vec<(usize, f64)> = Vec::new();
            for r in 0..m_ll {
                let coef = p.ay[r][j];
                if coef != 0.0 {
                    row.push((lam0 + r, coef));
                }
            }
            let y_zero = pattern & (1 << (m_ll + j)) != 0;
            if y_zero {
                // y_j pinned to 0; μ_j only needs to be ≥ 0.
                lp.set_bounds(nx + j, 0.0, 0.0);
                lp.add_constraint(&row, Relation::Ge, -p.c[j]);
            } else {
                // y_j free to move ⇒ μ_j = 0.
                lp.add_constraint(&row, Relation::Eq, -p.c[j]);
            }
        }

        solved += 1;
        let Ok(sol) = lp.solve() else { continue };
        if sol.status != LpStatus::Optimal {
            continue;
        }
        feasible += 1;
        let x = sol.x[..nx].to_vec();
        let y = sol.x[nx..nx + ny].to_vec();
        let f = p.ul_objective(&x, &y);
        if best.as_ref().is_none_or(|b| f < b.objective) {
            best = Some(KktSolution {
                x,
                y,
                objective: f,
                patterns_solved: 0,
                patterns_feasible: 0,
            });
        }
    }

    best.map(|mut b| {
        b.patterns_solved = solved;
        b.patterns_feasible = feasible;
        b
    })
}

fn push_dense(row: &mut Vec<(usize, f64)>, offset: usize, coeffs: &[f64]) {
    for (j, &c) in coeffs.iter().enumerate() {
        if c != 0.0 {
            row.push((offset + j, c));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::{program3, TieBreak};

    #[test]
    fn kkt_solves_program3_exactly() {
        let p = program3();
        let sol = solve_kkt(&p).unwrap();
        assert!((sol.objective + 20.0).abs() < 1e-6, "F = {}", sol.objective);
        assert!((sol.x[0] - 8.0).abs() < 1e-6, "x = {}", sol.x[0]);
        assert!((sol.y[0] - 6.0).abs() < 1e-6, "y = {}", sol.y[0]);
        assert_eq!(sol.patterns_solved, 8); // 2^(2 rows + 1 y)
        assert!(sol.patterns_feasible >= 1);
    }

    #[test]
    fn kkt_solution_is_bilevel_feasible() {
        // The returned y must be the actual rational reaction at x.
        let p = program3();
        let sol = solve_kkt(&p).unwrap();
        let reaction = p.rational_reaction(&sol.x, TieBreak::Optimistic).unwrap();
        assert!((reaction.y[0] - sol.y[0]).abs() < 1e-6);
        assert!(p.ul_feasible(&sol.x, &sol.y, 1e-7));
        assert!(p.ll_feasible(&sol.x, &sol.y, 1e-7));
    }

    #[test]
    fn kkt_matches_fine_grid_scan() {
        let p = program3();
        let kkt = solve_kkt(&p).unwrap();
        let (gx, gy, gf) = p.solve_grid(0.0, 10.0, 20_000, TieBreak::Optimistic).unwrap();
        assert!((kkt.objective - gf).abs() < 1e-2, "kkt {} vs grid {gf}", kkt.objective);
        assert!((kkt.x[0] - gx).abs() < 1e-2);
        assert!((kkt.y[0] - gy[0]).abs() < 1e-1);
        // The grid can only be worse (coarser) than the exact solve.
        assert!(kkt.objective <= gf + 1e-6);
    }

    #[test]
    fn kkt_detects_empty_inducible_region() {
        // UL constraint y <= -1 is impossible with y >= 0.
        let p = LinearBilevel {
            fx: vec![1.0],
            fy: vec![1.0],
            gx: vec![vec![0.0]],
            gy: vec![vec![1.0]],
            g: vec![-1.0],
            c: vec![-1.0],
            ax: vec![vec![0.0]],
            ay: vec![vec![1.0]],
            a: vec![5.0],
        };
        assert!(solve_kkt(&p).is_none());
    }

    #[test]
    fn kkt_on_trivial_decoupled_problem() {
        // LL: min -y s.t. y <= 3  -> y = 3 regardless of x.
        // UL: min x + y, x >= 0   -> x = 0, F = 3.
        let p = LinearBilevel {
            fx: vec![1.0],
            fy: vec![1.0],
            gx: vec![],
            gy: vec![],
            g: vec![],
            c: vec![-1.0],
            ax: vec![vec![0.0]],
            ay: vec![vec![1.0]],
            a: vec![3.0],
        };
        let sol = solve_kkt(&p).unwrap();
        assert!((sol.objective - 3.0).abs() < 1e-8);
        assert!((sol.y[0] - 3.0).abs() < 1e-8);
        assert!(sol.x[0].abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn kkt_size_guard() {
        let p = LinearBilevel {
            fx: vec![0.0],
            fy: vec![0.0; 25],
            gx: vec![],
            gy: vec![],
            g: vec![],
            c: vec![0.0; 25],
            ax: vec![vec![0.0]],
            ay: vec![vec![0.0; 25]],
            a: vec![1.0],
        };
        let _ = solve_kkt(&p);
    }
}
