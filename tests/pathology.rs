//! Co-evolutionary pathology regression suite on the maximin substrate.
//!
//! The bilinear maximin problems in `bico_core::maximin` have *provable*
//! equilibria (the saddle point, with game value = `offset`), and plain
//! best-response co-evolution *provably cycles* on them. That turns the
//! `obs::analyze` pathology detectors from heuristics into testable
//! claims:
//!
//! 1. plain predator–prey shows a see-saw verdict with strictly positive
//!    amplitude on the bilinear substrate;
//! 2. competitive fitness sharing and the hall-of-fame archive sampler
//!    converge to the known equilibrium within a calibrated tolerance,
//!    and do so significantly better than plain scoring (Mann–Whitney
//!    over a ≥20-seed matrix);
//! 3. the detector verdicts on fixed seeds are stable golden outputs.
//!
//! Tolerances were calibrated empirically on the symmetric 2-D problem
//! (24 seeds): plain equilibrium-error median ≈ 0.53, shared ≈ 0.11,
//! hall-of-fame ≈ 0.09; Mann–Whitney p ≈ 1e-5 for both comparisons.
//! The pinned thresholds leave a ≥2× margin on each side.

use bico_core::maximin::{BilinearProblem, MaximinCoev, MaximinConfig};
use bico_core::CoevStrategy;
use bico_ea::{compare_run_sets, seed_matrix};
use bico_obs::analyze::{analyze_with, AnalyzeConfig, TraceAnalysis};
use bico_obs::replay::parse_trace;
use bico_obs::{JsonlSink, SharedBuffer};

const SEED_BASE: u64 = 0xB1C0;
const SEEDS: usize = 24; // ≥ 20 per the suite's design

fn problem() -> BilinearProblem {
    BilinearProblem::symmetric(2)
}

fn coev(strategy: CoevStrategy) -> MaximinCoev {
    MaximinCoev::new(problem(), MaximinConfig { strategy, ..MaximinConfig::default() })
}

/// Run one observed maximin evolution and analyze its trace with the
/// given detector thresholds.
fn run_analyzed(strategy: CoevStrategy, seed: u64, cfg: &AnalyzeConfig) -> TraceAnalysis {
    let buffer = SharedBuffer::new();
    let sink = JsonlSink::new(buffer.clone());
    coev(strategy).run_observed(seed, &sink);
    let records = parse_trace(&buffer.contents()).expect("trace must parse");
    analyze_with(&records, cfg)
}

fn equilibrium_errors(strategy: CoevStrategy) -> Vec<f64> {
    seed_matrix(SEED_BASE, SEEDS, |seed| coev(strategy).run(seed).equilibrium_error)
}

fn median(xs: &[f64]) -> f64 {
    let mut s = xs.to_vec();
    s.sort_by(f64::total_cmp);
    if s.len() % 2 == 1 {
        s[s.len() / 2]
    } else {
        0.5 * (s[s.len() / 2 - 1] + s[s.len() / 2])
    }
}

/// Pathology claim (a): plain predator–prey scoring see-saws on the
/// bilinear substrate — the best-response cycle shows up as alternating
/// objective reversals with strictly positive amplitude.
#[test]
fn plain_predator_prey_seesaws_on_the_bilinear_substrate() {
    let a = run_analyzed(CoevStrategy::PredatorPrey, 7, &AnalyzeConfig::default());
    assert_eq!(a.algo, "maximin");
    let s = &a.seesaw;
    assert!(s.detected, "plain scoring must trip the see-saw detector: {s:?}");
    assert!(s.sign_flips > 0, "cycling means objective reversals: {s:?}");
    assert!(
        s.amplitude() > 0.0,
        "the see-saw amplitude must be strictly positive, got {}",
        s.amplitude()
    );

    // The typed thresholds gate the same trace end-to-end: demanding
    // more amplitude than the run produced suppresses the verdict.
    let strict =
        AnalyzeConfig { seesaw_min_amplitude: s.amplitude() * 2.0, ..AnalyzeConfig::default() };
    let quiet = run_analyzed(CoevStrategy::PredatorPrey, 7, &strict);
    assert!(!quiet.seesaw.detected, "double the observed amplitude must not trip");
    assert_eq!(
        quiet.seesaw.amplitude(),
        s.amplitude(),
        "thresholds change verdicts, never measurements"
    );
}

/// Pathology claim (b): competitive fitness sharing and the
/// hall-of-fame sampler converge to the known equilibrium where plain
/// scoring cycles — medians within tolerance, Mann–Whitney significant.
#[test]
fn sharing_and_hall_of_fame_converge_where_plain_cycles() {
    let plain = equilibrium_errors(CoevStrategy::PredatorPrey);
    let shared = equilibrium_errors(CoevStrategy::SharedFitness);
    let hof = equilibrium_errors(CoevStrategy::HallOfFame);

    let plain_median = median(&plain);
    assert!(
        plain_median > 0.35,
        "plain scoring must stay far from equilibrium (median {plain_median})"
    );
    for (name, errs) in [("shared", &shared), ("hall-of-fame", &hof)] {
        let med = median(errs);
        assert!(
            med < 0.25,
            "{name} must converge near the equilibrium (median {med}, calibrated ≈0.1)"
        );
        let cmp = compare_run_sets(errs, &plain);
        let test = cmp.test.expect("24-seed samples are non-degenerate");
        assert!(
            test.a_shift < 0.0,
            "{name} errors must shift below plain's (shift {})",
            test.a_shift
        );
        assert!(
            test.p_two_sided < 0.01,
            "{name} vs plain must be significant (p = {}, calibrated ≈1e-5)",
            test.p_two_sided
        );
        assert!(cmp.a_median < cmp.b_median, "{name} median must beat plain's");
    }
}

fn verdict_line(strategy: CoevStrategy, a: &TraceAnalysis) -> String {
    let s = &a.seesaw;
    let d = &a.disengagement;
    let st = &a.stagnation;
    format!(
        "{}: seesaw(detected={} segments={} flips={} amplitude={:.3}) \
         disengagement(detected={} flat={}/{}) stagnation(detected={} longest={})",
        strategy.as_str(),
        s.detected,
        s.segments,
        s.sign_flips,
        s.amplitude(),
        d.detected,
        d.flat,
        d.comparisons,
        st.detected,
        st.longest_window,
    )
}

/// Pathology claim (c): detector verdicts on fixed seeds are stable
/// golden outputs — any drift in the substrate, the strategies, the
/// event stream, or the detectors shows up as a diff here. Amplitudes
/// are rounded to 3 decimals to stay robust to libm differences.
#[test]
fn detector_verdicts_are_stable_golden_outputs() {
    let golden = [
        "predator-prey: seesaw(detected=true segments=160 flips=268 amplitude=0.243) \
         disengagement(detected=false flat=3/79) stagnation(detected=true longest=33)",
        "shared: seesaw(detected=true segments=160 flips=50 amplitude=0.059) \
         disengagement(detected=false flat=36/79) stagnation(detected=true longest=79)",
        "hall-of-fame: seesaw(detected=true segments=160 flips=178 amplitude=0.067) \
         disengagement(detected=false flat=8/79) stagnation(detected=true longest=21)",
    ];
    for (strategy, want) in
        [CoevStrategy::PredatorPrey, CoevStrategy::SharedFitness, CoevStrategy::HallOfFame]
            .into_iter()
            .zip(golden)
    {
        let a = run_analyzed(strategy, 42, &AnalyzeConfig::default());
        assert_eq!(verdict_line(strategy, &a), want);
    }
}
