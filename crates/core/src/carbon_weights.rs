//! CARBON-W: the representation ablation of CARBON.
//!
//! Identical competitive workflow (prey = pricings, predators = scoring
//! heuristics scored by %-gap), but the predators are *linear weight
//! vectors* over the six Table I features instead of GP trees, evolved
//! with SBX + polynomial mutation. Linear scorers cannot express ratios
//! (`c_j / coverage`) or conditionals, so this variant quantifies how
//! much of CARBON's edge comes from the GP hyper-heuristic
//! representation itself rather than from the gap-driven competitive
//! coupling.

use crate::carbon::CarbonConfig;
use crate::decode_cache::{
    cell_key, decode_mode, dedup_by_key, pricing_key, weights_scorer_key, DecodeCache,
    DecodeOutcome,
};
use crate::surrogate::{
    cell_features, normalized_ranks, probe_indices, quantile_value, select_exact,
    RankSurrogate, SurrogateGate, NUM_FEATURES,
};
use bico_bcpop::{
    bundle_features, evaluate_pair, greedy_cover, greedy_cover_batched, BatchScorer,
    BcpopInstance, CoverOutcome, FeatureColumns, Relaxation, RelaxationSolver, WeightScorer,
    NUM_TERMINALS,
};
use bico_ea::{
    archive::Archive,
    real::{polynomial_mutation, sbx_crossover},
    rng::seed_stream,
    select::{tournament, Direction},
    stats::Trace,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::sync::Arc;

/// Per-column probe context for the surrogate gate: the probe bundles'
/// feature columns, their priced costs and greedy-reference ordering,
/// and the pricing's (lower bound, mean, spread) statistics.
type ColumnProbe = (FeatureColumns, Vec<f64>, Vec<f64>, f64, f64, f64);

/// Result of a CARBON-W run.
#[derive(Debug, Clone)]
pub struct CarbonWeightsResult {
    /// Best pricing found (by revenue).
    pub best_pricing: Vec<f64>,
    /// Revenue of the best pricing.
    pub best_ul_value: f64,
    /// Best %-gap of any evaluated pair.
    pub best_gap: f64,
    /// The champion weight vector.
    pub best_weights: [f64; NUM_TERMINALS],
    /// Convergence trace.
    pub trace: Trace,
    /// Upper-level evaluations consumed.
    pub ul_evals_used: u64,
    /// Lower-level evaluations consumed.
    pub ll_evals_used: u64,
    /// Generations completed.
    pub generations: usize,
}

/// The linear-representation CARBON variant.
pub struct CarbonWeights<'a> {
    inst: &'a BcpopInstance,
    cfg: CarbonConfig,
    relaxer: RelaxationSolver,
    /// Weights live in `[-weight_bound, weight_bound]`.
    weight_bound: f64,
}

impl<'a> CarbonWeights<'a> {
    /// Bind to an instance; weights are boxed in `[-1, 1]` by default
    /// (scores are scale-invariant under the greedy's argmin).
    pub fn new(inst: &'a BcpopInstance, cfg: CarbonConfig) -> Self {
        CarbonWeights { relaxer: RelaxationSolver::new(inst), inst, cfg, weight_bound: 1.0 }
    }

    /// Run to budget exhaustion; deterministic per seed.
    pub fn run(&self, seed: u64) -> CarbonWeightsResult {
        let cfg = &self.cfg;
        let inst = self.inst;
        let (lo, hi) = inst.price_bounds();
        let nl = inst.num_own();
        let wb = self.weight_bound;
        let wlo = vec![-wb; NUM_TERMINALS];
        let whi = vec![wb; NUM_TERMINALS];
        let mut rng = SmallRng::seed_from_u64(seed_stream(seed, 5));

        let mut ul_pop: Vec<Vec<f64>> = (0..cfg.ul_pop_size)
            .map(|_| (0..nl).map(|j| rng.random_range(lo[j]..=hi[j])).collect())
            .collect();
        let mut ll_pop: Vec<Vec<f64>> = (0..cfg.ll_pop_size)
            .map(|_| (0..NUM_TERMINALS).map(|_| rng.random_range(-wb..=wb)).collect())
            .collect();

        let mut ul_archive: Archive<Vec<f64>> =
            Archive::new(cfg.ul_archive_size, Direction::Maximize);
        let mut ll_archive: Archive<Vec<f64>> =
            Archive::new(cfg.ll_archive_size, Direction::Minimize);

        let mut trace = Trace::new();
        let mut ul_evals = 0u64;
        let mut ll_evals = 0u64;
        let mut generation = 0usize;
        let mut champion: [f64; NUM_TERMINALS] = ll_pop[0].clone().try_into().unwrap();
        let mut best: Option<(Vec<f64>, f64)> = None;
        let mut best_gap_overall = f64::INFINITY;

        // Linear scorers have nothing to compile, but the incremental +
        // batched decoder still applies (same flag, same bit-identity
        // guarantee as CARBON's GP path). Scorers are bound once per
        // worker task and reused across decodes, mirroring CARBON's
        // prepared-scorer hoisting.
        let cover =
            |scorer: &mut WeightScorer, costs: &[f64], relax: &Relaxation| -> CoverOutcome {
                if cfg.compiled_eval {
                    greedy_cover_batched(inst, costs, scorer, Some(relax))
                } else {
                    greedy_cover(inst, costs, scorer, Some(relax))
                }
            };
        // One evaluation-matrix cell: decode + pair evaluation, keyed by
        // (weight bits × pricing bits × mode). Linear scorers charge no
        // GP nodes.
        let cell = |weights: [f64; NUM_TERMINALS], prices: &[f64], relax: &Relaxation| {
            let costs = inst.costs_for(prices);
            let mut scorer = WeightScorer::new(weights);
            let cover = cover(&mut scorer, &costs, relax);
            let eval = evaluate_pair(inst, prices, &cover.chosen, relax.lower_bound);
            DecodeOutcome { cover, eval, gp_nodes: 0 }
        };
        let decode_cache = DecodeCache::with_policy(
            if cfg.eval_matrix { cfg.decode_cache_capacity } else { 0 },
            cfg.cache_eviction,
        );
        // CARBON-W always feeds the scorer the LP terminals.
        let mode = decode_mode(true, true, cfg.compiled_eval);
        // The online ranker behind `SurrogateGate::TopK`; untouched (and
        // RNG-free) when the gate is off. CARBON-W has no observer, so
        // the per-generation screening stats are simply not reported.
        let mut surrogate = RankSurrogate::new();

        loop {
            let gen_ul = cfg.ul_pop_size as u64;
            let gen_ll = (cfg.ll_pop_size * cfg.training_samples) as u64;
            if ul_evals + gen_ul > cfg.ul_evaluations || ll_evals + gen_ll > cfg.ll_evaluations
            {
                break;
            }

            let relaxations: Vec<Relaxation> = ul_pop
                .par_iter()
                .map(|p| self.relaxer.solve(&inst.costs_for(p)).expect("relaxable"))
                .collect();

            let training: Vec<usize> = (0..cfg.training_samples)
                .map(|s| if s == 0 { 0 } else { (generation + s * 37) % ul_pop.len() })
                .collect();
            let ll_fitness: Vec<f64> = if cfg.eval_matrix {
                match cfg.surrogate_gate {
                    SurrogateGate::Off => {
                        // Deduplicated evaluation matrix: unique weight vectors ×
                        // unique training pricings, each cell decoded once (or
                        // recalled from an earlier generation), scattered back in
                        // the reference loop's summation order.
                        let (row_of, rows) =
                            dedup_by_key(ll_pop.iter().map(|w| weights_scorer_key(w)));
                        let (col_of, cols) =
                            dedup_by_key(training.iter().map(|&ti| pricing_key(&ul_pop[ti])));
                        let cells: Vec<Vec<Arc<DecodeOutcome>>> = rows
                            .par_iter()
                            .map(|(rep, wkey)| {
                                let weights: [f64; NUM_TERMINALS] =
                                    ll_pop[*rep].clone().try_into().unwrap();
                                cols.iter()
                                    .map(|(rep_slot, _)| {
                                        let ti = training[*rep_slot];
                                        let prices = &ul_pop[ti];
                                        let relax = &relaxations[ti];
                                        decode_cache
                                            .get_or_decode(cell_key(mode, wkey, prices), || {
                                                cell(weights, prices, relax)
                                            })
                                            .0
                                    })
                                    .collect()
                            })
                            .collect();
                        (0..ll_pop.len())
                            .map(|i| {
                                let row = &cells[row_of[i]];
                                let mut total = 0.0;
                                for &c in &col_of {
                                    let gap = row[c].eval.gap;
                                    total += if gap.is_finite() { gap } else { 1e9 };
                                }
                                total / training.len() as f64
                            })
                            .collect()
                    }
                    SurrogateGate::TopK { frac, explore } => {
                        // Surrogate-gated matrix, mirroring CARBON's GP path
                        // (DESIGN §6.7): only the predicted-best cells plus
                        // exploration and champion/elite pins decode exactly;
                        // the rest take their predicted-rank quantile. All
                        // surrogate work runs on the coordinating thread and
                        // consumes no RNG.
                        let (row_of, rows) =
                            dedup_by_key(ll_pop.iter().map(|w| weights_scorer_key(w)));
                        let (col_of, cols) =
                            dedup_by_key(training.iter().map(|&ti| pricing_key(&ul_pop[ti])));
                        let nrows = rows.len();
                        let ncols = cols.len();
                        let ncells = nrows * ncols;

                        let residual: Vec<i64> =
                            inst.requirements().iter().map(|&b| b as i64).collect();
                        let pidx = probe_indices(inst.num_bundles(), 8);
                        let col_probes: Vec<ColumnProbe> = cols
                            .iter()
                            .map(|(rep_slot, _)| {
                                let ti = training[*rep_slot];
                                let prices = &ul_pop[ti];
                                let relax = &relaxations[ti];
                                let costs = inst.costs_for(prices);
                                let mut fc = FeatureColumns::with_capacity(pidx.len());
                                let mut probe_costs = Vec::with_capacity(pidx.len());
                                let mut probe_greedy = Vec::with_capacity(pidx.len());
                                for &j in &pidx {
                                    // CARBON-W always feeds LP terminals.
                                    let f = bundle_features(
                                        inst,
                                        &costs,
                                        &residual,
                                        Some(relax),
                                        j,
                                    );
                                    probe_costs.push(f.cost);
                                    probe_greedy.push(f.cost / f.residual_coverage.max(1.0));
                                    fc.push(&f);
                                }
                                let mean = if prices.is_empty() {
                                    0.0
                                } else {
                                    prices.iter().sum::<f64>() / prices.len() as f64
                                };
                                let (plo, phi) = prices.iter().fold(
                                    (f64::INFINITY, f64::NEG_INFINITY),
                                    |(lo, hi), &p| (lo.min(p), hi.max(p)),
                                );
                                let spread = (phi - plo).max(0.0);
                                (fc, probe_costs, probe_greedy, relax.lower_bound, mean, spread)
                            })
                            .collect();

                        let mut feats: Vec<[f64; NUM_FEATURES]> = Vec::with_capacity(ncells);
                        let mut scores_buf: Vec<f64> = Vec::new();
                        for (rep, _) in &rows {
                            let weights: [f64; NUM_TERMINALS] =
                                ll_pop[*rep].clone().try_into().unwrap();
                            let mut probe_scorer = WeightScorer::new(weights);
                            for (fc, pcosts, pgreedy, lb, mean, spread) in &col_probes {
                                probe_scorer.score_batch(fc, fc.rows(), &mut scores_buf);
                                feats.push(cell_features(
                                    &scores_buf,
                                    pcosts,
                                    pgreedy,
                                    *lb,
                                    *mean,
                                    *spread,
                                ));
                            }
                        }
                        let warmed = generation > 0 && surrogate.ready();
                        let preds: Vec<f64> =
                            feats.iter().map(|f| surrogate.predict(f)).collect();

                        let champ_key = weights_scorer_key(&champion);
                        let arch_key = ll_archive.best().map(|(w, _)| weights_scorer_key(w));
                        let mut pinned = vec![false; ncells];
                        for (r, (_, wkey)) in rows.iter().enumerate() {
                            if *wkey == champ_key
                                || arch_key.as_ref().is_some_and(|k| k == wkey)
                            {
                                for flag in &mut pinned[r * ncols..(r + 1) * ncols] {
                                    *flag = true;
                                }
                            }
                        }
                        let exact = if warmed {
                            select_exact(&preds, frac, explore, &pinned, generation as u64)
                        } else {
                            vec![true; ncells]
                        };

                        let cells: Vec<Vec<Option<Arc<DecodeOutcome>>>> = rows
                            .par_iter()
                            .enumerate()
                            .map(|(r, (rep, wkey))| {
                                let weights: [f64; NUM_TERMINALS] =
                                    ll_pop[*rep].clone().try_into().unwrap();
                                cols.iter()
                                    .enumerate()
                                    .map(|(c, (rep_slot, _))| {
                                        if !exact[r * ncols + c] {
                                            return None;
                                        }
                                        let ti = training[*rep_slot];
                                        let prices = &ul_pop[ti];
                                        let relax = &relaxations[ti];
                                        Some(
                                            decode_cache
                                                .get_or_decode(
                                                    cell_key(mode, wkey, prices),
                                                    || cell(weights, prices, relax),
                                                )
                                                .0,
                                        )
                                    })
                                    .collect()
                            })
                            .collect();

                        let value_of = |cell: &DecodeOutcome| {
                            if cell.eval.gap.is_finite() {
                                cell.eval.gap
                            } else {
                                1e9
                            }
                        };
                        let mut exact_vals = Vec::new();
                        let mut exact_feats = Vec::new();
                        for r in 0..nrows {
                            for c in 0..ncols {
                                if let Some(cell) = &cells[r][c] {
                                    exact_vals.push(value_of(cell));
                                    exact_feats.push(feats[r * ncols + c]);
                                }
                            }
                        }
                        surrogate.decay_generation();
                        for (f, &t) in
                            exact_feats.iter().zip(normalized_ranks(&exact_vals).iter())
                        {
                            surrogate.observe(f, t);
                        }
                        surrogate.fit();
                        let mut sorted_vals = exact_vals;
                        sorted_vals.sort_by(f64::total_cmp);
                        let imputed: Vec<f64> =
                            preds.iter().map(|&p| quantile_value(&sorted_vals, p)).collect();

                        (0..ll_pop.len())
                            .map(|i| {
                                let row = &cells[row_of[i]];
                                let mut total = 0.0;
                                for &c in &col_of {
                                    total += match &row[c] {
                                        Some(cell) => value_of(cell),
                                        None => imputed[row_of[i] * ncols + c],
                                    };
                                }
                                total / training.len() as f64
                            })
                            .collect()
                    }
                }
            } else {
                ll_pop
                    .par_iter()
                    .map(|w| {
                        let weights: [f64; NUM_TERMINALS] = w.clone().try_into().unwrap();
                        let mut scorer = WeightScorer::new(weights);
                        let mut total = 0.0;
                        for &ti in &training {
                            let prices = &ul_pop[ti];
                            let costs = inst.costs_for(prices);
                            let out = cover(&mut scorer, &costs, &relaxations[ti]);
                            let ev = evaluate_pair(
                                inst,
                                prices,
                                &out.chosen,
                                relaxations[ti].lower_bound,
                            );
                            total += if ev.gap.is_finite() { ev.gap } else { 1e9 };
                        }
                        total / training.len() as f64
                    })
                    .collect()
            };
            ll_evals += gen_ll;

            let mut best_ll = 0;
            for i in 1..ll_pop.len() {
                if ll_fitness[i] < ll_fitness[best_ll] {
                    best_ll = i;
                }
            }
            champion = ll_pop[best_ll].clone().try_into().unwrap();
            if cfg.use_archives {
                for (w, &f) in ll_pop.iter().zip(&ll_fitness) {
                    ll_archive.push(w.clone(), f);
                }
            }

            let ul_scored: Vec<(f64, f64)> = if cfg.eval_matrix {
                // Champion row over the population's unique pricings;
                // training cells from the ll phase are recalled.
                let (col_of, cols) = dedup_by_key(ul_pop.iter().map(|p| pricing_key(p)));
                let champ_key = weights_scorer_key(&champion);
                let cells: Vec<Arc<DecodeOutcome>> = cols
                    .par_iter()
                    .map(|(rep, _)| {
                        let prices = &ul_pop[*rep];
                        let relax = &relaxations[*rep];
                        decode_cache
                            .get_or_decode(cell_key(mode, &champ_key, prices), || {
                                cell(champion, prices, relax)
                            })
                            .0
                    })
                    .collect();
                col_of.iter().map(|&c| (cells[c].eval.ul_value, cells[c].eval.gap)).collect()
            } else {
                ul_pop
                    .par_iter()
                    .zip(relaxations.par_iter())
                    .map(|(prices, relax)| {
                        let costs = inst.costs_for(prices);
                        let mut scorer = WeightScorer::new(champion);
                        let out = cover(&mut scorer, &costs, relax);
                        let ev = evaluate_pair(inst, prices, &out.chosen, relax.lower_bound);
                        (ev.ul_value, ev.gap)
                    })
                    .collect()
            };
            ul_evals += gen_ul;

            let mut gen_best_f = f64::NEG_INFINITY;
            let mut gen_best_gap = f64::INFINITY;
            for (prices, &(f, gap)) in ul_pop.iter().zip(&ul_scored) {
                if cfg.use_archives {
                    ul_archive.push(prices.clone(), f);
                }
                gen_best_f = gen_best_f.max(f);
                if gap.is_finite() {
                    gen_best_gap = gen_best_gap.min(gap);
                    best_gap_overall = best_gap_overall.min(gap);
                }
                if best.as_ref().is_none_or(|(_, bf)| f > *bf) && gap.is_finite() {
                    best = Some((prices.clone(), f));
                }
            }
            trace.record(generation, ul_evals + ll_evals, gen_best_f, gen_best_gap);

            // Breed UL exactly as CARBON does.
            let ul_fit: Vec<f64> = ul_scored.iter().map(|&(f, _)| f).collect();
            ul_pop = breed_real(
                &ul_pop,
                &ul_fit,
                &ul_archive,
                &lo,
                &hi,
                cfg,
                Direction::Maximize,
                &mut rng,
            );
            // Breed LL with the *same real-coded operators* on weights.
            ll_pop = breed_real(
                &ll_pop,
                &ll_fitness,
                &ll_archive,
                &wlo,
                &whi,
                cfg,
                Direction::Minimize,
                &mut rng,
            );
            generation += 1;
        }

        let (best_pricing, best_ul_value) = match best {
            Some((p, f)) => (p, f),
            None => (vec![0.0; nl], 0.0),
        };
        CarbonWeightsResult {
            best_pricing,
            best_ul_value,
            best_gap: best_gap_overall,
            best_weights: champion,
            trace,
            ul_evals_used: ul_evals,
            ll_evals_used: ll_evals,
            generations: generation,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn breed_real<R: Rng + ?Sized>(
    pop: &[Vec<f64>],
    fitness: &[f64],
    archive: &Archive<Vec<f64>>,
    lo: &[f64],
    hi: &[f64],
    cfg: &CarbonConfig,
    dir: Direction,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    let mut next = Vec::with_capacity(pop.len());
    if cfg.use_archives {
        if let Some((g, _)) = archive.best() {
            next.push(g.clone());
        }
    }
    while next.len() < pop.len() {
        let i = tournament(fitness, 2, dir, rng);
        let j = tournament(fitness, 2, dir, rng);
        let (mut c1, mut c2) = if rng.random::<f64>() < cfg.ul_crossover_prob {
            sbx_crossover(&pop[i], &pop[j], lo, hi, &cfg.ul_real_ops, rng)
        } else {
            (pop[i].clone(), pop[j].clone())
        };
        polynomial_mutation(
            &mut c1,
            lo,
            hi,
            cfg.ul_mutation_prob.max(0.1),
            &cfg.ul_real_ops,
            rng,
        );
        polynomial_mutation(
            &mut c2,
            lo,
            hi,
            cfg.ul_mutation_prob.max(0.1),
            &cfg.ul_real_ops,
            rng,
        );
        next.push(c1);
        if next.len() < pop.len() {
            next.push(c2);
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use bico_bcpop::{generate, GeneratorConfig};

    fn instance() -> BcpopInstance {
        generate(
            &GeneratorConfig { num_bundles: 40, num_services: 5, ..Default::default() },
            51,
        )
    }

    fn cfg(pop: usize, evals: u64) -> CarbonConfig {
        CarbonConfig {
            ul_pop_size: pop,
            ll_pop_size: pop,
            ul_archive_size: pop,
            ll_archive_size: pop,
            ul_evaluations: evals,
            ll_evaluations: evals,
            ..Default::default()
        }
    }

    #[test]
    fn runs_and_produces_finite_gap() {
        let inst = instance();
        let r = CarbonWeights::new(&inst, cfg(12, 600)).run(1);
        assert!(r.generations > 0);
        assert!(r.best_gap.is_finite());
        assert!(r.best_gap >= -1e-9);
        assert_eq!(r.best_pricing.len(), inst.num_own());
        assert!(r.best_weights.iter().all(|w| w.abs() <= 1.0 + 1e-12));
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = instance();
        let a = CarbonWeights::new(&inst, cfg(10, 400)).run(9);
        let b = CarbonWeights::new(&inst, cfg(10, 400)).run(9);
        assert_eq!(a.best_pricing, b.best_pricing);
        assert_eq!(a.best_gap, b.best_gap);
        assert_eq!(a.best_weights, b.best_weights);
    }

    #[test]
    fn compiled_eval_leaves_runs_bit_identical() {
        let inst = instance();
        for seed in [1u64, 2, 3] {
            let mut c = cfg(10, 400);
            assert!(c.compiled_eval);
            let fast = CarbonWeights::new(&inst, c.clone()).run(seed);
            c.compiled_eval = false;
            let reference = CarbonWeights::new(&inst, c).run(seed);
            assert_eq!(fast.best_pricing, reference.best_pricing, "seed {seed}");
            assert_eq!(
                fast.best_ul_value.to_bits(),
                reference.best_ul_value.to_bits(),
                "seed {seed}"
            );
            assert_eq!(fast.best_gap.to_bits(), reference.best_gap.to_bits(), "seed {seed}");
            assert_eq!(fast.best_weights, reference.best_weights, "seed {seed}");
            assert_eq!(fast.trace.points(), reference.trace.points(), "seed {seed}");
        }
    }

    #[test]
    fn eval_matrix_matches_reference_loop_bit_for_bit() {
        // The deduplicated evaluation matrix (+ decode cache) against the
        // legacy per-slot loop: scheduling and memoization must not move
        // a single bit of the run.
        for inst_seed in [51u64, 6] {
            let inst = generate(
                &GeneratorConfig { num_bundles: 30, num_services: 4, ..Default::default() },
                inst_seed,
            );
            for seed in [1u64, 2, 3] {
                let mut c = cfg(10, 400);
                assert!(c.eval_matrix && c.decode_cache_capacity > 0);
                let matrix = CarbonWeights::new(&inst, c.clone()).run(seed);
                c.eval_matrix = false;
                let reference = CarbonWeights::new(&inst, c).run(seed);
                let ctx = format!("inst {inst_seed} seed {seed}");
                assert_eq!(matrix.best_pricing, reference.best_pricing, "{ctx}");
                assert_eq!(
                    matrix.best_ul_value.to_bits(),
                    reference.best_ul_value.to_bits(),
                    "{ctx}"
                );
                assert_eq!(matrix.best_gap.to_bits(), reference.best_gap.to_bits(), "{ctx}");
                assert_eq!(matrix.best_weights, reference.best_weights, "{ctx}");
                assert_eq!(matrix.trace.points(), reference.trace.points(), "{ctx}");
                assert_eq!(matrix.generations, reference.generations, "{ctx}");
            }
        }
    }

    #[test]
    fn surrogate_full_exact_gate_matches_off_bit_for_bit() {
        // frac = 1.0 with no exploration decodes every cell exactly, so
        // the gated run must reproduce the ungated matrix bit for bit.
        let inst = instance();
        for seed in [1u64, 2, 3] {
            let mut c = cfg(10, 400);
            assert_eq!(c.surrogate_gate, SurrogateGate::Off, "gate defaults off");
            let off = CarbonWeights::new(&inst, c.clone()).run(seed);
            c.surrogate_gate = SurrogateGate::TopK { frac: 1.0, explore: 0.0 };
            let gated = CarbonWeights::new(&inst, c).run(seed);
            assert_eq!(gated.best_pricing, off.best_pricing, "seed {seed}");
            assert_eq!(
                gated.best_ul_value.to_bits(),
                off.best_ul_value.to_bits(),
                "seed {seed}"
            );
            assert_eq!(gated.best_gap.to_bits(), off.best_gap.to_bits(), "seed {seed}");
            assert_eq!(gated.best_weights, off.best_weights, "seed {seed}");
            assert_eq!(gated.trace.points(), off.trace.points(), "seed {seed}");
        }
    }

    #[test]
    fn surrogate_gate_runs_deterministically() {
        let inst = instance();
        let mut c = cfg(10, 600);
        c.training_samples = 3;
        c.surrogate_gate = SurrogateGate::top_k();
        let a = CarbonWeights::new(&inst, c.clone()).run(13);
        let b = CarbonWeights::new(&inst, c).run(13);
        assert!(a.best_gap.is_finite() && a.best_gap >= -1e-9, "gap {}", a.best_gap);
        assert_eq!(a.best_pricing, b.best_pricing);
        assert_eq!(a.best_gap.to_bits(), b.best_gap.to_bits());
        assert_eq!(a.best_weights, b.best_weights);
        assert_eq!(a.trace.points(), b.trace.points());
    }

    #[test]
    fn gp_representation_is_at_least_competitive() {
        // The GP variant should match or beat the linear variant on gap
        // (it strictly subsumes linear scoring up to evolution noise).
        // Compared on mean over two seeds to damp variance.
        use crate::carbon::Carbon;
        let inst = instance();
        let mut gp_sum = 0.0;
        let mut lin_sum = 0.0;
        for seed in [3u64, 4] {
            gp_sum += Carbon::new(&inst, cfg(16, 1_200)).run(seed).best_gap;
            lin_sum += CarbonWeights::new(&inst, cfg(16, 1_200)).run(seed).best_gap;
        }
        assert!(
            gp_sum <= lin_sum * 1.5 + 1.0,
            "GP variant ({gp_sum}) unexpectedly crushed by linear ({lin_sum})"
        );
    }
}
