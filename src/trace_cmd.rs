//! The `bico trace` subcommand: offline analysis of JSONL run traces.
//!
//! Takes one or two trace files written by `--trace-out`, replays them
//! through [`bico_obs::replay`], and renders what
//! [`bico_obs::analyze`] derives: per-generation cache-efficiency and
//! timing tables, per-phase wall-clock totals, the three co-evolutionary
//! pathology verdicts (see-saw, disengagement, stagnation), and — when
//! two traces are given — the first semantic divergence between them
//! (timing payloads ignored, so two same-seed runs compare clean).
//!
//! Output is a human-readable report by default or one JSON document
//! with `--json`; both are rendered from the same [`TraceReport`], and
//! the JSON form is what the CI determinism smoke check consumes.

use bico_obs::analyze::{
    analyze_with, diff, AnalyzeConfig, Divergence, TraceAnalysis, DEFAULT_STAGNATION_WINDOW,
};
use bico_obs::json::{push_f64_field, push_str_field, push_string, push_u64_field};
use bico_obs::replay::parse_trace;
use std::fmt::Write as _;

/// Parsed `bico trace` options.
#[derive(Debug, Clone)]
pub struct TraceArgs {
    /// One or two trace files (two enables the run diff).
    pub paths: Vec<String>,
    /// Emit one JSON document instead of human tables.
    pub json: bool,
    /// Plateau length (generations) before stagnation is flagged.
    pub stagnation_window: u64,
    /// Maximum generation rows printed per trace in human output
    /// (the middle is elided; JSON output is never truncated).
    pub max_rows: usize,
}

impl Default for TraceArgs {
    fn default() -> Self {
        TraceArgs {
            paths: Vec::new(),
            json: false,
            stagnation_window: DEFAULT_STAGNATION_WINDOW,
            max_rows: 20,
        }
    }
}

/// Everything `bico trace` computed, ready to render.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// `(path, analysis)` per input trace, in argument order.
    pub analyses: Vec<(String, TraceAnalysis)>,
    /// Diff outcome — `Some(None)` means two traces compared equal,
    /// `Some(Some(d))` is the first divergence, `None` means only one
    /// trace was given.
    pub divergence: Option<Option<Divergence>>,
}

/// Load, analyze and (for two traces) diff. Errors name the offending
/// file and line.
pub fn build_report(args: &TraceArgs) -> Result<TraceReport, String> {
    if args.paths.is_empty() || args.paths.len() > 2 {
        return Err("trace: expected one or two trace files".into());
    }
    let mut parsed = Vec::new();
    for path in &args.paths {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let records = parse_trace(&text).map_err(|e| format!("{path}: {e}"))?;
        parsed.push((path.clone(), records));
    }
    let divergence = (parsed.len() == 2).then(|| diff(&parsed[0].1, &parsed[1].1));
    let cfg =
        AnalyzeConfig { stagnation_window: args.stagnation_window, ..AnalyzeConfig::default() };
    let analyses = parsed
        .into_iter()
        .map(|(path, records)| (path, analyze_with(&records, &cfg)))
        .collect();
    Ok(TraceReport { analyses, divergence })
}

/// Render the report per `args` (human tables or JSON).
pub fn render(report: &TraceReport, args: &TraceArgs) -> String {
    if args.json {
        render_json(report)
    } else {
        render_human(report, args.max_rows)
    }
}

fn render_json(report: &TraceReport) -> String {
    let mut out = String::from("{\"traces\":[");
    for (i, (path, a)) in report.analyses.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"path\":");
        push_string(&mut out, path);
        push_str_field(&mut out, "algo", &a.algo);
        push_u64_field(&mut out, "seed", a.seed);
        push_u64_field(&mut out, "events", a.events);
        out.push_str(",\"generations\":[");
        for (j, g) in a.generations.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"generation\":{}", g.generation);
            push_u64_field(&mut out, "evaluations", g.evaluations);
            push_f64_field(&mut out, "ul_best", g.ul_best);
            push_f64_field(&mut out, "gap_best", g.gap_best);
            push_u64_field(&mut out, "ll_solves", g.ll_solves);
            push_u64_field(&mut out, "solve_hits", g.solve_hits);
            push_u64_field(&mut out, "solve_misses", g.solve_misses);
            push_u64_field(&mut out, "compile_hits", g.compile_hits);
            push_u64_field(&mut out, "compile_misses", g.compile_misses);
            push_u64_field(&mut out, "decode_hits", g.decode_hits);
            push_u64_field(&mut out, "decode_misses", g.decode_misses);
            push_u64_field(&mut out, "surrogate_exact", g.surrogate_exact);
            push_u64_field(&mut out, "surrogate_skipped", g.surrogate_skipped);
            push_f64_field(&mut out, "hit_rate", g.hit_rate());
            push_u64_field(&mut out, "eval_micros", g.eval_micros);
            out.push('}');
        }
        out.push_str("],\"phases\":[");
        for (j, p) in a.phases.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"phase\":");
            push_string(&mut out, &p.phase);
            push_u64_field(&mut out, "ms", p.ms);
            push_u64_field(&mut out, "visits", p.visits);
            out.push('}');
        }
        let s = &a.seesaw;
        let _ = write!(out, "],\"seesaw\":{{\"detected\":{}", s.detected);
        push_u64_field(&mut out, "segments", s.segments);
        push_f64_field(&mut out, "amplitude", s.amplitude());
        push_f64_field(&mut out, "ul_amplitude", s.ul_amplitude);
        push_f64_field(&mut out, "ll_amplitude", s.ll_amplitude);
        push_u64_field(&mut out, "sign_flips", s.sign_flips);
        let d = &a.disengagement;
        let _ = write!(out, "}},\"disengagement\":{{\"detected\":{}", d.detected);
        push_u64_field(&mut out, "comparisons", d.comparisons);
        push_u64_field(&mut out, "flat", d.flat);
        push_u64_field(&mut out, "longest_flat", d.longest_flat);
        push_f64_field(&mut out, "flat_fraction", d.flat_fraction);
        let st = &a.stagnation;
        let _ = write!(out, "}},\"stagnation\":{{\"detected\":{}", st.detected);
        push_u64_field(&mut out, "generations", st.generations);
        push_u64_field(&mut out, "longest_window", st.longest_window);
        push_u64_field(&mut out, "windows", st.windows);
        push_u64_field(&mut out, "window", st.window);
        out.push_str("}}");
    }
    out.push(']');
    match &report.divergence {
        None => {}
        Some(None) => out.push_str(",\"divergence\":null"),
        Some(Some(d)) => {
            let _ = write!(out, ",\"divergence\":{{\"index\":{}", d.index);
            out.push_str(",\"left\":");
            match &d.left {
                Some(l) => push_string(&mut out, l),
                None => out.push_str("null"),
            }
            out.push_str(",\"right\":");
            match &d.right {
                Some(r) => push_string(&mut out, r),
                None => out.push_str("null"),
            }
            out.push('}');
        }
    }
    out.push_str("}\n");
    out
}

fn render_human(report: &TraceReport, max_rows: usize) -> String {
    let mut out = String::new();
    for (path, a) in &report.analyses {
        let _ = writeln!(
            out,
            "trace {path} — {} seed {}, {} events, {} generations",
            if a.algo.is_empty() { "<unknown>" } else { &a.algo },
            a.seed,
            a.events,
            a.generations.len()
        );
        if !a.generations.is_empty() {
            let _ = writeln!(
                out,
                "\n  {:>5} {:>9} {:>12} {:>10} {:>7} {:>9} {:>9} {:>9}",
                "gen",
                "evals",
                "ul_best",
                "gap_best",
                "solves",
                "hit_rate",
                "surr_skip",
                "eval_ms"
            );
            // Elide the middle of long runs: head + tail around a marker.
            let n = a.generations.len();
            let (head, tail) =
                if n <= max_rows { (n, 0) } else { (max_rows / 2, max_rows - max_rows / 2) };
            for (i, g) in a.generations.iter().enumerate() {
                if i >= head && i < n - tail {
                    if i == head {
                        let _ = writeln!(
                            out,
                            "  {:>5}",
                            format!("… {} rows elided …", n - head - tail)
                        );
                    }
                    continue;
                }
                let hit = g.hit_rate();
                let _ = writeln!(
                    out,
                    "  {:>5} {:>9} {:>12.3} {:>10.3} {:>7} {:>9} {:>9} {:>9.2}",
                    g.generation,
                    g.evaluations,
                    g.ul_best,
                    g.gap_best,
                    g.ll_solves,
                    if hit.is_nan() { "-".into() } else { format!("{:.2}", hit) },
                    g.surrogate_skipped,
                    g.eval_micros as f64 / 1000.0
                );
            }
        }
        if !a.phases.is_empty() {
            let _ = writeln!(out, "\n  {:<24} {:>9} {:>7}", "phase", "ms", "visits");
            for p in &a.phases {
                let _ = writeln!(out, "  {:<24} {:>9} {:>7}", p.phase, p.ms, p.visits);
            }
        }
        let s = &a.seesaw;
        let _ = writeln!(
            out,
            "\n  see-saw:       {} (segments {}, amplitude {:.4}, sign flips {})",
            verdict(s.detected),
            s.segments,
            s.amplitude(),
            s.sign_flips
        );
        let d = &a.disengagement;
        let _ = writeln!(
            out,
            "  disengagement: {} ({}/{} flat comparisons, longest run {})",
            verdict(d.detected),
            d.flat,
            d.comparisons,
            d.longest_flat
        );
        let st = &a.stagnation;
        let _ = writeln!(
            out,
            "  stagnation:    {} (longest no-improvement window {} vs threshold {})\n",
            verdict(st.detected),
            st.longest_window,
            st.window
        );
    }
    match &report.divergence {
        None => {}
        Some(None) => {
            let _ = writeln!(out, "divergence: none — traces are semantically identical");
        }
        Some(Some(d)) => {
            let _ = writeln!(out, "divergence: first at event index {}", d.index);
            let _ = writeln!(
                out,
                "  left:  {}",
                d.left.as_deref().unwrap_or("<past end of trace>")
            );
            let _ = writeln!(
                out,
                "  right: {}",
                d.right.as_deref().unwrap_or("<past end of trace>")
            );
        }
    }
    out
}

fn verdict(detected: bool) -> &'static str {
    if detected {
        "DETECTED"
    } else {
        "not detected"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bico_obs::json::parse;

    fn write_trace(name: &str, body: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, body).unwrap();
        path.to_string_lossy().into_owned()
    }

    const SMALL: &str = "\
{\"event\":\"RunStart\",\"seq\":0,\"t_ms\":0,\"algo\":\"cobra\",\"seed\":7}\n\
{\"event\":\"PhaseChange\",\"seq\":1,\"t_ms\":0,\"phase\":\"upper_improvement\"}\n\
{\"event\":\"ObjectivePair\",\"seq\":2,\"t_ms\":1,\"level\":\"upper\",\"ul_value\":100,\"ll_value\":50}\n\
{\"event\":\"GenerationEnd\",\"seq\":3,\"t_ms\":2,\"generation\":0,\"evaluations\":10,\"ul_best\":100,\"gap_best\":5}\n\
{\"event\":\"PhaseChange\",\"seq\":4,\"t_ms\":2,\"phase\":\"lower_improvement\"}\n\
{\"event\":\"ObjectivePair\",\"seq\":5,\"t_ms\":3,\"level\":\"lower\",\"ul_value\":92,\"ll_value\":60}\n\
{\"event\":\"GenerationEnd\",\"seq\":6,\"t_ms\":4,\"generation\":1,\"evaluations\":20,\"ul_best\":100,\"gap_best\":4}\n\
{\"event\":\"PhaseChange\",\"seq\":7,\"t_ms\":4,\"phase\":\"upper_improvement\"}\n\
{\"event\":\"ObjectivePair\",\"seq\":8,\"t_ms\":5,\"level\":\"upper\",\"ul_value\":105,\"ll_value\":58}\n\
{\"event\":\"GenerationEnd\",\"seq\":9,\"t_ms\":6,\"generation\":2,\"evaluations\":30,\"ul_best\":105,\"gap_best\":4}\n\
{\"event\":\"RunComplete\",\"seq\":10,\"t_ms\":7,\"generations\":3,\"ul_evaluations\":15,\"ll_evaluations\":15,\"best_value\":105,\"best_gap\":4}\n";

    #[test]
    fn json_report_has_verdicts_and_null_divergence_for_equal_traces() {
        let a = write_trace("bico_trace_cmd_a.jsonl", SMALL);
        let b = write_trace("bico_trace_cmd_b.jsonl", SMALL);
        let args = TraceArgs { paths: vec![a, b], json: true, ..TraceArgs::default() };
        let report = build_report(&args).unwrap();
        let out = render(&report, &args);
        let v = parse(out.trim()).expect("JSON output must parse");
        assert!(out.contains("\"divergence\":null"), "same trace twice diverges nowhere");
        let traces = match v.get("traces") {
            Some(bico_obs::json::Value::Array(t)) => t,
            other => panic!("expected traces array, got {other:?}"),
        };
        assert_eq!(traces.len(), 2);
        let seesaw = traces[0].get("seesaw").expect("seesaw verdict");
        let amp = seesaw.get("amplitude").and_then(|a| a.as_f64()).unwrap();
        assert!(amp.is_finite() && amp > 0.0, "see-saw amplitude from the ±Δ pairs");
        assert_eq!(
            traces[0].get("generations").and_then(|g| match g {
                bico_obs::json::Value::Array(rows) => Some(rows.len()),
                _ => None,
            }),
            Some(3)
        );
    }

    #[test]
    fn divergent_traces_report_first_index() {
        let a = write_trace("bico_trace_cmd_c.jsonl", SMALL);
        let b =
            write_trace("bico_trace_cmd_d.jsonl", &SMALL.replace("\"seed\":7", "\"seed\":8"));
        let args = TraceArgs { paths: vec![a, b], json: true, ..TraceArgs::default() };
        let out = render(&build_report(&args).unwrap(), &args);
        assert!(
            out.contains("\"divergence\":{\"index\":0"),
            "seed change diverges at event 0:\n{out}"
        );
    }

    #[test]
    fn human_report_prints_tables_and_verdicts() {
        let a = write_trace("bico_trace_cmd_e.jsonl", SMALL);
        let args = TraceArgs { paths: vec![a], ..TraceArgs::default() };
        let out = render(&build_report(&args).unwrap(), &args);
        assert!(out.contains("cobra seed 7"));
        assert!(out.contains("see-saw:"));
        assert!(out.contains("upper_improvement"));
        assert!(!out.contains("divergence"), "single trace has no diff section");
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let args = TraceArgs {
            paths: vec!["/nonexistent/trace.jsonl".into()],
            ..TraceArgs::default()
        };
        let err = build_report(&args).unwrap_err();
        assert!(err.contains("/nonexistent/trace.jsonl"));
    }

    #[test]
    fn zero_or_three_paths_rejected() {
        assert!(build_report(&TraceArgs::default()).is_err());
        let args = TraceArgs {
            paths: vec!["a".into(), "b".into(), "c".into()],
            ..TraceArgs::default()
        };
        assert!(build_report(&args).is_err());
    }
}
