//! Tri-level linear optimization — the paper's future-work direction
//! ("multiple-level problems with deeper nested structure").
//!
//! Three sequential decision makers each control one scalar:
//! the top level picks `x`, the middle `y`, the bottom `z`; each level
//! minimizes its own linear objective over shared linear constraints,
//! anticipating the *rational reactions* of every level below. As in
//! the bi-level case, feasibility cascades: the middle level's
//! constraints bind `y` only, but its payoff depends on the bottom
//! reaction `z(x, y)`, and the top level's constraints may exclude the
//! reactions of both.
//!
//! Solution scheme (mirrors the bi-level toy machinery of [`crate::linear`]):
//! the bottom level — one scalar, linear — is solved *exactly* by
//! interval reduction with a lexicographic optimistic tie-break
//! (bottom objective, then middle, then top); the middle and top levels
//! are scanned on grids, which for piecewise-linear reaction maps is
//! exact up to the grid resolution.

/// One linear constraint `ax·x + ay·y + az·z ≤ rhs`, attributed to one
/// level (the level whose decision it constrains).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriRow {
    /// Coefficient of the top-level decision.
    pub ax: f64,
    /// Coefficient of the middle-level decision.
    pub ay: f64,
    /// Coefficient of the bottom-level decision.
    pub az: f64,
    /// Right-hand side.
    pub rhs: f64,
}

impl TriRow {
    /// Constraint activity at `(x, y, z)`.
    pub fn activity(&self, x: f64, y: f64, z: f64) -> f64 {
        self.ax * x + self.ay * y + self.az * z
    }
}

/// A linear objective `cx·x + cy·y + cz·z` (minimized).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriObjective {
    /// Coefficient on `x`.
    pub cx: f64,
    /// Coefficient on `y`.
    pub cy: f64,
    /// Coefficient on `z`.
    pub cz: f64,
}

impl TriObjective {
    /// Evaluate at `(x, y, z)`.
    pub fn eval(&self, x: f64, y: f64, z: f64) -> f64 {
        self.cx * x + self.cy * y + self.cz * z
    }
}

/// A tri-level linear problem over scalar decisions.
#[derive(Debug, Clone)]
pub struct TrilevelLinear {
    /// Objectives of the top, middle and bottom levels.
    pub objectives: [TriObjective; 3],
    /// Constraints owned by each level.
    pub constraints: [Vec<TriRow>; 3],
    /// Box of the top decision.
    pub x_range: (f64, f64),
    /// Box of the middle decision.
    pub y_range: (f64, f64),
    /// Box of the bottom decision.
    pub z_range: (f64, f64),
}

/// A fully resolved tri-level point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriSolution {
    /// Top decision.
    pub x: f64,
    /// Middle rational reaction.
    pub y: f64,
    /// Bottom rational reaction.
    pub z: f64,
    /// Top-level objective value.
    pub objective: f64,
}

const TOL: f64 = 1e-9;

impl TrilevelLinear {
    /// Exact bottom-level rational reaction for fixed `(x, y)`:
    /// minimize the bottom objective over the feasible `z` interval,
    /// breaking ties lexicographically (middle objective, then top) —
    /// the optimistic cascade.
    ///
    /// Returns `None` when the bottom level is infeasible at `(x, y)`.
    pub fn bottom_reaction(&self, x: f64, y: f64) -> Option<f64> {
        let (mut lo, mut hi) = self.z_range;
        for row in &self.constraints[2] {
            let residual = row.rhs - row.ax * x - row.ay * y;
            if row.az > TOL {
                hi = hi.min(residual / row.az);
            } else if row.az < -TOL {
                lo = lo.max(residual / row.az);
            } else if residual < -TOL {
                return None; // constraint independent of z, violated
            }
        }
        if lo > hi + TOL {
            return None;
        }
        let hi = hi.max(lo);
        // Lexicographic linear minimization over [lo, hi].
        for obj in [self.objectives[2], self.objectives[1], self.objectives[0]] {
            if obj.cz > TOL {
                return Some(lo);
            }
            if obj.cz < -TOL {
                return Some(hi);
            }
        }
        Some(lo) // fully indifferent: any point; pick lo deterministically
    }

    /// Middle-level rational reaction for fixed `x`: scan `y` on a grid,
    /// resolve the bottom reaction, keep `y` values whose *own*
    /// constraints hold, minimize the middle objective (ties broken
    /// optimistically toward the top objective).
    pub fn middle_reaction(&self, x: f64, steps: usize) -> Option<(f64, f64)> {
        let (lo, hi) = self.y_range;
        let mut best: Option<(f64, f64, f64, f64)> = None; // (y, z, f2, f1)
        for i in 0..=steps {
            let y = lo + (hi - lo) * i as f64 / steps as f64;
            let Some(z) = self.bottom_reaction(x, y) else { continue };
            let ok =
                self.constraints[1].iter().all(|row| row.activity(x, y, z) <= row.rhs + 1e-7);
            if !ok {
                continue;
            }
            let f2 = self.objectives[1].eval(x, y, z);
            let f1 = self.objectives[0].eval(x, y, z);
            let better = match best {
                None => true,
                Some((_, _, bf2, bf1)) => f2 < bf2 - TOL || (f2 < bf2 + TOL && f1 < bf1 - TOL),
            };
            if better {
                best = Some((y, z, f2, f1));
            }
        }
        best.map(|(y, z, _, _)| (y, z))
    }

    /// Solve the tri-level problem by scanning the top decision on a
    /// grid and keeping the best point whose full reaction chain
    /// satisfies the top-level constraints.
    pub fn solve(&self, steps: usize) -> Option<TriSolution> {
        let (lo, hi) = self.x_range;
        let mut best: Option<TriSolution> = None;
        for i in 0..=steps {
            let x = lo + (hi - lo) * i as f64 / steps as f64;
            let Some((y, z)) = self.middle_reaction(x, steps) else {
                continue;
            };
            let ok =
                self.constraints[0].iter().all(|row| row.activity(x, y, z) <= row.rhs + 1e-7);
            if !ok {
                continue;
            }
            let f1 = self.objectives[0].eval(x, y, z);
            if best.as_ref().is_none_or(|b| f1 < b.objective) {
                best = Some(TriSolution { x, y, z, objective: f1 });
            }
        }
        best
    }
}

/// A worked tri-level example with a hand-checkable optimum:
///
/// * bottom: `min −z  s.t. z ≤ y, z ≤ 10 − 2y` → `z* = min(y, 10 − 2y)`;
/// * middle: `min −z  s.t. y ≤ x` → pushes `y` toward `10/3` (the peak
///   of `z*`), but can reach it only when `x ≥ 10/3`;
/// * top: `min −z + 0.01·x` → wants the same peak at minimal `x`,
///   optimum `x = y = 10/3`, `z = 10/3`, `F₁ = −10/3 + 0.01·10/3`.
pub fn trilevel_example() -> TrilevelLinear {
    TrilevelLinear {
        objectives: [
            TriObjective { cx: 0.01, cy: 0.0, cz: -1.0 },
            TriObjective { cx: 0.0, cy: 0.0, cz: -1.0 },
            TriObjective { cx: 0.0, cy: 0.0, cz: -1.0 },
        ],
        constraints: [
            vec![],
            vec![TriRow { ax: -1.0, ay: 1.0, az: 0.0, rhs: 0.0 }], // y ≤ x
            vec![
                TriRow { ax: 0.0, ay: -1.0, az: 1.0, rhs: 0.0 }, // z ≤ y
                TriRow { ax: 0.0, ay: 2.0, az: 1.0, rhs: 10.0 }, // z ≤ 10 − 2y
            ],
        ],
        x_range: (0.0, 6.0),
        y_range: (0.0, 6.0),
        z_range: (0.0, 10.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_reaction_is_piecewise_min() {
        let p = trilevel_example();
        // z*(y) = min(y, 10 − 2y) for any x.
        assert!((p.bottom_reaction(0.0, 2.0).unwrap() - 2.0).abs() < 1e-9);
        assert!((p.bottom_reaction(0.0, 4.0).unwrap() - 2.0).abs() < 1e-9);
        let peak = 10.0 / 3.0;
        assert!((p.bottom_reaction(0.0, peak).unwrap() - peak).abs() < 1e-9);
    }

    #[test]
    fn bottom_reaction_detects_infeasibility() {
        let p = TrilevelLinear {
            constraints: [
                vec![],
                vec![],
                vec![
                    TriRow { ax: 0.0, ay: 0.0, az: 1.0, rhs: 1.0 }, // z ≤ 1
                    TriRow { ax: 0.0, ay: 0.0, az: -1.0, rhs: -2.0 }, // z ≥ 2
                ],
            ],
            ..trilevel_example()
        };
        assert!(p.bottom_reaction(0.0, 0.0).is_none());
    }

    #[test]
    fn bottom_tie_breaks_toward_upper_levels() {
        // Bottom indifferent (cz = 0); middle wants z large.
        let p = TrilevelLinear {
            objectives: [
                TriObjective { cx: 0.0, cy: 0.0, cz: 0.0 },
                TriObjective { cx: 0.0, cy: 0.0, cz: -1.0 },
                TriObjective { cx: 0.0, cy: 0.0, cz: 0.0 },
            ],
            constraints: [vec![], vec![], vec![TriRow { ax: 0.0, ay: 0.0, az: 1.0, rhs: 4.0 }]],
            ..trilevel_example()
        };
        assert!((p.bottom_reaction(0.0, 0.0).unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn middle_reaction_climbs_to_the_peak_when_allowed() {
        let p = trilevel_example();
        // x = 6 ≥ 10/3: middle can reach the peak.
        let (y, z) = p.middle_reaction(6.0, 3000).unwrap();
        assert!((y - 10.0 / 3.0).abs() < 0.01, "y = {y}");
        assert!((z - 10.0 / 3.0).abs() < 0.01, "z = {z}");
        // x = 2 < 10/3: capped at y = x.
        let (y, z) = p.middle_reaction(2.0, 3000).unwrap();
        assert!((y - 2.0).abs() < 0.01);
        assert!((z - 2.0).abs() < 0.01);
    }

    #[test]
    fn full_solve_matches_analytic_optimum() {
        let p = trilevel_example();
        let sol = p.solve(1500).unwrap();
        let peak = 10.0 / 3.0;
        assert!((sol.x - peak).abs() < 0.02, "x = {}", sol.x);
        assert!((sol.y - peak).abs() < 0.02, "y = {}", sol.y);
        assert!((sol.z - peak).abs() < 0.02, "z = {}", sol.z);
        assert!((sol.objective - (-peak + 0.01 * peak)).abs() < 0.02);
    }

    #[test]
    fn top_constraints_can_exclude_reactions() {
        // Forbid the peak region at the top: x + y + z ≤ 6 ⇒ the top must
        // retreat to a smaller x even though deeper levels would love 10/3.
        let mut p = trilevel_example();
        p.constraints[0].push(TriRow { ax: 1.0, ay: 1.0, az: 1.0, rhs: 6.0 });
        let sol = p.solve(1500).unwrap();
        assert!(sol.x + sol.y + sol.z <= 6.0 + 1e-6);
        assert!(sol.z < 10.0 / 3.0);
        // x ≈ y ≈ z ≈ 2 maximizes z under the cap.
        assert!((sol.z - 2.0).abs() < 0.02, "z = {}", sol.z);
    }
}
