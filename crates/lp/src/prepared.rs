//! Phase-1 reuse for repeated solves over a fixed constraint system.
//!
//! Phase 1 of the two-phase simplex never looks at the objective: it
//! minimizes the artificial sum, which depends only on the constraint
//! rows, relations, right-hand sides and variable bounds. A workload that
//! solves the *same* constraint template under many different cost
//! vectors — the CARBON lower-level relaxation re-priced per upper-level
//! decision — can therefore run phase 1 once, snapshot the feasible
//! tableau, and resume each solve directly in phase 2.
//!
//! [`PreparedLp::solve_objective`] is bit-identical to a cold
//! [`LpProblem::solve`] with the same objective: the resumed tableau is
//! the exact floating-point state the cold path would have reached at the
//! end of phase 1, so phase 2 performs the same pivots in the same order.
//! This holds on both implementations — when [`crate::SparseMode`]
//! selects the sparse revised simplex, the prepared state is the sparse
//! phase-1 state and the resumed solve matches the sparse cold solve the
//! same way.

use crate::problem::{LpError, LpProblem, Sense};
use crate::simplex::{self, Prepared, SimplexOptions};
use crate::solution::LpSolution;

/// An [`LpProblem`] with phase 1 already run, ready to solve repeatedly
/// under varying objectives. Build one with [`LpProblem::prepare`].
///
/// The prepared state is immutable: each [`solve_objective`] call clones
/// the feasible tableau, so a `PreparedLp` can be shared across threads
/// (`&self` methods only).
///
/// [`solve_objective`]: PreparedLp::solve_objective
#[derive(Debug, Clone)]
pub struct PreparedLp {
    sense: Sense,
    n: usize,
    state: Prepared,
}

impl LpProblem {
    /// Run phase 1 once and return a [`PreparedLp`] that can solve this
    /// constraint system under any objective. Uses default
    /// [`SimplexOptions`].
    pub fn prepare(&self) -> Result<PreparedLp, LpError> {
        self.prepare_with(&SimplexOptions::default())
    }

    /// [`LpProblem::prepare`] with explicit options.
    pub fn prepare_with(&self, opts: &SimplexOptions) -> Result<PreparedLp, LpError> {
        self.validate()?;
        Ok(PreparedLp { sense: self.sense, n: self.n, state: simplex::prepare(self, opts) })
    }
}

impl PreparedLp {
    /// Number of structural variables an objective must cover.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// `true` iff phase 1 found a feasible basis (every
    /// [`solve_objective`](PreparedLp::solve_objective) call on an
    /// infeasible preparation returns the same non-optimal status).
    pub fn is_feasible(&self) -> bool {
        match &self.state {
            Prepared::Ready { .. } => true,
            Prepared::Stopped { .. } => false,
            Prepared::Sparse(sp) => sp.is_feasible(),
        }
    }

    /// Pivots phase 1 spent reaching feasibility; amortized across every
    /// subsequent [`solve_objective`](PreparedLp::solve_objective) call
    /// (each of which reports them in its own `phase1_iterations` for
    /// parity with the cold path).
    pub fn phase1_iterations(&self) -> usize {
        match &self.state {
            Prepared::Ready { phase1_iterations, .. } => *phase1_iterations,
            Prepared::Stopped { phase1_iterations, .. } => *phase1_iterations,
            Prepared::Sparse(sp) => sp.phase1_iterations(),
        }
    }

    /// Solve for `obj`, resuming from the prepared feasible basis.
    ///
    /// Bit-identical to `LpProblem::solve` on the underlying problem with
    /// its objective set to `obj` — including `iterations` /
    /// `phase1_iterations`, which count the shared phase-1 pivots as if
    /// they had been performed by this call.
    pub fn solve_objective(&self, obj: &[f64]) -> Result<LpSolution, LpError> {
        if obj.len() != self.n {
            return Err(LpError::ObjectiveLength { got: obj.len(), expected: self.n });
        }
        if obj.iter().any(|c| c.is_nan()) {
            return Err(LpError::NotANumber("objective coefficient"));
        }
        match &self.state {
            Prepared::Stopped { status, iterations, phase1_iterations } => {
                Ok(LpSolution::non_optimal(*status, *iterations, *phase1_iterations))
            }
            Prepared::Ready { tab, signs, phase1_iterations } => {
                Ok(simplex::finish(tab.clone(), signs, *phase1_iterations, self.sense, obj))
            }
            Prepared::Sparse(sp) => Ok(sp.solve_objective(self.sense, obj)),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{LpProblem, LpStatus, Relation};

    fn covering(costs: &[f64]) -> LpProblem {
        let mut p = LpProblem::minimize(4);
        p.set_objective(costs);
        for j in 0..4 {
            p.set_bounds(j, 0.0, 1.0);
        }
        p.add_constraint_dense(&[2.0, 1.0, 0.0, 1.0], Relation::Ge, 2.0);
        p.add_constraint_dense(&[0.0, 2.0, 3.0, 1.0], Relation::Ge, 3.0);
        p.add_constraint_dense(&[1.0, 0.0, 1.0, 2.0], Relation::Ge, 1.0);
        p
    }

    #[test]
    fn resumed_solve_is_bit_identical_to_cold() {
        let objectives: [&[f64]; 4] = [
            &[3.0, 2.0, 4.0, 1.0],
            &[1.0, 1.0, 1.0, 1.0],
            &[0.5, 9.0, 0.25, 2.0],
            &[4.0, 0.0, 0.0, 7.0],
        ];
        let prepared = covering(objectives[0]).prepare().unwrap();
        assert!(prepared.is_feasible());
        for obj in objectives {
            let warm = prepared.solve_objective(obj).unwrap();
            let cold = covering(obj).solve().unwrap();
            assert_eq!(warm.status, cold.status);
            assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
            let eq_bits = |a: &[f64], b: &[f64]| {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            };
            assert!(eq_bits(&warm.x, &cold.x), "x differs for {obj:?}");
            assert!(eq_bits(&warm.duals, &cold.duals), "duals differ for {obj:?}");
            assert!(
                eq_bits(&warm.reduced_costs, &cold.reduced_costs),
                "reduced costs differ for {obj:?}"
            );
            assert_eq!(warm.iterations, cold.iterations);
            assert_eq!(warm.phase1_iterations, cold.phase1_iterations);
            assert_eq!(warm.basis, cold.basis);
        }
    }

    #[test]
    fn prepared_infeasible_reports_every_objective_infeasible() {
        let mut p = LpProblem::minimize(1);
        p.add_constraint_dense(&[1.0], Relation::Ge, 5.0);
        p.add_constraint_dense(&[1.0], Relation::Le, 2.0);
        let prepared = p.prepare().unwrap();
        assert!(!prepared.is_feasible());
        let sol = prepared.solve_objective(&[1.0]).unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);
        let sol = prepared.solve_objective(&[-3.0]).unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn solve_objective_validates_input() {
        let prepared = covering(&[1.0; 4]).prepare().unwrap();
        assert!(prepared.solve_objective(&[1.0]).is_err());
        assert!(prepared.solve_objective(&[1.0, f64::NAN, 0.0, 0.0]).is_err());
        assert_eq!(prepared.num_vars(), 4);
    }
}
