//! Bounded elite archives.
//!
//! COBRA "implements archives at both levels to keep track of the best
//! results", and CARBON adopts the same strategy (paper §V.A, Table II:
//! archive size 100 at both levels). The archive keeps the `capacity`
//! best entries seen so far, deduplicating identical genomes.

use crate::select::Direction;

/// A bounded best-so-far archive over genomes of type `G`.
///
/// ```
/// use bico_ea::{Archive, Direction};
///
/// let mut archive = Archive::new(2, Direction::Minimize);
/// archive.push("slow", 9.0);
/// archive.push("fast", 1.0);
/// archive.push("medium", 5.0); // evicts "slow"
/// assert_eq!(archive.best(), Some((&"fast", 1.0)));
/// assert_eq!(archive.top(2), vec!["fast", "medium"]);
/// ```
#[derive(Debug, Clone)]
pub struct Archive<G> {
    capacity: usize,
    dir: Direction,
    /// Sorted best-first.
    entries: Vec<(G, f64)>,
}

impl<G: Clone + PartialEq> Archive<G> {
    /// Create an archive holding at most `capacity` entries, ranked in
    /// direction `dir`.
    pub fn new(capacity: usize, dir: Direction) -> Self {
        assert!(capacity > 0, "archive capacity must be positive");
        Archive { capacity, dir, entries: Vec::with_capacity(capacity + 1) }
    }

    /// Number of archived entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entry has been archived yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The ranking direction.
    pub fn direction(&self) -> Direction {
        self.dir
    }

    /// Insert a genome with its fitness. Returns `true` if the entry was
    /// kept (better than the current worst, or capacity not reached) and
    /// was not a duplicate.
    pub fn push(&mut self, genome: G, fitness: f64) -> bool {
        if fitness.is_nan() {
            return false;
        }
        // Reject exact duplicates (same genome); keep the better fitness.
        if let Some(existing) = self.entries.iter_mut().find(|(g, _)| *g == genome) {
            if self.dir.better(fitness, existing.1) {
                existing.1 = fitness;
                self.resort();
                return true;
            }
            return false;
        }
        if self.entries.len() >= self.capacity {
            let worst = self.entries.last().map(|e| e.1).unwrap_or(self.dir.worst());
            if !self.dir.better(fitness, worst) {
                return false;
            }
        }
        // Binary search for the insertion point (best-first ordering).
        let pos = self.entries.partition_point(|(_, f)| !self.dir.better(fitness, *f));
        self.entries.insert(pos, (genome, fitness));
        self.entries.truncate(self.capacity);
        true
    }

    fn resort(&mut self) {
        let dir = self.dir;
        self.entries.sort_by(|a, b| {
            if dir.better(a.1, b.1) {
                std::cmp::Ordering::Less
            } else if dir.better(b.1, a.1) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
    }

    /// The best entry, if any.
    pub fn best(&self) -> Option<(&G, f64)> {
        self.entries.first().map(|(g, f)| (g, *f))
    }

    /// Iterate entries best-first.
    pub fn iter(&self) -> impl Iterator<Item = (&G, f64)> {
        self.entries.iter().map(|(g, f)| (g, *f))
    }

    /// Clone out the `k` best genomes (fewer if the archive is smaller).
    pub fn top(&self, k: usize) -> Vec<G> {
        self.entries.iter().take(k).map(|(g, _)| g.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_under_capacity_pressure() {
        let mut a = Archive::new(3, Direction::Maximize);
        for (i, f) in [1.0, 5.0, 3.0, 4.0, 2.0].iter().enumerate() {
            a.push(i, *f);
        }
        let fits: Vec<f64> = a.iter().map(|(_, f)| f).collect();
        assert_eq!(fits, vec![5.0, 4.0, 3.0]);
        assert_eq!(a.best(), Some((&1usize, 5.0)));
    }

    #[test]
    fn minimize_direction() {
        let mut a = Archive::new(2, Direction::Minimize);
        a.push("x", 9.0);
        a.push("y", 1.0);
        a.push("z", 5.0);
        let fits: Vec<f64> = a.iter().map(|(_, f)| f).collect();
        assert_eq!(fits, vec![1.0, 5.0]);
    }

    #[test]
    fn rejects_worse_when_full() {
        let mut a = Archive::new(2, Direction::Maximize);
        assert!(a.push(1, 10.0));
        assert!(a.push(2, 20.0));
        assert!(!a.push(3, 5.0));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn duplicate_genome_keeps_best_fitness() {
        let mut a = Archive::new(4, Direction::Maximize);
        assert!(a.push(7, 1.0));
        assert!(a.push(7, 3.0)); // improved duplicate
        assert!(!a.push(7, 2.0)); // worse duplicate
        assert_eq!(a.len(), 1);
        assert_eq!(a.best(), Some((&7, 3.0)));
    }

    #[test]
    fn nan_fitness_rejected() {
        let mut a = Archive::new(2, Direction::Maximize);
        assert!(!a.push(1, f64::NAN));
        assert!(a.is_empty());
    }

    #[test]
    fn top_k_clones_best() {
        let mut a = Archive::new(5, Direction::Minimize);
        for (g, f) in [(1, 4.0), (2, 2.0), (3, 3.0)] {
            a.push(g, f);
        }
        assert_eq!(a.top(2), vec![2, 3]);
        assert_eq!(a.top(10), vec![2, 3, 1]);
    }

    #[test]
    fn ties_are_kept_in_insertion_order() {
        let mut a = Archive::new(3, Direction::Maximize);
        a.push("first", 1.0);
        a.push("second", 1.0);
        let genomes: Vec<&&str> = a.iter().map(|(g, _)| g).collect();
        assert_eq!(genomes, vec![&"first", &"second"]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _: Archive<u8> = Archive::new(0, Direction::Maximize);
    }
}
