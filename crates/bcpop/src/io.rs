//! Plain-text instance serialization.
//!
//! A deliberately simple line-oriented format so instances used in a
//! paper run can be archived and re-loaded bit-exactly (costs are
//! printed with round-trip `f64` precision):
//!
//! ```text
//! bcpop 1                 # magic + format version
//! services  <N>
//! bundles   <M>
//! own       <L>
//! price_cap <float>
//! b    <N ints>
//! cost <M floats>         # first L entries are placeholders (0)
//! q    <M rows of N ints> # bundle-major
//! ```

use crate::instance::{BcpopInstance, InstanceError};
use std::fmt;

/// Errors from [`read_instance`].
#[derive(Debug, Clone, PartialEq)]
pub enum IoError {
    /// Bad magic line / unsupported version.
    BadHeader(String),
    /// A field line is missing or malformed.
    BadField {
        /// 1-based line number (0 when the line is missing entirely).
        line: usize,
        /// Human-readable description.
        detail: String,
    },
    /// The decoded parts do not form a valid instance.
    Invalid(InstanceError),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::BadHeader(h) => write!(f, "bad header {h:?} (expected \"bcpop 1\")"),
            IoError::BadField { line, detail } => write!(f, "line {line}: {detail}"),
            IoError::Invalid(e) => write!(f, "decoded instance invalid: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Serialize an instance to the text format.
pub fn write_instance(inst: &BcpopInstance) -> String {
    let n = inst.num_services();
    let m = inst.num_bundles();
    let mut out = String::new();
    out.push_str("bcpop 1\n");
    out.push_str(&format!("services {n}\n"));
    out.push_str(&format!("bundles {m}\n"));
    out.push_str(&format!("own {}\n", inst.num_own()));
    out.push_str(&format!("price_cap {:?}\n", inst.price_cap()));
    out.push('b');
    for k in 0..n {
        out.push_str(&format!(" {}", inst.requirement(k)));
    }
    out.push_str("\ncost");
    for j in 0..m {
        if j < inst.num_own() {
            out.push_str(" 0");
        } else {
            out.push_str(&format!(" {:?}", inst.competitor_cost(j)));
        }
    }
    out.push('\n');
    for j in 0..m {
        out.push('q');
        for &v in inst.bundle_coverage(j) {
            out.push_str(&format!(" {v}"));
        }
        out.push('\n');
    }
    out
}

/// Parse the text format back into a validated instance.
pub fn read_instance(text: &str) -> Result<BcpopInstance, IoError> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or_else(|| IoError::BadHeader("<empty>".into()))?;
    if header.trim() != "bcpop 1" {
        return Err(IoError::BadHeader(header.trim().to_string()));
    }

    fn field<'a>(
        item: Option<(usize, &'a str)>,
        key: &str,
    ) -> Result<(usize, Vec<&'a str>), IoError> {
        let (lineno, line) = item
            .ok_or(IoError::BadField { line: 0, detail: format!("missing field {key:?}") })?;
        let mut parts = line.split_whitespace();
        let got = parts.next().unwrap_or("");
        if got != key {
            return Err(IoError::BadField {
                line: lineno + 1,
                detail: format!("expected field {key:?}, found {got:?}"),
            });
        }
        Ok((lineno + 1, parts.collect()))
    }

    fn one<T: std::str::FromStr>(line: usize, vals: &[&str]) -> Result<T, IoError> {
        vals.first()
            .and_then(|v| v.parse::<T>().ok())
            .ok_or(IoError::BadField { line, detail: "expected one value".into() })
    }

    let (l, v) = field(lines.next(), "services")?;
    let n: usize = one(l, &v)?;
    let (l, v) = field(lines.next(), "bundles")?;
    let m: usize = one(l, &v)?;
    let (l, v) = field(lines.next(), "own")?;
    let own: usize = one(l, &v)?;
    let (l, v) = field(lines.next(), "price_cap")?;
    let price_cap: f64 = one(l, &v)?;

    let (l, v) = field(lines.next(), "b")?;
    if v.len() != n {
        return Err(IoError::BadField {
            line: l,
            detail: format!("expected {n} requirements"),
        });
    }
    let b: Vec<u32> = v
        .iter()
        .map(|s| s.parse::<u32>())
        .collect::<Result<_, _>>()
        .map_err(|e| IoError::BadField { line: l, detail: e.to_string() })?;

    let (l, v) = field(lines.next(), "cost")?;
    if v.len() != m {
        return Err(IoError::BadField { line: l, detail: format!("expected {m} costs") });
    }
    let costs: Vec<f64> = v
        .iter()
        .map(|s| s.parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|e| IoError::BadField { line: l, detail: e.to_string() })?;

    let mut q = Vec::with_capacity(m * n);
    for _ in 0..m {
        let (l, v) = field(lines.next(), "q")?;
        if v.len() != n {
            return Err(IoError::BadField {
                line: l,
                detail: format!("expected {n} coverages"),
            });
        }
        for s in v {
            q.push(
                s.parse::<u32>()
                    .map_err(|e| IoError::BadField { line: l, detail: e.to_string() })?,
            );
        }
    }

    BcpopInstance::new(n, m, own, q, b, costs, price_cap).map_err(IoError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GeneratorConfig};

    #[test]
    fn roundtrip_generated_instance() {
        let inst = generate(&GeneratorConfig::paper_class(100, 10), 42);
        let text = write_instance(&inst);
        let back = read_instance(&text).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn roundtrip_preserves_float_costs_exactly() {
        let inst = generate(&GeneratorConfig { cost_noise: 0.777, ..Default::default() }, 7);
        let back = read_instance(&write_instance(&inst)).unwrap();
        for j in inst.num_own()..inst.num_bundles() {
            assert_eq!(back.competitor_cost(j).to_bits(), inst.competitor_cost(j).to_bits());
        }
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(read_instance("bcpop 2\n"), Err(IoError::BadHeader(_))));
        assert!(matches!(read_instance(""), Err(IoError::BadHeader(_))));
    }

    #[test]
    fn rejects_wrong_field_order() {
        let err = read_instance("bcpop 1\nbundles 2\n").unwrap_err();
        assert!(matches!(err, IoError::BadField { .. }));
    }

    #[test]
    fn rejects_truncated_matrix() {
        let inst = generate(
            &GeneratorConfig { num_bundles: 4, num_services: 2, ..Default::default() },
            1,
        );
        let text = write_instance(&inst);
        let truncated: String = text.lines().take(8).collect::<Vec<_>>().join("\n");
        assert!(read_instance(&truncated).is_err());
    }

    #[test]
    fn rejects_invalid_decoded_instance() {
        // Valid syntax, but service 0 cannot be covered.
        let text = "bcpop 1\nservices 1\nbundles 1\nown 1\nprice_cap 5.0\nb 10\ncost 0\nq 1\n";
        assert!(matches!(read_instance(text), Err(IoError::Invalid(_))));
    }
}
