//! Typed solver events.
//!
//! One enum covers every signal the solvers emit. Events borrow string
//! data (`&'a str`) so emitting one costs no allocation; sinks that need
//! to keep data copy it out.

use crate::json;

/// Which level of the bi-level problem an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// The leader (pricing) level.
    Upper,
    /// The follower (reaction / heuristic) level.
    Lower,
}

impl Level {
    /// Lower-case name used in JSON and log output.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Upper => "upper",
            Level::Lower => "lower",
        }
    }
}

/// One observable occurrence inside a solver run.
///
/// Numeric conventions: counts are `u64`; objective values and gaps are
/// `f64` and may be non-finite (serialized as JSON `null`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event<'a> {
    /// A solver run begins.
    RunStart {
        /// Algorithm name (`"carbon"`, `"cobra"`, `"nested"`, …).
        algo: &'a str,
        /// Master seed of the run.
        seed: u64,
    },
    /// The run enters a new phase (e.g. `"relaxation"`, `"ul_fitness"`,
    /// `"breeding"`). Phases partition the run's wall-clock time.
    PhaseChange {
        /// Phase name.
        phase: &'a str,
    },
    /// A generation (or improvement generation) begins.
    GenerationStart {
        /// Zero-based generation index.
        generation: u64,
    },
    /// A batch of fitness evaluations completed.
    Evaluation {
        /// Which population was evaluated.
        level: Level,
        /// Number of fitness evaluations in the batch.
        count: u64,
        /// GP tree nodes evaluated while scoring the batch (0 when the
        /// batch involved no GP heuristic).
        gp_nodes: u64,
        /// Wall-clock microseconds spent scoring the batch (0 when the
        /// emitter did not time it, e.g. observers were disabled).
        micros: u64,
    },
    /// A batch of lower-level relaxation LP solves completed.
    LowerLevelSolve {
        /// Number of relaxation requests in the batch (including ones
        /// answered by the solve cache).
        solves: u64,
        /// Total simplex pivots across the batch; solve-cache hits spend
        /// none, so this reflects work done, not work recalled.
        pivots: u64,
        /// Wall-clock microseconds spent answering the batch (0 when
        /// the emitter did not time it).
        micros: u64,
    },
    /// A batch of lower-level solve-cache probes completed. Emitted
    /// right after the matching [`Event::LowerLevelSolve`] by every
    /// solver with `ll_cache_capacity > 0`; `hits + misses` equals that
    /// batch's `solves`. Never emitted when the cache is disabled.
    CacheProbe {
        /// Cache hits in the batch.
        hits: u64,
        /// Cache misses in the batch.
        misses: u64,
        /// Entries evicted during the batch (delta, like hits/misses).
        evictions: u64,
        /// Entries resident after the batch (a gauge, not a delta).
        entries: u64,
    },
    /// A batch of GP compile-cache probes completed. Emitted once per
    /// generation by solvers running with the compiled evaluator and a
    /// GP compile cache; counts are deltas since the previous probe
    /// event. Never emitted when the cache is disabled.
    CompileCacheProbe {
        /// Compile-cache hits in the batch.
        hits: u64,
        /// Compile-cache misses (fresh compilations) in the batch.
        misses: u64,
        /// Programs evicted during the batch (delta, like hits/misses).
        evictions: u64,
        /// Programs resident after the batch (a gauge, not a delta).
        entries: u64,
        /// Wall-clock microseconds spent compiling the batch's misses
        /// (delta; 0 when everything hit or timing was unavailable).
        compile_micros: u64,
    },
    /// A batch of lower-level decode-cache probes completed. Emitted
    /// once per generation by solvers running with the evaluation-matrix
    /// scheduler and a decode cache; counts are deltas since the
    /// previous probe event. Only unique (tree, pricing) cells probe the
    /// cache — intra-generation duplicates are deduplicated before the
    /// probe — so `hits + misses` counts matrix cells, not logical
    /// evaluations. Never emitted when the cache is disabled.
    DecodeCacheProbe {
        /// Decode-cache hits in the batch.
        hits: u64,
        /// Decode-cache misses (fresh greedy decodes) in the batch.
        misses: u64,
        /// Outcomes evicted during the batch (delta, like hits/misses).
        evictions: u64,
        /// Outcomes resident after the batch (a gauge, not a delta).
        entries: u64,
    },
    /// A surrogate screening of the evaluation matrix completed. Emitted
    /// once per generation by solvers running with a surrogate gate
    /// (`surrogate_gate != Off`); `exact + skipped` equals `cells`.
    /// Never emitted when the gate is off.
    SurrogateProbe {
        /// Unique evaluation-matrix cells screened this generation.
        cells: u64,
        /// Cells decoded exactly (top-k + exploration + pinned).
        exact: u64,
        /// Cells imputed from surrogate rank instead of decoded.
        skipped: u64,
        /// Spearman rank correlation between the surrogate's predictions
        /// and the realized outcomes of the exactly-evaluated cells
        /// (NaN while the model warms up or with too few exact cells).
        rank_corr: f64,
    },
    /// The best pair's objectives at one co-evolutionary step. Emitted
    /// once per improvement generation by competitive solvers; `level`
    /// names the population that was improving when the sample was
    /// taken. The see-saw detector in the trace analyzer segments
    /// these by `level` to measure leader/follower oscillation.
    ObjectivePair {
        /// The population improving when this sample was taken.
        level: Level,
        /// Upper-level (leader) objective of the current best pair.
        ul_value: f64,
        /// Lower-level (follower) objective of the current best pair.
        ll_value: f64,
    },
    /// An elite archive absorbed a generation's candidates.
    ArchiveUpdate {
        /// Which level's archive.
        level: Level,
        /// Archive size after the update.
        size: u64,
        /// Fitness of the archive's best entry (NaN when empty).
        best: f64,
    },
    /// A generation completed — the Fig. 4/5 sample point.
    GenerationEnd {
        /// Zero-based generation index.
        generation: u64,
        /// Cumulative evaluations (both levels) consumed so far.
        evaluations: u64,
        /// The generation's best upper-level objective.
        ul_best: f64,
        /// The generation's best %-gap.
        gap_best: f64,
    },
    /// A solver run finished.
    RunComplete {
        /// Generations completed.
        generations: u64,
        /// Upper-level evaluations consumed.
        ul_evaluations: u64,
        /// Lower-level evaluations consumed.
        ll_evaluations: u64,
        /// Best upper-level objective found.
        best_value: f64,
        /// Best %-gap found.
        best_gap: f64,
    },
}

impl Event<'_> {
    /// The event's tag, as written to the JSONL `"event"` field.
    pub fn name(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "RunStart",
            Event::PhaseChange { .. } => "PhaseChange",
            Event::GenerationStart { .. } => "GenerationStart",
            Event::Evaluation { .. } => "Evaluation",
            Event::LowerLevelSolve { .. } => "LowerLevelSolve",
            Event::CacheProbe { .. } => "CacheProbe",
            Event::CompileCacheProbe { .. } => "CompileCacheProbe",
            Event::DecodeCacheProbe { .. } => "DecodeCacheProbe",
            Event::SurrogateProbe { .. } => "SurrogateProbe",
            Event::ObjectivePair { .. } => "ObjectivePair",
            Event::ArchiveUpdate { .. } => "ArchiveUpdate",
            Event::GenerationEnd { .. } => "GenerationEnd",
            Event::RunComplete { .. } => "RunComplete",
        }
    }

    /// Append the event's payload as JSON key/value pairs (no braces,
    /// leading comma included when there is at least one field).
    pub(crate) fn write_json_fields(&self, out: &mut String) {
        match *self {
            Event::RunStart { algo, seed } => {
                json::push_str_field(out, "algo", algo);
                json::push_u64_field(out, "seed", seed);
            }
            Event::PhaseChange { phase } => {
                json::push_str_field(out, "phase", phase);
            }
            Event::GenerationStart { generation } => {
                json::push_u64_field(out, "generation", generation);
            }
            Event::Evaluation { level, count, gp_nodes, micros } => {
                json::push_str_field(out, "level", level.as_str());
                json::push_u64_field(out, "count", count);
                json::push_u64_field(out, "gp_nodes", gp_nodes);
                json::push_u64_field(out, "micros", micros);
            }
            Event::LowerLevelSolve { solves, pivots, micros } => {
                json::push_u64_field(out, "solves", solves);
                json::push_u64_field(out, "pivots", pivots);
                json::push_u64_field(out, "micros", micros);
            }
            Event::CacheProbe { hits, misses, evictions, entries }
            | Event::DecodeCacheProbe { hits, misses, evictions, entries } => {
                json::push_u64_field(out, "hits", hits);
                json::push_u64_field(out, "misses", misses);
                json::push_u64_field(out, "evictions", evictions);
                json::push_u64_field(out, "entries", entries);
            }
            Event::CompileCacheProbe { hits, misses, evictions, entries, compile_micros } => {
                json::push_u64_field(out, "hits", hits);
                json::push_u64_field(out, "misses", misses);
                json::push_u64_field(out, "evictions", evictions);
                json::push_u64_field(out, "entries", entries);
                json::push_u64_field(out, "compile_micros", compile_micros);
            }
            Event::SurrogateProbe { cells, exact, skipped, rank_corr } => {
                json::push_u64_field(out, "cells", cells);
                json::push_u64_field(out, "exact", exact);
                json::push_u64_field(out, "skipped", skipped);
                json::push_f64_field(out, "rank_corr", rank_corr);
            }
            Event::ObjectivePair { level, ul_value, ll_value } => {
                json::push_str_field(out, "level", level.as_str());
                json::push_f64_field(out, "ul_value", ul_value);
                json::push_f64_field(out, "ll_value", ll_value);
            }
            Event::ArchiveUpdate { level, size, best } => {
                json::push_str_field(out, "level", level.as_str());
                json::push_u64_field(out, "size", size);
                json::push_f64_field(out, "best", best);
            }
            Event::GenerationEnd { generation, evaluations, ul_best, gap_best } => {
                json::push_u64_field(out, "generation", generation);
                json::push_u64_field(out, "evaluations", evaluations);
                json::push_f64_field(out, "ul_best", ul_best);
                json::push_f64_field(out, "gap_best", gap_best);
            }
            Event::RunComplete {
                generations,
                ul_evaluations,
                ll_evaluations,
                best_value,
                best_gap,
            } => {
                json::push_u64_field(out, "generations", generations);
                json::push_u64_field(out, "ul_evaluations", ul_evaluations);
                json::push_u64_field(out, "ll_evaluations", ll_evaluations);
                json::push_f64_field(out, "best_value", best_value);
                json::push_f64_field(out, "best_gap", best_gap);
            }
        }
    }

    /// Every variant, with placeholder payloads — used by tests that
    /// must cover the full schema.
    pub fn examples() -> Vec<Event<'static>> {
        vec![
            Event::RunStart { algo: "carbon", seed: 42 },
            Event::PhaseChange { phase: "relaxation" },
            Event::GenerationStart { generation: 0 },
            Event::Evaluation { level: Level::Lower, count: 100, gp_nodes: 4321, micros: 1850 },
            Event::LowerLevelSolve { solves: 100, pivots: 1707, micros: 920 },
            Event::CacheProbe { hits: 3, misses: 97, evictions: 0, entries: 97 },
            Event::CompileCacheProbe {
                hits: 95,
                misses: 5,
                evictions: 1,
                entries: 60,
                compile_micros: 310,
            },
            Event::DecodeCacheProbe { hits: 120, misses: 40, evictions: 2, entries: 150 },
            Event::SurrogateProbe { cells: 40, exact: 16, skipped: 24, rank_corr: 0.75 },
            Event::ObjectivePair { level: Level::Upper, ul_value: 1543.25, ll_value: 402.5 },
            Event::ArchiveUpdate { level: Level::Upper, size: 100, best: 1543.25 },
            Event::GenerationEnd {
                generation: 0,
                evaluations: 200,
                ul_best: 1543.25,
                gap_best: 3.4,
            },
            Event::RunComplete {
                generations: 1,
                ul_evaluations: 100,
                ll_evaluations: 100,
                best_value: 1543.25,
                best_gap: f64::NAN,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = Event::examples().iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            [
                "RunStart",
                "PhaseChange",
                "GenerationStart",
                "Evaluation",
                "LowerLevelSolve",
                "CacheProbe",
                "CompileCacheProbe",
                "DecodeCacheProbe",
                "SurrogateProbe",
                "ObjectivePair",
                "ArchiveUpdate",
                "GenerationEnd",
                "RunComplete",
            ]
        );
    }

    #[test]
    fn level_names() {
        assert_eq!(Level::Upper.as_str(), "upper");
        assert_eq!(Level::Lower.as_str(), "lower");
    }

    #[test]
    fn fields_serialize_to_valid_json_fragments() {
        for event in Event::examples() {
            let mut body = String::new();
            event.write_json_fields(&mut body);
            let line = format!("{{\"event\":\"{}\"{body}}}", event.name());
            let value = json::parse(&line).expect("fragment must parse");
            assert_eq!(value.get("event").and_then(|v| v.as_str()), Some(event.name()));
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut body = String::new();
        Event::RunComplete {
            generations: 0,
            ul_evaluations: 0,
            ll_evaluations: 0,
            best_value: f64::INFINITY,
            best_gap: f64::NAN,
        }
        .write_json_fields(&mut body);
        assert!(body.contains("\"best_value\":null"));
        assert!(body.contains("\"best_gap\":null"));
    }
}
