//! Facade smoke test: every crate is reachable through `bico::*` and the
//! cross-crate types compose (the exact imports the README advertises).

use bico::bcpop::{generate, GeneratorConfig};
use bico::cobra::{Codba, CodbaConfig};
use bico::core::{solve_kkt, trilevel_example, CarbonWeights};
use bico::ea::hypothesis::mann_whitney_u;
use bico::gp::{parse_sexpr, to_sexpr};
use bico::lp::{to_lp_format, LpProblem, Relation};
use bico::toll::problem::highway_example;

#[test]
fn every_subsystem_is_reachable_and_composes() {
    // lp
    let mut p = LpProblem::minimize(2);
    p.set_objective(&[1.0, 2.0]);
    p.add_constraint_dense(&[1.0, 1.0], Relation::Ge, 3.0);
    let sol = p.solve().unwrap();
    assert!(sol.is_optimal());
    assert!(to_lp_format(&p).contains("Minimize"));

    // gp
    let ps = bico::bcpop::bcpop_primitives();
    let e = parse_sexpr("(% c_j q_res)", &ps).unwrap();
    assert_eq!(to_sexpr(&e, &ps), "(% c_j q_res)");

    // ea
    let t = mann_whitney_u(&[1.0, 2.0, 3.0], &[7.0, 8.0, 9.0]).unwrap();
    assert!(t.p_two_sided < 0.2);

    // bcpop + core (linear variant keeps this test fast)
    let inst = generate(
        &GeneratorConfig { num_bundles: 25, num_services: 3, ..Default::default() },
        99,
    );
    let mut cfg = bico::core::CarbonConfig::quick();
    cfg.ul_pop_size = 8;
    cfg.ll_pop_size = 8;
    cfg.ul_evaluations = 80;
    cfg.ll_evaluations = 80;
    let r = CarbonWeights::new(&inst, cfg).run(1);
    assert!(r.best_gap.is_finite());

    // cobra (CODBA flavor)
    let r = Codba::new(
        &inst,
        CodbaConfig {
            ul_pop_size: 4,
            ul_evaluations: 8,
            sub_pop_size: 6,
            sub_max_gens: 4,
            ll_evaluations: 5_000,
            ..Default::default()
        },
    )
    .run(1);
    assert!(r.ul_evals_used <= 8);

    // kkt + multilevel
    let kkt = solve_kkt(&bico::core::program3()).unwrap();
    assert!((kkt.objective + 20.0).abs() < 1e-6);
    let tri = trilevel_example().solve(400).unwrap();
    assert!((tri.z - 10.0 / 3.0).abs() < 0.05);

    // toll
    let toll = highway_example();
    assert_eq!(toll.revenue(&[4.0]).unwrap(), 4.0);
}
