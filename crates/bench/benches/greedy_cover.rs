//! Greedy covering pass latency — one lower-level evaluation
//! (per heuristic, per training pricing) in CARBON — comparing the
//! original formulation (tree-walking interpreter, per-step feature
//! recomputation) against the fast path (bytecode program, incremental
//! residual features, batched candidate scoring).

use bico_bcpop::{
    bcpop_primitives, generate, greedy_cover, greedy_cover_batched, CompiledGpScorer,
    CostPerCoverageScorer, GeneratorConfig, GpScorer, RelaxationSolver,
};
use bico_gp::grow;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

fn bench_greedy(c: &mut Criterion) {
    // Untimed accounting pass on a paper-class instance: the decode
    // speedup the ISSUE's acceptance bar quotes (interpreted + recompute
    // vs compiled + incremental), with outcomes checked bit-identical.
    {
        let inst = generate(&GeneratorConfig::paper_class(500, 30), 42);
        let costs = inst.costs_for(&vec![50.0; inst.num_own()]);
        let relax = RelaxationSolver::new(&inst).solve(&costs).unwrap();
        let ps = bcpop_primitives();
        // Depth window of a CARBON champion (max evolved depth is 8).
        let expr = grow(&ps, 5, 8, &mut SmallRng::seed_from_u64(7)).unwrap();
        let reps = 30u32;

        let t0 = Instant::now();
        let mut ref_cost = 0.0f64;
        for _ in 0..reps {
            let mut scorer = GpScorer::new(&expr, &ps);
            ref_cost = greedy_cover(&inst, &costs, &mut scorer, Some(&relax)).cost;
        }
        let interpreted = t0.elapsed();

        let t1 = Instant::now();
        let mut fast_cost = 0.0f64;
        for _ in 0..reps {
            let mut scorer = CompiledGpScorer::new(&expr, &ps).unwrap();
            fast_cost = greedy_cover_batched(&inst, &costs, &mut scorer, Some(&relax)).cost;
        }
        let compiled = t1.elapsed();

        assert_eq!(ref_cost.to_bits(), fast_cost.to_bits(), "fast path must be bit-identical");
        eprintln!(
            "greedy_decode 500x30 ({} nodes): interpreted+recompute {:.2?}/pass, \
             compiled+incremental {:.2?}/pass, speedup {:.2}x",
            expr.len(),
            interpreted / reps,
            compiled / reps,
            interpreted.as_secs_f64() / compiled.as_secs_f64().max(1e-12),
        );
    }

    let mut group = c.benchmark_group("greedy_cover");
    group.sample_size(20);
    for &(n, m) in &[(100usize, 5usize), (500, 30)] {
        let inst = generate(&GeneratorConfig::paper_class(n, m), 42);
        let costs = inst.costs_for(&vec![50.0; inst.num_own()]);
        let relax = RelaxationSolver::new(&inst).solve(&costs).unwrap();

        group.bench_function(format!("handcrafted_{n}x{m}"), |b| {
            b.iter(|| {
                black_box(
                    greedy_cover(&inst, &costs, &mut CostPerCoverageScorer, Some(&relax)).cost,
                )
            })
        });

        group.bench_function(format!("handcrafted_batched_{n}x{m}"), |b| {
            b.iter(|| {
                black_box(
                    greedy_cover_batched(
                        &inst,
                        &costs,
                        &mut CostPerCoverageScorer,
                        Some(&relax),
                    )
                    .cost,
                )
            })
        });

        let ps = bcpop_primitives();
        let expr = grow(&ps, 2, 5, &mut SmallRng::seed_from_u64(7)).unwrap();
        group.bench_function(format!("gp_interpreted_{n}x{m}"), |b| {
            b.iter(|| {
                let mut scorer = GpScorer::new(&expr, &ps);
                black_box(greedy_cover(&inst, &costs, &mut scorer, Some(&relax)).cost)
            })
        });

        group.bench_function(format!("gp_compiled_{n}x{m}"), |b| {
            b.iter(|| {
                let mut scorer = CompiledGpScorer::new(&expr, &ps).unwrap();
                black_box(greedy_cover_batched(&inst, &costs, &mut scorer, Some(&relax)).cost)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_greedy);
criterion_main!(benches);
