//! Flat prefix-order syntax trees and their stack evaluator.
//!
//! A tree is a `Vec<Node>` in prefix (depth-first, parent-before-children)
//! order. This layout makes subtree extraction a contiguous slice copy,
//! keeps evaluation allocation-free, and is friendly to the CPU cache —
//! the evaluator is the innermost loop of every lower-level fitness
//! evaluation in CARBON (one call per candidate bundle per greedy step).

use crate::primitives::{OpFn, PrimitiveSet};
use std::fmt;

/// Values whose magnitude exceeds this are clamped during evaluation so a
/// single overflow cannot poison downstream comparisons with infinities.
pub(crate) const CLAMP: f64 = 1e30;

/// One node of a syntax tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Node {
    /// Operator node: index into [`PrimitiveSet::ops`].
    Op(u16),
    /// Terminal node: index into the terminal-value slice.
    Term(u16),
    /// Ephemeral constant.
    Const(f64),
}

/// Structural errors reported by [`Expr::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The node buffer is empty.
    Empty,
    /// An operator id exceeds the primitive set.
    UnknownOp(u16),
    /// A terminal id exceeds the primitive set.
    UnknownTerminal(u16),
    /// The prefix sequence does not encode exactly one tree.
    Malformed,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Empty => write!(f, "empty expression"),
            TreeError::UnknownOp(id) => write!(f, "unknown operator id {id}"),
            TreeError::UnknownTerminal(id) => write!(f, "unknown terminal id {id}"),
            TreeError::Malformed => write!(f, "prefix sequence does not encode one tree"),
        }
    }
}

impl std::error::Error for TreeError {}

/// A syntax tree in flat prefix order.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    nodes: Vec<Node>,
}

impl Expr {
    /// Wrap a prefix-order node buffer. Use [`Expr::validate`] to check
    /// well-formedness against a primitive set.
    pub fn from_nodes(nodes: Vec<Node>) -> Self {
        Expr { nodes }
    }

    /// A single-terminal tree.
    pub fn terminal(id: u16) -> Self {
        Expr { nodes: vec![Node::Term(id)] }
    }

    /// A single-constant tree.
    pub fn constant(v: f64) -> Self {
        Expr { nodes: vec![Node::Const(v)] }
    }

    /// The underlying prefix-order nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the buffer is empty (an invalid tree).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Check structural well-formedness: ids in range and the prefix
    /// sequence encoding exactly one tree.
    pub fn validate(&self, ps: &PrimitiveSet) -> Result<(), TreeError> {
        if self.nodes.is_empty() {
            return Err(TreeError::Empty);
        }
        // `needed` counts how many subtrees remain to be read.
        let mut needed: usize = 1;
        for node in &self.nodes {
            if needed == 0 {
                return Err(TreeError::Malformed); // trailing nodes
            }
            match *node {
                Node::Op(id) => {
                    if id as usize >= ps.num_ops() {
                        return Err(TreeError::UnknownOp(id));
                    }
                    needed = needed - 1 + ps.arity(id as usize);
                }
                Node::Term(id) => {
                    if id as usize >= ps.num_terminals() {
                        return Err(TreeError::UnknownTerminal(id));
                    }
                    needed -= 1;
                }
                Node::Const(_) => needed -= 1,
            }
        }
        if needed == 0 {
            Ok(())
        } else {
            Err(TreeError::Malformed)
        }
    }

    /// Depth of the tree (a lone terminal has depth 0).
    pub fn depth(&self, ps: &PrimitiveSet) -> usize {
        let mut max_depth = 0usize;
        // Stack of remaining-children counts along the current path.
        let mut pending: Vec<usize> = Vec::with_capacity(16);
        for node in &self.nodes {
            let depth = pending.len();
            max_depth = max_depth.max(depth);
            let arity = match *node {
                Node::Op(id) => ps.arity(id as usize),
                _ => 0,
            };
            if arity > 0 {
                pending.push(arity);
            } else {
                // Leaf: unwind completed subtrees.
                while let Some(last) = pending.last_mut() {
                    *last -= 1;
                    if *last == 0 {
                        pending.pop();
                    } else {
                        break;
                    }
                }
            }
        }
        max_depth
    }

    /// Half-open index range `[start, end)` of the subtree rooted at
    /// `start`.
    pub fn subtree(&self, start: usize, ps: &PrimitiveSet) -> std::ops::Range<usize> {
        let mut needed: usize = 1;
        let mut i = start;
        while needed > 0 {
            match self.nodes[i] {
                Node::Op(id) => needed = needed - 1 + ps.arity(id as usize),
                _ => needed -= 1,
            }
            i += 1;
        }
        start..i
    }

    /// Replace the subtree rooted at `start` with `replacement`
    /// (a prefix-order node slice).
    pub fn replace_subtree(&mut self, start: usize, replacement: &[Node], ps: &PrimitiveSet) {
        let range = self.subtree(start, ps);
        self.nodes.splice(range, replacement.iter().copied());
    }
}

/// Reusable-stack evaluator. Keep one per thread / per worker and call
/// [`Evaluator::eval`] repeatedly; the value stack is reused across calls
/// so steady-state evaluation performs no allocation.
///
/// The evaluator also keeps a running count of nodes visited
/// ([`Evaluator::nodes_evaluated`]), the natural work unit for GP cost
/// accounting: tree size varies per individual, so "evaluations" alone
/// understates large trees.
#[derive(Debug, Default)]
pub struct Evaluator {
    stack: Vec<f64>,
    nodes: u64,
}

impl Evaluator {
    /// New evaluator with a small pre-allocated stack.
    pub fn new() -> Self {
        Evaluator { stack: Vec::with_capacity(64), nodes: 0 }
    }

    /// Total tree nodes visited by [`Evaluator::eval`] since creation (or
    /// the last [`Evaluator::reset_node_count`]).
    pub fn nodes_evaluated(&self) -> u64 {
        self.nodes
    }

    /// Reset the node counter to zero.
    pub fn reset_node_count(&mut self) {
        self.nodes = 0;
    }

    /// Evaluate `expr` against `terminal_values` (indexed by terminal id).
    ///
    /// Non-finite intermediate results are clamped (NaN → 0, ±∞ → ±1e30)
    /// so that score comparisons downstream stay total.
    ///
    /// The expression must be well-formed for `ps` (see
    /// [`Expr::validate`]); malformed input may panic in debug builds.
    pub fn eval(&mut self, expr: &Expr, ps: &PrimitiveSet, terminal_values: &[f64]) -> f64 {
        self.stack.clear();
        self.nodes += expr.nodes().len() as u64;
        // Scan prefix order from the right: operands are on the stack in
        // left-to-right order by the time their operator is visited.
        for node in expr.nodes().iter().rev() {
            let v = match *node {
                Node::Term(id) => terminal_values[id as usize],
                Node::Const(c) => c,
                Node::Op(id) => {
                    let out = match ps.ops()[id as usize].func {
                        OpFn::Unary(f) => {
                            let a = self.stack.pop().expect("malformed expr: missing operand");
                            f(a)
                        }
                        OpFn::Binary(f) => {
                            let a = self.stack.pop().expect("malformed expr: missing operand");
                            let b = self.stack.pop().expect("malformed expr: missing operand");
                            f(a, b)
                        }
                    };
                    out
                }
            };
            // `sanitize` is idempotent, so one clamp on push covers both
            // raw leaf loads and op outputs.
            self.stack.push(sanitize(v));
        }
        debug_assert_eq!(self.stack.len(), 1, "malformed expr: leftover operands");
        self.stack.pop().unwrap_or(0.0)
    }
}

#[inline]
#[allow(clippy::manual_clamp)] // `clamp`'s ordered comparisons branch
pub(crate) fn sanitize(v: f64) -> f64 {
    // `max`/`min` lower to single branchless instructions (unlike
    // `f64::clamp`, whose ordered comparisons branch), keeping the
    // batched evaluator's inner loops vectorizable. NaN propagates as
    // `max(NaN, x) = x`, so the explicit NaN select stays.
    let clamped = v.max(-CLAMP).min(CLAMP);
    if v.is_nan() {
        0.0
    } else {
        clamped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::PrimitiveSet;

    fn ps2() -> PrimitiveSet {
        let mut ps = PrimitiveSet::arithmetic();
        ps.add_terminal("a");
        ps.add_terminal("b");
        ps
    }

    #[test]
    fn eval_single_terminal() {
        let ps = ps2();
        let e = Expr::terminal(1);
        assert_eq!(Evaluator::new().eval(&e, &ps, &[3.0, 7.0]), 7.0);
    }

    #[test]
    fn eval_respects_operand_order() {
        let ps = ps2();
        // a - b, prefix: [-, a, b]
        let e = Expr::from_nodes(vec![Node::Op(1), Node::Term(0), Node::Term(1)]);
        assert_eq!(Evaluator::new().eval(&e, &ps, &[10.0, 4.0]), 6.0);
    }

    #[test]
    fn eval_nested() {
        let ps = ps2();
        // (a + b) * (a - b), prefix: [*, +, a, b, -, a, b]
        let e = Expr::from_nodes(vec![
            Node::Op(2),
            Node::Op(0),
            Node::Term(0),
            Node::Term(1),
            Node::Op(1),
            Node::Term(0),
            Node::Term(1),
        ]);
        assert_eq!(Evaluator::new().eval(&e, &ps, &[5.0, 3.0]), 16.0);
    }

    #[test]
    fn eval_clamps_overflow() {
        let ps = ps2();
        // a * a with a = 1e200 would overflow past the clamp.
        let e = Expr::from_nodes(vec![Node::Op(2), Node::Term(0), Node::Term(0)]);
        let v = Evaluator::new().eval(&e, &ps, &[1e200, 0.0]);
        assert!(v.is_finite());
        assert_eq!(v, CLAMP);
    }

    #[test]
    fn eval_unary_operator() {
        let mut ps = PrimitiveSet::arithmetic();
        let neg = ps.add_unary("neg", |a| -a) as u16;
        ps.add_terminal("a");
        let e = Expr::from_nodes(vec![Node::Op(neg), Node::Term(0)]);
        assert_eq!(Evaluator::new().eval(&e, &ps, &[4.0]), -4.0);
    }

    #[test]
    fn validate_accepts_wellformed() {
        let ps = ps2();
        let e = Expr::from_nodes(vec![Node::Op(0), Node::Term(0), Node::Const(1.5)]);
        assert!(e.validate(&ps).is_ok());
    }

    #[test]
    fn validate_rejects_empty() {
        let ps = ps2();
        assert_eq!(Expr::from_nodes(vec![]).validate(&ps), Err(TreeError::Empty));
    }

    #[test]
    fn validate_rejects_truncated() {
        let ps = ps2();
        let e = Expr::from_nodes(vec![Node::Op(0), Node::Term(0)]);
        assert_eq!(e.validate(&ps), Err(TreeError::Malformed));
    }

    #[test]
    fn validate_rejects_trailing() {
        let ps = ps2();
        let e = Expr::from_nodes(vec![Node::Term(0), Node::Term(1)]);
        assert_eq!(e.validate(&ps), Err(TreeError::Malformed));
    }

    #[test]
    fn validate_rejects_bad_ids() {
        let ps = ps2();
        assert_eq!(
            Expr::from_nodes(vec![Node::Term(9)]).validate(&ps),
            Err(TreeError::UnknownTerminal(9))
        );
        assert_eq!(
            Expr::from_nodes(vec![Node::Op(9), Node::Term(0), Node::Term(0)]).validate(&ps),
            Err(TreeError::UnknownOp(9))
        );
    }

    #[test]
    fn depth_of_leaf_is_zero() {
        let ps = ps2();
        assert_eq!(Expr::terminal(0).depth(&ps), 0);
    }

    #[test]
    fn depth_of_nested() {
        let ps = ps2();
        // (a + b) * a → depth 2
        let e = Expr::from_nodes(vec![
            Node::Op(2),
            Node::Op(0),
            Node::Term(0),
            Node::Term(1),
            Node::Term(0),
        ]);
        assert_eq!(e.depth(&ps), 2);
        // left-deep chain: ((a+b)+b)+b → depth 3
        let chain = Expr::from_nodes(vec![
            Node::Op(0),
            Node::Op(0),
            Node::Op(0),
            Node::Term(0),
            Node::Term(1),
            Node::Term(1),
            Node::Term(1),
        ]);
        assert_eq!(chain.depth(&ps), 3);
    }

    #[test]
    fn subtree_ranges() {
        let ps = ps2();
        // [*, +, a, b, a]
        let e = Expr::from_nodes(vec![
            Node::Op(2),
            Node::Op(0),
            Node::Term(0),
            Node::Term(1),
            Node::Term(0),
        ]);
        assert_eq!(e.subtree(0, &ps), 0..5);
        assert_eq!(e.subtree(1, &ps), 1..4);
        assert_eq!(e.subtree(2, &ps), 2..3);
        assert_eq!(e.subtree(4, &ps), 4..5);
    }

    #[test]
    fn replace_subtree_keeps_wellformed() {
        let ps = ps2();
        let mut e = Expr::from_nodes(vec![
            Node::Op(2),
            Node::Op(0),
            Node::Term(0),
            Node::Term(1),
            Node::Term(0),
        ]);
        e.replace_subtree(1, &[Node::Const(2.0)], &ps);
        assert_eq!(e.nodes(), &[Node::Op(2), Node::Const(2.0), Node::Term(0)]);
        assert!(e.validate(&ps).is_ok());
        assert_eq!(Evaluator::new().eval(&e, &ps, &[5.0, 0.0]), 10.0);
    }

    #[test]
    fn evaluator_counts_nodes() {
        let ps = ps2();
        let e = Expr::from_nodes(vec![Node::Op(0), Node::Term(0), Node::Term(1)]);
        let mut ev = Evaluator::new();
        assert_eq!(ev.nodes_evaluated(), 0);
        ev.eval(&e, &ps, &[1.0, 2.0]);
        ev.eval(&e, &ps, &[1.0, 2.0]);
        assert_eq!(ev.nodes_evaluated(), 6);
        ev.reset_node_count();
        assert_eq!(ev.nodes_evaluated(), 0);
    }

    #[test]
    fn sanitize_handles_nan_and_inf() {
        assert_eq!(sanitize(f64::NAN), 0.0);
        assert_eq!(sanitize(f64::INFINITY), CLAMP);
        assert_eq!(sanitize(f64::NEG_INFINITY), -CLAMP);
        assert_eq!(sanitize(1.5), 1.5);
    }

    /// Regression for the single-clamp rewrite: op outputs are sanitized
    /// exactly once, and NaN/±∞ leaves and intermediates behave as before.
    #[test]
    fn eval_pins_nan_and_inf_behavior() {
        let ps = ps2();
        let mut ev = Evaluator::new();

        // NaN terminal loads become 0 before any op sees them: NaN + b = 0 + b.
        let add = Expr::from_nodes(vec![Node::Op(0), Node::Term(0), Node::Term(1)]);
        assert_eq!(ev.eval(&add, &ps, &[f64::NAN, 3.5]), 3.5);

        // ±∞ terminal loads clamp to ±CLAMP before the op.
        assert_eq!(ev.eval(&add, &ps, &[f64::INFINITY, 0.0]), CLAMP);
        assert_eq!(ev.eval(&add, &ps, &[f64::NEG_INFINITY, 0.0]), -CLAMP);

        // An op output that overflows past the clamp is clamped once.
        let mul = Expr::from_nodes(vec![Node::Op(2), Node::Term(0), Node::Term(1)]);
        assert_eq!(ev.eval(&mul, &ps, &[1e200, 1e200]), CLAMP);
        assert_eq!(ev.eval(&mul, &ps, &[-1e200, 1e200]), -CLAMP);

        // ∞·0 would be NaN un-sanitized; the clamped load makes it exact 0.
        assert_eq!(ev.eval(&mul, &ps, &[f64::INFINITY, 0.0]), 0.0);

        // NaN constants are also neutralized on load.
        let cadd = Expr::from_nodes(vec![Node::Op(0), Node::Const(f64::NAN), Node::Term(1)]);
        assert_eq!(ev.eval(&cadd, &ps, &[0.0, 2.25]), 2.25);
    }
}
