//! CPLEX-LP-format export.
//!
//! Dumping a model to the ubiquitous `.lp` text format makes any
//! relaxation this workspace builds inspectable and cross-checkable with
//! an external solver — handy when debugging instances or validating the
//! simplex on someone else's data.

use crate::problem::{LpProblem, Relation, Sense};
use std::fmt::Write as _;

/// Render the problem in CPLEX LP format.
///
/// Variables are named `x0, x1, …`; rows `c0, c1, …`. Infinite bounds
/// are rendered per the format's conventions (`-inf`, omitted upper).
pub fn to_lp_format(p: &LpProblem) -> String {
    let mut out = String::new();
    match p.sense() {
        Sense::Min => out.push_str("Minimize\n obj:"),
        Sense::Max => out.push_str("Maximize\n obj:"),
    }
    write_linear(&mut out, p.objective().iter().enumerate().map(|(j, &c)| (j, c)));
    out.push_str("\nSubject To\n");
    for (i, row) in p.rows.iter().enumerate() {
        let _ = write!(out, " c{i}:");
        write_linear(&mut out, row.iter().copied());
        let rel = match p.relations[i] {
            Relation::Le => "<=",
            Relation::Ge => ">=",
            Relation::Eq => "=",
        };
        let _ = writeln!(out, " {rel} {}", fmt_num(p.rhs[i]));
    }
    out.push_str("Bounds\n");
    for j in 0..p.num_vars() {
        let (lo, hi) = p.bounds(j);
        match (lo.is_finite(), hi.is_finite()) {
            (true, true) if lo == hi => {
                let _ = writeln!(out, " x{j} = {}", fmt_num(lo));
            }
            (true, true) => {
                let _ = writeln!(out, " {} <= x{j} <= {}", fmt_num(lo), fmt_num(hi));
            }
            (true, false) => {
                if lo != 0.0 {
                    let _ = writeln!(out, " x{j} >= {}", fmt_num(lo));
                }
                // default bound 0 <= x < inf needs no line
            }
            (false, true) => {
                let _ = writeln!(out, " -inf <= x{j} <= {}", fmt_num(hi));
            }
            (false, false) => {
                let _ = writeln!(out, " x{j} free");
            }
        }
    }
    out.push_str("End\n");
    out
}

fn write_linear(out: &mut String, terms: impl Iterator<Item = (usize, f64)>) {
    let mut any = false;
    for (j, c) in terms {
        if c == 0.0 {
            continue;
        }
        any = true;
        if c < 0.0 {
            let _ = write!(out, " - {} x{j}", fmt_num(-c));
        } else {
            let _ = write!(out, " + {} x{j}", fmt_num(c));
        }
    }
    if !any {
        out.push_str(" 0 x0");
    }
}

fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LpProblem, Relation};

    #[test]
    fn renders_canonical_model() {
        let mut p = LpProblem::maximize(2);
        p.set_objective(&[3.0, 5.0]);
        p.set_bounds(0, 0.0, 4.0);
        p.add_constraint_dense(&[3.0, 2.0], Relation::Le, 18.0);
        p.add_constraint_dense(&[1.0, -1.0], Relation::Ge, -2.5);
        let text = to_lp_format(&p);
        assert!(text.starts_with("Maximize\n obj: + 3 x0 + 5 x1\n"));
        assert!(text.contains("c0: + 3 x0 + 2 x1 <= 18"));
        assert!(text.contains("c1: + 1 x0 - 1 x1 >= -2.5"));
        assert!(text.contains("0 <= x0 <= 4"));
        assert!(text.ends_with("End\n"));
    }

    #[test]
    fn equality_and_fixed_bounds() {
        let mut p = LpProblem::minimize(1);
        p.set_objective(&[1.0]);
        p.set_bounds(0, 2.0, 2.0);
        p.add_constraint_dense(&[1.0], Relation::Eq, 2.0);
        let text = to_lp_format(&p);
        assert!(text.contains("c0: + 1 x0 = 2"));
        assert!(text.contains("x0 = 2"));
    }

    #[test]
    fn default_bounds_are_omitted() {
        let p = LpProblem::minimize(2);
        let text = to_lp_format(&p);
        // Default [0, inf) variables need no Bounds lines.
        assert!(!text.contains("x0 >="));
        assert!(!text.contains("x0 <="));
    }

    #[test]
    fn negative_lower_bound_rendered() {
        let mut p = LpProblem::minimize(1);
        p.set_bounds(0, -3.5, f64::INFINITY);
        let text = to_lp_format(&p);
        assert!(text.contains("x0 >= -3.5"));
    }

    #[test]
    fn empty_objective_renders_placeholder() {
        let p = LpProblem::minimize(1);
        let text = to_lp_format(&p);
        assert!(text.contains("obj: 0 x0"));
    }
}
