//! Bi-level pairing: evaluate an upper-level pricing against a
//! lower-level reaction (Program 2's two objectives plus Eq. 1's gap).

use crate::instance::BcpopInstance;
use crate::relaxation::gap_percent;

/// Upper-level revenue `F = Σ_{j≤L} c_j x_j`: the CSP earns the price of
/// each of its own bundles the customer buys.
pub fn ul_revenue(inst: &BcpopInstance, prices: &[f64], chosen: &[bool]) -> f64 {
    debug_assert_eq!(prices.len(), inst.num_own());
    debug_assert_eq!(chosen.len(), inst.num_bundles());
    prices.iter().zip(chosen.iter()).filter(|(_, &sel)| sel).map(|(&p, _)| p).sum()
}

/// Lower-level total cost `f = Σ_j c_j x_j` over the whole market.
pub fn ll_cost(costs: &[f64], chosen: &[bool]) -> f64 {
    costs.iter().zip(chosen).filter(|(_, &sel)| sel).map(|(&c, _)| c).sum()
}

/// A fully scored bilevel pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BilevelEval {
    /// CSP revenue `F(x, y)`.
    pub ul_value: f64,
    /// Customer cost `f(x, y)` (`A(x)` of Eq. 1).
    pub ll_value: f64,
    /// `%-gap` of the lower-level reaction against `LB(x)`.
    pub gap: f64,
    /// Whether `y` covers every requirement.
    pub feasible: bool,
}

/// Evaluate the pair `(prices, chosen)` given the relaxation bound
/// `lower_bound = LB(x)`.
///
/// Infeasible reactions score `ul_value = 0` (no sale happens if the
/// customer's needs are not met) and an infinite gap, so they lose every
/// comparison.
pub fn evaluate_pair(
    inst: &BcpopInstance,
    prices: &[f64],
    chosen: &[bool],
    lower_bound: f64,
) -> BilevelEval {
    let feasible = inst.is_covering(chosen);
    let costs = inst.costs_for(prices);
    let ll_value = ll_cost(&costs, chosen);
    if !feasible {
        return BilevelEval { ul_value: 0.0, ll_value, gap: f64::INFINITY, feasible };
    }
    BilevelEval {
        ul_value: ul_revenue(inst, prices, chosen),
        ll_value,
        gap: gap_percent(ll_value, lower_bound),
        feasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::test_fixtures::tiny;

    #[test]
    fn revenue_counts_only_own_sold_bundles() {
        let inst = tiny();
        let prices = [2.0, 3.0];
        assert_eq!(ul_revenue(&inst, &prices, &[true, false, true, false]), 2.0);
        assert_eq!(ul_revenue(&inst, &prices, &[true, true, false, false]), 5.0);
        assert_eq!(ul_revenue(&inst, &prices, &[false, false, true, true]), 0.0);
    }

    #[test]
    fn ll_cost_spans_whole_market() {
        let inst = tiny();
        let costs = inst.costs_for(&[2.0, 3.0]);
        assert_eq!(ll_cost(&costs, &[true, false, false, true]), 5.0);
    }

    #[test]
    fn evaluate_feasible_pair() {
        let inst = tiny();
        let e = evaluate_pair(&inst, &[2.0, 3.0], &[true, true, false, false], 5.0);
        assert!(e.feasible);
        assert_eq!(e.ul_value, 5.0);
        assert_eq!(e.ll_value, 5.0);
        assert_eq!(e.gap, 0.0);
    }

    #[test]
    fn evaluate_infeasible_pair_is_worthless() {
        let inst = tiny();
        let e = evaluate_pair(&inst, &[2.0, 3.0], &[true, false, false, false], 2.0);
        assert!(!e.feasible);
        assert_eq!(e.ul_value, 0.0);
        assert!(e.gap.is_infinite());
    }

    #[test]
    fn gap_reflects_overpayment() {
        let inst = tiny();
        // Customer buys everything: cost 2+3+4+3 = 12 vs LB 5.
        let e = evaluate_pair(&inst, &[2.0, 3.0], &[true, true, true, true], 5.0);
        assert!(e.feasible);
        assert!((e.gap - 140.0).abs() < 1e-9);
    }
}
