//! The observer trait and composition helpers.

use crate::event::Event;
use std::sync::Arc;
use std::time::Instant;

/// Start a wall-clock timer iff observers want one. Pair with
/// [`elapsed_micros`] around instrumented batches so uninstrumented
/// runs (where `enabled` is a monomorphized `false`) skip the clock
/// reads entirely.
pub fn timer_if(enabled: bool) -> Option<Instant> {
    enabled.then(Instant::now)
}

/// Elapsed microseconds of a [`timer_if`] timer (0 when disabled).
pub fn elapsed_micros(t0: Option<Instant>) -> u64 {
    t0.map_or(0, |t| t.elapsed().as_micros() as u64)
}

/// A passive receiver of solver [`Event`]s.
///
/// Contract (relied on by the determinism tests): observers receive
/// events by shared reference, are called *outside* parallel sections,
/// and must not feed anything back into the solver — in particular they
/// cannot touch RNG state, so attaching any observer leaves the run
/// bit-identical.
///
/// `Sync` is a supertrait because solvers hold the observer across rayon
/// scopes even though they only call it from the coordinating thread.
pub trait RunObserver: Sync {
    /// Cheap pre-check: when `false`, the caller may skip building the
    /// event entirely. [`NullObserver`] returns `false`, which lets the
    /// instrumentation fold away in uninstrumented (monomorphized) runs.
    fn enabled(&self) -> bool {
        true
    }

    /// Receive one event.
    fn observe(&self, event: &Event<'_>);
}

/// The do-nothing observer; `Solver::run` delegates to `run_observed`
/// with this, making plain runs zero-cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl RunObserver for NullObserver {
    fn enabled(&self) -> bool {
        false
    }

    fn observe(&self, _event: &Event<'_>) {}
}

impl<O: RunObserver + ?Sized> RunObserver for &O {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn observe(&self, event: &Event<'_>) {
        (**self).observe(event)
    }
}

impl<O: RunObserver + ?Sized> RunObserver for Box<O> {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn observe(&self, event: &Event<'_>) {
        (**self).observe(event)
    }
}

impl<O: RunObserver + Send + ?Sized> RunObserver for Arc<O> {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn observe(&self, event: &Event<'_>) {
        (**self).observe(event)
    }
}

/// A stack of observers, fanned out in push order. Build one in a CLI,
/// push the sinks the flags ask for, and pass `&stack` to
/// `run_observed`.
#[derive(Default)]
pub struct Observers {
    stack: Vec<Box<dyn RunObserver>>,
}

impl Observers {
    /// Empty stack (disabled until something is pushed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an observer.
    pub fn push(&mut self, obs: Box<dyn RunObserver>) {
        self.stack.push(obs);
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, obs: Box<dyn RunObserver>) -> Self {
        self.push(obs);
        self
    }

    /// Number of stacked observers.
    pub fn len(&self) -> usize {
        self.stack.len()
    }

    /// True when no observer has been pushed.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }
}

impl RunObserver for Observers {
    fn enabled(&self) -> bool {
        self.stack.iter().any(|o| o.enabled())
    }

    fn observe(&self, event: &Event<'_>) {
        for obs in &self.stack {
            if obs.enabled() {
                obs.observe(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct Counter(AtomicU64);

    impl RunObserver for Counter {
        fn observe(&self, _event: &Event<'_>) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn null_observer_is_disabled() {
        assert!(!NullObserver.enabled());
        NullObserver.observe(&Event::GenerationStart { generation: 0 }); // no-op
    }

    #[test]
    fn stack_fans_out_to_enabled_members() {
        let counter = Arc::new(Counter::default());
        let stack =
            Observers::new().with(Box::new(NullObserver)).with(Box::new(counter.clone()));
        assert!(stack.enabled());
        assert_eq!(stack.len(), 2);
        stack.observe(&Event::GenerationStart { generation: 1 });
        stack.observe(&Event::GenerationStart { generation: 2 });
        assert_eq!(counter.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn empty_stack_is_disabled() {
        let stack = Observers::new();
        assert!(!stack.enabled());
        assert!(stack.is_empty());
    }

    #[test]
    fn reference_and_arc_forward() {
        let counter = Counter::default();
        let by_ref: &dyn RunObserver = &&counter;
        assert!(by_ref.enabled());
        by_ref.observe(&Event::GenerationStart { generation: 0 });
        assert_eq!(counter.0.load(Ordering::Relaxed), 1);
    }
}
