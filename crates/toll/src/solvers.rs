//! Leaders for the toll-setting problem: exhaustive grid (exact up to
//! resolution, for small toll counts) and a real-coded EA built from
//! `bico-ea` — a nested scheme that is perfectly adequate here because
//! the follower is polynomial (one Dijkstra per evaluation).

use crate::problem::TollProblem;
use bico_ea::{
    real::{polynomial_mutation, sbx_crossover, RealOpsConfig},
    rng::seed_stream,
    select::{tournament, Direction},
};
use bico_obs::{elapsed_micros, timer_if, Event, Level, NullObserver, RunObserver};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// A toll vector with its revenue.
#[derive(Debug, Clone, PartialEq)]
pub struct TollSolution {
    /// Toll per tollable arc.
    pub tolls: Vec<f64>,
    /// Leader revenue.
    pub revenue: f64,
}

/// Exhaustive grid search over the toll box, `steps + 1` points per
/// dimension. Exponential in `num_tolls`; guarded at 6 dimensions.
///
/// # Panics
/// Panics if the instance has more than 6 tollable arcs.
pub fn solve_grid(p: &TollProblem, steps: usize) -> Option<TollSolution> {
    p.validate();
    let k = p.num_tolls();
    assert!(k <= 6, "grid search limited to 6 toll arcs (got {k})");
    let mut best: Option<TollSolution> = None;
    let mut idx = vec![0usize; k];
    loop {
        let tolls: Vec<f64> =
            idx.iter().zip(&p.caps).map(|(&i, &cap)| cap * i as f64 / steps as f64).collect();
        if let Some(rev) = p.revenue(&tolls) {
            if best.as_ref().is_none_or(|b| rev > b.revenue) {
                best = Some(TollSolution { tolls, revenue: rev });
            }
        }
        // Odometer increment.
        let mut d = 0usize;
        loop {
            if d == k {
                return best;
            }
            idx[d] += 1;
            if idx[d] <= steps {
                break;
            }
            idx[d] = 0;
            d += 1;
        }
    }
}

/// EA leader configuration.
#[derive(Debug, Clone)]
pub struct TollEaConfig {
    /// Population size.
    pub pop_size: usize,
    /// Generations.
    pub generations: usize,
    /// SBX probability.
    pub crossover_prob: f64,
    /// Per-gene polynomial-mutation probability.
    pub mutation_prob: f64,
    /// Distribution indices.
    pub real_ops: RealOpsConfig,
}

impl Default for TollEaConfig {
    fn default() -> Self {
        TollEaConfig {
            pop_size: 40,
            generations: 60,
            crossover_prob: 0.85,
            mutation_prob: 0.15,
            real_ops: RealOpsConfig::default(),
        }
    }
}

/// Real-coded EA over the toll box. Deterministic per seed.
pub fn solve_ea(p: &TollProblem, cfg: &TollEaConfig, seed: u64) -> TollSolution {
    solve_ea_observed(p, cfg, seed, &NullObserver)
}

/// [`solve_ea`] with an observer attached. The toll problem has no
/// %-gap notion, so `gap_best` is reported as NaN; attaching any
/// observer leaves the result bit-identical.
pub fn solve_ea_observed<O: RunObserver + ?Sized>(
    p: &TollProblem,
    cfg: &TollEaConfig,
    seed: u64,
    obs: &O,
) -> TollSolution {
    p.validate();
    let k = p.num_tolls();
    let lo = vec![0.0; k];
    let hi = p.caps.clone();
    let mut rng = SmallRng::seed_from_u64(seed_stream(seed, 4));

    let mut pop: Vec<Vec<f64>> = (0..cfg.pop_size)
        .map(|_| (0..k).map(|j| rng.random_range(0.0..=hi[j])).collect())
        .collect();
    let mut best = TollSolution { tolls: vec![0.0; k], revenue: f64::NEG_INFINITY };

    if obs.enabled() {
        obs.observe(&Event::RunStart { algo: "toll-ea", seed });
        obs.observe(&Event::PhaseChange { phase: "search" });
    }
    for generation in 0..cfg.generations {
        if obs.enabled() {
            obs.observe(&Event::GenerationStart { generation: generation as u64 });
        }
        // Each follower solve (Dijkstra) is independent; the ordered
        // collect keeps the fitness vector — and hence every RNG-driven
        // selection below — bit-identical to the serial sweep.
        let t_fit = timer_if(obs.enabled());
        let fits: Vec<f64> =
            pop.par_iter().map(|t| p.revenue(t).unwrap_or(f64::NEG_INFINITY)).collect();
        for (t, &f) in pop.iter().zip(&fits) {
            if f > best.revenue {
                best = TollSolution { tolls: t.clone(), revenue: f };
            }
        }
        if obs.enabled() {
            obs.observe(&Event::Evaluation {
                level: Level::Upper,
                count: pop.len() as u64,
                gp_nodes: 0,
                micros: elapsed_micros(t_fit),
            });
            obs.observe(&Event::GenerationEnd {
                generation: generation as u64,
                evaluations: ((generation + 1) * cfg.pop_size) as u64,
                ul_best: best.revenue,
                gap_best: f64::NAN,
            });
        }
        let mut next = Vec::with_capacity(pop.len());
        next.push(best.tolls.clone()); // elitism
        while next.len() < pop.len() {
            let i = tournament(&fits, 2, Direction::Maximize, &mut rng);
            let j = tournament(&fits, 2, Direction::Maximize, &mut rng);
            let (mut c1, mut c2) = if rng.random::<f64>() < cfg.crossover_prob {
                sbx_crossover(&pop[i], &pop[j], &lo, &hi, &cfg.real_ops, &mut rng)
            } else {
                (pop[i].clone(), pop[j].clone())
            };
            polynomial_mutation(&mut c1, &lo, &hi, cfg.mutation_prob, &cfg.real_ops, &mut rng);
            polynomial_mutation(&mut c2, &lo, &hi, cfg.mutation_prob, &cfg.real_ops, &mut rng);
            next.push(c1);
            if next.len() < pop.len() {
                next.push(c2);
            }
        }
        pop = next;
    }
    if obs.enabled() {
        obs.observe(&Event::RunComplete {
            generations: cfg.generations as u64,
            ul_evaluations: (cfg.generations * cfg.pop_size) as u64,
            ll_evaluations: 0,
            best_value: best.revenue,
            best_gap: f64::NAN,
        });
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::problem::{highway_example, Commodity};

    #[test]
    fn grid_finds_the_indifference_toll() {
        let p = highway_example();
        let sol = solve_grid(&p, 1000).unwrap();
        assert!((sol.revenue - 4.0).abs() < 0.02, "revenue {}", sol.revenue);
        assert!((sol.tolls[0] - 4.0).abs() < 0.02);
    }

    #[test]
    fn ea_matches_grid_on_highway() {
        let p = highway_example();
        let grid = solve_grid(&p, 1000).unwrap();
        let ea = solve_ea(&p, &TollEaConfig::default(), 3);
        assert!(
            ea.revenue >= grid.revenue - 0.1,
            "EA {} far below grid {}",
            ea.revenue,
            grid.revenue
        );
    }

    #[test]
    fn ea_is_deterministic() {
        let p = highway_example();
        let a = solve_ea(&p, &TollEaConfig::default(), 9);
        let b = solve_ea(&p, &TollEaConfig::default(), 9);
        assert_eq!(a, b);
    }

    /// Two tolled arcs in series followed by a free alternative: the
    /// leader may split the margin across both tolls arbitrarily; total
    /// collected must equal the margin.
    fn two_toll_series() -> TollProblem {
        // 0 -> 1 -> 2 (both tolled, base 1 each); free path 0 -> 3 -> 2 cost 8.
        let arcs = vec![(0usize, 1usize), (1, 2), (0, 3), (3, 2)];
        TollProblem {
            graph: Graph::new(4, &arcs),
            base_costs: vec![1.0, 1.0, 4.0, 4.0],
            toll_arcs: vec![0, 1],
            caps: vec![10.0, 10.0],
            commodities: vec![Commodity { origin: 0, destination: 2, demand: 1.0 }],
        }
    }

    #[test]
    fn series_tolls_capture_the_full_margin() {
        let p = two_toll_series();
        // Margin = 8 - 2 = 6, split across two arcs.
        let grid = solve_grid(&p, 60).unwrap();
        assert!((grid.revenue - 6.0).abs() < 0.01, "revenue {}", grid.revenue);
        let ea = solve_ea(&p, &TollEaConfig::default(), 5);
        assert!(ea.revenue >= 5.8, "EA revenue {}", ea.revenue);
    }

    #[test]
    fn revenue_never_exceeds_margin_bound() {
        // Weak-duality-like sanity: revenue ≤ free-route cost − tolled
        // base cost for the single-commodity case.
        let p = two_toll_series();
        for t0 in [0.0, 2.0, 3.0, 6.0] {
            for t1 in [0.0, 2.0, 3.0, 6.0] {
                let rev = p.revenue(&[t0, t1]).unwrap();
                assert!(rev <= 6.0 + 1e-9, "revenue {rev} beats the margin");
            }
        }
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn grid_guard() {
        let arcs: Vec<(usize, usize)> = vec![(0, 1); 7];
        let p = TollProblem {
            graph: Graph::new(2, &arcs),
            base_costs: vec![1.0; 7],
            toll_arcs: (0..7).collect(),
            caps: vec![1.0; 7],
            commodities: vec![],
        };
        let _ = solve_grid(&p, 2);
    }
}
