//! A thread-safe, capacity-bounded memoization cache for lower-level
//! solves.
//!
//! Bi-level co-evolution re-evaluates the same upper-level decision many
//! times: elites are re-injected every generation, archives replay their
//! members against new opponents, and improvement phases sweep stored
//! pairs. The lower-level relaxation is a pure function of the pricing
//! vector, so those repeats can be served from a cache — and because the
//! key is the *exact bit pattern* of the pricing (`f64::to_bits`), a hit
//! returns the very value a fresh solve would have produced. Cached and
//! uncached runs are therefore bit-identical; `tests/determinism.rs`
//! asserts this differentially.
//!
//! The map is sharded (16 shards, each its own mutex) so rayon workers
//! probing concurrently rarely contend, and bounded by a per-shard FIFO
//! eviction queue so memory stays capped on long runs. Eviction order
//! does not affect results — evicting merely turns a future hit into a
//! recomputation of the identical value.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const NUM_SHARDS: usize = 16;

/// Monotonic counters describing cache traffic so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that had to compute (including every probe when disabled).
    pub misses: u64,
    /// Values actually stored (a concurrent duplicate insert counts once).
    pub insertions: u64,
    /// Values dropped to respect the capacity bound.
    pub evictions: u64,
    /// Entries resident right now.
    pub entries: usize,
}

#[derive(Debug)]
struct Shard<V> {
    map: HashMap<Box<[u64]>, V>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<Box<[u64]>>,
    capacity: usize,
}

/// A sharded, bounded, thread-safe memoization cache keyed by the bit
/// pattern of an `f64` slice. `capacity == 0` disables caching entirely:
/// every probe misses and nothing is stored.
///
/// All methods take `&self`; share one instance across rayon workers by
/// reference.
#[derive(Debug)]
pub struct SolveCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Clone> SolveCache<V> {
    /// Create a cache holding at most `capacity` entries in total
    /// (`0` = disabled).
    pub fn new(capacity: usize) -> Self {
        // Distribute the bound across shards so the global entry count
        // can never exceed `capacity` even under concurrent inserts.
        // Small capacities use fewer shards so no shard ends up with a
        // zero bound (which would silently drop every insert routed to it).
        let active = capacity.clamp(1, NUM_SHARDS);
        let shards = (0..active)
            .map(|i| {
                let cap = capacity / active + usize::from(i < capacity % active);
                Mutex::new(Shard { map: HashMap::new(), order: VecDeque::new(), capacity: cap })
            })
            .collect();
        SolveCache {
            shards,
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cache that never stores anything (capacity 0).
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// `true` iff the cache can store entries.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").map.len()).sum()
    }

    /// `true` iff no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The exact-bit-pattern key of a pricing vector.
    pub fn key_of(values: &[f64]) -> Box<[u64]> {
        values.iter().map(|v| v.to_bits()).collect()
    }

    /// Probe for `key`; counts a hit or a miss.
    pub fn get(&self, key: &[u64]) -> Option<V> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let shard = &self.shards[self.shard_of(key)];
        let guard = shard.lock().expect("cache shard poisoned");
        match guard.map.get(key) {
            Some(v) => {
                let v = v.clone();
                drop(guard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                drop(guard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store `value` under `key` unless already present (first writer
    /// wins; a concurrent duplicate insert is a no-op, so counters and
    /// the FIFO queue stay consistent). Evicts the oldest entry of the
    /// target shard when it is full. No-op when disabled.
    pub fn insert(&self, key: &[u64], value: V) {
        if self.capacity == 0 {
            return;
        }
        let shard = &self.shards[self.shard_of(key)];
        let mut guard = shard.lock().expect("cache shard poisoned");
        if guard.capacity == 0 || guard.map.contains_key(key) {
            return;
        }
        if guard.map.len() >= guard.capacity {
            if let Some(oldest) = guard.order.pop_front() {
                guard.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let boxed: Box<[u64]> = key.into();
        guard.order.push_back(boxed.clone());
        guard.map.insert(boxed, value);
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Memoize `compute` over the bit pattern of `values`. Returns the
    /// value and whether it was served from the cache (`true` = hit).
    ///
    /// Note the non-blocking miss path: two workers probing the same new
    /// key may both compute, and the second insert is dropped. That is
    /// deliberate — `compute` is pure, so both results are identical, and
    /// not holding the shard lock during `compute` keeps workers off each
    /// other's critical path.
    pub fn get_or_insert_with(&self, values: &[f64], compute: impl FnOnce() -> V) -> (V, bool) {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return (compute(), false);
        }
        self.get_or_insert_keyed(&Self::key_of(values), compute)
    }

    /// Memoize `compute` under a caller-supplied exact key — for values
    /// whose natural identity is not an `f64` slice, such as a GP tree's
    /// canonical structural encoding. Same traffic accounting and
    /// non-blocking miss path as [`get_or_insert_with`](Self::get_or_insert_with).
    pub fn get_or_insert_keyed(&self, key: &[u64], compute: impl FnOnce() -> V) -> (V, bool) {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return (compute(), false);
        }
        if let Some(v) = self.get(key) {
            return (v, true);
        }
        let v = compute();
        self.insert(key, v.clone());
        (v, false)
    }

    /// Snapshot the traffic counters. `hits + misses` equals the number
    /// of probes ([`get`](Self::get) calls plus disabled-path probes).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// FNV-1a over the key words, folded onto the active shard count.
    fn shard_of(&self, key: &[u64]) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in key {
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        (h % self.shards.len() as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_cache_never_stores() {
        let cache: SolveCache<u64> = SolveCache::disabled();
        assert!(!cache.is_enabled());
        let (v, hit) = cache.get_or_insert_with(&[1.0], || 7);
        assert_eq!((v, hit), (7, false));
        let (v, hit) = cache.get_or_insert_with(&[1.0], || 7);
        assert_eq!((v, hit), (7, false));
        let s = cache.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 2);
        assert_eq!(s.insertions, 0);
        assert_eq!(s.entries, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn second_probe_hits() {
        let cache: SolveCache<u64> = SolveCache::new(8);
        assert!(cache.is_enabled());
        assert_eq!(cache.capacity(), 8);
        let (_, hit) = cache.get_or_insert_with(&[1.5, -2.5], || 42);
        assert!(!hit);
        let (v, hit) = cache.get_or_insert_with(&[1.5, -2.5], || unreachable!());
        assert!(hit);
        assert_eq!(v, 42);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.entries), (1, 1, 1, 1));
    }

    #[test]
    fn keys_are_exact_bit_patterns() {
        // 0.0 and -0.0 compare equal as floats but have different bit
        // patterns: they must be distinct cache keys. (Capacity well
        // above the shard count so same-shard keys cannot evict each
        // other.)
        let cache: SolveCache<u64> = SolveCache::new(64);
        cache.get_or_insert_with(&[0.0], || 1);
        let (v, hit) = cache.get_or_insert_with(&[-0.0], || 2);
        assert!(!hit);
        assert_eq!(v, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        // A single-entry cache stresses eviction in whichever shard each
        // key lands: every insert after the first one in a shard evicts.
        let cache: SolveCache<u64> = SolveCache::new(1);
        for i in 0..100u64 {
            cache.get_or_insert_with(&[i as f64], || i);
            assert!(cache.len() <= 1, "capacity exceeded at step {i}");
        }
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.insertions - s.evictions, 1);
    }

    #[test]
    fn duplicate_insert_is_a_noop() {
        let cache: SolveCache<u64> = SolveCache::new(8);
        let key = SolveCache::<u64>::key_of(&[3.25]);
        cache.insert(&key, 1);
        cache.insert(&key, 2);
        assert_eq!(cache.get(&key), Some(1), "first writer wins");
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn keyed_api_memoizes_arbitrary_keys() {
        let cache: SolveCache<u64> = SolveCache::new(8);
        let (v, hit) = cache.get_or_insert_keyed(&[1, 2, 3], || 11);
        assert_eq!((v, hit), (11, false));
        let (v, hit) = cache.get_or_insert_keyed(&[1, 2, 3], || unreachable!());
        assert_eq!((v, hit), (11, true));
        // Distinct key lengths are distinct keys.
        let (v, hit) = cache.get_or_insert_keyed(&[1, 2], || 5);
        assert_eq!((v, hit), (5, false));
        let disabled: SolveCache<u64> = SolveCache::disabled();
        let (v, hit) = disabled.get_or_insert_keyed(&[9], || 3);
        assert_eq!((v, hit), (3, false));
        assert!(disabled.is_empty());
    }

    #[test]
    fn stats_probe_identity_holds() {
        let cache: SolveCache<u64> = SolveCache::new(4);
        for i in 0..20u64 {
            cache.get_or_insert_with(&[(i % 5) as f64], || i);
        }
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 20);
        assert!(s.entries <= 4);
    }
}
