#![warn(missing_docs)]

//! # bico — bi-level co-evolution in Rust
//!
//! Facade crate re-exporting the whole workspace. See the README for a
//! tour and `DESIGN.md` for the paper-to-module map.

pub mod trace_cmd;

pub use bico_bcpop as bcpop;
pub use bico_cobra as cobra;
pub use bico_core as core;
pub use bico_ea as ea;
pub use bico_gp as gp;
pub use bico_lp as lp;
pub use bico_obs as obs;
pub use bico_toll as toll;
