//! Determinism contract: the same seed yields bit-identical results
//! regardless of the rayon thread count (per-item seed streams, pure
//! fitness functions, order-preserving parallel collection), regardless
//! of attached observers, which receive events by shared reference and
//! never touch RNG state — and regardless of the lower-level solve
//! cache, which memoizes relaxations by exact pricing bits and so can
//! only ever return the value a fresh solve would have produced. The
//! same argument covers the GP compile cache: compilation is pure and
//! keyed by the tree's exact structural encoding, so a cached program
//! is byte-identical to a fresh compile — and the decode cache, which
//! memoizes full lower-level decode outcomes (cover, evaluation, and
//! GP-node charge) under the exact (scorer, pricing bits, mode) key,
//! so a recalled outcome is the one a fresh decode would produce.

use bico::bcpop::{generate, BcpopInstance, GeneratorConfig};
use bico::cobra::{Cobra, CobraConfig, NestedConfig, NestedSequential};
use bico::core::{Carbon, CarbonConfig, CarbonWeights, CoevStrategy};
use bico::obs::{JsonlSink, MetricsSink, Observers, PrometheusSink, TraceSink};
use std::sync::Arc;

/// A full sink stack (JSONL to the bit bucket, metrics, trace rebuild,
/// Prometheus) plus the handles needed to inspect it after the run.
/// The PrometheusSink rides along to prove the `--prom-out` path is as
/// results-neutral as every other observer.
fn full_stack() -> (Observers, Arc<MetricsSink>, Arc<TraceSink>) {
    let metrics = Arc::new(MetricsSink::new());
    let trace = Arc::new(TraceSink::new());
    let observers = Observers::new()
        .with(Box::new(JsonlSink::new(std::io::sink())))
        .with(Box::new(metrics.clone()))
        .with(Box::new(trace.clone()))
        .with(Box::new(PrometheusSink::new()));
    (observers, metrics, trace)
}

fn with_threads<T: Send>(n: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new().num_threads(n).build().expect("pool").install(f)
}

/// The differential-test fixtures: two instances of different shapes,
/// each exercised under three seeds.
fn diff_instances() -> Vec<BcpopInstance> {
    vec![
        generate(
            &GeneratorConfig { num_bundles: 40, num_services: 5, ..Default::default() },
            77,
        ),
        generate(
            &GeneratorConfig { num_bundles: 30, num_services: 4, ..Default::default() },
            5,
        ),
    ]
}

const DIFF_SEEDS: [u64; 3] = [9, 10, 11];

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn carbon_solve_cache_is_bit_identical() {
    for inst in &diff_instances() {
        for &seed in &DIFF_SEEDS {
            let mut cfg = CarbonConfig {
                ul_pop_size: 10,
                ll_pop_size: 10,
                ul_archive_size: 10,
                ll_archive_size: 10,
                ul_evaluations: 150,
                ll_evaluations: 150,
                ..Default::default()
            };
            let cold = Carbon::new(inst, cfg.clone()).run(seed);
            cfg.ll_cache_capacity = 4096;
            let cached = Carbon::new(inst, cfg).run(seed);
            let tag = format!("{}x{} seed {seed}", inst.num_bundles(), inst.num_services());
            assert_eq!(bits(&cold.best_pricing), bits(&cached.best_pricing), "pricing {tag}");
            assert_eq!(
                cold.best_ul_value.to_bits(),
                cached.best_ul_value.to_bits(),
                "best F {tag}"
            );
            assert_eq!(cold.best_gap.to_bits(), cached.best_gap.to_bits(), "best gap {tag}");
            assert_eq!(cold.best_heuristic, cached.best_heuristic, "champion {tag}");
            assert_eq!(cold.trace.points(), cached.trace.points(), "trace {tag}");
        }
    }
}

#[test]
fn carbon_gp_compile_cache_is_bit_identical() {
    for inst in &diff_instances() {
        for &seed in &DIFF_SEEDS {
            let mut cfg = CarbonConfig {
                ul_pop_size: 10,
                ll_pop_size: 10,
                ul_archive_size: 10,
                ll_archive_size: 10,
                ul_evaluations: 150,
                ll_evaluations: 150,
                ..Default::default()
            };
            assert!(cfg.gp_compile_cache_capacity > 0, "compile cache defaults on");
            let cached = Carbon::new(inst, cfg.clone()).run(seed);
            cfg.gp_compile_cache_capacity = 0;
            let cold = Carbon::new(inst, cfg).run(seed);
            let tag = format!("{}x{} seed {seed}", inst.num_bundles(), inst.num_services());
            assert_eq!(bits(&cold.best_pricing), bits(&cached.best_pricing), "pricing {tag}");
            assert_eq!(
                cold.best_ul_value.to_bits(),
                cached.best_ul_value.to_bits(),
                "best F {tag}"
            );
            assert_eq!(cold.best_gap.to_bits(), cached.best_gap.to_bits(), "best gap {tag}");
            assert_eq!(cold.best_heuristic, cached.best_heuristic, "champion {tag}");
            assert_eq!(cold.trace.points(), cached.trace.points(), "trace {tag}");
        }
    }
}

#[test]
fn cached_carbon_run_actually_hits_the_compile_cache() {
    // Elites and reproduction clones resurface identical trees, so a
    // real run must produce compile-cache hits — without this, the
    // differential test above could pass with a cache that never fires.
    let inst = &diff_instances()[0];
    let cfg = CarbonConfig {
        ul_pop_size: 10,
        ll_pop_size: 10,
        ul_archive_size: 10,
        ll_archive_size: 10,
        ul_evaluations: 150,
        ll_evaluations: 150,
        ..Default::default()
    };
    assert!(cfg.compiled_eval && cfg.gp_compile_cache_capacity > 0);
    let metrics = Arc::new(MetricsSink::new());
    let observers = Observers::new().with(Box::new(metrics.clone()));
    Carbon::new(inst, cfg).run_observed(9, &observers);
    let report = metrics.report();
    assert!(report.compile_cache_hits > 0, "repeated trees must hit the compile cache");
    assert!(report.compile_cache_misses > 0, "fresh trees must compile");
    assert!(
        report.compile_cache_hits + report.compile_cache_misses
            <= report.ll_evaluations + report.ul_evaluations,
        "at most one probe per scorer binding"
    );
}

#[test]
fn carbon_decode_cache_is_bit_identical() {
    // The deduplicated evaluation matrix against the legacy per-slot
    // loop, under three cache regimes: the default capacity (mostly
    // hits), capacity 1 (constant eviction churn — at most one resident
    // outcome, so nearly every probe recomputes), and capacity 0 (matrix
    // scheduling alone, no storage). None may move a single bit.
    for inst in &diff_instances() {
        for &seed in &DIFF_SEEDS {
            let base = CarbonConfig {
                ul_pop_size: 10,
                ll_pop_size: 10,
                ul_archive_size: 10,
                ll_archive_size: 10,
                ul_evaluations: 150,
                ll_evaluations: 150,
                ..Default::default()
            };
            assert!(base.eval_matrix && base.decode_cache_capacity > 0, "matrix defaults on");
            let mut legacy = base.clone();
            legacy.eval_matrix = false;
            let reference = Carbon::new(inst, legacy).run(seed);
            for capacity in [base.decode_cache_capacity, 1, 0] {
                let mut cfg = base.clone();
                cfg.decode_cache_capacity = capacity;
                let run = Carbon::new(inst, cfg).run(seed);
                let tag = format!(
                    "{}x{} seed {seed} capacity {capacity}",
                    inst.num_bundles(),
                    inst.num_services()
                );
                assert_eq!(
                    bits(&run.best_pricing),
                    bits(&reference.best_pricing),
                    "pricing {tag}"
                );
                assert_eq!(
                    run.best_ul_value.to_bits(),
                    reference.best_ul_value.to_bits(),
                    "best F {tag}"
                );
                assert_eq!(
                    run.best_gap.to_bits(),
                    reference.best_gap.to_bits(),
                    "best gap {tag}"
                );
                assert_eq!(run.best_heuristic, reference.best_heuristic, "champion {tag}");
                assert_eq!(run.trace.points(), reference.trace.points(), "trace {tag}");
            }
        }
    }
}

#[test]
fn carbon_competitive_strategies_are_bit_identical_across_cache_regimes() {
    // The competitive fitness-sharing and hall-of-fame strategies route
    // through the same deduplicated evaluation matrix and decode cache
    // as predator–prey scoring; like it, they must be bit-identical
    // across eval-matrix on/off and every decode-cache regime (default
    // capacity, churn capacity 1, storage off). The per-column value
    // collection both strategies consume is gathered in reference
    // order, so neither scheduling nor memoization may move a bit.
    for strategy in [CoevStrategy::SharedFitness, CoevStrategy::HallOfFame] {
        for inst in &diff_instances() {
            for &seed in &DIFF_SEEDS {
                let base = CarbonConfig {
                    ul_pop_size: 10,
                    ll_pop_size: 10,
                    ul_archive_size: 10,
                    ll_archive_size: 10,
                    ul_evaluations: 150,
                    ll_evaluations: 150,
                    coev_strategy: strategy,
                    ..Default::default()
                };
                let mut legacy = base.clone();
                legacy.eval_matrix = false;
                let reference = Carbon::new(inst, legacy).run(seed);
                for capacity in [base.decode_cache_capacity, 1, 0] {
                    let mut cfg = base.clone();
                    cfg.decode_cache_capacity = capacity;
                    let run = Carbon::new(inst, cfg).run(seed);
                    let tag = format!(
                        "{strategy:?} {}x{} seed {seed} capacity {capacity}",
                        inst.num_bundles(),
                        inst.num_services()
                    );
                    assert_eq!(
                        bits(&run.best_pricing),
                        bits(&reference.best_pricing),
                        "pricing {tag}"
                    );
                    assert_eq!(
                        run.best_ul_value.to_bits(),
                        reference.best_ul_value.to_bits(),
                        "best F {tag}"
                    );
                    assert_eq!(
                        run.best_gap.to_bits(),
                        reference.best_gap.to_bits(),
                        "best gap {tag}"
                    );
                    assert_eq!(run.best_heuristic, reference.best_heuristic, "champion {tag}");
                    assert_eq!(run.trace.points(), reference.trace.points(), "trace {tag}");
                }
            }
        }
    }
}

#[test]
fn carbon_weights_decode_cache_is_bit_identical() {
    // Same contract for the linear-scorer variant, whose matrix keys are
    // weight bit patterns instead of tree structure.
    for inst in &diff_instances() {
        for &seed in &DIFF_SEEDS {
            let base = CarbonConfig {
                ul_pop_size: 10,
                ll_pop_size: 10,
                ul_archive_size: 10,
                ll_archive_size: 10,
                ul_evaluations: 150,
                ll_evaluations: 150,
                ..Default::default()
            };
            let mut legacy = base.clone();
            legacy.eval_matrix = false;
            let reference = CarbonWeights::new(inst, legacy).run(seed);
            for capacity in [base.decode_cache_capacity, 1] {
                let mut cfg = base.clone();
                cfg.decode_cache_capacity = capacity;
                let run = CarbonWeights::new(inst, cfg).run(seed);
                let tag = format!(
                    "{}x{} seed {seed} capacity {capacity}",
                    inst.num_bundles(),
                    inst.num_services()
                );
                assert_eq!(
                    bits(&run.best_pricing),
                    bits(&reference.best_pricing),
                    "pricing {tag}"
                );
                assert_eq!(
                    run.best_ul_value.to_bits(),
                    reference.best_ul_value.to_bits(),
                    "best F {tag}"
                );
                assert_eq!(
                    run.best_gap.to_bits(),
                    reference.best_gap.to_bits(),
                    "best gap {tag}"
                );
                assert_eq!(
                    bits(&run.best_weights),
                    bits(&reference.best_weights),
                    "weights {tag}"
                );
                assert_eq!(run.trace.points(), reference.trace.points(), "trace {tag}");
            }
        }
    }
}

#[test]
fn cached_carbon_run_actually_hits_the_decode_cache() {
    // Elite pricings and re-injected trees resurface identical matrix
    // cells, so a real run must produce decode-cache hits — without
    // this, the differential tests above could pass with a cache that
    // never fires.
    let inst = &diff_instances()[0];
    let cfg = CarbonConfig {
        ul_pop_size: 10,
        ll_pop_size: 10,
        ul_archive_size: 10,
        ll_archive_size: 10,
        ul_evaluations: 150,
        ll_evaluations: 150,
        ..Default::default()
    };
    assert!(cfg.eval_matrix && cfg.decode_cache_capacity > 0);
    let metrics = Arc::new(MetricsSink::new());
    let observers = Observers::new().with(Box::new(metrics.clone()));
    Carbon::new(inst, cfg).run_observed(9, &observers);
    let report = metrics.report();
    assert!(report.decode_cache_hits > 0, "repeated cells must hit the decode cache");
    assert!(report.decode_cache_misses > 0, "fresh cells must decode");
    assert!(
        report.decode_cache_hits + report.decode_cache_misses
            <= report.ll_evaluations + report.ul_evaluations,
        "deduplication means at most one probe per logical evaluation"
    );
}

#[test]
fn cobra_solve_cache_is_bit_identical() {
    for inst in &diff_instances() {
        for &seed in &DIFF_SEEDS {
            let mut cfg = CobraConfig {
                ul_pop_size: 10,
                ll_pop_size: 10,
                ul_archive_size: 10,
                ll_archive_size: 10,
                ul_evaluations: 150,
                ll_evaluations: 150,
                improvement_gens: 2,
                ..Default::default()
            };
            let cold = Cobra::new(inst, cfg.clone()).run(seed);
            cfg.ll_cache_capacity = 4096;
            let cached = Cobra::new(inst, cfg).run(seed);
            let tag = format!("{}x{} seed {seed}", inst.num_bundles(), inst.num_services());
            assert_eq!(bits(&cold.best_pricing), bits(&cached.best_pricing), "pricing {tag}");
            assert_eq!(cold.best_reaction, cached.best_reaction, "reaction {tag}");
            assert_eq!(
                cold.best_ul_value.to_bits(),
                cached.best_ul_value.to_bits(),
                "best F {tag}"
            );
            assert_eq!(cold.best_gap.to_bits(), cached.best_gap.to_bits(), "best gap {tag}");
            assert_eq!(
                cold.best_ll_value.to_bits(),
                cached.best_ll_value.to_bits(),
                "best f {tag}"
            );
            assert_eq!(cold.trace.points(), cached.trace.points(), "trace {tag}");
        }
    }
}

#[test]
fn nested_solve_cache_is_bit_identical() {
    for inst in &diff_instances() {
        for &seed in &DIFF_SEEDS {
            let mut cfg = NestedConfig {
                ul_pop_size: 5,
                ul_evaluations: 15,
                ll_pop_size: 6,
                ll_gens_per_eval: 3,
                ll_evaluations: 10_000,
                ..Default::default()
            };
            let cold = NestedSequential::new(inst, cfg.clone()).run(seed);
            cfg.ll_cache_capacity = 1024;
            let cached = NestedSequential::new(inst, cfg).run(seed);
            let tag = format!("{}x{} seed {seed}", inst.num_bundles(), inst.num_services());
            assert_eq!(bits(&cold.best_pricing), bits(&cached.best_pricing), "pricing {tag}");
            assert_eq!(cold.best_reaction, cached.best_reaction, "reaction {tag}");
            assert_eq!(
                cold.best_ul_value.to_bits(),
                cached.best_ul_value.to_bits(),
                "best F {tag}"
            );
            assert_eq!(cold.best_gap.to_bits(), cached.best_gap.to_bits(), "best gap {tag}");
            assert_eq!(cold.trace.points(), cached.trace.points(), "trace {tag}");
        }
    }
}

#[test]
fn tiny_cache_under_eviction_churn_is_still_bit_identical() {
    // Capacity 2 on a population of 10: constant FIFO eviction. Eviction
    // order must not matter — an evicted entry is simply recomputed to
    // the identical value.
    let inst = &diff_instances()[1];
    let mut cfg = CarbonConfig {
        ul_pop_size: 10,
        ll_pop_size: 10,
        ul_archive_size: 10,
        ll_archive_size: 10,
        ul_evaluations: 150,
        ll_evaluations: 150,
        ..Default::default()
    };
    let cold = Carbon::new(inst, cfg.clone()).run(13);
    cfg.ll_cache_capacity = 2;
    let churned = Carbon::new(inst, cfg).run(13);
    assert_eq!(bits(&cold.best_pricing), bits(&churned.best_pricing));
    assert_eq!(cold.best_gap.to_bits(), churned.best_gap.to_bits());
    assert_eq!(cold.trace.points(), churned.trace.points());
}

#[test]
fn cached_carbon_run_actually_hits_the_cache() {
    // The differential tests above would pass vacuously if the cache
    // never hit; this pins the premise.
    let inst = &diff_instances()[0];
    let cfg = CarbonConfig {
        ul_pop_size: 10,
        ll_pop_size: 10,
        ul_archive_size: 10,
        ll_archive_size: 10,
        ul_evaluations: 150,
        ll_evaluations: 150,
        ll_cache_capacity: 4096,
        ..Default::default()
    };
    let metrics = Arc::new(MetricsSink::new());
    let observers = Observers::new().with(Box::new(metrics.clone()));
    Carbon::new(inst, cfg).run_observed(9, &observers);
    let report = metrics.report();
    assert!(report.cache_hits > 0, "elite re-injection must produce cache hits");
    assert_eq!(report.cache_hits + report.cache_misses, report.ll_solves);
}

#[test]
fn carbon_is_thread_count_invariant() {
    let inst = generate(
        &GeneratorConfig { num_bundles: 40, num_services: 5, ..Default::default() },
        77,
    );
    let cfg = CarbonConfig {
        ul_pop_size: 12,
        ll_pop_size: 12,
        ul_archive_size: 12,
        ll_archive_size: 12,
        ul_evaluations: 240,
        ll_evaluations: 240,
        ..Default::default()
    };
    let r1 = with_threads(1, || Carbon::new(&inst, cfg.clone()).run(9));
    let r4 = with_threads(4, || Carbon::new(&inst, cfg.clone()).run(9));
    assert_eq!(r1.best_pricing, r4.best_pricing);
    assert_eq!(r1.best_ul_value, r4.best_ul_value);
    assert_eq!(r1.best_gap, r4.best_gap);
    assert_eq!(r1.best_heuristic, r4.best_heuristic);
    assert_eq!(r1.trace.points(), r4.trace.points());
}

#[test]
fn cobra_is_thread_count_invariant() {
    let inst = generate(
        &GeneratorConfig { num_bundles: 40, num_services: 5, ..Default::default() },
        78,
    );
    let cfg = CobraConfig {
        ul_pop_size: 12,
        ll_pop_size: 12,
        ul_archive_size: 12,
        ll_archive_size: 12,
        ul_evaluations: 240,
        ll_evaluations: 240,
        improvement_gens: 3,
        ..Default::default()
    };
    let r1 = with_threads(1, || Cobra::new(&inst, cfg.clone()).run(9));
    let r4 = with_threads(4, || Cobra::new(&inst, cfg.clone()).run(9));
    assert_eq!(r1.best_pricing, r4.best_pricing);
    assert_eq!(r1.best_gap, r4.best_gap);
    assert_eq!(r1.trace.points(), r4.trace.points());
}

#[test]
fn carbon_observers_do_not_change_results() {
    let inst = generate(
        &GeneratorConfig { num_bundles: 40, num_services: 5, ..Default::default() },
        77,
    );
    let cfg = CarbonConfig {
        ul_pop_size: 12,
        ll_pop_size: 12,
        ul_archive_size: 12,
        ll_archive_size: 12,
        ul_evaluations: 240,
        ll_evaluations: 240,
        ..Default::default()
    };
    let plain = Carbon::new(&inst, cfg.clone()).run(9);
    let (observers, metrics, trace) = full_stack();
    let observed = Carbon::new(&inst, cfg).run_observed(9, &observers);
    assert_eq!(plain.best_pricing, observed.best_pricing);
    assert_eq!(plain.best_ul_value, observed.best_ul_value);
    assert_eq!(plain.best_gap, observed.best_gap);
    assert_eq!(plain.best_heuristic, observed.best_heuristic);
    assert_eq!(plain.trace.points(), observed.trace.points());
    // The trace rebuilt from GenerationEnd events matches the solver's.
    assert_eq!(trace.snapshot().points(), observed.trace.points());
    // Metrics actually saw the run.
    let report = metrics.report();
    assert_eq!(report.runs, 1);
    assert!(report.generations > 0);
    assert!(report.evaluations > 0);
    assert!(report.ll_solves > 0);
    assert!(report.simplex_pivots > 0);
    assert!(report.gp_node_evals > 0);
}

#[test]
fn cobra_observers_do_not_change_results() {
    let inst = generate(
        &GeneratorConfig { num_bundles: 40, num_services: 5, ..Default::default() },
        78,
    );
    let cfg = CobraConfig {
        ul_pop_size: 12,
        ll_pop_size: 12,
        ul_archive_size: 12,
        ll_archive_size: 12,
        ul_evaluations: 240,
        ll_evaluations: 240,
        improvement_gens: 3,
        ..Default::default()
    };
    let plain = Cobra::new(&inst, cfg.clone()).run(9);
    let (observers, metrics, trace) = full_stack();
    let observed = Cobra::new(&inst, cfg).run_observed(9, &observers);
    assert_eq!(plain.best_pricing, observed.best_pricing);
    assert_eq!(plain.best_ul_value, observed.best_ul_value);
    assert_eq!(plain.best_gap, observed.best_gap);
    assert_eq!(plain.trace.points(), observed.trace.points());
    assert_eq!(trace.snapshot().points(), observed.trace.points());
    let report = metrics.report();
    assert_eq!(report.runs, 1);
    assert!(report.generations > 0);
    assert!(report.evaluations > 0);
    assert!(report.ll_solves > 0);
    assert!(report.simplex_pivots > 0);
}
