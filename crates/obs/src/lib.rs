#![warn(missing_docs)]

//! # bico-obs — run observability for the bi-level co-evolution stack
//!
//! The paper's whole evaluation (Figs. 4–5, Tables III–IV) is about run
//! *trajectories*: gap-vs-generation curves, evaluation budgets, and
//! per-phase behavior. This crate makes those trajectories observable
//! without perturbing the algorithms that produce them.
//!
//! ## Architecture
//!
//! Solvers emit typed [`Event`]s through a [`RunObserver`]. Observers are
//! passive: they receive `&Event`, never touch RNG state, and run outside
//! the rayon parallel sections, so an instrumented run is bit-identical
//! to an uninstrumented one (asserted by `tests/determinism.rs` at the
//! workspace root).
//!
//! Four composable sinks are provided:
//!
//! * [`JsonlSink`] — one JSON object per event, machine-readable
//!   (`--trace-out run.jsonl`);
//! * [`ProgressSink`] — human-readable stderr lines, level-filtered via
//!   `BICO_LOG` / `--log-level`;
//! * [`MetricsSink`] — lock-free counters, wall-clock timers and
//!   latency [`Histogram`]s folded into a final [`RunMetrics`] report
//!   (`--metrics-out metrics.json`);
//! * [`PrometheusSink`] — the same [`RunMetrics`], rendered in the
//!   Prometheus text exposition format (`--prom-out metrics.prom`).
//!
//! On top of the JSONL stream, [`replay`] parses traces back into owned
//! events and [`analyze`] derives per-generation tables, run diffs and
//! co-evolutionary pathology verdicts (`bico trace`).
//!
//! Multiple sinks stack with [`Observers`]; the [`NullObserver`] is the
//! zero-cost default — `Solver::run` delegates to `run_observed` with a
//! `&NullObserver`, which monomorphizes every `obs.enabled()` guard to
//! `false` and lets the instrumentation fold away.
//!
//! The crate deliberately has **no dependencies**: [`json`] contains the
//! tiny writer/parser the sinks and tests need, and [`stats`]/[`trace`]
//! host the `Summary`/`Trace` types re-exported by `bico-ea` so the
//! whole workspace shares one source of truth for run statistics.

pub mod analyze;
pub mod event;
pub mod hist;
pub mod json;
pub mod observer;
pub mod replay;
pub mod sinks;
pub mod stats;
pub mod trace;

pub use analyze::{
    analyze, analyze_with, AnalyzeConfig, TraceAnalysis, DEFAULT_STAGNATION_WINDOW,
};
pub use event::{Event, Level};
pub use hist::Histogram;
pub use observer::{elapsed_micros, timer_if, NullObserver, Observers, RunObserver};
pub use sinks::jsonl::{JsonlSink, SharedBuffer};
pub use sinks::metrics::{MetricsSink, PhaseTiming, RunMetrics};
pub use sinks::progress::{LogLevel, ProgressSink};
pub use sinks::prometheus::PrometheusSink;
pub use stats::Summary;
pub use trace::{Trace, TracePoint, TraceSink};
