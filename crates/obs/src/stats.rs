//! Summary statistics.
//!
//! [`Summary`] is the workspace's shared accumulator (re-exported by
//! `bico-ea` as `stats::Summary`): Welford's online algorithm for the
//! moments, plus the raw samples for exact order statistics —
//! [`Summary::median`] and [`Summary::percentile`] feed the
//! [`MetricsSink`](crate::MetricsSink) latency report.

/// Online mean/variance/min/max accumulator (Welford) that also retains
/// the samples for order statistics.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    values: Vec<f64>,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            values: Vec::new(),
        }
    }

    /// Build a summary from a slice.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Accumulate one value (NaN values are ignored).
    pub fn push(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.n += 1;
        let delta = v - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.values.push(v);
    }

    /// Count of accumulated values.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (NaN when `count < 2`: with zero or one
    /// sample the `n − 1` denominator is undefined).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Minimum (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The `p`-th percentile, `p ∈ [0, 100]`, with linear interpolation
    /// between closest ranks (NaN when empty or `p` out of range).
    pub fn percentile(&self, p: f64) -> f64 {
        if self.values.is_empty() || !(0.0..=100.0).contains(&p) {
            return f64::NAN;
        }
        let mut sorted = self.values.clone();
        // NaN is never pushed, so a total order exists.
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN stored"));
        let rank = p / 100.0 * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            sorted[lo] + (rank - lo as f64) * (sorted[hi] - sorted[lo])
        }
    }

    /// The median (50th percentile; NaN when empty).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn std_dev_needs_two_samples() {
        assert!(Summary::new().std_dev().is_nan());
        assert!(Summary::of(&[3.0]).std_dev().is_nan());
        assert_eq!(Summary::of(&[3.0, 3.0]).std_dev(), 0.0);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(Summary::of(&[3.0, 1.0, 2.0]).median(), 2.0);
        assert_eq!(Summary::of(&[4.0, 1.0, 2.0, 3.0]).median(), 2.5);
        assert!(Summary::new().median().is_nan());
    }

    #[test]
    fn percentile_interpolates() {
        let s = Summary::of(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(100.0), 50.0);
        assert_eq!(s.percentile(50.0), 30.0);
        assert!((s.percentile(90.0) - 46.0).abs() < 1e-12);
        assert!((s.percentile(12.5) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_out_of_range_is_nan() {
        let s = Summary::of(&[1.0, 2.0]);
        assert!(s.percentile(-1.0).is_nan());
        assert!(s.percentile(100.1).is_nan());
    }

    #[test]
    fn nan_is_ignored_everywhere() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.median(), 2.0);
    }
}
