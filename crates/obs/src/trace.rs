//! Convergence traces.
//!
//! [`Trace`]/[`TracePoint`] are the Fig. 4/5 data series, re-exported by
//! `bico-ea` as `stats::{Trace, TracePoint}` so the solvers and the
//! bench report code share one definition. A [`TracePoint`] is exactly
//! the payload of an [`Event::GenerationEnd`], and [`TraceSink`] is the
//! adapter that rebuilds a `Trace` from an event stream.

use crate::event::Event;
use crate::observer::RunObserver;
use std::sync::Mutex;

/// One sampled point of a convergence trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Generation index.
    pub generation: usize,
    /// Cumulative fitness evaluations consumed when sampled.
    pub evaluations: u64,
    /// Best upper-level objective so far.
    pub ul_best: f64,
    /// Best lower-level %-gap so far.
    pub gap_best: f64,
}

impl TracePoint {
    /// Build a point from a [`Event::GenerationEnd`]; `None` for other
    /// variants.
    pub fn from_event(event: &Event<'_>) -> Option<TracePoint> {
        match *event {
            Event::GenerationEnd { generation, evaluations, ul_best, gap_best } => {
                Some(TracePoint {
                    generation: generation as usize,
                    evaluations,
                    ul_best,
                    gap_best,
                })
            }
            _ => None,
        }
    }

    /// The equivalent event (the inverse of [`TracePoint::from_event`]).
    pub fn to_event(self) -> Event<'static> {
        Event::GenerationEnd {
            generation: self.generation as u64,
            evaluations: self.evaluations,
            ul_best: self.ul_best,
            gap_best: self.gap_best,
        }
    }
}

/// A per-run convergence series.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    points: Vec<TracePoint>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample.
    pub fn record(&mut self, generation: usize, evaluations: u64, ul_best: f64, gap_best: f64) {
        self.points.push(TracePoint { generation, evaluations, ul_best, gap_best });
    }

    /// Append the sample carried by a [`Event::GenerationEnd`]; other
    /// events are ignored.
    pub fn record_event(&mut self, event: &Event<'_>) {
        if let Some(point) = TracePoint::from_event(event) {
            self.points.push(point);
        }
    }

    /// The recorded points, in order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Average several traces point-wise (series are truncated to the
    /// shortest — the paper averages aligned generations over 30 runs).
    pub fn average(traces: &[Trace]) -> Trace {
        let Some(min_len) = traces.iter().map(|t| t.points.len()).min() else {
            return Trace::new();
        };
        let mut out = Trace::new();
        for i in 0..min_len {
            let n = traces.len() as f64;
            let gen = traces[0].points[i].generation;
            let evals =
                (traces.iter().map(|t| t.points[i].evaluations).sum::<u64>() as f64 / n) as u64;
            let ul = traces.iter().map(|t| t.points[i].ul_best).sum::<f64>() / n;
            let gap = traces.iter().map(|t| t.points[i].gap_best).sum::<f64>() / n;
            out.record(gen, evals, ul, gap);
        }
        out
    }
}

/// An observer that rebuilds a [`Trace`] from the event stream — the
/// bridge between the event-based instrumentation and the trace-based
/// report code.
#[derive(Debug, Default)]
pub struct TraceSink {
    trace: Mutex<Trace>,
}

impl TraceSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clone out the trace collected so far.
    pub fn snapshot(&self) -> Trace {
        self.trace.lock().expect("trace mutex poisoned").clone()
    }

    /// Consume the sink, returning the collected trace.
    pub fn into_trace(self) -> Trace {
        self.trace.into_inner().expect("trace mutex poisoned")
    }
}

impl RunObserver for TraceSink {
    fn observe(&self, event: &Event<'_>) {
        if let Some(point) = TracePoint::from_event(event) {
            self.trace.lock().expect("trace mutex poisoned").points.push(point);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Level;

    #[test]
    fn trace_average_is_pointwise() {
        let mut t1 = Trace::new();
        t1.record(0, 100, 10.0, 5.0);
        t1.record(1, 200, 20.0, 3.0);
        let mut t2 = Trace::new();
        t2.record(0, 100, 30.0, 1.0);
        t2.record(1, 200, 40.0, 1.0);
        t2.record(2, 300, 50.0, 0.5); // extra point is truncated
        let avg = Trace::average(&[t1, t2]);
        assert_eq!(avg.points().len(), 2);
        assert_eq!(avg.points()[0].ul_best, 20.0);
        assert_eq!(avg.points()[1].gap_best, 2.0);
    }

    #[test]
    fn trace_average_of_empty_set() {
        let avg = Trace::average(&[]);
        assert!(avg.points().is_empty());
    }

    #[test]
    fn point_event_round_trip() {
        let p = TracePoint { generation: 3, evaluations: 480, ul_best: 9.5, gap_best: 1.25 };
        assert_eq!(TracePoint::from_event(&p.to_event()), Some(p));
        assert_eq!(TracePoint::from_event(&Event::PhaseChange { phase: "breeding" }), None);
    }

    #[test]
    fn sink_collects_generation_ends_only() {
        let sink = TraceSink::new();
        sink.observe(&Event::RunStart { algo: "carbon", seed: 1 });
        sink.observe(&Event::GenerationEnd {
            generation: 0,
            evaluations: 40,
            ul_best: 7.0,
            gap_best: 2.0,
        });
        sink.observe(&Event::Evaluation {
            level: Level::Upper,
            count: 20,
            gp_nodes: 0,
            micros: 0,
        });
        sink.observe(&Event::GenerationEnd {
            generation: 1,
            evaluations: 80,
            ul_best: 8.0,
            gap_best: 1.5,
        });
        let trace = sink.into_trace();
        assert_eq!(trace.points().len(), 2);
        assert_eq!(trace.points()[1].evaluations, 80);
        assert_eq!(trace.points()[1].gap_best, 1.5);
    }

    #[test]
    fn record_event_matches_record() {
        let mut a = Trace::new();
        a.record(0, 10, 1.0, 2.0);
        let mut b = Trace::new();
        b.record_event(&Event::GenerationEnd {
            generation: 0,
            evaluations: 10,
            ul_best: 1.0,
            gap_best: 2.0,
        });
        assert_eq!(a.points(), b.points());
    }
}
