//! Property tests for the BCPOP domain: generator invariants, greedy
//! feasibility and cost sandwiches, scoring totality, OR-library
//! round-trips.

use bico_bcpop::{
    bcpop_primitives, evaluate_pair, exact_ll_optimum, generate, greedy_cover,
    greedy_cover_batched, orlib::parse_mknap, CompiledGpScorer, CostPerCoverageScorer,
    CostScorer, GeneratorConfig, GpScorer, RelaxationSolver, Scorer,
};
use bico_gp::grow;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn small_config(
    bundles: usize,
    services: usize,
    tightness: f64,
    density: f64,
) -> GeneratorConfig {
    GeneratorConfig {
        num_bundles: bundles,
        num_services: services,
        tightness,
        density,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generator_always_produces_valid_instances(
        seed: u64,
        bundles in 5usize..80,
        services in 1usize..12,
        tightness in 0.05f64..0.95,
        density in 0.05f64..1.0,
    ) {
        let inst = generate(&small_config(bundles, services, tightness, density), seed);
        prop_assert!(inst.validate().is_ok());
        prop_assert_eq!(inst.num_bundles(), bundles);
        prop_assert_eq!(inst.num_services(), services);
        // Buying everything always covers.
        prop_assert!(inst.is_covering(&vec![true; bundles]));
        // No dead bundles.
        for j in 0..bundles {
            prop_assert!(inst.total_coverage(j) > 0);
        }
    }

    #[test]
    fn greedy_is_feasible_and_sandwiched(
        seed: u64,
        bundles in 8usize..60,
        services in 1usize..8,
        price_frac in 0.0f64..1.0,
    ) {
        let inst = generate(&small_config(bundles, services, 0.3, 0.6), seed);
        let prices = vec![inst.price_cap() * price_frac; inst.num_own()];
        let costs = inst.costs_for(&prices);
        let relax = RelaxationSolver::new(&inst).solve(&costs).unwrap();
        let out = greedy_cover(&inst, &costs, &mut CostPerCoverageScorer, Some(&relax));
        prop_assert!(out.feasible);
        prop_assert!(inst.is_covering(&out.chosen));
        // LP bound <= greedy cost (integral covering is a relaxation point).
        prop_assert!(out.cost >= relax.lower_bound - 1e-6,
            "greedy {} below LP {}", out.cost, relax.lower_bound);
        // Gap is nonnegative and finite.
        let ev = evaluate_pair(&inst, &prices, &out.chosen, relax.lower_bound);
        prop_assert!(ev.gap.is_finite());
        prop_assert!(ev.gap >= -1e-9);
        // Revenue never exceeds the sum of own prices.
        prop_assert!(ev.ul_value <= prices.iter().sum::<f64>() + 1e-9);
    }

    #[test]
    fn gp_scored_greedy_never_beats_exact(
        seed: u64,
        expr_seed: u64,
        bundles in 6usize..16,
        services in 1usize..5,
    ) {
        let inst = generate(&small_config(bundles, services, 0.35, 0.7), seed);
        let prices = vec![inst.price_cap() * 0.4; inst.num_own()];
        let costs = inst.costs_for(&prices);
        let relax = RelaxationSolver::new(&inst).solve(&costs).unwrap();
        let ps = bcpop_primitives();
        let expr = grow(&ps, 0, 4, &mut SmallRng::seed_from_u64(expr_seed)).unwrap();
        let mut scorer = GpScorer::new(&expr, &ps);
        let out = greedy_cover(&inst, &costs, &mut scorer, Some(&relax));
        prop_assert!(out.feasible, "greedy must cover on validated instances");
        let (opt, _) = exact_ll_optimum(&inst, &costs).unwrap();
        prop_assert!(out.cost >= opt - 1e-6,
            "random-heuristic greedy {} beat the exact optimum {}", out.cost, opt);
        prop_assert!(opt >= relax.lower_bound - 1e-6);
    }

    #[test]
    fn redundancy_elimination_never_hurts(
        seed: u64,
        bundles in 8usize..40,
        services in 1usize..6,
    ) {
        // The cheapest-first scorer over-buys; the final cost must still
        // be a covering and cannot exceed the sum of selected costs
        // before elimination (elimination only removes).
        let inst = generate(&small_config(bundles, services, 0.4, 0.6), seed);
        let prices = vec![inst.price_cap() * 0.2; inst.num_own()];
        let costs = inst.costs_for(&prices);
        let out = greedy_cover(&inst, &costs, &mut CostScorer, None);
        prop_assert!(out.feasible);
        prop_assert!(inst.is_covering(&out.chosen));
        // steps counts greedy purchases; after elimination the basket can
        // only be smaller or equal.
        let kept = out.chosen.iter().filter(|&&b| b).count();
        prop_assert!(kept <= out.steps);
    }

    #[test]
    fn scorer_features_are_finite(
        seed: u64,
        bundles in 5usize..30,
        services in 1usize..6,
    ) {
        use bico_bcpop::scoring::bundle_features;
        let inst = generate(&small_config(bundles, services, 0.3, 0.5), seed);
        let costs = inst.costs_for(&vec![10.0; inst.num_own()]);
        let relax = RelaxationSolver::new(&inst).solve(&costs).unwrap();
        let residual: Vec<i64> = inst.requirements().iter().map(|&v| v as i64).collect();
        for j in 0..bundles {
            let f = bundle_features(&inst, &costs, &residual, Some(&relax), j);
            for v in f.as_array() {
                prop_assert!(v.is_finite(), "feature not finite: {v}");
            }
            prop_assert!(f.residual_coverage <= f.total_coverage + 1e-9);
        }
    }

    #[test]
    fn orlib_roundtrip(
        n in 1usize..8,
        m in 1usize..5,
        profits in proptest::collection::vec(0u16..5000, 8),
        weights in proptest::collection::vec(0u16..100, 40),
        caps in proptest::collection::vec(1u16..5000, 5),
    ) {
        // Serialize a synthetic MKP in the mknap format and re-parse.
        let mut text = String::from("1\n");
        text.push_str(&format!("{n} {m} 0\n"));
        for j in 0..n {
            text.push_str(&format!("{} ", profits[j]));
        }
        text.push('\n');
        for i in 0..m {
            for j in 0..n {
                text.push_str(&format!("{} ", weights[(i * n + j) % weights.len()]));
            }
            text.push('\n');
        }
        for i in 0..m {
            text.push_str(&format!("{} ", caps[i]));
        }
        let parsed = parse_mknap(&text).unwrap();
        prop_assert_eq!(parsed.len(), 1);
        let p = &parsed[0];
        prop_assert_eq!(p.n, n);
        prop_assert_eq!(p.m, m);
        for j in 0..n {
            prop_assert_eq!(p.profits[j], profits[j] as f64);
        }
        // Conversion produces a valid covering instance whenever every
        // row has some weight.
        let has_empty_row = (0..m).any(|i| {
            (0..n).all(|j| weights[(i * n + j) % weights.len()] == 0)
        });
        if !has_empty_row {
            let inst = parsed[0].clone().into_covering(0.5);
            prop_assert!(inst.is_ok(), "conversion failed: {:?}", inst.err());
        }
    }

    #[test]
    fn infeasible_reactions_always_lose(
        seed: u64,
        bundles in 6usize..25,
        services in 1usize..5,
    ) {
        let inst = generate(&small_config(bundles, services, 0.5, 0.6), seed);
        let prices = vec![1.0; inst.num_own()];
        let empty = vec![false; bundles];
        let ev = evaluate_pair(&inst, &prices, &empty, 10.0);
        prop_assert!(!ev.feasible);
        prop_assert_eq!(ev.ul_value, 0.0);
        prop_assert!(ev.gap.is_infinite());
    }

    #[test]
    fn batched_greedy_is_bit_identical_to_scalar(
        seed: u64,
        gp_seed: u64,
        bundles in 8usize..60,
        services in 1usize..8,
        price_frac in 0.0f64..1.0,
    ) {
        // The chunked residual-coverage kernels behind
        // greedy_cover_batched are in-order and exact-integer, so the
        // batched decode must reproduce the scalar one bit for bit —
        // chosen set, cost bits, and step count — under a random GP
        // scoring heuristic, not just the hand-written scorers.
        let inst = generate(&small_config(bundles, services, 0.3, 0.6), seed);
        let prices = vec![inst.price_cap() * price_frac; inst.num_own()];
        let costs = inst.costs_for(&prices);
        let relax = RelaxationSolver::new(&inst).solve(&costs).unwrap();
        let ps = bcpop_primitives();
        let expr = grow(&ps, 0, 5, &mut SmallRng::seed_from_u64(gp_seed)).unwrap();
        let a = greedy_cover(&inst, &costs, &mut GpScorer::new(&expr, &ps), Some(&relax));
        let mut compiled = CompiledGpScorer::new(&expr, &ps).unwrap();
        let b = greedy_cover_batched(&inst, &costs, &mut compiled, Some(&relax));
        prop_assert_eq!(&a.chosen, &b.chosen);
        prop_assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.feasible, b.feasible);
    }
}

/// Deterministic twin of `batched_greedy_is_bit_identical_to_scalar`: a
/// fixed sweep of seeded instances × GP heuristics through the same
/// scalar-vs-batched comparison, exercised even where the proptest
/// runner is unavailable.
#[test]
fn batched_greedy_deterministic_twin() {
    let ps = bcpop_primitives();
    for seed in 0..24u64 {
        let bundles = 10 + (seed as usize * 7) % 45;
        let services = 1 + (seed as usize * 3) % 7;
        let inst = generate(&small_config(bundles, services, 0.3, 0.6), seed);
        let prices = vec![inst.price_cap() * ((seed % 10) as f64 / 10.0); inst.num_own()];
        let costs = inst.costs_for(&prices);
        let relax = RelaxationSolver::new(&inst).solve(&costs).unwrap();
        let expr = grow(&ps, 0, 5, &mut SmallRng::seed_from_u64(seed * 31 + 5)).unwrap();
        let a = greedy_cover(&inst, &costs, &mut GpScorer::new(&expr, &ps), Some(&relax));
        let mut compiled = CompiledGpScorer::new(&expr, &ps).unwrap();
        let b = greedy_cover_batched(&inst, &costs, &mut compiled, Some(&relax));
        assert_eq!(a.chosen, b.chosen, "seed {seed}: chosen sets diverged");
        assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "seed {seed}: cost bits diverged");
        assert_eq!(a.steps, b.steps, "seed {seed}");
        assert_eq!(a.feasible, b.feasible, "seed {seed}");
    }
}
