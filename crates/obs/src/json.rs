//! Minimal JSON writer and parser.
//!
//! The sinks only need to *emit* flat objects and the tests only need to
//! *check* them, so a ~150-line reader/writer keeps this crate (and the
//! solver hot paths behind it) dependency-free. The writer escapes
//! strings per RFC 8259 and maps non-finite floats to `null` so every
//! emitted line is strictly valid JSON.

use std::fmt::Write as _;

/// Append `s` as a JSON string literal (with quotes).
pub fn push_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` as a JSON number, or `null` when non-finite (JSON has no
/// NaN/Infinity).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
        // `Display` omits the decimal point for integral values; that is
        // still a valid JSON number.
    } else {
        out.push_str("null");
    }
}

/// Append `,"key":"value"` (both escaped).
pub fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push(',');
    push_string(out, key);
    out.push(':');
    push_string(out, value);
}

/// Append `,"key":value` for an unsigned integer.
pub fn push_u64_field(out: &mut String, key: &str, value: u64) {
    out.push(',');
    push_string(out, key);
    out.push(':');
    let _ = write!(out, "{value}");
}

/// Append `,"key":value` for a float (`null` when non-finite).
pub fn push_f64_field(out: &mut String, key: &str, value: f64) {
    out.push(',');
    push_string(out, key);
    out.push(':');
    push_f64(out, value);
}

/// A parsed JSON value (object keys keep insertion order).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Parse one JSON document. Trailing garbage is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogates are not expected in our own output;
                        // map them to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so boundaries
                // are valid).
                let rest = &b[*pos..];
                let s = unsafe { std::str::from_utf8_unchecked(rest) };
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_specials() {
        let mut out = String::new();
        push_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
        let parsed = parse(&out).unwrap();
        assert_eq!(parsed.as_str(), Some("a\"b\\c\nd\u{1}"));
    }

    #[test]
    fn writer_maps_non_finite_to_null() {
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        out.clear();
        push_f64(&mut out, f64::NEG_INFINITY);
        assert_eq!(out, "null");
        out.clear();
        push_f64(&mut out, 2.5);
        assert_eq!(out, "2.5");
    }

    #[test]
    fn parse_object_round_trip() {
        let v = parse(r#"{"a":1,"b":[true,null,"x"],"c":{"d":-2.5e1}}"#).unwrap();
        assert_eq!(v.get("a").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(v.get("c").and_then(|c| c.get("d")).and_then(|d| d.as_f64()), Some(-25.0));
        match v.get("b") {
            Some(Value::Array(items)) => {
                assert_eq!(items[0], Value::Bool(true));
                assert_eq!(items[1], Value::Null);
                assert_eq!(items[2].as_str(), Some("x"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parse_unicode_escape() {
        let v = parse(r#""éA""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{e9}A"));
        let v = parse("\"\\u00e9A\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{e9}A"));
    }

    #[test]
    fn float_display_round_trips() {
        for &x in &[0.1, 1.0 / 3.0, 1e-308, 123_456_789.123_456_79, -0.0] {
            let mut out = String::new();
            push_f64(&mut out, x);
            let back = parse(&out).unwrap().as_f64().unwrap();
            assert_eq!(back, x, "round-trip failed for {x}");
        }
    }
}
