//! Tree generation: `full`, `grow`, and ramped half-and-half — the
//! standard GP initialization trio (Koza). CARBON's lower-level
//! population is seeded with ramped half-and-half over Table I primitives.

use crate::primitives::PrimitiveSet;
use crate::tree::{Expr, Node};
use rand::Rng;
use std::fmt;

/// Errors from tree generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenError {
    /// The primitive set has no terminals and no constant range: leaves
    /// cannot be produced.
    NoLeaves,
    /// A positive depth was requested but the set has no operators.
    NoOperators,
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::NoLeaves => write!(f, "primitive set has no terminals or constants"),
            GenError::NoOperators => write!(f, "positive depth requested but no operators"),
        }
    }
}

impl std::error::Error for GenError {}

fn random_leaf<R: Rng + ?Sized>(ps: &PrimitiveSet, rng: &mut R) -> Node {
    let n_term = ps.num_terminals();
    match ps.const_range() {
        Some((lo, hi)) => {
            // Constants compete with named terminals as one extra "slot".
            if n_term == 0 || rng.random_range(0..=n_term) == n_term {
                Node::Const(rng.random_range(lo..=hi))
            } else {
                Node::Term(rng.random_range(0..n_term) as u16)
            }
        }
        None => Node::Term(rng.random_range(0..n_term) as u16),
    }
}

fn check(ps: &PrimitiveSet, max_depth: usize) -> Result<(), GenError> {
    if ps.num_terminals() == 0 && ps.const_range().is_none() {
        return Err(GenError::NoLeaves);
    }
    if max_depth > 0 && ps.num_ops() == 0 {
        return Err(GenError::NoOperators);
    }
    Ok(())
}

/// Generate a tree where every leaf sits at exactly `depth`.
pub fn full<R: Rng + ?Sized>(
    ps: &PrimitiveSet,
    depth: usize,
    rng: &mut R,
) -> Result<Expr, GenError> {
    check(ps, depth)?;
    let mut nodes = Vec::new();
    build_full(ps, depth, rng, &mut nodes);
    Ok(Expr::from_nodes(nodes))
}

fn build_full<R: Rng + ?Sized>(
    ps: &PrimitiveSet,
    depth: usize,
    rng: &mut R,
    out: &mut Vec<Node>,
) {
    if depth == 0 {
        out.push(random_leaf(ps, rng));
        return;
    }
    let op = rng.random_range(0..ps.num_ops());
    out.push(Node::Op(op as u16));
    for _ in 0..ps.arity(op) {
        build_full(ps, depth - 1, rng, out);
    }
}

/// Generate a tree whose depth lies in `[min_depth, max_depth]`, choosing
/// operators vs leaves probabilistically below `min_depth` (Koza's grow
/// method).
pub fn grow<R: Rng + ?Sized>(
    ps: &PrimitiveSet,
    min_depth: usize,
    max_depth: usize,
    rng: &mut R,
) -> Result<Expr, GenError> {
    assert!(min_depth <= max_depth, "min_depth must be <= max_depth");
    check(ps, min_depth)?;
    let mut nodes = Vec::new();
    build_grow(ps, min_depth, max_depth, 0, rng, &mut nodes);
    Ok(Expr::from_nodes(nodes))
}

fn build_grow<R: Rng + ?Sized>(
    ps: &PrimitiveSet,
    min_depth: usize,
    max_depth: usize,
    depth: usize,
    rng: &mut R,
    out: &mut Vec<Node>,
) {
    let must_leaf = depth >= max_depth || ps.num_ops() == 0;
    let must_op = depth < min_depth;
    let leaf = if must_leaf {
        true
    } else if must_op {
        false
    } else {
        // Probability proportional to the leaf share of the primitive set.
        let n_leaves = ps.num_terminals() + usize::from(ps.const_range().is_some());
        let total = n_leaves + ps.num_ops();
        rng.random_range(0..total) < n_leaves
    };
    if leaf {
        out.push(random_leaf(ps, rng));
    } else {
        let op = rng.random_range(0..ps.num_ops());
        out.push(Node::Op(op as u16));
        for _ in 0..ps.arity(op) {
            build_grow(ps, min_depth, max_depth, depth + 1, rng, out);
        }
    }
}

/// Ramped half-and-half: alternate `full` and `grow` while ramping the
/// depth over `[min_depth, max_depth]` — the classic diverse initializer.
pub fn ramped_half_and_half<R: Rng + ?Sized>(
    ps: &PrimitiveSet,
    count: usize,
    min_depth: usize,
    max_depth: usize,
    rng: &mut R,
) -> Result<Vec<Expr>, GenError> {
    assert!(min_depth <= max_depth);
    check(ps, max_depth)?;
    let mut pop = Vec::with_capacity(count);
    let span = max_depth - min_depth + 1;
    for i in 0..count {
        let depth = min_depth + i % span;
        let e = if i % 2 == 0 {
            full(ps, depth, rng)?
        } else {
            grow(ps, min_depth.min(depth), depth, rng)?
        };
        pop.push(e);
    }
    Ok(pop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ps() -> PrimitiveSet {
        let mut ps = PrimitiveSet::arithmetic();
        ps.add_terminal("a");
        ps.add_terminal("b");
        ps.add_terminal("c");
        ps
    }

    #[test]
    fn full_trees_have_exact_depth() {
        let ps = ps();
        let mut rng = SmallRng::seed_from_u64(1);
        for depth in 0..6 {
            let e = full(&ps, depth, &mut rng).unwrap();
            e.validate(&ps).unwrap();
            assert_eq!(e.depth(&ps), depth, "full tree depth mismatch");
        }
    }

    #[test]
    fn grow_trees_respect_depth_window() {
        let ps = ps();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..200 {
            let e = grow(&ps, 1, 4, &mut rng).unwrap();
            e.validate(&ps).unwrap();
            let d = e.depth(&ps);
            assert!((1..=4).contains(&d), "grow depth {d} outside [1,4]");
        }
    }

    #[test]
    fn grow_zero_depth_is_leaf() {
        let ps = ps();
        let mut rng = SmallRng::seed_from_u64(3);
        let e = grow(&ps, 0, 0, &mut rng).unwrap();
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn ramped_population_is_valid_and_diverse() {
        let ps = ps();
        let mut rng = SmallRng::seed_from_u64(4);
        let pop = ramped_half_and_half(&ps, 64, 1, 4, &mut rng).unwrap();
        assert_eq!(pop.len(), 64);
        let mut depths = std::collections::HashSet::new();
        for e in &pop {
            e.validate(&ps).unwrap();
            let d = e.depth(&ps);
            assert!(d <= 4);
            depths.insert(d);
        }
        assert!(depths.len() >= 3, "expected ramped depths, got {depths:?}");
    }

    #[test]
    fn constants_appear_when_range_set() {
        let mut ps = ps();
        ps.set_const_range(-1.0, 1.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let pop = ramped_half_and_half(&ps, 200, 1, 3, &mut rng).unwrap();
        let has_const =
            pop.iter().any(|e| e.nodes().iter().any(|n| matches!(n, Node::Const(_))));
        assert!(has_const, "no ephemeral constants generated in 200 trees");
        for e in &pop {
            for n in e.nodes() {
                if let Node::Const(v) = n {
                    assert!((-1.0..=1.0).contains(v));
                }
            }
        }
    }

    #[test]
    fn errors_on_empty_primitive_set() {
        let empty = PrimitiveSet::new();
        let mut rng = SmallRng::seed_from_u64(6);
        assert_eq!(full(&empty, 0, &mut rng), Err(GenError::NoLeaves));
        let mut leaves_only = PrimitiveSet::new();
        leaves_only.add_terminal("t");
        assert_eq!(full(&leaves_only, 2, &mut rng), Err(GenError::NoOperators));
        assert!(full(&leaves_only, 0, &mut rng).is_ok());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let ps = ps();
        let a = ramped_half_and_half(&ps, 20, 1, 4, &mut SmallRng::seed_from_u64(7)).unwrap();
        let b = ramped_half_and_half(&ps, 20, 1, 4, &mut SmallRng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
    }
}
