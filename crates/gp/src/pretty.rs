//! Infix pretty-printing of syntax trees, so evolved heuristics can be
//! inspected, logged and pasted into papers.

use crate::primitives::{OpFn, PrimitiveSet};
use crate::tree::{Expr, Node};

/// Render `expr` as a parenthesized infix string, e.g.
/// `((c - (d_q % x_bar)) * resid)`.
pub fn to_infix(expr: &Expr, ps: &PrimitiveSet) -> String {
    let (s, consumed) = render(expr.nodes(), 0, ps);
    debug_assert_eq!(consumed, expr.len(), "malformed expression");
    s
}

fn render(nodes: &[Node], at: usize, ps: &PrimitiveSet) -> (String, usize) {
    match nodes[at] {
        Node::Term(id) => (ps.terminals()[id as usize].clone(), at + 1),
        Node::Const(v) => {
            // Trim trailing zeros but keep at least one decimal for clarity.
            if v == v.trunc() && v.abs() < 1e15 {
                (format!("{v:.1}"), at + 1)
            } else {
                (format!("{v}"), at + 1)
            }
        }
        Node::Op(id) => {
            let op = &ps.ops()[id as usize];
            match op.func {
                OpFn::Unary(_) => {
                    let (arg, next) = render(nodes, at + 1, ps);
                    (format!("{}({arg})", op.name), next)
                }
                OpFn::Binary(_) => {
                    let (lhs, mid) = render(nodes, at + 1, ps);
                    let (rhs, next) = render(nodes, mid, ps);
                    (format!("({lhs} {} {rhs})", op.name), next)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps() -> PrimitiveSet {
        let mut ps = PrimitiveSet::arithmetic();
        ps.add_terminal("c");
        ps.add_terminal("q");
        ps
    }

    #[test]
    fn terminal_renders_name() {
        assert_eq!(to_infix(&Expr::terminal(1), &ps()), "q");
    }

    #[test]
    fn constant_renders_compactly() {
        assert_eq!(to_infix(&Expr::constant(2.0), &ps()), "2.0");
        assert_eq!(to_infix(&Expr::constant(0.25), &ps()), "0.25");
    }

    #[test]
    fn nested_infix() {
        // (c + q) * c
        let e = Expr::from_nodes(vec![
            Node::Op(2),
            Node::Op(0),
            Node::Term(0),
            Node::Term(1),
            Node::Term(0),
        ]);
        assert_eq!(to_infix(&e, &ps()), "((c + q) * c)");
    }

    #[test]
    fn unary_renders_as_call() {
        let mut ps = ps();
        let neg = ps.add_unary("neg", |a| -a) as u16;
        let e = Expr::from_nodes(vec![Node::Op(neg), Node::Term(0)]);
        assert_eq!(to_infix(&e, &ps), "neg(c)");
    }
}
