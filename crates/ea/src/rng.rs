//! Deterministic seed streams.
//!
//! Every stochastic component in the workspace receives an explicit seed.
//! Parallel loops (independent runs, per-individual evaluation) derive a
//! child seed per work item with [`seed_stream`], so results are
//! bit-identical regardless of the rayon thread count — the determinism
//! contract asserted by `tests/determinism.rs` at the workspace root.

/// splitmix64 finalizer — a high-quality 64-bit mixer.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed of sub-stream `stream` from a master seed.
///
/// Distinct `(master, stream)` pairs map to statistically independent
/// seeds; the same pair always maps to the same seed.
#[inline]
pub fn seed_stream(master: u64, stream: u64) -> u64 {
    splitmix64(master ^ splitmix64(stream.wrapping_add(0xA5A5_A5A5_A5A5_A5A5)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(seed_stream(42, 7), seed_stream(42, 7));
    }

    #[test]
    fn streams_differ() {
        let s: std::collections::HashSet<u64> = (0..1000).map(|i| seed_stream(42, i)).collect();
        assert_eq!(s.len(), 1000, "collisions in the first 1000 streams");
    }

    #[test]
    fn masters_differ() {
        assert_ne!(seed_stream(1, 0), seed_stream(2, 0));
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let a = splitmix64(0x1234_5678);
        let b = splitmix64(0x1234_5679);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "poor avalanche: {flipped} bits");
    }
}
