//! Toll setting — the classic bi-level application the paper's related
//! work opens with, on a small road network.
//!
//! ```text
//! cargo run --release --example toll_setting
//! ```
//!
//! Shows the leader's revenue curve (the follower's indifference cliff),
//! then solves a two-toll network with both the exhaustive grid and the
//! EA leader. Contrast with the BCPOP: here the lower level is a
//! shortest-path problem, solved *exactly* per evaluation — the nested
//! scheme CARBON escapes is perfectly fine when the follower is
//! polynomial.

use bico::toll::{
    problem::highway_example, solve_ea, solve_grid, Commodity, Graph, TollEaConfig, TollProblem,
};

fn main() {
    // 1. The one-toll highway: revenue climbs linearly with the toll
    // until the follower defects to the free back road.
    let p = highway_example();
    println!("highway example: tolled arc (cost 2) vs free path (cost 6)");
    println!("toll -> revenue:");
    for i in 0..=10 {
        let t = 6.0 * i as f64 / 10.0;
        println!("  toll {t:>4.1} -> revenue {:>4.1}", p.revenue(&[t]).unwrap());
    }
    let sol = solve_grid(&p, 600).unwrap();
    println!(
        "optimal toll: {:.2} (revenue {:.2}) — the follower's indifference margin 6-2=4\n",
        sol.tolls[0], sol.revenue
    );

    // 2. A two-toll corridor with two commodities.
    let arcs = vec![
        (0usize, 1usize), // tolled bridge A
        (1, 4),           // tolled bridge B
        (0, 2),
        (2, 4), // free detour for commodity 1
        (1, 3),
        (3, 4), // free detour for the second half
        (0, 4), // long free direct road
    ];
    let corridor = TollProblem {
        graph: Graph::new(5, &arcs),
        base_costs: vec![1.0, 1.0, 5.0, 5.0, 4.0, 4.0, 14.0],
        toll_arcs: vec![0, 1],
        caps: vec![12.0, 12.0],
        commodities: vec![
            Commodity { origin: 0, destination: 4, demand: 3.0 },
            Commodity { origin: 1, destination: 4, demand: 1.0 },
        ],
    };
    let grid = solve_grid(&corridor, 240).unwrap();
    let ea = solve_ea(&corridor, &TollEaConfig::default(), 7);
    println!("two-toll corridor, two commodities (demand 3 + 1):");
    println!(
        "  grid leader: tolls = [{:.2}, {:.2}], revenue = {:.2}",
        grid.tolls[0], grid.tolls[1], grid.revenue
    );
    println!(
        "  EA leader:   tolls = [{:.2}, {:.2}], revenue = {:.2}",
        ea.tolls[0], ea.tolls[1], ea.revenue
    );
    println!(
        "  follower cost at EA tolls: {:.2} (free-flow: {:.2})",
        corridor.follower_cost(&ea.tolls).unwrap(),
        corridor.follower_cost(&[0.0, 0.0]).unwrap()
    );
}
