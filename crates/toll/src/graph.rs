//! Directed-graph substrate: CSR adjacency, Dijkstra with shortest-path
//! DAG extraction, and a max-reward path search *within* that DAG (the
//! optimistic tie-break over equally cheap follower paths).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A directed graph with `f64` arc costs, stored in compressed sparse
/// row form for cache-friendly traversal.
#[derive(Debug, Clone)]
pub struct Graph {
    offsets: Vec<usize>,
    targets: Vec<usize>,
    /// Arc ids in insertion order, parallel to `targets`.
    arc_ids: Vec<usize>,
    num_arcs: usize,
}

impl Graph {
    /// Build from an arc list `(from, to)`; arc ids are assigned in
    /// order of insertion.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= num_nodes`.
    pub fn new(num_nodes: usize, arcs: &[(usize, usize)]) -> Self {
        for &(u, v) in arcs {
            assert!(u < num_nodes && v < num_nodes, "arc ({u},{v}) out of range");
        }
        let mut offsets = vec![0usize; num_nodes + 1];
        for &(u, _) in arcs {
            offsets[u + 1] += 1;
        }
        for i in 0..num_nodes {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = vec![0usize; arcs.len()];
        let mut arc_ids = vec![0usize; arcs.len()];
        let mut cursor = offsets.clone();
        for (id, &(u, v)) in arcs.iter().enumerate() {
            targets[cursor[u]] = v;
            arc_ids[cursor[u]] = id;
            cursor[u] += 1;
        }
        Graph { offsets, targets, arc_ids, num_arcs: arcs.len() }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of arcs.
    pub fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    /// Outgoing `(target, arc_id)` pairs of `node`.
    pub fn out(&self, node: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let range = self.offsets[node]..self.offsets[node + 1];
        range.map(move |i| (self.targets[i], self.arc_ids[i]))
    }

    /// Dijkstra from `source` under `costs` (indexed by arc id; must be
    /// non-negative).
    ///
    /// # Panics
    /// Panics if `costs.len() != num_arcs` or any cost is negative/NaN.
    pub fn dijkstra(&self, source: usize, costs: &[f64]) -> ShortestPaths {
        assert_eq!(costs.len(), self.num_arcs, "cost vector length mismatch");
        assert!(costs.iter().all(|c| *c >= 0.0), "Dijkstra requires non-negative costs");
        let n = self.num_nodes();
        let mut dist = vec![f64::INFINITY; n];
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
        dist[source] = 0.0;
        heap.push(HeapItem { dist: 0.0, node: source });
        while let Some(HeapItem { dist: d, node }) = heap.pop() {
            if d > dist[node] {
                continue;
            }
            for (next, arc) in self.out(node) {
                let nd = d + costs[arc];
                if nd < dist[next] {
                    dist[next] = nd;
                    heap.push(HeapItem { dist: nd, node: next });
                }
            }
        }
        ShortestPaths { source, dist }
    }
}

/// Result of a Dijkstra run.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// The source node.
    pub source: usize,
    /// Distance per node (∞ when unreachable).
    pub dist: Vec<f64>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapItem {
    dist: f64,
    node: usize,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance (BinaryHeap is a max-heap).
        other.dist.total_cmp(&self.dist).then(other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Within-tolerance shortest-path DAG membership: arc `(u, v)` belongs
/// iff `dist_s[u] + cost + dist_to_t_from[v] == dist_s[t]`.
///
/// `max_reward_shortest_path` finds, among all cheapest `s → t` paths,
/// the one maximizing a per-arc `reward` (the leader's tolls) — the
/// optimistic follower. Returns `None` when `t` is unreachable.
pub fn max_reward_shortest_path(
    graph: &Graph,
    costs: &[f64],
    reward: &[f64],
    source: usize,
    target: usize,
    tol: f64,
) -> Option<(Vec<usize>, f64)> {
    let fwd = graph.dijkstra(source, costs);
    if !fwd.dist[target].is_finite() {
        return None;
    }
    let total = fwd.dist[target];

    // DP over nodes ordered by forward distance: best collectible reward
    // from s to each node along shortest-path-DAG arcs.
    let n = graph.num_nodes();
    let mut order: Vec<usize> = (0..n).filter(|&v| fwd.dist[v].is_finite()).collect();
    order.sort_by(|&a, &b| fwd.dist[a].total_cmp(&fwd.dist[b]).then(a.cmp(&b)));

    let mut best_reward = vec![f64::NEG_INFINITY; n];
    let mut pred_arc: Vec<Option<(usize, usize)>> = vec![None; n]; // (pred node, arc id)
    best_reward[source] = 0.0;
    for &u in &order {
        if best_reward[u] == f64::NEG_INFINITY {
            continue;
        }
        for (v, arc) in graph.out(u) {
            // Arc lies on some shortest path iff distances are consistent.
            if (fwd.dist[u] + costs[arc] - fwd.dist[v]).abs() <= tol
                && fwd.dist[v] <= total + tol
            {
                let r = best_reward[u] + reward[arc];
                if r > best_reward[v] + 1e-15 {
                    best_reward[v] = r;
                    pred_arc[v] = Some((u, arc));
                }
            }
        }
    }
    if best_reward[target] == f64::NEG_INFINITY {
        return None;
    }
    // Reconstruct the arc sequence.
    let mut arcs = Vec::new();
    let mut v = target;
    while v != source {
        let (u, arc) = pred_arc[v].expect("reachable target must have predecessors");
        arcs.push(arc);
        v = u;
    }
    arcs.reverse();
    Some((arcs, best_reward[target]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference all-pairs shortest paths (Floyd–Warshall) to cross-check
    /// Dijkstra.
    fn floyd(n: usize, arcs: &[(usize, usize)], costs: &[f64]) -> Vec<Vec<f64>> {
        let mut d = vec![vec![f64::INFINITY; n]; n];
        for (i, row) in d.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        for (id, &(u, v)) in arcs.iter().enumerate() {
            d[u][v] = d[u][v].min(costs[id]);
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let via = d[i][k] + d[k][j];
                    if via < d[i][j] {
                        d[i][j] = via;
                    }
                }
            }
        }
        d
    }

    fn diamond() -> (Graph, Vec<(usize, usize)>) {
        // 0 -> 1 -> 3 and 0 -> 2 -> 3, plus 0 -> 3 direct
        let arcs = vec![(0, 1), (1, 3), (0, 2), (2, 3), (0, 3)];
        (Graph::new(4, &arcs), arcs)
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // sp.dist and fw share the index
    fn dijkstra_matches_floyd_on_diamond() {
        let (g, arcs) = diamond();
        let costs = vec![1.0, 1.0, 2.0, 2.0, 5.0];
        let sp = g.dijkstra(0, &costs);
        let fw = floyd(4, &arcs, &costs);
        for v in 0..4 {
            assert!((sp.dist[v] - fw[0][v]).abs() < 1e-12, "node {v}");
        }
        assert_eq!(sp.dist[3], 2.0);
    }

    #[test]
    fn dijkstra_unreachable_is_infinite() {
        let g = Graph::new(3, &[(0, 1)]);
        let sp = g.dijkstra(0, &[1.0]);
        assert!(sp.dist[2].is_infinite());
    }

    #[test]
    fn csr_out_edges() {
        let (g, _) = diamond();
        let out0: Vec<(usize, usize)> = g.out(0).collect();
        assert_eq!(out0.len(), 3);
        assert!(out0.contains(&(1, 0)));
        assert!(out0.contains(&(2, 2)));
        assert!(out0.contains(&(3, 4)));
        assert_eq!(g.out(3).count(), 0);
    }

    #[test]
    fn max_reward_prefers_rewarding_tie() {
        let (g, _) = diamond();
        // Both 0-1-3 and 0-2-3 cost 2; only arc (0,2) carries reward.
        let costs = vec![1.0, 1.0, 1.0, 1.0, 9.0];
        let reward = vec![0.0, 0.0, 3.0, 0.0, 0.0];
        let (arcs, r) = max_reward_shortest_path(&g, &costs, &reward, 0, 3, 1e-9).unwrap();
        assert_eq!(r, 3.0);
        assert_eq!(arcs, vec![2, 3]); // 0 -> 2 -> 3
    }

    #[test]
    fn max_reward_never_leaves_shortest_dag() {
        let (g, _) = diamond();
        // Reward on the *longer* path must be ignored.
        let costs = vec![1.0, 1.0, 5.0, 5.0, 9.0];
        let reward = vec![0.0, 0.0, 100.0, 100.0, 0.0];
        let (arcs, r) = max_reward_shortest_path(&g, &costs, &reward, 0, 3, 1e-9).unwrap();
        assert_eq!(r, 0.0);
        assert_eq!(arcs, vec![0, 1]); // cheapest path, no reward
    }

    #[test]
    fn max_reward_unreachable_is_none() {
        let g = Graph::new(3, &[(0, 1)]);
        assert!(max_reward_shortest_path(&g, &[1.0], &[0.0], 0, 2, 1e-9).is_none());
    }

    #[test]
    fn path_reconstruction_costs_add_up() {
        let (g, _) = diamond();
        let costs = vec![1.5, 0.5, 1.0, 1.0, 3.0];
        let reward = vec![1.0, 1.0, 0.0, 0.0, 0.0];
        let (arcs, _) = max_reward_shortest_path(&g, &costs, &reward, 0, 3, 1e-9).unwrap();
        let total: f64 = arcs.iter().map(|&a| costs[a]).sum();
        let sp = g.dijkstra(0, &costs);
        assert!((total - sp.dist[3]).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_costs_rejected() {
        let g = Graph::new(2, &[(0, 1)]);
        let _ = g.dijkstra(0, &[-1.0]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // sp.dist and fw share the indices
    fn random_graph_dijkstra_vs_floyd() {
        // Deterministic pseudo-random graph, cross-checked exhaustively.
        let n = 12;
        let mut arcs = Vec::new();
        let mut costs = Vec::new();
        let mut state = 88172645463325252u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for u in 0..n {
            for _ in 0..3 {
                let v = (next() % n as u64) as usize;
                if v != u {
                    arcs.push((u, v));
                    costs.push((next() % 100) as f64 / 10.0);
                }
            }
        }
        let g = Graph::new(n, &arcs);
        let fw = floyd(n, &arcs, &costs);
        for s in 0..n {
            let sp = g.dijkstra(s, &costs);
            for v in 0..n {
                let (a, b) = (sp.dist[v], fw[s][v]);
                assert!(
                    (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9,
                    "mismatch s={s} v={v}: {a} vs {b}"
                );
            }
        }
    }
}
