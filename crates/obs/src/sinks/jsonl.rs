//! Structured trace sink: one JSON object per event, one event per line.
//!
//! Line schema (stable, documented in the README):
//!
//! ```json
//! {"event":"GenerationEnd","seq":12,"t_ms":34,"tag":"Carbon/500x30/run0","generation":5,...}
//! ```
//!
//! `seq` is a global sequence number over the shared writer, `t_ms` is
//! milliseconds since the sink was created, and `tag` (optional) labels
//! the emitting run when several runs share one file — see
//! [`JsonlSink::with_tag`].

use crate::event::Event;
use crate::json;
use crate::observer::RunObserver;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct Shared<W> {
    writer: Mutex<W>,
    seq: AtomicU64,
    start: Instant,
}

/// An observer that appends every event as one JSON line to a writer.
///
/// Cloning (or [`with_tag`](Self::with_tag)) shares the underlying
/// writer and sequence counter, so parallel bench runs can interleave
/// tagged lines into one file without tearing.
pub struct JsonlSink<W: Write + Send = BufWriter<File>> {
    shared: Arc<Shared<W>>,
    tag: Option<String>,
}

impl<W: Write + Send> Clone for JsonlSink<W> {
    fn clone(&self) -> Self {
        JsonlSink { shared: Arc::clone(&self.shared), tag: self.tag.clone() }
    }
}

impl JsonlSink<BufWriter<File>> {
    /// Create (truncate) `path` and write events to it, buffered.
    pub fn create(path: &str) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wrap any writer (a file, [`SharedBuffer`], `std::io::sink()`, …).
    pub fn new(writer: W) -> Self {
        JsonlSink {
            shared: Arc::new(Shared {
                writer: Mutex::new(writer),
                seq: AtomicU64::new(0),
                start: Instant::now(),
            }),
            tag: None,
        }
    }

    /// A handle onto the same writer whose lines carry `"tag":…` —
    /// used by the bench harness to label each (class, run) stream in a
    /// shared trace file.
    pub fn with_tag(&self, tag: impl Into<String>) -> Self {
        JsonlSink { shared: Arc::clone(&self.shared), tag: Some(tag.into()) }
    }

    /// Flush the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        self.shared.writer.lock().expect("jsonl writer poisoned").flush()
    }
}

impl<W: Write + Send> RunObserver for JsonlSink<W> {
    fn observe(&self, event: &Event<'_>) {
        let mut line = String::with_capacity(128);
        line.push_str("{\"event\":");
        json::push_string(&mut line, event.name());
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        json::push_u64_field(&mut line, "seq", seq);
        let t_ms = self.shared.start.elapsed().as_millis() as u64;
        json::push_u64_field(&mut line, "t_ms", t_ms);
        if let Some(tag) = &self.tag {
            json::push_str_field(&mut line, "tag", tag);
        }
        event.write_json_fields(&mut line);
        line.push_str("}\n");
        // Best-effort: a full disk must not abort a multi-hour run.
        let _ = self
            .shared
            .writer
            .lock()
            .expect("jsonl writer poisoned")
            .write_all(line.as_bytes());
    }
}

/// A cloneable in-memory writer for tests and tools: all clones append
/// to the same buffer.
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffered bytes as UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.buf.lock().expect("buffer poisoned")).into_owned()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.lock().expect("buffer poisoned").extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    #[test]
    fn every_line_is_valid_json_with_an_event_tag() {
        let buffer = SharedBuffer::new();
        let sink = JsonlSink::new(buffer.clone());
        for event in Event::examples() {
            sink.observe(&event);
        }
        sink.flush().unwrap();
        let text = buffer.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), Event::examples().len());
        for (line, event) in lines.iter().zip(Event::examples()) {
            let value = parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
            assert_eq!(value.get("event").and_then(Value::as_str), Some(event.name()));
            assert!(value.get("seq").and_then(Value::as_u64).is_some());
            assert!(value.get("t_ms").and_then(Value::as_u64).is_some());
        }
    }

    #[test]
    fn payload_fields_round_trip() {
        let buffer = SharedBuffer::new();
        let sink = JsonlSink::new(buffer.clone());
        sink.observe(&Event::GenerationEnd {
            generation: 7,
            evaluations: 1600,
            ul_best: 1543.25,
            gap_best: 3.4,
        });
        let text = buffer.contents();
        let value = parse(text.trim()).unwrap();
        assert_eq!(value.get("generation").and_then(Value::as_u64), Some(7));
        assert_eq!(value.get("evaluations").and_then(Value::as_u64), Some(1600));
        assert_eq!(value.get("ul_best").and_then(Value::as_f64), Some(1543.25));
        assert_eq!(value.get("gap_best").and_then(Value::as_f64), Some(3.4));
    }

    #[test]
    fn tags_share_the_writer_and_sequence() {
        let buffer = SharedBuffer::new();
        let sink = JsonlSink::new(buffer.clone());
        let a = sink.with_tag("run0");
        let b = sink.with_tag("run1");
        a.observe(&Event::GenerationStart { generation: 0 });
        b.observe(&Event::GenerationStart { generation: 0 });
        a.observe(&Event::GenerationStart { generation: 1 });
        let text = buffer.contents();
        let mut seqs = Vec::new();
        let mut tags = Vec::new();
        for line in text.lines() {
            let v = parse(line).unwrap();
            seqs.push(v.get("seq").and_then(Value::as_u64).unwrap());
            tags.push(v.get("tag").and_then(Value::as_str).unwrap().to_string());
        }
        assert_eq!(seqs, [0, 1, 2], "clones must share one sequence");
        assert_eq!(tags, ["run0", "run1", "run0"]);
    }

    #[test]
    fn non_finite_payloads_stay_parseable() {
        let buffer = SharedBuffer::new();
        let sink = JsonlSink::new(buffer.clone());
        sink.observe(&Event::GenerationEnd {
            generation: 0,
            evaluations: 0,
            ul_best: f64::NEG_INFINITY,
            gap_best: f64::NAN,
        });
        let text = buffer.contents();
        let value = parse(text.trim()).unwrap();
        assert_eq!(value.get("ul_best"), Some(&Value::Null));
        assert_eq!(value.get("gap_best"), Some(&Value::Null));
    }

    #[test]
    fn concurrent_writers_never_tear_lines() {
        let buffer = SharedBuffer::new();
        let sink = JsonlSink::new(buffer.clone());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let tagged = sink.with_tag(format!("t{t}"));
                scope.spawn(move || {
                    for g in 0..50 {
                        tagged.observe(&Event::GenerationStart { generation: g });
                    }
                });
            }
        });
        let text = buffer.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 200);
        for line in lines {
            parse(line).unwrap_or_else(|e| panic!("torn line {line:?}: {e}"));
        }
    }
}
