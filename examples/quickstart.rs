//! Quickstart: price your cloud bundles against a rational customer.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a small Bi-level Cloud Pricing instance, runs CARBON for a
//! few thousand evaluations, and prints the best pricing found, the
//! revenue it earns, the quality (%-gap) of the predicted customer
//! reaction, and the evolved scoring heuristic as a formula.

use bico::bcpop::{generate, GeneratorConfig};
use bico::core::{Carbon, CarbonConfig};

fn main() {
    // A market of 60 bundles over 8 services; the CSP owns 10%.
    let cfg = GeneratorConfig {
        num_bundles: 60,
        num_services: 8,
        own_fraction: 0.1,
        ..Default::default()
    };
    let instance = generate(&cfg, 2024);
    println!(
        "instance: {} bundles x {} services, CSP owns {} bundles, price cap {:.1}",
        instance.num_bundles(),
        instance.num_services(),
        instance.num_own(),
        instance.price_cap()
    );

    let carbon_cfg = CarbonConfig {
        ul_pop_size: 30,
        ll_pop_size: 30,
        ul_archive_size: 30,
        ll_archive_size: 30,
        ul_evaluations: 3_000,
        ll_evaluations: 3_000,
        ..Default::default()
    };
    let result = Carbon::new(&instance, carbon_cfg).run(7);

    println!("\nCARBON finished after {} generations", result.generations);
    println!("  best revenue (UL objective): {:.2}", result.best_ul_value);
    println!("  reaction quality (%-gap):    {:.2}%", result.best_gap);
    println!(
        "  best pricing: [{}]",
        result.best_pricing.iter().map(|p| format!("{p:.1}")).collect::<Vec<_>>().join(", ")
    );
    println!("  evolved scoring heuristic:   {}", result.best_heuristic_infix);
    println!(
        "  budget used: {} UL evals, {} LL evals",
        result.ul_evals_used, result.ll_evals_used
    );
}
